"""Ablations for the design trade-offs the paper discusses.

Three quantified recommendations:

* **Policy ordering** (s7.1): "because 97% of MTAs perform DNS lookups
  serially, we recommend that organizations create their policy in such a
  way that the most frequently used addresses come first."  The ablation
  measures validation latency for the same sender against a policy with
  the matching mechanism first vs. last.
* **Parallel prefetching** (s7.1): the strategy 3% of MTAs use — "might
  save time in evaluating more complex policies ... serial lookups are
  more conservative in terms of resources."  The ablation measures both
  the wall-clock saving and the extra DNS load.
* **Resolver caching**: repeated validations of the same domain should
  cost one authoritative round trip, not many; the ablation measures the
  query amplification without a cache.
"""

from benchmarks.conftest import emit
from repro.core.synth import SynthConfig, SynthesizingAuthority
from repro.dns.rdata import ARecord, SoaRecord, TxtRecord
from repro.dns.resolver import AuthorityDirectory, Resolver, ResolverConfig
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.net.clock import Clock
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.spf import SpfConfig, SpfEvaluator

SENDER_IP = "192.0.2.77"


def _world():
    network = Network(LatencyModel(0.02), Clock())  # 40 ms RTT everywhere
    directory = AuthorityDirectory()
    zone = Zone("pol.example", soa=SoaRecord("ns1.pol.example", "h.pol.example"))
    server = AuthoritativeServer([zone])
    server.attach(network, "198.51.100.53")
    directory.register("pol.example", "198.51.100.53")
    return network, directory, zone, server


def _chain(zone, name, depth):
    """An include chain of ``depth`` levels under ``name``."""
    for level in range(depth):
        target = "%s%d.pol.example" % (name, level + 1)
        body = "include:%s ?all" % ("%s%d.pol.example" % (name, level + 2))
        if level == depth - 1:
            body = "?all"
        zone.add(target, TxtRecord("v=spf1 %s" % body))


def test_ablation_policy_ordering(benchmark):
    """Matching mechanism first vs. buried behind an include chain."""
    network, directory, zone, server = _world()
    _chain(zone, "c", 8)
    zone.add("fast.pol.example", TxtRecord("v=spf1 ip4:%s include:c1.pol.example -all" % SENDER_IP))
    zone.add("slow.pol.example", TxtRecord("v=spf1 include:c1.pol.example ip4:%s -all" % SENDER_IP))

    def evaluate(domain):
        resolver = Resolver(network, directory, address4="203.0.113.1",
                            config=ResolverConfig(use_cache=False))
        evaluator = SpfEvaluator(resolver, SpfConfig(max_dns_mechanisms=None))
        return evaluator.check_host(SENDER_IP, domain, "u@%s" % domain)

    fast = benchmark(evaluate, "fast.pol.example")
    slow = evaluate("slow.pol.example")
    assert fast.result.value == slow.result.value == "pass"

    text = (
        "policy with matching ip4 FIRST: %5.0f ms, %2d lookups\n"
        "policy with matching ip4 LAST:  %5.0f ms, %2d lookups\n"
        "ordering saves %.0f%% of validation latency for the common sender"
        % (
            1000 * fast.elapsed, len(fast.lookups),
            1000 * slow.elapsed, len(slow.lookups),
            100 * (1 - fast.elapsed / slow.elapsed),
        )
    )
    emit("Ablation: SPF policy ordering (s7.1 recommendation)", text)
    assert fast.elapsed < slow.elapsed / 3
    assert len(fast.lookups) < len(slow.lookups)


def test_ablation_parallel_prefetch(benchmark):
    """Serial vs parallel evaluation of a deep policy: latency vs load."""
    network = Network(LatencyModel(0.02), Clock())
    directory = AuthorityDirectory()
    synth = SynthesizingAuthority(SynthConfig())
    synth.deploy(network, directory)
    base = "t01.abl%d.%s"

    def evaluate(parallel, tag):
        resolver = Resolver(network, directory, address4="203.0.113.%d" % (2 + parallel))
        evaluator = SpfEvaluator(resolver, SpfConfig(parallel_lookups=bool(parallel)))
        domain = base % (parallel, synth.config.probe_suffix)
        return evaluator.check_host("203.0.113.250", domain, "u@%s" % domain)

    serial = benchmark(evaluate, 0, "serial")
    synth.clear_log()
    parallel = evaluate(1, "parallel")
    parallel_queries = len(synth.query_log)

    text = (
        "serial evaluation:   %4.0f ms\n"
        "parallel prefetch:   %4.0f ms  (%d queries issued)\n"
        "prefetching trades DNS load for latency, as s7.1 discusses"
        % (1000 * serial.elapsed, 1000 * parallel.elapsed, parallel_queries)
    )
    emit("Ablation: serial vs parallel lookups", text)
    assert parallel.elapsed < serial.elapsed


def test_ablation_resolver_cache(benchmark):
    """Cache off => every validation hits the authoritative server."""
    network, directory, zone, server = _world()
    zone.add("hot.pol.example", TxtRecord("v=spf1 a:mail.pol.example -all"))
    zone.add("mail.pol.example", ARecord(SENDER_IP))

    def run(with_cache):
        resolver = Resolver(network, directory, address4="203.0.113.9",
                            config=ResolverConfig(use_cache=with_cache))
        evaluator = SpfEvaluator(resolver)
        server.clear_log()
        t = 0.0
        for _ in range(20):
            outcome = evaluator.check_host(SENDER_IP, "hot.pol.example", "u@hot.pol.example", t_start=t)
            t = outcome.t_completed + 1.0
        return len(server.query_log), t

    cached_queries, cached_t = benchmark.pedantic(run, args=(True,), rounds=5)
    uncached_queries, uncached_t = run(False)
    text = (
        "20 validations of one domain:\n"
        "  with resolver cache:    %3d authoritative queries, %5.1f s virtual\n"
        "  without resolver cache: %3d authoritative queries, %5.1f s virtual\n"
        "caching divides authoritative load by %.0fx"
        % (
            cached_queries, cached_t, uncached_queries, uncached_t,
            uncached_queries / max(1, cached_queries),
        )
    )
    emit("Ablation: resolver caching", text)
    assert cached_queries == 2  # one TXT + one A, ever
    assert uncached_queries == 40
