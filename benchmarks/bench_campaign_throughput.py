"""Throughput benches for the measurement machinery itself.

Not a paper table — these keep the harness honest about simulation cost:
one full probe conversation (39 policies) per MTA, and one NotifyEmail
delivery per domain, both measured per-operation on a small fresh world.
"""

import pytest

from benchmarks.conftest import SEED
from repro.core.campaign import NotifyEmailCampaign, ProbeCampaign, Testbed
from repro.core.datasets import DatasetSpec, generate_universe


@pytest.fixture(scope="module")
def small_testbed():
    universe = generate_universe(DatasetSpec.notify_email(scale=0.002), seed=SEED + 9)
    return universe, Testbed(universe, seed=SEED + 10)


def test_bench_notify_delivery(benchmark, small_testbed):
    universe, testbed = small_testbed
    campaign = NotifyEmailCampaign(testbed)
    domains = iter(universe.domains * 1000)

    def deliver_one():
        campaign_result = campaign.run([next(domains)])
        return campaign_result

    benchmark.pedantic(deliver_one, rounds=20, iterations=1)


def test_bench_probe_conversation(benchmark, small_testbed):
    universe, testbed = small_testbed
    campaign = ProbeCampaign(testbed, "bench", testids=["t12"])
    pairs = campaign.eligible_mtas()
    assert pairs
    probe = campaign.probe
    host, rcpt_domain = pairs[0]
    counter = iter(range(10_000_000))

    def probe_once():
        return probe.probe(
            host.ipv4 or host.ipv6,
            "bench%d" % next(counter),  # fresh mtaid defeats resolver caching
            "t12",
            rcpt_domain,
            float(next(counter)) * 100.0,
        )

    benchmark.pedantic(probe_once, rounds=30, iterations=1)


def test_bench_synth_resolution(benchmark, small_testbed):
    """Raw synthesizing-server throughput: one UDP query end to end."""
    from repro.dns import wire
    from repro.dns.message import Message
    from repro.dns.rdata import RdataType

    _, testbed = small_testbed
    synth = testbed.synth
    query = Message.make_query(
        "t12.mbench.%s" % testbed.synth_config.probe_suffix, RdataType.TXT, msg_id=7
    )
    payload = wire.to_wire(query)

    def resolve_once():
        return synth.udp_handler(payload, "203.0.113.99", "udp", 0.0)

    benchmark(resolve_once)
