"""Throughput benches for the measurement machinery itself.

Not a paper table — these keep the harness honest about simulation cost:
one full probe conversation (39 policies) per MTA, one NotifyEmail
delivery per domain, and one raw synth resolution, measured
per-operation on a small fresh world — plus a sharded-vs-serial probe
campaign comparison (``repro.core.parallel``) with a never-slower gate.

The parallel bench times wall clock (``time.perf_counter``), not process
CPU time: worker processes burn their CPU outside this interpreter, and
wall clock is precisely what sharding buys.  Its gate scales with the
machine: >= 2x speedup with four or more CPUs, never-slower with two or
more, report-only on a single core (where a pool can only add overhead).

All throughput numbers land in ``benchmarks/out/BENCH_campaign.json``
via :func:`benchmarks.conftest.record_bench`.
"""

import os
import time

import pytest

from benchmarks.conftest import SEED, emit, record_bench
from repro.core.campaign import NotifyEmailCampaign, ProbeCampaign, Testbed
from repro.core.datasets import DatasetSpec, generate_universe
from repro.core.parallel import run_probe_sharded

#: Universe scale for the sharded-vs-serial comparison.  Big enough that
#: per-worker testbed setup amortises; tune with the env knob in CI.
PAR_SCALE = float(os.environ.get("REPRO_BENCH_PAR_SCALE", "0.01"))


def _record_pedantic(benchmark, name: str, **extra) -> None:
    stats = getattr(benchmark, "stats", None)
    if stats is None:
        return
    mean = stats.stats.mean
    if mean > 0:
        record_bench(name, 1.0 / mean, workers=1, **extra)


@pytest.fixture(scope="module")
def small_testbed():
    universe = generate_universe(DatasetSpec.notify_email(scale=0.002), seed=SEED + 9)
    return universe, Testbed(universe, seed=SEED + 10)


def test_bench_notify_delivery(benchmark, small_testbed):
    universe, testbed = small_testbed
    campaign = NotifyEmailCampaign(testbed)
    domains = iter(universe.domains * 1000)

    def deliver_one():
        campaign_result = campaign.run([next(domains)])
        return campaign_result

    benchmark.pedantic(deliver_one, rounds=20, iterations=1)
    _record_pedantic(benchmark, "notify_delivery")


def test_bench_probe_conversation(benchmark, small_testbed):
    universe, testbed = small_testbed
    campaign = ProbeCampaign(testbed, "bench", testids=["t12"])
    pairs = campaign.eligible_mtas()
    assert pairs
    probe = campaign.probe
    host, rcpt_domain = pairs[0]
    counter = iter(range(10_000_000))

    def probe_once():
        return probe.probe(
            host.ipv4 or host.ipv6,
            "bench%d" % next(counter),  # fresh mtaid defeats resolver caching
            "t12",
            rcpt_domain,
            float(next(counter)) * 100.0,
        )

    benchmark.pedantic(probe_once, rounds=30, iterations=1)
    _record_pedantic(benchmark, "probe_conversation")


def test_bench_synth_resolution(benchmark, small_testbed):
    """Raw synthesizing-server throughput: one UDP query end to end."""
    from repro.dns import wire
    from repro.dns.message import Message
    from repro.dns.rdata import RdataType

    _, testbed = small_testbed
    synth = testbed.synth
    query = Message.make_query(
        "t12.mbench.%s" % testbed.synth_config.probe_suffix, RdataType.TXT, msg_id=7
    )
    payload = wire.to_wire(query)

    def resolve_once():
        return synth.udp_handler(payload, "203.0.113.99", "udp", 0.0)

    benchmark(resolve_once)
    _record_pedantic(benchmark, "synth_resolution")


def test_bench_sharded_vs_serial_probe():
    """Wall-clock speedup of the sharded probe campaign vs serial.

    Same universe, same seeds: by the differential-equivalence tests the
    two arms compute identical results, so the comparison is pure
    execution cost.  The serial arm runs the single-shard inline path
    (today's behaviour); the parallel arm runs four shards over four
    worker processes.
    """
    universe = generate_universe(DatasetSpec.notify_email(scale=PAR_SCALE), seed=SEED + 20)
    timings = {}
    probes = 0
    for workers in (1, 4):
        t_start = time.perf_counter()
        merged = run_probe_sharded(
            universe,
            "bench",
            shards=workers,
            workers=workers,
            testbed_seed=SEED + 21,
            campaign_seed=SEED,
            use_processes=workers > 1,
        )
        timings[workers] = time.perf_counter() - t_start
        probes = len(merged.result.results)
        assert probes > 0
        record_bench(
            "probe_campaign_sharded",
            probes / timings[workers],
            workers=workers,
            scale=PAR_SCALE,
            probes=probes,
        )
    speedup = timings[1] / timings[4]
    cpus = os.cpu_count() or 1
    emit(
        "sharded vs serial: probe campaign",
        "probes=%d scale=%g cpus=%d\n"
        "serial   (workers=1): %8.2f s  (%7.1f probes/s)\n"
        "sharded  (workers=4): %8.2f s  (%7.1f probes/s)\n"
        "speedup: %.2fx"
        % (
            probes, PAR_SCALE, cpus,
            timings[1], probes / timings[1],
            timings[4], probes / timings[4],
            speedup,
        ),
    )
    if cpus >= 4:
        # The acceptance bar on a real 4-core runner.
        assert speedup >= 2.0, "expected >= 2x speedup on %d CPUs, got %.2fx" % (cpus, speedup)
    elif cpus >= 2:
        # Never slower (small tolerance for scheduler noise).
        assert speedup >= 0.9, "sharded run slower than serial: %.2fx" % speedup
