"""Fault-injection overhead: the empty-plan no-op path must stay free.

The fault subsystem's contract (``repro.net.faults``) is that an
unfaulted run pays nothing: every injection site bails on ``faults is
None``, and an attached-but-empty plan only ever costs a dict probe per
event.  This bench runs identical NotifyEmail campaigns three ways —
no plan, empty plan, and a lightly faulted plan — and gates the
*empty-plan* CPU overhead against no-plan at **< 5 %** (the same budget
the observability layer lives under, measured the same way: CPU time,
interleaved arms, minimum-over-rounds estimator, one re-measurement
before failing).

The faulted arm is reported, not gated: its cost is dominated by the
extra protocol work real faults cause (retries, timeouts riding on
virtual time are free, but hash draws and tally bookkeeping are not),
which is behaviour, not overhead.
"""

import gc
import os
import time

from benchmarks.conftest import SEED, emit
from repro.core.campaign import NotifyEmailCampaign, Testbed
from repro.core.datasets import DatasetSpec, generate_universe
from repro.net.faults import FaultPlan
from repro.obs import NULL_OBS

#: Interleaved arm samples per measurement attempt.
ROUNDS = int(os.environ.get("REPRO_BENCH_FAULT_ROUNDS", "9"))
#: Campaign scale — small enough that one arm stays well under a second.
FAULT_SCALE = float(os.environ.get("REPRO_BENCH_FAULT_SCALE", "0.01"))
#: The empty-plan gate.
THRESHOLD = 0.05

#: The faulted arm's plan: light enough that the campaign still
#: completes, heavy enough that every hot injection site draws.
FAULTED_SPEC = "udp_loss:0.05,servfail:0.02,banner_delay:0.05:5"


def _time_campaign(universe, faults):
    """CPU seconds for one NotifyEmail run on a fresh, uninstrumented
    testbed (NULL_OBS keeps the obs layer out of the measurement)."""
    testbed = Testbed(universe, seed=SEED + 31, obs=NULL_OBS, faults=faults)
    campaign = NotifyEmailCampaign(testbed)
    gc.collect()
    t_start = time.process_time()
    campaign.run()
    return time.process_time() - t_start


def _measure(universe, rounds, none_arm, empty_arm):
    for _ in range(rounds):
        none_arm.append(_time_campaign(universe, None))
        empty_arm.append(_time_campaign(universe, FaultPlan.parse("", seed=SEED)))
    return min(none_arm), min(empty_arm)


def test_empty_plan_overhead_under_threshold():
    """The gate: an empty plan costs < 5 % over no plan at all."""
    universe = generate_universe(DatasetSpec.notify_email(scale=FAULT_SCALE), seed=SEED + 30)
    _time_campaign(universe, None)  # warm code paths and caches
    none_arm, empty_arm = [], []
    best_none, best_empty = _measure(universe, ROUNDS, none_arm, empty_arm)
    if best_empty / best_none - 1.0 >= 0.8 * THRESHOLD:
        # Borderline readings are usually scheduler noise; the minimum
        # estimator only improves with more samples.
        best_none, best_empty = _measure(universe, 2 * ROUNDS, none_arm, empty_arm)
    overhead = best_empty / best_none - 1.0
    emit(
        "fault overhead: empty plan",
        "NotifyEmail delivery   none %6.3f s  empty-plan %6.3f s  overhead %+5.1f %%"
        % (best_none, best_empty, 100.0 * overhead),
    )
    assert overhead < THRESHOLD, (
        "an empty FaultPlan costs %.1f %% of NotifyEmail campaign CPU time "
        "(gate is %.0f %%; the no-op path must stay free)"
        % (100 * overhead, 100 * THRESHOLD)
    )


def test_faulted_campaign_reported():
    """Reported, not gated: what a lightly faulted campaign costs, and
    that it keeps delivering (graceful degradation, not collapse)."""
    universe = generate_universe(DatasetSpec.notify_email(scale=FAULT_SCALE), seed=SEED + 30)
    plan = FaultPlan.parse(FAULTED_SPEC, seed=SEED)
    testbed = Testbed(universe, seed=SEED + 31, obs=NULL_OBS, faults=plan)
    campaign = NotifyEmailCampaign(testbed)
    gc.collect()
    t_start = time.process_time()
    result = campaign.run()
    elapsed = time.process_time() - t_start
    injected = sum(plan.injected.values())
    delivered = sum(1 for d in result.deliveries if d.delivery.accepted_with_250)
    emit(
        "fault overhead: faulted",
        "NotifyEmail under %s: %6.3f s, %d injections, %d/%d delivered"
        % (FAULTED_SPEC, elapsed, injected, delivered, len(result.deliveries)),
    )
    assert injected > 0
    assert delivered > 0
