"""Figure 2: distribution of t(SPF lookup) - t(email delivery).

Paper: 83% of domains have a negative difference (the SPF policy was
fetched before delivery completed), 91% of differences fall within +/-30
seconds, and sub-second differences (8.6% of emails) are excluded because
of Exim's one-second log granularity.
"""

from benchmarks.conftest import emit
from repro.core import analysis as A
from repro.core.report import render_histogram


def test_figure2_timing_distribution(benchmark, notify_world):
    _, _, result, _ = notify_world
    timing = benchmark(A.timing_analysis, result)

    text = render_histogram(
        timing.buckets,
        title="t(SPF) - t(delivery), per-domain averages (n=%d)" % timing.domains_used,
    )
    text += "\nnegative (validated before delivery): %.0f%% (paper: 83%%)" % (
        100 * timing.negative_fraction
    )
    text += "\nwithin +/-30 s:                        %.0f%% (paper: 91%%)" % (
        100 * timing.within_30s_fraction
    )
    emit("Figure 2: SPF-lookup vs delivery timing", text)

    assert 0.70 < timing.negative_fraction < 0.95  # paper: 83%
    assert timing.within_30s_fraction > 0.75  # paper: 91%
    # The dominant bucket is the -15..0 one, as in the paper's histogram.
    dominant = max(timing.buckets, key=lambda bucket: bucket[1])
    assert dominant[0] == "-15..0"
