"""Figure 5: CDF of DNS-lookup counts / elapsed time under the 46-lookup
test policy (Figure 4).

Paper: of 553 MTAs that validated this policy, 61% halted within the
specified 10-lookup limit, while 28% executed all 46 lookups, spending
more than 36 seconds (45 x 800 ms server-side delays) on a single
validation.
"""

from benchmarks.conftest import emit
from repro.core import analysis as A
from repro.core.report import render_cdf


def test_figure5_lookup_limit_cdf(benchmark, notifymx_world):
    probe = notifymx_world[4]
    limits = benchmark(A.lookup_limit_analysis, probe)

    # Downsample the CDF for display: one point per distinct query count.
    points = []
    seen = set()
    for queries, elapsed, fraction in limits.cdf:
        if queries not in seen:
            seen.add(queries)
        points.append((float(queries), fraction))
    dedup = {}
    for value, fraction in points:
        dedup[value] = fraction  # keep the max cumulative fraction per x
    cdf_points = sorted(dedup.items())
    text = render_cdf(
        cdf_points,
        title="CDF of post-base DNS queries (x=queries; elapsed >= 0.8*(x-1) s); n=%d"
        % limits.total,
    )
    text += "\nhalted within 10 lookups: %.0f%% (paper: 61%%)" % (
        100 * limits.within_limit_fraction
    )
    text += "\nexecuted all 46 lookups:  %.0f%% (paper: 28%%)" % (
        100 * limits.ran_everything_fraction
    )
    if limits.observations:
        longest = max(o.elapsed_lower_bound for o in limits.observations)
        text += "\nlongest validation lower bound: %.1f s (paper: >36 s)" % longest
    emit("Figure 5: lookup-limit CDF", text)

    assert limits.total > 0
    assert 0.45 < limits.within_limit_fraction < 0.78  # paper: 61%
    assert 0.15 < limits.ran_everything_fraction < 0.45  # paper: 28%
    # Full runs really do take more than 36 virtual seconds.
    full_runs = [o for o in limits.observations if o.ran_everything]
    if full_runs:
        assert all(o.elapsed_lower_bound >= 36.0 for o in full_runs)
