"""Throughput benches for the static analyzer.

The lint pass is meant to be cheap enough to run as a campaign pre-flight
and over large zone corpora; these benches keep it honest by measuring
zones audited per second (graph walk included) and the cost of the full
39-policy pre-flight.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.policies import POLICIES
from repro.core.preflight import preflight_policies
from repro.dns.rdata import ARecord, TxtRecord
from repro.dns.zone import Zone
from repro.lint import audit_zone

# A real (precomputed) 1024-bit RSA public key: the zone audit now parses
# DKIM key material, so the bench must feed it a decodable key.
KEY_B64 = (
    "MIGfMA0GCSqGSIb3DQEBAQUAA4GNADCBiQKBgQCYNXSKOMa7s+u0yyI2QaWNRUqLcIV9LagA"
    "hfCYOqANu7t8Tse2SowWfTJS2um1V0MlCZuLXmpGm6BjxCQTSnLzmG3kfVtB55zN5nHrRZ1U"
    "qnwHEZHmMrbjNS4f8Vx4lx2F7IWAVkEYI13mQBciatfms4CQQ8FmHCns8oOtdDY/1QIDAQAB"
)


def _make_zone(index):
    """A realistic small deployment: an include chain, an MX, a DMARC."""
    origin = "zone%03d.example" % index
    zone = Zone(origin)
    zone.add(origin, TxtRecord("v=spf1 include:spf.%s a:mail.%s -all" % (origin, origin)))
    zone.add("spf." + origin, TxtRecord("v=spf1 ip4:203.0.113.%d/32 ?all" % (index % 250 + 1)))
    zone.add("mail." + origin, ARecord("203.0.113.%d" % (index % 250 + 1)))
    zone.add("_dmarc." + origin, TxtRecord("v=DMARC1; p=quarantine"))
    zone.add("s1._domainkey." + origin, TxtRecord("v=DKIM1; p=%s" % KEY_B64))
    return zone


@pytest.fixture(scope="module")
def zones():
    return [_make_zone(index) for index in range(200)]


def test_bench_zone_audit(benchmark, zones):
    def audit_all():
        return [audit_zone(zone) for zone in zones]

    audits = benchmark.pedantic(audit_all, rounds=5, iterations=1)
    assert all(audit.spf_audits for audit in audits)
    per_second = len(zones) / benchmark.stats.stats.mean
    emit(
        "lint: zone audit throughput",
        "%d zones audited in %.4fs mean -> %.0f zones/s"
        % (len(zones), benchmark.stats.stats.mean, per_second),
    )


def test_bench_policy_preflight(benchmark):
    audits = benchmark.pedantic(lambda: preflight_policies(POLICIES), rounds=5, iterations=1)
    assert len(audits) == len(POLICIES)
    emit(
        "lint: 39-policy preflight",
        "full static pre-flight of %d policies in %.4fs mean"
        % (len(POLICIES), benchmark.stats.stats.mean),
    )
