"""Observability overhead: live Observability vs the no-op fast path.

The obs layer is on by default (OBSERVABILITY.md), so it has to be cheap.
This bench runs identical campaigns twice — once with a live
:class:`~repro.obs.Observability` bundle, once with ``NULL_OBS`` — and
gates the relative slowdown of the paper's primary workload, the
NotifyEmail delivery campaign, at **< 5 %**.

Methodology, because shared machines are noisy:

* CPU time (``time.process_time``), not wall clock, so scheduler
  preemption does not count against whichever arm it happens to hit;
* the arms run interleaved in live/null pairs, so slow frequency drift
  lands on both equally;
* ``gc.collect()`` before every timed run, so neither arm pays for the
  other's garbage;
* the estimator is the minimum over rounds per arm — timing noise on an
  otherwise idle metric is strictly additive, so the smallest sample is
  the least-contaminated one (the ``timeit`` rationale);
* a reading over the gate triggers one re-measurement with more rounds
  before failing: on a shared box a single bad reading is usually
  scheduler noise, not a regression, and the minimum only improves as
  samples accumulate.

The probe campaign is reported as well but not gated: a probe
conversation is almost nothing *but* instrumented protocol rounds (no
message bodies, no DKIM signing), so its ratio is a worst-case
per-event diagnostic rather than a throughput claim.
"""

import gc
import os
import time

from benchmarks.conftest import SEED, emit
from repro.core.campaign import NotifyEmailCampaign, ProbeCampaign, Testbed
from repro.core.datasets import DatasetSpec, generate_universe
from repro.obs import NULL_OBS

#: Interleaved live/null pairs per measurement attempt.
ROUNDS = int(os.environ.get("REPRO_BENCH_OBS_ROUNDS", "9"))
#: Campaign scale — smaller than the table benches so a run stays ~1 s.
OBS_SCALE = float(os.environ.get("REPRO_BENCH_OBS_SCALE", "0.01"))
#: The gate from the observability contract.
THRESHOLD = 0.05


def _time_campaign(universe, make_campaign, obs):
    """CPU seconds for one campaign run on a fresh testbed."""
    testbed = Testbed(universe, seed=SEED + 21, obs=obs)
    campaign = make_campaign(testbed)
    gc.collect()
    t_start = time.process_time()
    campaign.run()
    return time.process_time() - t_start


def _measure(universe, make_campaign, rounds, live, null):
    """Append ``rounds`` interleaved live/null samples to the lists."""
    for _ in range(rounds):
        live.append(_time_campaign(universe, make_campaign, None))
        null.append(_time_campaign(universe, make_campaign, NULL_OBS))
    return min(live), min(null)


def _recorded_events(universe, make_campaign):
    """Spans plus metric recordings from one live run (all counters in
    the codebase increment by 1, so totals count recording calls)."""
    testbed = Testbed(universe, seed=SEED + 21)
    make_campaign(testbed).run()
    metrics, tracer = testbed.obs.metrics, testbed.obs.tracer
    events = len(tracer)
    for name in metrics.names():
        kind = metrics.kind_of(name)
        for _labels, value in metrics.series(name):
            if kind == "counter":
                events += int(value)
            elif kind == "gauge":
                events += 1
            else:
                events += value.count
    return events


def _report(name, events, best_live, best_null):
    overhead = best_live / best_null - 1.0
    per_event = (best_live - best_null) / events if events else 0.0
    return (
        "%-22s %8d events  live %6.3f s  null %6.3f s  "
        "overhead %+5.1f %%  (%.2f us/event)"
        % (name, events, best_live, best_null, 100.0 * overhead, 1e6 * per_event)
    )


def test_notify_campaign_overhead_under_threshold():
    """The gate: < 5 % on the paper's primary delivery campaign."""
    universe = generate_universe(DatasetSpec.notify_email(scale=OBS_SCALE), seed=SEED + 20)
    make = NotifyEmailCampaign
    _time_campaign(universe, make, NULL_OBS)  # warm code paths and caches
    live, null = [], []
    best_live, best_null = _measure(universe, make, ROUNDS, live, null)
    if best_live / best_null - 1.0 >= 0.8 * THRESHOLD:
        # Borderline readings are usually noise; the minimum estimator
        # only improves as samples accumulate, so measure again.
        best_live, best_null = _measure(universe, make, 2 * ROUNDS, live, null)
    events = _recorded_events(universe, make)
    emit("obs overhead: notifyemail", _report("NotifyEmail delivery", events, best_live, best_null))
    overhead = best_live / best_null - 1.0
    assert overhead < THRESHOLD, (
        "live observability costs %.1f %% of NotifyEmail campaign CPU time "
        "(gate is %.0f %%; see OBSERVABILITY.md)" % (100 * overhead, 100 * THRESHOLD)
    )


def test_probe_campaign_overhead_reported():
    """Worst case, reported not gated: probe conversations are pure
    instrumented protocol rounds, so their per-event density is the
    ceiling for what the obs layer can cost."""
    universe = generate_universe(
        DatasetSpec.two_week_mx(scale=OBS_SCALE / 2), seed=SEED + 20
    )

    def make(testbed):
        return ProbeCampaign(testbed, "bench")

    _time_campaign(universe, make, NULL_OBS)
    live, null = [], []
    best_live, best_null = _measure(universe, make, ROUNDS, live, null)
    events = _recorded_events(universe, make)
    emit("obs overhead: probe", _report("TwoWeekMX probe", events, best_live, best_null))
    # Sanity bound only: this campaign exists to stress the obs layer.
    assert best_live / best_null - 1.0 < 1.0


def test_primitive_costs_reported():
    """Per-operation costs of the three primitives, for the record."""
    from repro.obs import Observability

    obs = Observability()
    labels = (("command", "RCPT"), ("code_class", "2xx"))
    n = 100_000

    def per_op(body):
        gc.collect()
        t_start = time.process_time()
        for i in range(n):
            body(float(i))
        return 1e6 * (time.process_time() - t_start) / n

    counter_us = per_op(lambda t: obs.metrics.counter("bench_total", labels, t=t))
    observe_us = per_op(lambda t: obs.metrics.observe("bench_seconds", 0.25, labels, t=t))

    def span_once(t):
        with obs.tracer.span("bench.span", t, command="RCPT") as span:
            span.set(code=250)
            span.end(t + 1.0)

    span_us = per_op(span_once)
    emit(
        "obs overhead: primitives",
        "counter %.2f us/op   observe %.2f us/op   span %.2f us/op   (n=%d)"
        % (counter_us, observe_us, span_us, n),
    )
    # Generous sanity bounds — an order of magnitude above measured.
    assert counter_us < 5.0 and observe_us < 5.0 and span_us < 15.0
