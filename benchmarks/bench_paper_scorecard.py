"""The headline artefact: every paper statistic vs. its measured value.

Combines all three campaigns into one scorecard (see
``repro.core.compare.PAPER_REFERENCE`` for the bands) and asserts that at
least 85% of the statistics land inside their tolerance bands — the
repository's single-number answer to "does the reproduction hold?".
"""

from benchmarks.conftest import emit
from repro.core.compare import (
    build_scorecard,
    collect_notify_measurements,
    collect_probe_measurements,
)


def test_paper_scorecard(benchmark, notify_world, notifymx_world, twoweek_world):
    notify_universe, _, notify_result, notify_analysis = notify_world
    mx_universe, _, _, _, mx_probe = notifymx_world
    twoweek_universe, _, twoweek_probe = twoweek_world

    def build():
        measured = {}
        measured.update(collect_notify_measurements(notify_universe, notify_result, notify_analysis))
        measured.update(collect_probe_measurements(mx_universe, mx_probe, "NotifyMX"))
        measured.update(collect_probe_measurements(twoweek_universe, twoweek_probe, "TwoWeekMX"))
        return build_scorecard(measured)

    scorecard = benchmark(build)
    emit("Scorecard: paper vs measured", scorecard.to_table().render())

    evaluated = scorecard.evaluated
    assert len(evaluated) == len(scorecard.entries), "every statistic must be measured"
    misses = [entry for entry in evaluated if not entry.within_band]
    for entry in misses:
        print("OUT OF BAND: %s (paper %.1f, measured %.1f)" % (
            entry.reference.description, entry.reference.paper_value, entry.measured))
    assert scorecard.hit_rate >= 0.85, "only %d/%d statistics within band" % (
        scorecard.hits, len(evaluated),
    )
