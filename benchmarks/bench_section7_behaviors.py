"""Section 7: SPF validation behaviours, measured vs the paper.

Covers 7.1 (serial vs parallel lookups), 7.2 (lookup limits, also bench
figure5), and every 7.3 statistic: HELO policy checks, syntax-error
tolerance, void-lookup limits, the illegal MX->A fallback, multiple-record
handling, TCP fallback, IPv6-only retrieval, and the per-mx address-lookup
ceiling.
"""

from benchmarks.conftest import emit
from repro.core import analysis as A


def test_section7_behavior_suite(benchmark, notifymx_world):
    probe = notifymx_world[4]
    stats = benchmark(A.behavior_stats, probe)
    table = A.behavior_table(stats)
    emit("Section 7: behaviour statistics", table.render())

    by_label = {stat.label: stat for stat in stats}

    def within(label, low, high):
        stat = by_label[label]
        assert low <= stat.percent <= high, "%s: %.1f%% outside [%s, %s]" % (
            stat.label, stat.percent, low, high,
        )

    # 7.1: overwhelmingly serial.
    within("serial DNS lookups (t01)", 90.0, 100.0)  # paper: 97%
    # 7.3: HELO checks are rare, and checkers always proceed.
    within("checked HELO policy (t03)", 1.0, 12.0)  # paper: 5.0%
    within("ignored HELO verdict (of checkers)", 99.0, 100.0)
    # 7.3: syntax-error tolerance.
    within("continued past syntax error in main policy (t04)", 1.0, 12.0)  # 5.5%
    within("continued past syntax error in child policy (t05)", 5.0, 22.0)  # 12.3%
    # 7.3: void lookups — near-universal violation.
    within("exceeded two void lookups (t06)", 90.0, 100.0)  # 97%
    within("chased all five void names (t06)", 50.0, 80.0)  # 64%
    # 7.3: illegal MX->A fallback.
    within("illegal A/AAAA fallback after MX (t07)", 6.0, 24.0)  # 14%
    # 7.3: multiple records — most permerror, none follow both.
    within("ignored both duplicate policies (t08)", 65.0, 90.0)  # 77%
    within("followed both duplicate policies (t08)", 0.0, 1.0)  # 0%
    # 7.3: TCP fallback nearly universal.
    within("retried truncated response over TCP (t09)", 95.0, 100.0)
    # 7.3: IPv6 retrieval around half.
    within("retrieved IPv6-only policy (t10)", 35.0, 62.0)  # 49%
    # 7.3: mx address limit — few compliant, most resolve all 20.
    within("stopped at <=10 MX address lookups (t11)", 2.0, 18.0)  # 7.7%
    within("resolved all 20 MX exchanges (t11)", 48.0, 80.0)  # 64%
