"""Section 8 (future work): fingerprinting validator implementations.

The paper proposes using the collective per-policy behaviours to
"classify and even fingerprint an SPF validator implementation, to learn
how many distinct implementations are deployed."  No reference numbers
exist — this bench runs the proposed analysis and sanity-checks its
structure: the fleet clusters into far fewer profiles than MTAs, and the
biggest clusters are the compliant mainstream configurations.
"""

from benchmarks.conftest import emit
from repro.core.fingerprint import fingerprint_fleet


def test_section8_fingerprints(benchmark, notifymx_world):
    probe = notifymx_world[4]
    report = benchmark(fingerprint_fleet, probe)

    text = report.to_table().render()
    text += "\nMTAs fingerprinted: %d; too little signal: %d" % (
        report.total_mtas, len(report.skipped)
    )
    emit("Section 8: validator fingerprints", text)

    assert report.total_mtas > 0
    # Far fewer behaviour profiles than MTAs: fingerprinting compresses.
    assert report.distinct_profiles < report.total_mtas
    # ...but the wild is diverse: more than a handful of profiles exist.
    assert report.distinct_profiles >= 5
    # The dominant profile is serial + within-limits (the compliant
    # mainstream), mirroring every Section 7 majority.
    top_vector, top_size = report.largest(1)[0]
    assert top_vector.feature("lookup_order") == "serial"
    assert top_vector.feature("lookup_limit") == "<=10"
