"""Table 1: ten most prevalent TLDs per data set.

Paper (left / right columns): com 26%/49%, net 13%/6.3%, ru 8.3%, org 17%,
edu 9.0%, ...  The bench regenerates both columns from the generated
universes and checks the headline ordering.
"""

from benchmarks.conftest import emit
from repro.core import analysis as A


def test_table1_tld_distribution(benchmark, notify_world, twoweek_world):
    notify_universe = notify_world[0]
    twoweek_universe = twoweek_world[0]

    table = benchmark(
        A.tld_table, {"NotifyEmail": notify_universe, "TwoWeekMX": twoweek_universe}
    )
    emit("Table 1: TLD distribution", table.render())

    notify_rows = [row for row in table.rows if row[2] == "NotifyEmail"]
    twoweek_rows = [row for row in table.rows if row[2] == "TwoWeekMX"]
    # Shape checks against the paper: com leads both lists; net is second
    # for NotifyEmail and org second for TwoWeekMX.
    assert notify_rows[0][0] == "com"
    assert notify_rows[1][0] == "net"
    assert twoweek_rows[0][0] == "com"
    assert twoweek_rows[1][0] == "org"
    com_share = float(twoweek_rows[0][1].rstrip("%"))
    assert 40.0 < com_share < 58.0  # paper: 49%
