"""Table 2: data sets used for experimentation.

Paper: NotifyEmail 26,695 domains / 17,252 IPv4 / 1,599 IPv6; NotifyMX
26,390 / 26,196 / 2,700; TwoWeekMX 22,548 / 10,666 / 471.  Absolute counts
scale with REPRO_BENCH_SCALE; the shape checks are on the ratios: MTA
addresses below domain counts, and IPv6 a small minority everywhere.
"""

from benchmarks.conftest import SCALE, emit
from repro.core import analysis as A


def test_table2_dataset_counts(benchmark, notify_world, notifymx_world, twoweek_world):
    notify_universe, _, notify_result, _ = notify_world
    mx_universe = notifymx_world[0]
    mx_probe = notifymx_world[4]
    twoweek_universe, _, twoweek_probe = twoweek_world

    def build():
        return [
            A.notify_email_counts(notify_result),
            A.probe_counts("NotifyMX", mx_universe, mx_probe),
            A.probe_counts("TwoWeekMX", twoweek_universe, twoweek_probe),
        ]

    counts = benchmark(build)
    table = A.dataset_table(counts)
    table.notes.append("scale factor %.3f of the paper's population" % SCALE)
    emit("Table 2: data sets", table.render())

    notify, notifymx, twoweek = counts
    for entry in counts:
        assert entry.ipv6 < entry.ipv4  # IPv6 is the minority everywhere
    # Delivery goes to one MTA per domain, so NotifyEmail's address count
    # sits below the domain count, as in the paper.
    assert notify.ipv4 + notify.ipv6 <= notify.domains
    # TwoWeekMX shares MTAs most aggressively (0.49 addresses per domain).
    assert (twoweek.ipv4 + twoweek.ipv6) / twoweek.domains < 0.9
