"""Table 3: ten most prevalent ASes by share of domains.

Paper: NotifyEmail is extremely long-tailed (top AS = Amazon at 2.3%,
10,937 ASes total); TwoWeekMX is provider-concentrated (Google 32%,
Microsoft 20%, 1,795 ASes total).
"""

from benchmarks.conftest import emit
from repro.core import analysis as A


def test_table3_as_distribution(benchmark, notify_world, twoweek_world):
    notify_universe = notify_world[0]
    twoweek_universe = twoweek_world[0]

    table = benchmark(
        A.as_table, {"NotifyEmail": notify_universe, "TwoWeekMX": twoweek_universe}
    )
    emit("Table 3: AS distribution", table.render())

    twoweek_rows = [row for row in table.rows if row[2] == "TwoWeekMX"]
    notify_rows = [row for row in table.rows if row[2] == "NotifyEmail"]
    # Google and Microsoft dominate TwoWeekMX, in that order.
    assert "Google" in twoweek_rows[0][0]
    assert "Microsoft" in twoweek_rows[1][0]
    google_share = float(twoweek_rows[0][1].rstrip("%"))
    assert 24.0 < google_share < 40.0  # paper: 32%
    # NotifyEmail's top AS holds only a few percent of domains.
    top_notify_share = float(notify_rows[0][1].rstrip("%"))
    assert top_notify_share < 8.0  # paper: 2.3%
