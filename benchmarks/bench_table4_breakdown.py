"""Table 4: SPF x DKIM x DMARC validation combinations (NotifyEmail).

Paper: YYY 53%, YY- 24%, --- 17%, Y-- 8.1%, -Y- 5.4%, --Y 0.79%,
Y-Y 0.63%, -YY 0.0%; plus the Section 6.1 partial-validator note
(690 of 22,703 SPF validators = 3.0% fetch the policy but never resolve
its 'a' target).
"""

from benchmarks.conftest import emit
from repro.core import analysis as A


def test_table4_validation_breakdown(benchmark, notify_world):
    _, _, result, analysis = notify_world

    table = benchmark(A.validation_breakdown_table, analysis)
    emit("Table 4: validation breakdown", table.render())

    counts = analysis.combo_counts()
    total = analysis.total
    share = {combo: count / total for combo, count in counts.items()}

    # Ranking shape: full validation first, SPF+DKIM second, nothing third.
    assert share.get((True, True, True), 0) == max(share.values())
    assert share.get((True, True, False), 0) > share.get((False, False, False), 0) / 2
    # Bands around the paper's percentages.
    assert 0.40 < share.get((True, True, True), 0) < 0.65  # 53%
    assert 0.15 < share.get((True, True, False), 0) < 0.32  # 24%
    assert 0.08 < share.get((False, False, False), 0) < 0.25  # 17%
    assert share.get((False, True, True), 0) < 0.01  # 0.0%

    # Partial validators (s6.1): around 3% of SPF validators.
    partial = len(analysis.partial_spf_validators())
    spf_total = len(analysis.validating("spf"))
    assert 0.005 < partial / spf_total < 0.08


def test_partial_validators_rarely_dkim_free(benchmark, notify_world):
    """Paper s6.1: of the 690 partial validators, only 12% relied on SPF
    exclusively (no DKIM query)."""
    _, _, _, analysis = notify_world
    partial = benchmark(analysis.partial_spf_validators)
    if not partial:
        return
    spf_only = {
        domainid
        for domainid in partial
        if not analysis.observations[domainid].dkim
    }
    assert len(spf_only) / len(partial) < 0.5
