"""Table 5: SPF-validating domains and MTAs per experiment (+ deciles).

Paper: NotifyEmail 85% of domains / 81% of MTAs; NotifyMX 51% / 50%;
TwoWeekMX 13% / 14%, with per-decile rates remarkably uniform
(mean 13%, stdev 1.7 for domains).
"""

from benchmarks.conftest import emit
from repro.core import analysis as A


def test_table5_spf_validation(benchmark, notify_world, notifymx_world, twoweek_world):
    notify_universe, _, notify_result, notify_analysis = notify_world
    mx_universe, _, _, mx_analysis, mx_probe = notifymx_world
    twoweek_universe, _, twoweek_probe = twoweek_world

    def build():
        rows = [
            A.notify_email_spf_row(notify_universe, notify_result, notify_analysis),
            A.probe_spf_row("NotifyMX", mx_universe, mx_probe),
            A.probe_spf_row("TwoWeekMX (all)", twoweek_universe, twoweek_probe),
        ]
        rows += A.decile_rows(twoweek_universe, twoweek_probe)
        return rows

    rows = benchmark(build)
    table = A.spf_summary_table(rows)
    mean, stdev = A.decile_consistency(rows[3:])
    table.notes.append(
        "TwoWeekMX decile domain-rate mean %.1f%%, stdev %.1f (paper: 13%%, 1.7)"
        % (mean, stdev)
    )
    emit("Table 5: SPF validation summary", table.render())

    notify, notifymx, twoweek = rows[0], rows[1], rows[2]
    notify_rate = notify.validating_domains / notify.total_domains
    mx_rate = notifymx.validating_domains / notifymx.total_domains
    tw_rate = twoweek.validating_domains / twoweek.total_domains

    # The ordering that carries the paper's Section 6 narrative:
    # NotifyEmail >> NotifyMX >> TwoWeekMX.
    assert notify_rate > mx_rate > tw_rate
    assert 0.75 < notify_rate < 0.95  # paper: 85%
    assert 0.35 < mx_rate < 0.70  # paper: 51%
    assert 0.04 < tw_rate < 0.28  # paper: 13%
    # Decile uniformity: no strong demand gradient.
    assert stdev < 3.5 * max(1.0, mean / 6.0)


def test_section62_consistency(benchmark, notifymx_world):
    """Section 6.2: most cross-experiment inconsistency is NotifyEmail-
    validating domains that stay silent for the probe (95% of cases)."""
    universe, _, _, analysis, probe = notifymx_world
    stats = benchmark(A.consistency_stats, universe, analysis, probe)
    lines = [
        "common domains:           %d" % stats.common_domains,
        "validating in both:       %d" % stats.both_validating,
        "NotifyEmail only:         %d" % stats.notify_only,
        "NotifyMX only:            %d" % stats.probe_only,
        "neither:                  %d" % stats.neither,
    ]
    if stats.inconsistent:
        share = 100.0 * stats.notify_only / stats.inconsistent
        lines.append("notify-only share of inconsistent: %.0f%% (paper: 95%%)" % share)
    emit("Section 6.2: NotifyEmail vs NotifyMX consistency", "\n".join(lines))
    assert stats.notify_only > stats.probe_only


def test_section62_rejections(benchmark, notifymx_world):
    """Section 6.2: 27% of MTAs rejected citing spam, 3% citing a
    blacklist, before DATA."""
    probe = notifymx_world[4]
    stats = benchmark(A.rejection_stats, probe)
    total = stats.total_mtas
    text = (
        "MTAs probed:              %d\n"
        "rejected citing 'spam':   %d (%.1f%%, paper 27%%)\n"
        "rejected citing 'blacklist': %d (%.1f%%, paper 3.0%%)\n"
        "invalid recipient:        %d (%.1f%%, paper 6.4%% in TwoWeekMX)"
        % (
            total,
            stats.spam, 100.0 * stats.spam / total,
            stats.blacklist, 100.0 * stats.blacklist / total,
            stats.invalid_recipient, 100.0 * stats.invalid_recipient / total,
        )
    )
    emit("Section 6.2: early rejections", text)
    assert 0.18 < stats.spam / total < 0.38
    assert stats.blacklist / total < 0.08
