"""Table 6: validation by popular mail providers (NotifyEmail).

Paper: 16 of 19 providers SPF-validate (84%); 13 of 19 run all three
mechanisms (68%); qq.com, 163.com, and att.net show no validation at all.
"""

from benchmarks.conftest import emit
from repro.core import analysis as A


def test_table6_popular_providers(benchmark, notify_world):
    _, _, _, analysis = notify_world
    table = benchmark(A.provider_table, analysis)
    emit("Table 6: popular providers", table.render())

    rows = {row[0]: row[1:] for row in table.rows}
    assert len(rows) == 19
    # The three silent providers of the paper.
    for silent in ("qq.com", "163.com", "att.net"):
        assert rows[silent] == ["-", "-", "-"]
    spf_count = sum(1 for cells in rows.values() if cells[0] == "Y")
    full_count = sum(1 for cells in rows.values() if cells == ["Y", "Y", "Y"])
    assert spf_count == 16  # paper: 16 of 19
    assert full_count == 13  # paper: 13 of 19
    # gmx.de / web.de / daum.net validate SPF+DKIM but not DMARC.
    for trial_mode in ("gmx.de", "web.de", "daum.net"):
        assert rows[trial_mode] == ["Y", "Y", "-"]
