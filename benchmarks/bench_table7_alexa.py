"""Table 7: validation rates by Alexa membership (NotifyEmail).

Paper: SPF 82% -> 88% -> 93%, DKIM 82% -> 84% -> 90%, DMARC 54% -> 67% ->
79% going All -> Top 1M -> Top 1K.  The shape under test is the monotone
gradient: more popular domains validate more.
"""

from benchmarks.conftest import emit
from repro.core import analysis as A


def _rates(universe, analysis, mechanism):
    tiers = {"all": [], "top1m": [], "top1k": []}
    by_id = {domain.domainid: domain for domain in universe.domains}
    validating = analysis.validating(mechanism)
    for domainid in analysis.observations:
        domain = by_id[domainid]
        tiers["all"].append(domainid)
        if domain.alexa_rank is not None:
            tiers["top1m"].append(domainid)
            if domain.alexa_rank <= 1000:
                tiers["top1k"].append(domainid)
    return {
        tier: sum(1 for d in ids if d in validating) / len(ids) if ids else 0.0
        for tier, ids in tiers.items()
    }


def test_table7_alexa_gradient(benchmark, notify_world):
    universe, _, _, analysis = notify_world
    table = benchmark(A.alexa_table, universe, analysis)
    emit("Table 7: Alexa tiers", table.render())

    # DMARC shows the steepest gradient in the paper (54% -> 67% -> 79%).
    dmarc = _rates(universe, analysis, "dmarc")
    assert dmarc["all"] < dmarc["top1m"]
    assert 0.40 < dmarc["all"] < 0.70
    spf = _rates(universe, analysis, "spf")
    assert spf["all"] > 0.72
    # The Top-1K tier is tiny at bench scale (the paper had 87 domains, a
    # 2% universe has ~20, largely the forced popular providers — three of
    # which famously validate nothing).  Only check its gradient when the
    # tier is big enough to mean something.
    top1k_size = sum(
        1 for d in universe.domains
        if d.alexa_rank is not None and d.alexa_rank <= 1000 and d.domainid in analysis.observations
    )
    if top1k_size >= 40:
        assert dmarc["top1m"] <= dmarc["top1k"] + 0.05
        assert spf["top1k"] > 0.85
