"""Throughput bench for the differential trace-conformance checker.

The post-flight pass (:mod:`repro.lint.tracecheck`) runs over the full
campaign query log, so it must stay cheap relative to the campaigns
themselves.  This bench feeds it a synthetic, clean, 100k-entry log
(override with ``REPRO_BENCH_TRACE_ENTRIES``) spanning probe and notify
traffic across thousands of MTA identities, and reports
attributed-queries-checked per second.
"""

import os

import pytest

from benchmarks.conftest import emit
from repro.core.querylog import QueryIndex, attribute_queries_with_stats
from repro.core.synth import SynthConfig
from repro.dns.name import Name
from repro.dns.rdata import RdataType
from repro.dns.server import QueryLogEntry
from repro.lint.tracecheck import check_index

ENTRIES = int(os.environ.get("REPRO_BENCH_TRACE_ENTRIES", "100000"))

CONFIG = SynthConfig()

#: One clean notify walk (7 queries) and one clean probe walk (3 queries)
#: per identity — mirrors the real traffic mix, all inside the footprints.
_NOTIFY_WALK = (
    ("", RdataType.TXT),
    ("l1.", RdataType.TXT),
    ("l2.", RdataType.TXT),
    ("l3.", RdataType.TXT),
    ("mta.", RdataType.A),
    ("_dmarc.", RdataType.TXT),
    ("sel._domainkey.", RdataType.TXT),
)
_PROBE_WALK = (("", RdataType.TXT), ("h.", RdataType.TXT), ("_dmarc.", RdataType.TXT))


def _synthesize_log(total):
    entries = []
    timestamp = 0.0
    identity = 0
    while len(entries) < total:
        identity += 1
        notify_base = "d%05d.%s" % (identity, CONFIG.notify_suffix)
        probe_base = "t01.m%05d.%s" % (identity, CONFIG.probe_suffix)
        for base, walk in ((notify_base, _NOTIFY_WALK), (probe_base, _PROBE_WALK)):
            for prefix, qtype in walk:
                timestamp += 0.01
                entries.append(
                    QueryLogEntry(
                        timestamp, Name(prefix + base), qtype, "udp", "203.0.113.9"
                    )
                )
    return entries[:total]


@pytest.fixture(scope="module")
def synthetic_index():
    attributed, stats = attribute_queries_with_stats(_synthesize_log(ENTRIES), CONFIG)
    return QueryIndex(attributed), stats


def test_bench_tracecheck_throughput(benchmark, synthetic_index):
    index, stats = synthetic_index

    def run():
        return check_index(index, config=CONFIG, stats=stats)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.clean, result.report.render_text()
    assert result.queries_checked == len(index)
    per_second = result.queries_checked / benchmark.stats.stats.mean
    emit(
        "tracecheck: conformance throughput",
        "%d attributed queries over %d pairs checked in %.4fs mean -> %.0f queries/s"
        % (
            result.queries_checked,
            result.pairs_checked,
            benchmark.stats.stats.mean,
            per_second,
        ),
    )
