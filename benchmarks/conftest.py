"""Shared campaign fixtures for the benchmark harness.

Each bench regenerates one of the paper's tables or figures.  The three
campaigns are expensive, so they run once per session and the benches
share their output.  Scale is controlled with ``REPRO_BENCH_SCALE``
(default 0.02 — about 530 NotifyEmail domains and 450 TwoWeekMX domains);
the paper's absolute counts scale linearly, the percentages should not.

Every bench prints its table (run pytest with ``-s`` to see them inline)
and appends it to ``benchmarks/out/report.txt``.  Throughput numbers are
additionally collected via :func:`record_bench` and written once per
session as machine-readable ``benchmarks/out/BENCH_campaign.json`` so CI
can archive and trend them.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.core import analysis as A
from repro.core.campaign import (
    NotifyEmailCampaign,
    ProbeCampaign,
    Testbed,
    apply_reputation_effects,
)
from repro.core.datasets import DatasetSpec, generate_universe

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "2021"))

_OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def notify_world():
    """NotifyEmail universe + campaign output."""
    universe = generate_universe(DatasetSpec.notify_email(scale=SCALE), seed=SEED)
    testbed = Testbed(universe, seed=SEED + 1)
    result = NotifyEmailCampaign(testbed).run()
    analysis = A.analyze_notify(result)
    return universe, testbed, result, analysis


@pytest.fixture(scope="session")
def notifymx_world():
    """The NotifyEmail universe re-probed with soured reputation."""
    universe = generate_universe(DatasetSpec.notify_email(scale=SCALE), seed=SEED)
    testbed = Testbed(universe, seed=SEED + 2)
    notify_result = NotifyEmailCampaign(testbed).run()
    notify_analysis = A.analyze_notify(notify_result)
    apply_reputation_effects(universe, seed=SEED + 3)
    probe_result = ProbeCampaign(testbed, "NotifyMX", start_time=1e7).run()
    return universe, testbed, notify_result, notify_analysis, probe_result


@pytest.fixture(scope="session")
def twoweek_world():
    """TwoWeekMX universe + probe campaign output."""
    universe = generate_universe(DatasetSpec.two_week_mx(scale=SCALE), seed=SEED + 4)
    testbed = Testbed(universe, seed=SEED + 5)
    result = ProbeCampaign(testbed, "TwoWeekMX").run()
    return universe, testbed, result


#: Session-wide collected throughput records (see :func:`record_bench`).
_BENCH_RECORDS: list = []


def record_bench(name: str, ops_per_sec: float, workers: int = 1, **extra) -> None:
    """Collect one machine-readable throughput record.

    Written at session end to ``benchmarks/out/BENCH_campaign.json``:
    one object per record with the bench name, achieved operations per
    second, the worker count that produced it, and any extra fields the
    bench cares to attach (universe scale, item counts, ...).
    """
    record = {"name": name, "ops_per_sec": ops_per_sec, "workers": workers}
    record.update(extra)
    _BENCH_RECORDS.append(record)


def pytest_sessionfinish(session, exitstatus):
    if not _BENCH_RECORDS:
        return
    _OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "scale": SCALE,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "benches": _BENCH_RECORDS,
    }
    path = _OUT_DIR / "BENCH_campaign.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def emit(name: str, text: str) -> None:
    """Print a bench artefact and persist it under benchmarks/out/."""
    banner = "\n%s\n%s\n" % ("#" * 72, name)
    print(banner)
    print(text)
    _OUT_DIR.mkdir(exist_ok=True)
    with open(_OUT_DIR / "report.txt", "a", encoding="utf-8") as handle:
        handle.write(banner + "\n" + text + "\n")
    with open(_OUT_DIR / ("%s.txt" % name.split(":")[0].strip().lower().replace(" ", "_")),
              "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
