#!/usr/bin/env python
"""Audit sender-side email-security deployments (paper Section 8 idea).

The paper suggests a self-service tool "for comprehensively assessing SPF,
DKIM, and DMARC".  This example builds three sender deployments of varying
quality in a simulated world — a textbook one, a sloppy one, and a
dangerous one — and runs the assessor against each.

Run:  python examples/domain_audit.py
"""

from repro.core.assess import assess_domain
from repro.dkim import KeyRecord, generate_keypair
from repro.dns import AuthoritativeServer, Resolver, SoaRecord, TxtRecord, Zone
from repro.dns.rdata import ARecord, MxRecord
from repro.dns.resolver import AuthorityDirectory
from repro.net import Clock, Network, UniformLatency


def build_world():
    network = Network(UniformLatency(seed=4), Clock())
    directory = AuthorityDirectory()
    keypair = generate_keypair(1024, seed=11)
    weak_keypair = generate_keypair(512, seed=12)

    zones = []

    # 1. A textbook deployment.
    good = Zone("textbook.example", soa=SoaRecord("ns1.textbook.example", "h.textbook.example"))
    good.add("textbook.example", TxtRecord("v=spf1 mx ip4:203.0.113.0/28 -all"))
    good.add("textbook.example", MxRecord(10, "mx.textbook.example"))
    good.add("mx.textbook.example", ARecord("203.0.113.1"))
    good.add(
        "mail._domainkey.textbook.example",
        TxtRecord(KeyRecord(public_key_b64=keypair.public.to_base64()).to_text()),
    )
    good.add(
        "_dmarc.textbook.example",
        TxtRecord("v=DMARC1; p=reject; rua=mailto:dmarc@textbook.example"),
    )
    zones.append(good)

    # 2. A sloppy deployment: bloated SPF, weak key, monitor-only DMARC.
    sloppy = Zone("sloppy.example", soa=SoaRecord("ns1.sloppy.example", "h.sloppy.example"))
    includes = " ".join("include:svc%d.sloppy.example" % i for i in range(9))
    sloppy.add("sloppy.example", TxtRecord("v=spf1 %s ptr ~all" % includes))
    for index in range(9):
        sloppy.add("svc%d.sloppy.example" % index, TxtRecord("v=spf1 ip4:198.51.100.%d ?all" % index))
    sloppy.add(
        "mail._domainkey.sloppy.example",
        TxtRecord(KeyRecord(public_key_b64=weak_keypair.public.to_base64()).to_text()),
    )
    sloppy.add("_dmarc.sloppy.example", TxtRecord("v=DMARC1; p=none; pct=25"))
    zones.append(sloppy)

    # 3. A dangerous deployment: +all and nothing else.
    danger = Zone("danger.example", soa=SoaRecord("ns1.danger.example", "h.danger.example"))
    danger.add("danger.example", TxtRecord("v=spf1 include:gone.danger.example +all"))
    zones.append(danger)

    server = AuthoritativeServer(zones)
    server.attach(network, "198.51.100.53")
    for zone in zones:
        directory.register(zone.origin.to_text(omit_final_dot=True), "198.51.100.53")
    return Resolver(network, directory, address4="203.0.113.77")


def main():
    resolver = build_world()
    t = 0.0
    for domain in ("textbook.example", "sloppy.example", "danger.example"):
        assessment, t = assess_domain(resolver, domain, t)
        print(assessment.to_text())
        print()


if __name__ == "__main__":
    main()
