#!/usr/bin/env python
"""A miniature NotifyEmail experiment (paper Sections 4.3.1 and 6.1).

Sends a real, DKIM-signed notification email to every domain in a small
synthetic universe — each from a unique instrumented From-domain — then
reads the SPF/DKIM/DMARC validation behaviour of the receiving MTAs off
the authoritative server's query log and prints Tables 4-7 and Figure 2.

Run:  python examples/notify_email.py [scale]
      (scale defaults to 0.01 — about 270 domains)
"""

import sys
import time

from repro.core import analysis as A
from repro.core.campaign import NotifyEmailCampaign, Testbed
from repro.core.datasets import DatasetSpec, generate_universe
from repro.core.report import render_histogram


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    started = time.time()

    print("Generating a NotifyEmail universe at scale %.3f ..." % scale)
    universe = generate_universe(DatasetSpec.notify_email(scale=scale), seed=1)
    testbed = Testbed(universe, seed=2)

    print("Delivering one signed notification per domain ...")
    result = NotifyEmailCampaign(testbed).run()
    accepted = len(result.accepted)
    print("  %d of %d deliveries accepted with 250" % (accepted, len(result.deliveries)))

    analysis = A.analyze_notify(result)
    print()
    print(A.validation_breakdown_table(analysis).render())
    print()
    print(A.spf_summary_table([A.notify_email_spf_row(universe, result, analysis)]).render())
    print()
    print(A.provider_table(analysis).render())
    print()
    print(A.alexa_table(universe, analysis).render())
    print()
    timing = A.timing_analysis(result)
    print(render_histogram(
        timing.buckets,
        title="Figure 2: t(SPF) - t(delivery) per-domain averages (n=%d)" % timing.domains_used,
    ))
    print("negative: %.0f%% (paper 83%%)   within +/-30 s: %.0f%% (paper 91%%)" % (
        100 * timing.negative_fraction, 100 * timing.within_30s_fraction))

    print("\nDone in %.1f s." % (time.time() - started))


if __name__ == "__main__":
    main()
