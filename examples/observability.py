#!/usr/bin/env python
"""The observability layer, end to end on a miniature campaign.

Runs a small TwoWeekMX probe campaign with the default-on
:mod:`repro.obs` instrumentation, then shows the three things the layer
gives you (see ``OBSERVABILITY.md``):

1. the metrics table — counters, gauges, and histograms every protocol
   layer emitted, all stamped in virtual time;
2. one causal span tree — a single probe conversation traced across
   simulated hosts, from the client's SMTP commands through the
   receiving MTA's SPF check down to individual DNS wire exchanges;
3. the reconciliation verdict — client-side DNS-exchange spans replayed
   through the query-attribution machinery and matched against the
   authoritative server's own log, two independent witnesses agreeing.

Run:  python examples/observability.py [scale]
      (scale defaults to 0.004 — a handful of MTAs, a second or two)
"""

import sys
import time

from repro.core.campaign import ProbeCampaign, Testbed
from repro.core.datasets import DatasetSpec, generate_universe
from repro.obs.export import render_metrics_text
from repro.obs.reconcile import reconcile_spans
from repro.obs.spans import render_tree


def _busiest_conversation(tracer):
    """The probe.conversation span with the most descendants."""
    children = tracer.children_index()

    def weight(span):
        total = 0
        frontier = [span]
        while frontier:
            current = frontier.pop()
            offspring = children.get(current.span_id, [])
            total += len(offspring)
            frontier.extend(offspring)
        return total

    return max(tracer.find("probe.conversation"), key=weight)


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.004
    started = time.time()

    print("Generating a TwoWeekMX universe at scale %.3f ..." % scale)
    universe = generate_universe(DatasetSpec.two_week_mx(scale=scale), seed=7)
    testbed = Testbed(universe, seed=8)  # obs is on by default
    print("Probing every MTA with all 39 test policies ...")
    result = ProbeCampaign(testbed, "TwoWeekMX").run()

    obs = testbed.obs
    print()
    print(render_metrics_text(obs.metrics, header="campaign metrics"))

    print()
    print("One conversation, traced across every layer:")
    print(render_tree(_busiest_conversation(obs.tracer), obs.tracer.finished))

    print()
    verdict = reconcile_spans(obs.tracer.finished, testbed.query_index(), testbed.synth_config)
    print(verdict.render_text())
    print(
        "reconciliation: %d spans vs %d server-logged queries -> %s"
        % (
            sum(verdict.span_counts.values()),
            len(result.index),
            "MATCH" if verdict.matched else "MISMATCH",
        )
    )

    print("\nDone in %.1f s (all SMTP/DNS time was virtual)." % (time.time() - started))


if __name__ == "__main__":
    main()
