#!/usr/bin/env python
"""A miniature TwoWeekMX experiment, end to end.

Generates a small synthetic domain universe (paper Section 4.1), stands up
the synthesizing authoritative DNS server (Section 4.5) and a fleet of
real receiving MTAs, runs the 39-policy SMTP probe against every MTA
(Section 4.6), and prints the SPF-validation summary and behaviour
statistics the paper reports in Sections 6.3 and 7.

Run:  python examples/probe_campaign.py [scale]
      (scale defaults to 0.01 — about 225 domains; 0.05 takes ~15 s)
"""

import sys
import time

from repro.core import analysis as A
from repro.core.campaign import ProbeCampaign, Testbed
from repro.core.datasets import DatasetSpec, generate_universe


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    started = time.time()

    print("Generating a TwoWeekMX universe at scale %.3f ..." % scale)
    universe = generate_universe(DatasetSpec.two_week_mx(scale=scale), seed=7)
    print(
        "  %d domains, %d MTAs (%d IPv4 / %d IPv6), %d providers"
        % (
            len(universe.domains),
            len(universe.mtas),
            len(universe.unique_ipv4),
            len(universe.unique_ipv6),
            len(universe.providers),
        )
    )

    print("Wiring the testbed (synthesizing DNS + one server per MTA) ...")
    testbed = Testbed(universe, seed=8)

    print("Probing every MTA with all 39 test policies ...")
    campaign = ProbeCampaign(testbed, "TwoWeekMX")
    result = campaign.run()
    print(
        "  %d probe conversations, %d attributable DNS queries observed"
        % (len(result.results), len(result.index))
    )

    print()
    rows = [A.probe_spf_row("TwoWeekMX (all)", universe, result)]
    rows += A.decile_rows(universe, result)
    table = A.spf_summary_table(rows)
    mean, stdev = A.decile_consistency(rows[1:])
    table.notes.append("decile domain-rate mean %.1f%%, stdev %.1f (paper: 13%%, 1.7)" % (mean, stdev))
    print(table.render())

    print()
    print(A.behavior_table(A.behavior_stats(result)).render())

    print("\nDone in %.1f s (all SMTP/DNS time was virtual)." % (time.time() - started))


if __name__ == "__main__":
    main()
