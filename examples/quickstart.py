#!/usr/bin/env python
"""Quickstart: evaluate SPF, DKIM, and DMARC for one message.

Builds a miniature Internet — a virtual network, one authoritative DNS
server, one resolver — publishes a sender domain's policies, then checks a
legitimate message and a spoofed one the way a receiving MTA would.

Run:  python examples/quickstart.py
"""

from repro.dkim import DkimSigner, DkimVerifier, KeyRecord, generate_keypair
from repro.dmarc import DmarcEvaluator
from repro.dns import (
    AuthoritativeServer,
    Resolver,
    SoaRecord,
    TxtRecord,
    Zone,
)
from repro.dns.resolver import AuthorityDirectory
from repro.net import Clock, Network, UniformLatency
from repro.smtp import EmailMessage
from repro.spf import SpfEvaluator

LEGIT_IP = "203.0.113.25"
SPOOF_IP = "198.51.100.66"


def build_world():
    """A network with DNS for ``sender.example`` fully configured."""
    network = Network(UniformLatency(seed=1), Clock())
    keypair = generate_keypair(1024, seed=42)

    zone = Zone("sender.example", soa=SoaRecord("ns1.sender.example", "hostmaster.sender.example"))
    zone.add("sender.example", TxtRecord("v=spf1 ip4:%s -all" % LEGIT_IP))
    zone.add(
        "mail._domainkey.sender.example",
        TxtRecord(KeyRecord(public_key_b64=keypair.public.to_base64()).to_text()),
    )
    zone.add("_dmarc.sender.example", TxtRecord("v=DMARC1; p=reject"))

    server = AuthoritativeServer([zone])
    server.attach(network, "198.51.100.53")
    directory = AuthorityDirectory()
    directory.register("sender.example", "198.51.100.53")
    resolver = Resolver(network, directory, address4="192.0.2.10")
    return resolver, keypair


def check_message(resolver, client_ip, message, t):
    """What a validating MTA does on receipt: SPF, DKIM, then DMARC."""
    sender = "alice@sender.example"

    spf = SpfEvaluator(resolver).check_host(client_ip, "sender.example", sender, t_start=t)
    print("  SPF   : %-9s (matched %s, %d DNS lookups, %.0f ms)" % (
        spf.result.value, spf.matched_term, len(spf.lookups), 1000 * spf.elapsed))

    dkim, t = DkimVerifier(resolver).verify(message, spf.t_completed)
    print("  DKIM  : %-9s (d=%s%s)" % (
        dkim.result.value, dkim.domain, ", " + dkim.reason if dkim.reason else ""))

    dmarc, t = DmarcEvaluator(resolver).evaluate(
        "sender.example",
        spf.result.value, "sender.example",
        dkim.result.value, dkim.domain,
        t,
    )
    print("  DMARC : %-9s -> disposition: %s" % (dmarc.result.value, dmarc.disposition.value))
    return t


def main():
    resolver, keypair = build_world()

    message = EmailMessage(
        [
            ("From", "alice@sender.example"),
            ("To", "bob@rcpt.example"),
            ("Subject", "Quarterly report"),
            ("Date", "Mon, 01 Feb 2021 09:00:00 +0000"),
            ("Message-ID", "<q1@sender.example>"),
        ],
        "Please find the report attached.\r\n",
    )
    DkimSigner("sender.example", "mail", keypair.private).sign(message)

    print("Legitimate message from the authorized server (%s):" % LEGIT_IP)
    t = check_message(resolver, LEGIT_IP, message, 0.0)

    print("\nSpoof: same From, unauthorized server (%s), tampered body:" % SPOOF_IP)
    spoof = EmailMessage.from_text(message.to_text().replace("report", "invoice"))
    check_message(resolver, SPOOF_IP, spoof, t)


if __name__ == "__main__":
    main()
