#!/usr/bin/env python
"""SPF validator torture chamber.

Runs the paper's hardest test policies directly against SPF evaluators in
several configurations — RFC-strict, limitless, timeout-bound, parallel —
and prints what each one does.  This is the single-MTA view of what the
Figure 5 / Section 7 experiments measure across the whole fleet.

Run:  python examples/spf_torture.py
"""

from repro.core.policies import t02_query_order
from repro.core.synth import SynthConfig, SynthesizingAuthority
from repro.dns.resolver import AuthorityDirectory, Resolver
from repro.net import Clock, Network, UniformLatency
from repro.spf import SpfConfig, SpfEvaluator

PROBE_IP = "203.0.113.250"


def build_rig():
    network = Network(UniformLatency(0.004, 0.02, seed=3), Clock())
    directory = AuthorityDirectory()
    synth = SynthesizingAuthority(SynthConfig())
    synth.deploy(network, directory)
    return network, directory, synth


def check(evaluator, domain, t=0.0):
    return evaluator.check_host(
        PROBE_IP, domain, "spf-test@%s" % domain, helo="h.%s" % domain, t_start=t
    )


def torture_lookup_limits(network, directory, synth):
    print("=== t02: the 46-lookup policy (800 ms per response) ===")
    print("    (Figure 4 / Figure 5: 61%% obey the 10-lookup limit, 28%% run all 46)\n")
    configs = [
        ("RFC-strict (limit 10)", SpfConfig()),
        ("no limits at all", SpfConfig(max_dns_mechanisms=None)),
        ("no limit, 20 s timeout", SpfConfig(max_dns_mechanisms=None, overall_timeout=20.0)),
    ]
    order = t02_query_order()
    for index, (label, config) in enumerate(configs):
        mtaid = "torture%d" % index
        resolver = Resolver(network, directory, address4="203.0.113.%d" % (10 + index))
        evaluator = SpfEvaluator(resolver, config)
        outcome = check(evaluator, "t02.%s.spf-test.dns-lab.org" % mtaid)
        observed = [q for q in synth.queries_under("%s.spf-test.dns-lab.org" % mtaid)]
        last = max(
            (order.get(str(e.qname).split(".")[0], 0) for e in observed), default=0
        )
        print(
            "  %-24s -> %-9s after %2d post-base queries, %6.1f s elapsed"
            % (label, outcome.result.value, last, outcome.elapsed)
        )
    print()


def torture_serial_parallel(network, directory, synth):
    print("=== t01: serial vs parallel lookups (Section 7.1) ===\n")
    for index, (label, config) in enumerate(
        [("serial (97% of MTAs)", SpfConfig()), ("parallel prefetch (3%)", SpfConfig(parallel_lookups=True))]
    ):
        mtaid = "sp%d" % index
        resolver = Resolver(network, directory, address4="203.0.113.%d" % (30 + index))
        outcome = check(SpfEvaluator(resolver, config), "t01.%s.spf-test.dns-lab.org" % mtaid)
        entries = sorted(
            synth.queries_under("%s.spf-test.dns-lab.org" % mtaid), key=lambda e: e.timestamp
        )
        arrival = " -> ".join(str(e.qname).split(".")[0] or "L0" for e in entries)
        print("  %-24s %s" % (label, arrival))
    print("  (parallel validators hit 'foo' before the chain bottoms out at l3)\n")


def torture_misc(network, directory, synth):
    print("=== assorted Section 7.3 policies ===\n")
    cases = [
        ("t04 syntax error, strict", "t04", SpfConfig()),
        ("t04 syntax error, tolerant", "t04", SpfConfig(tolerant_syntax=True)),
        ("t06 five void lookups, strict", "t06", SpfConfig()),
        ("t06 five void lookups, no limit", "t06", SpfConfig(max_void_lookups=None)),
        ("t08 duplicate records, strict", "t08", SpfConfig()),
        ("t08 duplicate records, follow-first", "t08", SpfConfig(on_multiple_records="first")),
        ("t11 twenty MX targets, strict", "t11", SpfConfig()),
        ("t11 twenty MX targets, no limit", "t11", SpfConfig(max_mx_addresses=None)),
        ("t09 TCP-only child policy", "t09", SpfConfig()),
    ]
    for index, (label, testid, config) in enumerate(cases):
        mtaid = "misc%d" % index
        resolver = Resolver(network, directory, address4="203.0.113.%d" % (50 + index))
        outcome = check(SpfEvaluator(resolver, config), "%s.%s.spf-test.dns-lab.org" % (testid, mtaid))
        queries = len(synth.queries_under("%s.spf-test.dns-lab.org" % mtaid))
        print("  %-36s -> %-9s (%2d queries observed)" % (label, outcome.result.value, queries))
    print()


def main():
    network, directory, synth = build_rig()
    torture_lookup_limits(network, directory, synth)
    torture_serial_parallel(network, directory, synth)
    torture_misc(network, directory, synth)


if __name__ == "__main__":
    main()
