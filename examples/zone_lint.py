#!/usr/bin/env python
"""Statically audit a zone's sender-validation posture (no resolution).

Builds two sender deployments — a textbook one and a booby-trapped one
whose SPF graph hides an include loop, a void-lookup bomb, and a DMARC
record that never protects — and runs the ``repro.lint`` static analyzer
over both.  Nothing is resolved: the analyzer reads the zone data
directly and predicts what an RFC 7208 validator would pay and decide.

Run:  python examples/zone_lint.py
"""

from repro.dns import TxtRecord, Zone
from repro.dns.rdata import ARecord, MxRecord
from repro.lint import audit_zone

# A real (precomputed) 2048-bit RSA public key: the zone audit parses DKIM
# key material, so the textbook zone must publish a decodable, full-strength
# key to stay clean.
KEY_B64 = (
    "MIIBIjANBgkqhkiG9w0BAQEFAAOCAQ8AMIIBCgKCAQEAnxp9ayrpB2GROW0RRHeUiND8"
    "v6fkHr7YQkohvWmSVquKJZaaObY2CcxWVoaxDXwBjgV/5wHkExE5tA+elWlEtI7f8gck"
    "VawSai6mmhqSCjt8aKC11CNM31g+Uao+MFRfnBUhtBBl5RJMcg3m0bPhNfbzueZxMrI/"
    "krAIMUCxMQbXqync971sVv2NY339cP00h0D7EAd2wXeu1w4K8zWpAu+vuOLY+or5Au1u"
    "dPKtBoktxTl+2LoZirQfjb8g1BpvIQOz/RuvVcdLG2bbpZvjPojqJ/un+koY8YPcLQxW"
    "g4mcRzAqGdQIA+aSMPz9bewhHLrIsiasxpOXmFlnkSCm5QIDAQAB"
)


def build_textbook():
    zone = Zone("textbook.example")
    zone.add("textbook.example", TxtRecord("v=spf1 mx ip4:203.0.113.0/28 -all"))
    zone.add("textbook.example", MxRecord(10, "mx.textbook.example"))
    zone.add("mx.textbook.example", ARecord("203.0.113.1"))
    zone.add("mail._domainkey.textbook.example", TxtRecord("v=DKIM1; k=rsa; p=%s" % KEY_B64))
    zone.add("_dmarc.textbook.example", TxtRecord("v=DMARC1; p=reject; rua=mailto:d@textbook.example"))
    return zone


def build_trapped():
    zone = Zone("trapped.example")
    zone.add(
        "trapped.example",
        TxtRecord(
            "v=spf1 include:loop.trapped.example a:gone1.trapped.example "
            "a:gone2.trapped.example a:gone3.trapped.example ?all"
        ),
    )
    # The include re-enters the parent: a validator spins until the
    # 10-lookup limit and returns permerror.
    zone.add("loop.trapped.example", TxtRecord("v=spf1 include:trapped.example ?all"))
    # gone1..gone3 do not exist: three void lookups against a limit of two.
    zone.add("_dmarc.trapped.example", TxtRecord("v=DMARC1; p=none; pct=10"))
    return zone


def main():
    for zone in (build_textbook(), build_trapped()):
        audit = audit_zone(zone)
        print("=" * 64)
        for domain, spf in sorted(audit.spf_audits.items()):
            prediction = spf.prediction
            verdict = prediction.first_abort or "within limits"
            print(
                "%s: %d lookup term(s), %d void(s), %s"
                % (domain, prediction.lookup_terms, prediction.void_lookups, verdict)
            )
        print(audit.report.render_text(header="zone %s:" % audit.origin))
    print("=" * 64)
    trapped = audit_zone(build_trapped())
    print(trapped.report.to_json())


if __name__ == "__main__":
    main()
