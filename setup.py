"""Legacy setup shim.

Kept so that ``pip install -e .`` works in offline environments lacking the
``wheel`` package (pip then falls back to ``setup.py develop`` instead of a
PEP 660 editable wheel).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
