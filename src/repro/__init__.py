"""Reproduction of "Measuring Email Sender Validation in the Wild" (CoNEXT '21).

The package is organised bottom-up:

``repro.net``
    A deterministic, single-threaded virtual network: a virtual clock, a
    latency model, and host/port registries over which the DNS and SMTP
    substrates exchange real wire bytes.

``repro.dns``
    A from-scratch DNS implementation: names, rdata types, a full wire codec
    with name compression, zones, an authoritative server, and a caching
    resolver with UDP-to-TCP truncation fallback.

``repro.smtp``
    An SMTP implementation: reply/command grammar, a server-side session
    state machine, a client, and an RFC 5322-style message model.

``repro.spf`` / ``repro.dkim`` / ``repro.dmarc``
    The three sender-validation mechanisms the paper studies, implemented
    per RFC 7208 / RFC 6376 / RFC 7489, each with configurable deviations
    mirroring the wild behaviours the paper measures.

``repro.mta``
    Receiving and sending mail-transfer agents, plus a fleet generator that
    samples behaviour profiles from the distributions the paper reports.

``repro.core``
    The paper's measurement system itself: the synthesizing authoritative
    DNS server, the SMTP probe, the 39 SPF test policies, the three
    campaigns (NotifyEmail, NotifyMX, TwoWeekMX), and the analyses that
    regenerate every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["net", "dns", "smtp", "spf", "dkim", "dmarc", "mta", "core"]
