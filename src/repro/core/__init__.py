"""The paper's measurement system.

Everything specific to "Measuring Email Sender Validation in the Wild"
lives here: the synthetic domain universes (Section 4.1/4.2), the
synthesizing authoritative DNS server (Section 4.5), the SMTP probe
(Section 4.6), the 39 SPF test policies (Section 4.3.2), the three
campaign runners, and the analyses that regenerate every table and figure.
"""

from repro.core import trace
from repro.core.asmap import AsInfo, AsMap
from repro.core.assess import DomainAssessment, assess_domain, lint_spf_record
from repro.core.compare import PAPER_REFERENCE, Scorecard, build_scorecard
from repro.core.campaign import (
    NotifyEmailCampaign,
    ProbeCampaign,
    Testbed,
)
from repro.core.datasets import (
    DatasetSpec,
    Domain,
    MtaHost,
    Provider,
    Universe,
    generate_universe,
)
from repro.core.fingerprint import BehaviorVector, FingerprintReport, fingerprint_fleet
from repro.core.policies import POLICIES, TestPolicy, policy_by_id
from repro.core.probe import ProbeClient, ProbeResult
from repro.core.querylog import AttributedQuery, QueryIndex, attribute_queries
from repro.core.synth import SynthConfig, SynthesizingAuthority

__all__ = [
    "AsInfo",
    "AsMap",
    "AttributedQuery",
    "BehaviorVector",
    "DatasetSpec",
    "DomainAssessment",
    "FingerprintReport",
    "PAPER_REFERENCE",
    "Scorecard",
    "Domain",
    "MtaHost",
    "NotifyEmailCampaign",
    "POLICIES",
    "ProbeCampaign",
    "ProbeClient",
    "ProbeResult",
    "Provider",
    "QueryIndex",
    "SynthConfig",
    "SynthesizingAuthority",
    "Testbed",
    "TestPolicy",
    "Universe",
    "assess_domain",
    "attribute_queries",
    "build_scorecard",
    "trace",
    "fingerprint_fleet",
    "generate_universe",
    "lint_spf_record",
    "policy_by_id",
]
