"""Analyses regenerating every table and figure of the paper.

Each function consumes campaign outputs (query index, probe results,
delivery records) plus the universe, and returns both structured data and
a printable :class:`~repro.core.report.Table`.  The experiment → function
mapping is in DESIGN.md's experiment index.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.core import classify
from repro.core.campaign import NotifyEmailResult, ProbeCampaignResult
from repro.core.classify import (
    NotifyValidation,
    classify_helo,
    classify_lookup_limit,
    classify_multiple_records,
    classify_notify_domain,
    classify_serial_parallel,
    classify_tcp_fallback,
    count_mx_address_lookups,
    count_void_targets,
    did_mx_fallback,
    first_spf_lookup_time,
    retrieved_over_ipv6,
    spf_validated,
)
from repro.core.datasets import POPULAR_PROVIDERS, Universe
from repro.core.report import Table, pct

# ---------------------------------------------------------------------------
# Table 1: TLD distribution
# ---------------------------------------------------------------------------


def tld_table(universes: Dict[str, Universe], top: int = 10) -> Table:
    table = Table("Table 1: ten most prevalent TLDs per data set", ["TLD", "% Domains", "Data set"])
    for name, universe in universes.items():
        counts = Counter(domain.tld for domain in universe.domains)
        total = len(universe.domains)
        for tld, count in counts.most_common(top):
            table.add(tld, pct(count, total), name)
        table.notes.append("%s: %d distinct TLDs" % (name, len(counts)))
    return table


# ---------------------------------------------------------------------------
# Table 2: data sets
# ---------------------------------------------------------------------------


@dataclass
class DatasetCounts:
    name: str
    domains: int
    ipv4: int
    ipv6: int


def notify_email_counts(result: NotifyEmailResult) -> DatasetCounts:
    """NotifyEmail row: domains mailed; addresses mail was delivered to."""
    v4: Set[str] = set()
    v6: Set[str] = set()
    for delivery in result.deliveries:
        ip = delivery.delivery.mta_ip
        if ip:
            (v6 if ":" in ip else v4).add(ip)
    return DatasetCounts("NotifyEmail", len(result.deliveries), len(v4), len(v6))


def probe_counts(name: str, universe: Universe, result: ProbeCampaignResult) -> DatasetCounts:
    domains = {
        domain.name
        for domain in universe.domains
        if not domain.resolution_failed
        and any(host.mtaid in result.probed for host in domain.mta_hosts)
    }
    v4 = {host.ipv4 for host in result.probed.values() if host.ipv4}
    v6 = {host.ipv6 for host in result.probed.values() if host.ipv6}
    return DatasetCounts(name, len(domains), len(v4), len(v6))


def dataset_table(counts: Sequence[DatasetCounts]) -> Table:
    table = Table("Table 2: data sets used for experimentation", ["Data set", "Domains", "IPv4", "IPv6"])
    for entry in counts:
        table.add(entry.name, entry.domains, entry.ipv4, entry.ipv6)
    return table


# ---------------------------------------------------------------------------
# Table 3: AS distribution
# ---------------------------------------------------------------------------


def as_table(universes: Dict[str, Universe], top: int = 10) -> Table:
    table = Table(
        "Table 3: ten most prevalent ASes by share of domains",
        ["AS", "% Domains", "Data set"],
    )
    for name, universe in universes.items():
        counts: Counter = Counter()
        for domain in universe.domains:
            seen: Set[int] = set()
            for host in domain.mta_hosts:
                info = universe.asmap.lookup(host.ipv4 or host.ipv6)
                if info is not None and info.asn not in seen:
                    seen.add(info.asn)
                    counts["AS%d (%s)" % (info.asn, info.name)] += 1
        total = len(universe.domains)
        for as_label, count in counts.most_common(top):
            table.add(as_label, pct(count, total), name)
        table.notes.append("%s: %d distinct ASes" % (name, len(counts)))
    return table


# ---------------------------------------------------------------------------
# Table 4: SPF x DKIM x DMARC breakdown (NotifyEmail)
# ---------------------------------------------------------------------------


@dataclass
class NotifyAnalysis:
    """Per-domain validation observations for the NotifyEmail experiment."""

    observations: Dict[str, NotifyValidation]
    domainid_to_name: Dict[str, str]

    @property
    def total(self) -> int:
        return len(self.observations)

    def combo_counts(self) -> Counter:
        return Counter(obs.combo for obs in self.observations.values())

    def validating(self, mechanism: str) -> Set[str]:
        attr = {"spf": "spf", "dkim": "dkim", "dmarc": "dmarc"}[mechanism]
        return {
            domainid
            for domainid, obs in self.observations.items()
            if getattr(obs, attr)
        }

    def partial_spf_validators(self) -> Set[str]:
        return {d for d, obs in self.observations.items() if obs.partial_spf}


def analyze_notify(result: NotifyEmailResult) -> NotifyAnalysis:
    observations: Dict[str, NotifyValidation] = {}
    mapping: Dict[str, str] = {}
    for delivery in result.deliveries:
        domainid = delivery.domain.domainid
        mapping[domainid] = delivery.domain.name
        observations[domainid] = classify_notify_domain(
            domainid, result.index.for_mta(domainid)
        )
    return NotifyAnalysis(observations, mapping)


_COMBO_ORDER = [
    (True, True, True),
    (True, True, False),
    (False, False, False),
    (True, False, False),
    (False, True, False),
    (False, False, True),
    (True, False, True),
    (False, True, True),
]


def validation_breakdown_table(analysis: NotifyAnalysis) -> Table:
    table = Table(
        "Table 4: SPF/DKIM/DMARC validation combinations (NotifyEmail domains)",
        ["SPF", "DKIM", "DMARC", "Domains", "%"],
    )
    counts = analysis.combo_counts()
    for combo in _COMBO_ORDER:
        count = counts.get(combo, 0)
        table.add(
            "Y" if combo[0] else "-",
            "Y" if combo[1] else "-",
            "Y" if combo[2] else "-",
            count,
            pct(count, analysis.total),
        )
    partial = len(analysis.partial_spf_validators())
    spf_total = len(analysis.validating("spf"))
    table.notes.append(
        "partial SPF validators (policy fetched, 'a' never resolved): %d of %d SPF validators (%s)"
        % (partial, spf_total, pct(partial, spf_total))
    )
    return table


# ---------------------------------------------------------------------------
# Table 5: SPF-validating domains and MTAs per experiment (+ deciles)
# ---------------------------------------------------------------------------


@dataclass
class SpfSummaryRow:
    label: str
    total_domains: int
    total_mtas: int
    validating_domains: int
    validating_mtas: int


def notify_email_spf_row(
    universe: Universe, result: NotifyEmailResult, analysis: NotifyAnalysis
) -> SpfSummaryRow:
    validating_domains = analysis.validating("spf")
    delivered_ips: Set[str] = set()
    validating_ips: Set[str] = set()
    for delivery in result.deliveries:
        ip = delivery.delivery.mta_ip
        if not ip:
            continue
        delivered_ips.add(ip)
        if delivery.domain.domainid in validating_domains:
            validating_ips.add(ip)
    return SpfSummaryRow(
        "NotifyEmail",
        total_domains=len(result.deliveries),
        total_mtas=len(delivered_ips),
        validating_domains=len(validating_domains),
        validating_mtas=len(validating_ips),
    )


def probe_spf_row(
    label: str, universe: Universe, result: ProbeCampaignResult
) -> SpfSummaryRow:
    observed = result.index.mtas_observed()
    observed &= set(result.probed)
    total_domains = 0
    validating_domains = 0
    for domain in universe.domains:
        hosts = [h for h in domain.mta_hosts if h.mtaid in result.probed]
        if domain.resolution_failed or not hosts:
            continue
        total_domains += 1
        if any(host.mtaid in observed for host in hosts):
            validating_domains += 1
    return SpfSummaryRow(
        label,
        total_domains=total_domains,
        total_mtas=len(result.probed),
        validating_domains=validating_domains,
        validating_mtas=len(observed),
    )


def decile_rows(universe: Universe, result: ProbeCampaignResult) -> List[SpfSummaryRow]:
    """TwoWeekMX deciles by demand, locals excluded (Section 6.3)."""
    observed = result.index.mtas_observed() & set(result.probed)
    domains = [
        domain
        for domain in universe.domains
        if not domain.is_local
        and not domain.resolution_failed
        and any(host.mtaid in result.probed for host in domain.mta_hosts)
    ]
    domains.sort(key=lambda domain: -domain.demand)
    rows: List[SpfSummaryRow] = []
    count = len(domains)
    for decile in range(10):
        start = decile * count // 10
        end = (decile + 1) * count // 10
        chunk = domains[start:end]
        mtas: Set[str] = set()
        validating_domains = 0
        for domain in chunk:
            hosts = {h.mtaid for h in domain.mta_hosts if h.mtaid in result.probed}
            mtas |= hosts
            if hosts & observed:
                validating_domains += 1
        rows.append(
            SpfSummaryRow(
                "Decile %d" % (decile + 1),
                total_domains=len(chunk),
                total_mtas=len(mtas),
                validating_domains=validating_domains,
                validating_mtas=len(mtas & observed),
            )
        )
    return rows


def spf_summary_table(rows: Sequence[SpfSummaryRow]) -> Table:
    table = Table(
        "Table 5: SPF-validating domains and MTAs",
        ["Experiment", "Domains", "MTAs", "Val. domains", "(%)", "Val. MTAs", "(%)"],
    )
    for row in rows:
        table.add(
            row.label,
            row.total_domains,
            row.total_mtas,
            row.validating_domains,
            pct(row.validating_domains, row.total_domains, 0),
            row.validating_mtas,
            pct(row.validating_mtas, row.total_mtas, 0),
        )
    return table


def decile_consistency(rows: Sequence[SpfSummaryRow]) -> Tuple[float, float]:
    """(mean, stdev) of the per-decile domain validation percentage."""
    rates = [100.0 * r.validating_domains / r.total_domains for r in rows if r.total_domains]
    if not rates:
        return 0.0, 0.0
    mean = sum(rates) / len(rates)
    variance = sum((rate - mean) ** 2 for rate in rates) / len(rates)
    return mean, math.sqrt(variance)


# ---------------------------------------------------------------------------
# Table 6: popular providers
# ---------------------------------------------------------------------------


def provider_table(analysis: NotifyAnalysis) -> Table:
    table = Table(
        "Table 6: validation by popular mail providers (NotifyEmail)",
        ["Domain", "SPF", "DKIM", "DMARC"],
    )
    by_name = {name: domainid for domainid, name in analysis.domainid_to_name.items()}
    for provider_name, *_expected in POPULAR_PROVIDERS:
        domainid = by_name.get(provider_name)
        if domainid is None:
            continue
        obs = analysis.observations[domainid]
        table.add(
            provider_name,
            "Y" if obs.spf else "-",
            "Y" if obs.dkim else "-",
            "Y" if obs.dmarc else "-",
        )
    return table


# ---------------------------------------------------------------------------
# Table 7: Alexa tiers
# ---------------------------------------------------------------------------


def alexa_table(universe: Universe, analysis: NotifyAnalysis) -> Table:
    tiers = {
        "All": lambda domain: True,
        "In Alexa Top 1M": lambda domain: domain.alexa_rank is not None,
        "In Alexa Top 1K": lambda domain: domain.alexa_rank is not None and domain.alexa_rank <= 1000,
    }
    name_to_domain = {domain.domainid: domain for domain in universe.domains}
    table = Table(
        "Table 7: validation rates by Alexa membership (NotifyEmail)",
        ["Mechanism", "All", "Top 1M", "Top 1K"],
    )
    membership: Dict[str, List[str]] = {label: [] for label in tiers}
    for domainid in analysis.observations:
        domain = name_to_domain.get(domainid)
        if domain is None:
            continue
        for label, predicate in tiers.items():
            if predicate(domain):
                membership[label].append(domainid)
    table.add("Domains", *[len(membership[label]) for label in tiers])
    for mechanism in ("spf", "dkim", "dmarc"):
        validating = analysis.validating(mechanism)
        cells = []
        for label in tiers:
            ids = membership[label]
            count = sum(1 for domainid in ids if domainid in validating)
            cells.append("%d (%s)" % (count, pct(count, len(ids), 0)))
        table.add("%s-validating" % mechanism.upper(), *cells)
    return table


# ---------------------------------------------------------------------------
# Figure 2: SPF lookup vs delivery timing
# ---------------------------------------------------------------------------

FIGURE2_EDGES = [-30.0, -15.0, 0.0, 15.0, 30.0]
FIGURE2_LABELS = ["<= -30", "-30..-15", "-15..0", "0..15", "15..30", ">= 30"]


@dataclass
class TimingAnalysis:
    buckets: List[Tuple[str, float]]
    negative_fraction: float
    within_30s_fraction: float
    filtered_sub_second: int
    filtered_outliers: int
    domains_used: int


def timing_analysis(result: NotifyEmailResult, outlier_threshold: float = 600.0) -> TimingAnalysis:
    """The Section 6.2 timestamp analysis behind Figure 2.

    Timestamps are quantized to whole seconds (Exim's log granularity) and
    sub-second differences in [0, 1) are excluded, exactly as the paper
    filters them.  Large-magnitude outliers — the paper removed 7 emails
    whose difference spanned days because an earlier (greylisted) delivery
    attempt triggered SPF — are dropped past ``outlier_threshold``.
    """
    per_domain: Dict[str, List[float]] = defaultdict(list)
    filtered = 0
    outliers = 0
    for delivery in result.deliveries:
        if not delivery.delivery.accepted_with_250:
            continue
        t_email = delivery.delivery.t_delivered
        queries = result.index.for_mta(delivery.domain.domainid)
        t_spf = first_spf_lookup_time(queries)
        if t_spf is None or t_email is None:
            continue
        if 0.0 <= t_spf - t_email < 1.0:
            filtered += 1
            continue
        diff = float(int(t_spf) - int(t_email))
        if abs(diff) > outlier_threshold:
            outliers += 1
            continue
        per_domain[delivery.domain.domainid].append(diff)
    averages: List[float] = []
    for domainid, diffs in per_domain.items():
        signs = {diff >= 0 for diff in diffs}
        if len(signs) > 1:
            continue  # inconsistent domains dropped, as in the paper
        averages.append(sum(diffs) / len(diffs))
    counts = [0] * (len(FIGURE2_EDGES) + 1)
    for value in averages:
        index = 0
        while index < len(FIGURE2_EDGES) and value > FIGURE2_EDGES[index]:
            index += 1
        counts[index] += 1
    total = len(averages) or 1
    buckets = [(label, counts[i] / total) for i, label in enumerate(FIGURE2_LABELS)]
    negative = sum(1 for value in averages if value < 0)
    within = sum(1 for value in averages if -30.0 <= value <= 30.0)
    return TimingAnalysis(
        buckets=buckets,
        negative_fraction=negative / total,
        within_30s_fraction=within / total,
        filtered_sub_second=filtered,
        filtered_outliers=outliers,
        domains_used=len(averages),
    )


# ---------------------------------------------------------------------------
# Figure 5: lookup-limit CDF
# ---------------------------------------------------------------------------


@dataclass
class LookupLimitAnalysis:
    observations: List[classify.LookupLimitObservation]
    cdf: List[Tuple[int, float, float]]  # (queries, elapsed_lb, cum_fraction)
    within_limit_fraction: float
    ran_everything_fraction: float

    @property
    def total(self) -> int:
        return len(self.observations)


def lookup_limit_analysis(result: ProbeCampaignResult) -> LookupLimitAnalysis:
    observations = []
    for mtaid in sorted(result.index.mtas_observed("t02")):
        observation = classify_lookup_limit(mtaid, result.index.for_pair(mtaid, "t02"))
        if observation is not None:
            observations.append(observation)
    observations.sort(key=lambda o: o.queries_issued)
    total = len(observations) or 1
    cdf = []
    for index, observation in enumerate(observations):
        cdf.append(
            (observation.queries_issued, observation.elapsed_lower_bound, (index + 1) / total)
        )
    within = sum(1 for o in observations if o.halted_within_limit)
    everything = sum(1 for o in observations if o.ran_everything)
    return LookupLimitAnalysis(
        observations=observations,
        cdf=cdf,
        within_limit_fraction=within / total,
        ran_everything_fraction=everything / total,
    )


# ---------------------------------------------------------------------------
# Section 7 behaviour statistics
# ---------------------------------------------------------------------------


@dataclass
class Stat:
    """One 'X of N (p%)' statistic with its paper reference value."""

    label: str
    numerator: int
    denominator: int
    paper_percent: float

    @property
    def percent(self) -> float:
        if not self.denominator:
            return 0.0
        return 100.0 * self.numerator / self.denominator

    def row(self) -> List[str]:
        return [
            self.label,
            "%d/%d" % (self.numerator, self.denominator),
            "%.1f%%" % self.percent,
            "%.1f%%" % self.paper_percent,
        ]


def behavior_stats(result: ProbeCampaignResult) -> List[Stat]:
    """All Section 7 behaviour statistics from one probe campaign."""
    index = result.index
    stats: List[Stat] = []

    # 7.1 serial vs parallel
    serial = parallel = 0
    for mtaid in index.mtas_observed("t01"):
        observation = classify_serial_parallel(mtaid, index.for_pair(mtaid, "t01"))
        if observation.parallel is True:
            parallel += 1
        elif observation.parallel is False:
            serial += 1
    stats.append(Stat("serial DNS lookups (t01)", serial, serial + parallel, 97.0))

    # 7.2 lookup limits
    limits = lookup_limit_analysis(result)
    stats.append(
        Stat(
            "halted within 10 lookups (t02)",
            sum(1 for o in limits.observations if o.halted_within_limit),
            limits.total,
            61.0,
        )
    )
    stats.append(
        Stat(
            "executed all 46 lookups (t02)",
            sum(1 for o in limits.observations if o.ran_everything),
            limits.total,
            28.0,
        )
    )

    # 7.3 HELO
    checked = proceeded = validators = 0
    for mtaid in index.mtas_observed("t03"):
        observation = classify_helo(mtaid, index.for_pair(mtaid, "t03"))
        validators += 1
        if observation.checked_helo:
            checked += 1
            if observation.proceeded_to_mail_domain:
                proceeded += 1
    stats.append(Stat("checked HELO policy (t03)", checked, validators, 5.0))
    stats.append(Stat("ignored HELO verdict (of checkers)", proceeded, checked, 100.0))

    # 7.3 syntax errors
    for testid, label, paper in (
        ("t04", "continued past syntax error in main policy", 5.5),
        ("t05", "continued past syntax error in child policy", 12.3),
    ):
        validators = continued = 0
        for mtaid in index.mtas_observed(testid):
            queries = index.for_pair(mtaid, testid)
            if not spf_validated(queries):
                continue
            validators += 1
            if classify.continued_past_error(queries):
                continued += 1
        stats.append(Stat("%s (%s)" % (label, testid), continued, validators, paper))

    # 7.3 void lookups
    exceeded = all_five = validators = 0
    for mtaid in index.mtas_observed("t06"):
        count = count_void_targets(index.for_pair(mtaid, "t06"))
        validators += 1
        if count > 2:
            exceeded += 1
        if count == 5:
            all_five += 1
    stats.append(Stat("exceeded two void lookups (t06)", exceeded, validators, 97.0))
    stats.append(Stat("chased all five void names (t06)", all_five, validators, 64.0))

    # 7.3 mx fallback
    fallback = validators = 0
    for mtaid in index.mtas_observed("t07"):
        verdict = did_mx_fallback(index.for_pair(mtaid, "t07"))
        if verdict is None:
            continue
        validators += 1
        if verdict:
            fallback += 1
    stats.append(Stat("illegal A/AAAA fallback after MX (t07)", fallback, validators, 14.0))

    # 7.3 multiple records
    neither = one = both = 0
    for mtaid in index.mtas_observed("t08"):
        observation = classify_multiple_records(mtaid, index.for_pair(mtaid, "t08"))
        category = observation.category
        if category == "neither":
            neither += 1
        elif category == "one":
            one += 1
        else:
            both += 1
    total = neither + one + both
    stats.append(Stat("ignored both duplicate policies (t08)", neither, total, 77.0))
    stats.append(Stat("followed exactly one duplicate policy (t08)", one, total, 23.0))
    stats.append(Stat("followed both duplicate policies (t08)", both, total, 0.0))

    # 7.3 TCP fallback
    tried = fell_back = 0
    for mtaid in index.mtas_observed("t09"):
        observation = classify_tcp_fallback(mtaid, index.for_pair(mtaid, "t09"))
        if observation.tried_udp:
            tried += 1
            if observation.retried_tcp:
                fell_back += 1
    stats.append(Stat("retried truncated response over TCP (t09)", fell_back, tried, 99.9))

    # 7.3 IPv6
    capable = validators = 0
    for mtaid in index.mtas_observed("t10"):
        queries = index.for_pair(mtaid, "t10")
        verdict = retrieved_over_ipv6(queries)
        if verdict is None:
            continue
        validators += 1
        if verdict:
            capable += 1
    stats.append(Stat("retrieved IPv6-only policy (t10)", capable, validators, 49.0))

    # 7.3 MX address limit
    within = all_twenty = validators = 0
    for mtaid in index.mtas_observed("t11"):
        count = count_mx_address_lookups(index.for_pair(mtaid, "t11"))
        if count is None:
            continue
        validators += 1
        if count <= 10:
            within += 1
        if count >= 20:
            all_twenty += 1
    stats.append(Stat("stopped at <=10 MX address lookups (t11)", within, validators, 7.7))
    stats.append(Stat("resolved all 20 MX exchanges (t11)", all_twenty, validators, 64.0))

    return stats


def behavior_table(stats: Sequence[Stat]) -> Table:
    table = Table(
        "Section 7: SPF validation behaviours (measured vs paper)",
        ["Behaviour", "Observed", "Measured", "Paper"],
    )
    for stat in stats:
        table.rows.append(stat.row())
    return table


# ---------------------------------------------------------------------------
# Section 6.2 extras: rejection analysis and cross-experiment consistency
# ---------------------------------------------------------------------------


@dataclass
class RejectionStats:
    total_mtas: int
    spam: int
    blacklist: int
    invalid_recipient: int


def rejection_stats(result: ProbeCampaignResult) -> RejectionStats:
    spam: Set[str] = set()
    blacklist: Set[str] = set()
    invalid: Set[str] = set()
    for probe in result.results:
        word = probe.rejected_mentioning
        if word == "spam":
            spam.add(probe.mtaid)
        elif word == "blacklist":
            blacklist.add(probe.mtaid)
        if probe.invalid_recipient:
            invalid.add(probe.mtaid)
    return RejectionStats(
        total_mtas=len(result.probed),
        spam=len(spam),
        blacklist=len(blacklist - spam),
        invalid_recipient=len(invalid),
    )


@dataclass
class ConsistencyStats:
    """NotifyEmail vs NotifyMX validation overlap (Section 6.2)."""

    common_domains: int
    both_validating: int
    notify_only: int
    probe_only: int
    neither: int

    @property
    def inconsistent(self) -> int:
        return self.notify_only + self.probe_only


def consistency_stats(
    universe: Universe, analysis: NotifyAnalysis, probe_result: ProbeCampaignResult
) -> ConsistencyStats:
    probe_observed = probe_result.index.mtas_observed() & set(probe_result.probed)
    notify_validating = analysis.validating("spf")
    both = notify_only = probe_only = neither = common = 0
    for domain in universe.domains:
        hosts = [h for h in domain.mta_hosts if h.mtaid in probe_result.probed]
        if not hosts or domain.domainid not in analysis.observations:
            continue
        common += 1
        in_notify = domain.domainid in notify_validating
        in_probe = any(host.mtaid in probe_observed for host in hosts)
        if in_notify and in_probe:
            both += 1
        elif in_notify:
            notify_only += 1
        elif in_probe:
            probe_only += 1
        else:
            neither += 1
    return ConsistencyStats(common, both, notify_only, probe_only, neither)
