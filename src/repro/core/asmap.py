"""IP-to-AS mapping.

Plays the role of CAIDA's Routeviews prefix-to-AS dataset (paper Section
4.2): the dataset generator registers every prefix it allocates, and the
analysis code asks which AS announces a given MTA address.  Lookup is
longest-prefix-match over the registered networks.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Dict, Optional, Union

_Network = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]


@dataclass(frozen=True)
class AsInfo:
    """One autonomous system."""

    asn: int
    name: str

    def __str__(self) -> str:
        return "AS%d (%s)" % (self.asn, self.name)


class AsMap:
    """Longest-prefix-match registry of announced prefixes."""

    def __init__(self) -> None:
        self._v4: Dict[str, AsInfo] = {}
        self._v6: Dict[str, AsInfo] = {}

    def announce(self, prefix: str, asn: int, name: str) -> AsInfo:
        """Register ``prefix`` (CIDR text) as announced by ``asn``."""
        network = ipaddress.ip_network(prefix, strict=True)
        info = AsInfo(asn, name)
        table = self._v6 if network.version == 6 else self._v4
        table[str(network)] = info
        return info

    def lookup(self, address: str) -> Optional[AsInfo]:
        """The AS announcing the most specific covering prefix, if any."""
        parsed = ipaddress.ip_address(address)
        if parsed.version == 4:
            table, max_prefix = self._v4, 32
        else:
            table, max_prefix = self._v6, 128
        for prefix_length in range(max_prefix, -1, -1):
            network = ipaddress.ip_network("%s/%d" % (parsed, prefix_length), strict=False)
            info = table.get(str(network))
            if info is not None:
                return info
        return None

    def __len__(self) -> int:
        return len(self._v4) + len(self._v6)
