"""Sender-deployment assessment (the paper's Section 8 suggestion).

    "An idea for strengthening the methodology would be to make a
    Web-based tool available for comprehensively assessing SPF, DKIM, and
    DMARC and invite users with legitimate addresses to try the tool."

This module is that assessor's engine: point it at a domain (through any
resolver in the simulated world) and it audits the *sender side* of the
three mechanisms — record presence, syntax, the RFC 7208 processing
limits a policy will cost its validators, DKIM key health, and DMARC
policy strength — then grades the deployment.

Complementary to the measurement system: campaigns measure *validators*,
the assessor audits *publishers*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dkim.errors import DkimError
from repro.dkim.rsa import RsaPublicKey
from repro.dkim.signature import KeyRecord
from repro.dmarc.record import DmarcPolicy, DmarcRecord, DmarcRecordError, looks_like_dmarc
from repro.dns.rdata import RdataType
from repro.dns.resolver import Resolver
from repro.spf.errors import SpfSyntaxError
from repro.spf.parser import parse_record
from repro.spf.terms import MechanismKind, Qualifier, looks_like_spf


class Severity(enum.IntEnum):
    INFO = 0
    WARNING = 1
    ERROR = 2


@dataclass
class Finding:
    """One audit observation."""

    severity: Severity
    mechanism: str  # "spf" | "dkim" | "dmarc"
    message: str

    def __str__(self) -> str:
        return "[%s] %s: %s" % (self.severity.name, self.mechanism, self.message)


@dataclass
class SpfAudit:
    record: Optional[str] = None
    findings: List[Finding] = field(default_factory=list)
    lookup_terms: int = 0
    resolved_lookups: int = 0
    void_lookups: int = 0
    terminal_qualifier: Optional[str] = None


@dataclass
class DkimAudit:
    selector_records: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    usable_keys: int = 0


@dataclass
class DmarcAudit:
    record: Optional[str] = None
    findings: List[Finding] = field(default_factory=list)
    policy: Optional[DmarcPolicy] = None


@dataclass
class DomainAssessment:
    """The full audit of one sender domain."""

    domain: str
    spf: SpfAudit
    dkim: DkimAudit
    dmarc: DmarcAudit

    @property
    def findings(self) -> List[Finding]:
        return self.spf.findings + self.dkim.findings + self.dmarc.findings

    @property
    def errors(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.severity is Severity.ERROR]

    @property
    def grade(self) -> str:
        """A-F: A = all three deployed cleanly with an enforcing DMARC."""
        has_spf = self.spf.record is not None and not any(
            finding.severity is Severity.ERROR for finding in self.spf.findings
        )
        has_dkim = self.dkim.usable_keys > 0
        has_dmarc = self.dmarc.policy is not None
        enforcing = self.dmarc.policy in (DmarcPolicy.REJECT, DmarcPolicy.QUARANTINE)
        deployed = sum([has_spf, has_dkim, has_dmarc])
        if deployed == 3 and enforcing and not self.errors:
            return "A"
        if deployed == 3:
            return "B"
        if deployed == 2:
            return "C"
        if deployed == 1:
            return "D"
        return "F"

    def to_text(self) -> str:
        lines = ["Assessment for %s — grade %s" % (self.domain, self.grade)]
        lines.append("  SPF   : %s" % (self.spf.record or "(no record)"))
        if self.spf.record:
            lines.append(
                "          %d DNS-lookup terms (static), %d lookups / %d void when resolved"
                % (self.spf.lookup_terms, self.spf.resolved_lookups, self.spf.void_lookups)
            )
        keys = ", ".join(selector for selector, record in self.dkim.selector_records if record)
        lines.append("  DKIM  : %s" % (keys or "(no keys found)"))
        lines.append("  DMARC : %s" % (self.dmarc.record or "(no record)"))
        for finding in self.findings:
            lines.append("  %s" % finding)
        return "\n".join(lines)


#: Selectors the assessor tries when the caller does not supply any —
#: the usual suspects across large mail platforms.
DEFAULT_SELECTORS = ("default", "mail", "selector1", "selector2", "sel", "s1", "dkim", "google", "k1")


def lint_spf_record(text: str) -> Tuple[List[Finding], int, Optional[str]]:
    """Static analysis of one SPF record.

    Returns (findings, dns-lookup-term count, terminal qualifier).
    """
    findings: List[Finding] = []
    try:
        record = parse_record(text, tolerant=True)
    except SpfSyntaxError as exc:
        return [Finding(Severity.ERROR, "spf", "unparseable record: %s" % exc)], 0, None

    for invalid in record.invalid_terms:
        findings.append(
            Finding(Severity.ERROR, "spf", "syntax error in term %r (%s)" % (invalid.text, invalid.reason))
        )

    lookup_terms = sum(
        1 for term in record.directives if term.mechanism.kind.consumes_dns_lookup
    )
    if record.modifier("redirect") is not None:
        lookup_terms += 1
    if lookup_terms > 10:
        findings.append(
            Finding(
                Severity.ERROR,
                "spf",
                "%d DNS-lookup terms; RFC 7208 caps evaluation at 10 (permerror)" % lookup_terms,
            )
        )
    elif lookup_terms > 7:
        findings.append(
            Finding(
                Severity.WARNING,
                "spf",
                "%d DNS-lookup terms; nested includes can push past the limit of 10" % lookup_terms,
            )
        )

    terminal: Optional[str] = None
    directives = record.directives
    for index, directive in enumerate(directives):
        kind = directive.mechanism.kind
        if kind is MechanismKind.PTR:
            findings.append(
                Finding(Severity.WARNING, "spf", "'ptr' is slow and unreliable; RFC 7208 says do not use")
            )
        if kind is MechanismKind.ALL:
            terminal = directive.qualifier.value
            if directive.qualifier is Qualifier.PASS:
                findings.append(
                    Finding(Severity.ERROR, "spf", "'+all' authorizes the entire Internet")
                )
            if index != len(directives) - 1:
                findings.append(
                    Finding(Severity.WARNING, "spf", "mechanisms after 'all' are never evaluated")
                )
    if terminal is None and record.modifier("redirect") is None:
        findings.append(
            Finding(
                Severity.WARNING,
                "spf",
                "no terminal 'all' or redirect=; unmatched senders default to neutral",
            )
        )
    if record.modifier("redirect") is not None and terminal is not None:
        findings.append(
            Finding(Severity.WARNING, "spf", "redirect= is ignored when 'all' is present")
        )
    return findings, lookup_terms, terminal


def assess_domain(
    resolver: Resolver,
    domain: str,
    t: float = 0.0,
    selectors: Tuple[str, ...] = DEFAULT_SELECTORS,
) -> Tuple[DomainAssessment, float]:
    """Audit ``domain``'s sender-side deployment through ``resolver``."""
    spf, t = _assess_spf(resolver, domain, t)
    dkim, t = _assess_dkim(resolver, domain, selectors, t)
    dmarc, t = _assess_dmarc(resolver, domain, t)
    return DomainAssessment(domain=domain, spf=spf, dkim=dkim, dmarc=dmarc), t


def _assess_spf(resolver: Resolver, domain: str, t: float) -> Tuple[SpfAudit, float]:
    audit = SpfAudit()
    answer, t = resolver.query_at(domain, RdataType.TXT, t)
    if answer.status.is_error:
        audit.findings.append(Finding(Severity.ERROR, "spf", "TXT lookup failed (%s)" % answer.status.value))
        return audit, t
    spf_texts = [text for text in answer.texts() if looks_like_spf(text)]
    if not spf_texts:
        audit.findings.append(Finding(Severity.ERROR, "spf", "no SPF record published"))
        return audit, t
    if len(spf_texts) > 1:
        audit.findings.append(
            Finding(Severity.ERROR, "spf", "%d SPF records published; validators must permerror" % len(spf_texts))
        )
    audit.record = spf_texts[0]
    findings, lookup_terms, terminal = lint_spf_record(audit.record)
    audit.findings.extend(findings)
    audit.lookup_terms = lookup_terms
    audit.terminal_qualifier = terminal
    if terminal == "?":
        audit.findings.append(
            Finding(Severity.WARNING, "spf", "terminal '?all' asserts nothing; spoofed mail is neutral")
        )

    # Dynamic pass: resolve the record's lookup terms and count voids —
    # the costs a validator will actually pay.
    try:
        record = parse_record(audit.record, tolerant=True)
    except SpfSyntaxError:
        return audit, t
    for term in record.directives:
        mechanism = term.mechanism
        if not mechanism.kind.consumes_dns_lookup or mechanism.domain_spec is None:
            continue
        if "%" in mechanism.domain_spec:
            continue  # macros depend on the message; skip statically
        rdtype = {
            MechanismKind.MX: RdataType.MX,
            MechanismKind.INCLUDE: RdataType.TXT,
        }.get(mechanism.kind, RdataType.A)
        child, t = resolver.query_at(mechanism.domain_spec, rdtype, t)
        audit.resolved_lookups += 1
        if child.status.is_void:
            audit.void_lookups += 1
            audit.findings.append(
                Finding(
                    Severity.WARNING,
                    "spf",
                    "%s target %s does not resolve (void lookup)"
                    % (mechanism.kind.value, mechanism.domain_spec),
                )
            )
        if mechanism.kind is MechanismKind.INCLUDE and child.status.value == "success":
            child_spf = [text for text in child.texts() if looks_like_spf(text)]
            if not child_spf:
                audit.findings.append(
                    Finding(
                        Severity.ERROR,
                        "spf",
                        "include:%s has no SPF record; evaluation permerrors" % mechanism.domain_spec,
                    )
                )
    if audit.void_lookups > 2:
        audit.findings.append(
            Finding(
                Severity.ERROR,
                "spf",
                "%d void lookups; RFC 7208 permits two" % audit.void_lookups,
            )
        )
    return audit, t


def _assess_dkim(
    resolver: Resolver, domain: str, selectors: Tuple[str, ...], t: float
) -> Tuple[DkimAudit, float]:
    audit = DkimAudit()
    for selector in selectors:
        qname = "%s._domainkey.%s" % (selector, domain)
        answer, t = resolver.query_at(qname, RdataType.TXT, t)
        texts = answer.texts()
        if not texts:
            audit.selector_records.append((selector, None))
            continue
        audit.selector_records.append((selector, texts[0]))
        try:
            key_record = KeyRecord.from_text(texts[0])
            if key_record.revoked:
                audit.findings.append(
                    Finding(Severity.WARNING, "dkim", "selector %r key is revoked (p=)" % selector)
                )
                continue
            public_key = RsaPublicKey.from_base64(key_record.public_key_b64)
        except DkimError as exc:
            audit.findings.append(
                Finding(Severity.ERROR, "dkim", "selector %r key unusable: %s" % (selector, exc))
            )
            continue
        audit.usable_keys += 1
        bits = public_key.n.bit_length()
        if bits < 1024:
            audit.findings.append(
                Finding(Severity.ERROR, "dkim", "selector %r key only %d bits" % (selector, bits))
            )
        elif bits < 2048:
            audit.findings.append(
                Finding(
                    Severity.INFO,
                    "dkim",
                    "selector %r key is %d bits; 2048 recommended" % (selector, bits),
                )
            )
    if audit.usable_keys == 0:
        audit.findings.append(
            Finding(Severity.ERROR, "dkim", "no usable DKIM key found under any common selector")
        )
    return audit, t


def _assess_dmarc(resolver: Resolver, domain: str, t: float) -> Tuple[DmarcAudit, float]:
    audit = DmarcAudit()
    answer, t = resolver.query_at("_dmarc.%s" % domain, RdataType.TXT, t)
    texts = [text for text in answer.texts() if looks_like_dmarc(text)]
    if not texts:
        audit.findings.append(Finding(Severity.ERROR, "dmarc", "no DMARC record published"))
        return audit, t
    if len(texts) > 1:
        audit.findings.append(Finding(Severity.ERROR, "dmarc", "multiple DMARC records"))
        return audit, t
    audit.record = texts[0]
    try:
        record = DmarcRecord.from_text(texts[0])
    except DmarcRecordError as exc:
        audit.findings.append(Finding(Severity.ERROR, "dmarc", "unparseable record: %s" % exc))
        return audit, t
    audit.policy = record.policy
    if record.policy is DmarcPolicy.NONE:
        audit.findings.append(
            Finding(Severity.WARNING, "dmarc", "p=none monitors but never protects")
        )
    if record.percent < 100:
        audit.findings.append(
            Finding(Severity.WARNING, "dmarc", "pct=%d leaves some spoofed mail unfiltered" % record.percent)
        )
    if not record.rua:
        audit.findings.append(
            Finding(Severity.INFO, "dmarc", "no rua= aggregate-report address; you fly blind")
        )
    return audit, t
