"""Campaign runners: the paper's three experiments, end to end.

A :class:`Testbed` stands up the whole world: the virtual network, the
synthesizing authoritative server and its suffix delegations, DNS for the
generated domain universe, and one real :class:`~repro.mta.receiver.
ReceivingMta` per MTA host.  On top of it:

* :class:`NotifyEmailCampaign` sends a legitimate, DKIM-signed
  notification email to every domain (Section 4.3.1 / 6.1);
* :class:`ProbeCampaign` runs the Section 4.6 probe against every MTA for
  every test policy — used for both NotifyMX and TwoWeekMX.

Both campaigns leave their evidence in the synthesizing server's query
log; analyses never look inside the MTAs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Collection, Dict, List, Optional, Sequence, Tuple

from repro.core.datasets import Domain, MtaHost, Universe, stable_hash64
from repro.core.policies import POLICIES, policy_by_id
from repro.core.preflight import preflight_policies
from repro.core.probe import ProbeClient, ProbeResult
from repro.core.querylog import AttributedQuery, QueryIndex, attribute_queries
from repro.core.synth import SynthConfig, SynthesizingAuthority
from repro.dkim.rsa import RsaKeyPair, generate_keypair
from repro.dkim.sign import DkimSigner
from repro.dns.rdata import AAAARecord, ARecord, MxRecord, PtrRecord, SoaRecord
from repro.dns.resolver import AuthorityDirectory
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.mta.receiver import ReceivingMta
from repro.mta.sender import DeliveryRecord, SendingMta
from repro.net.clock import Clock
from repro.net.faults import FaultPlan
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.obs import Observability
from repro.smtp.message import EmailMessage

SENDER_IPV4 = "203.0.113.250"
SENDER_IPV6 = "2001:db8:fe::250"
UNIVERSE_DNS_IP = "198.51.100.99"


def apply_reputation_effects(
    universe: Universe,
    seed: int = 0,
    p_spam: float = 0.27,
    p_blacklist: float = 0.03,
) -> None:
    """Sour the probe's sender reputation (Section 6.2).

    The NotifyMX experiment ran nine months after NotifyEmail, by which
    time the measurement address had landed on DNSBLs: 27% of MTAs
    rejected citing spam and 3% citing a blacklist.  Apply this to a
    universe *before* building the Testbed for a NotifyMX-style campaign.
    """
    rng = random.Random(seed)
    for host in universe.mtas:
        roll = rng.random()
        if roll < p_spam:
            host.behavior.blacklist_rejection = "spam"
        elif roll < p_spam + p_blacklist:
            host.behavior.blacklist_rejection = "blacklist"


def make_synth_config(seed: int) -> Tuple[RsaKeyPair, SynthConfig]:
    """The (keypair, synthesizing-server config) a :class:`Testbed` with
    ``seed`` would build.  Exposed so the shard-merge layer
    (:mod:`repro.core.parallel`) can attribute worker query logs without
    standing up a coordinator-side testbed of its own."""
    keypair = generate_keypair(1024, seed=seed + 4242)
    config = SynthConfig(
        probe_ipv4=SENDER_IPV4,
        probe_ipv6=SENDER_IPV6,
        sender_ips=(SENDER_IPV4, SENDER_IPV6),
        dkim_key_b64=keypair.public.to_base64(),
    )
    return keypair, config


class Testbed:
    """A fully wired simulated Internet for one universe.

    ``mta_filter`` restricts which MTA hosts get a deployed
    :class:`~repro.mta.receiver.ReceivingMta` — shard workers pass their
    shard's mtaid set so a K-way parallel run does not pay K full fleet
    deployments.  DNS (the synthesizing server and the universe zone) is
    always deployed in full: zone data is cheap, stateless, and identical
    in every shard.
    """

    __test__ = False  # not a pytest test class, despite the name

    def __init__(
        self,
        universe: Universe,
        seed: int = 0,
        obs: Optional[Observability] = None,
        mta_filter: Optional[Collection[str]] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.universe = universe
        self.seed = seed
        # Observability is on by default: one shared bundle per world so
        # spans nest across layers.  Pass ``repro.obs.NULL_OBS`` to opt out.
        self.obs = obs if obs is not None else Observability()
        # One fault plan per world, threaded everywhere a fault can be
        # injected; ``None`` keeps every layer on its no-op path.
        self.faults = faults
        if faults is not None:
            faults.attach_obs(self.obs)
        self.clock = Clock()
        self.network = Network(UniformLatency(0.004, 0.045, seed=seed), self.clock, faults=faults)
        self.directory = AuthorityDirectory()
        self.keypair, self.synth_config = make_synth_config(seed)
        self.synth = SynthesizingAuthority(self.synth_config, obs=self.obs, faults=faults)
        self.synth.deploy(self.network, self.directory)
        self.receivers: Dict[str, ReceivingMta] = {}
        self._mta_filter = frozenset(mta_filter) if mta_filter is not None else None
        self._deploy_universe_dns()
        self._deploy_receivers()

    # -- world building -------------------------------------------------

    def _deploy_universe_dns(self) -> None:
        """One catch-all zone serving MX/A/AAAA for the whole universe,
        plus the probe host's reverse records (for ptr test policies)."""
        zone = Zone("", soa=SoaRecord("ns1.universe.test", "hostmaster.universe.test"))
        for domain in self.universe.domains:
            for index, host in enumerate(domain.mta_hosts):
                zone.add(domain.name, MxRecord(10 * (index + 1), host.hostname))
        for host in self.universe.mtas:
            if host.ipv4:
                zone.add(host.hostname, ARecord(host.ipv4))
            if host.ipv6:
                zone.add(host.hostname, AAAARecord(host.ipv6))
        # Reverse DNS for the probe/sender host.
        import ipaddress

        for address in (SENDER_IPV4, SENDER_IPV6):
            pointer = ipaddress.ip_address(address).reverse_pointer
            zone.add(pointer, PtrRecord("probe.dns-lab.org"))
        zone.add("probe.dns-lab.org", ARecord(SENDER_IPV4))
        zone.add("probe.dns-lab.org", AAAARecord(SENDER_IPV6))
        self.universe_zone = zone
        server = AuthoritativeServer([zone], obs=self.obs, faults=self.faults)
        server.attach(self.network, UNIVERSE_DNS_IP)
        self.universe_dns = server
        # Root registration: the fallback for everything that is not one
        # of the measurement suffixes.
        self.directory.register("", UNIVERSE_DNS_IP)

    def _deploy_receivers(self) -> None:
        for host in self.universe.mtas:
            if self._mta_filter is not None and host.mtaid not in self._mta_filter:
                continue
            receiver = ReceivingMta(
                host.hostname,
                self.network,
                self.directory,
                behavior=host.behavior,
                ipv4=host.ipv4,
                ipv6=host.ipv6,
                obs=self.obs,
            )
            receiver.attach()
            self.receivers[host.mtaid] = receiver

    # -- log access ------------------------------------------------------

    def attributed_queries(self) -> List[AttributedQuery]:
        return attribute_queries(self.synth.query_log, self.synth_config)

    def query_index(self) -> QueryIndex:
        return QueryIndex(self.attributed_queries())


# -- schedules ------------------------------------------------------------
#
# A campaign is two separable things: a deterministic *schedule* (who is
# contacted, when, in what order) and its *execution*.  Schedules are pure
# functions of (universe, campaign parameters) — no testbed, no RNG state
# left behind — so a shard worker can recompute the coordinator's schedule
# bit-for-bit and execute just its own slice (repro.core.parallel), while
# the serial path executes the whole thing.  Per-item start times are
# explicit: item i never inherits timing from item i-1.


@dataclass(frozen=True)
class NotifyTask:
    """One scheduled NotifyEmail delivery."""

    domain: Domain
    start_time: float


@dataclass(frozen=True)
class ProbeTask:
    """One scheduled probe conversation series (one MTA, all testids)."""

    host: MtaHost
    rcpt_domain: str
    start_time: float
    order: Tuple[str, ...]  # testids, in probing order


def notify_schedule(
    domains: Sequence[Domain], spacing: float = 2.0, start_time: float = 0.0
) -> List[NotifyTask]:
    """One delivery per domain, ``spacing`` seconds apart."""
    return [
        NotifyTask(domain, start_time + position * spacing)
        for position, domain in enumerate(domains)
    ]


def eligible_probe_mtas(universe: Universe) -> List[Tuple[MtaHost, str]]:
    """(host, recipient_domain) pairs: every MTA with a usable address,
    paired with one of the domains that designates it (Section 5.2).
    Sorted by mtaid so downstream shuffles and ``limit_mtas`` slices are
    reproducible whatever the dict/hash order of the universe."""
    recipient: Dict[str, str] = {}
    for domain in universe.domains:
        if domain.resolution_failed:
            continue
        for host in domain.mta_hosts:
            recipient.setdefault(host.mtaid, domain.name)
    pairs = []
    for host in universe.mtas:
        if host.mtaid in recipient and (host.ipv4 or host.ipv6):
            pairs.append((host, recipient[host.mtaid]))
    pairs.sort(key=lambda pair: pair[0].mtaid)
    return pairs


def probe_schedule(
    universe: Universe,
    testids: Sequence[str],
    seed: int = 0,
    stagger: float = 1.0,
    start_time: float = 0.0,
    limit_mtas: Optional[int] = None,
) -> List[ProbeTask]:
    """The probe campaign's full schedule.

    The MTA order is one seeded shuffle over the (sorted) eligible pairs
    — Section 5.2's decorrelation of same-domain MTAs — sliced *after*
    shuffling when ``limit_mtas`` is given.  Each MTA's per-policy order
    comes from its own RNG, derived from ``(seed, mtaid)`` via a stable
    hash: sequential draws from one shared stream would make an MTA's
    order depend on every MTA scheduled before it, which is exactly what
    a sharded run cannot reproduce.
    """
    rng = random.Random(seed)
    pairs = eligible_probe_mtas(universe)
    rng.shuffle(pairs)
    if limit_mtas is not None:
        pairs = pairs[:limit_mtas]
    tasks = []
    for position, (host, rcpt_domain) in enumerate(pairs):
        order = list(testids)
        random.Random(stable_hash64("%d|%s" % (seed, host.mtaid))).shuffle(order)
        tasks.append(
            ProbeTask(host, rcpt_domain, start_time + position * stagger, tuple(order))
        )
    return tasks


@dataclass
class NotifyDelivery:
    """One NotifyEmail delivery and its identifiers."""

    domain: Domain
    from_domain: str
    delivery: DeliveryRecord


@dataclass
class NotifyEmailResult:
    deliveries: List[NotifyDelivery]
    index: QueryIndex

    @property
    def accepted(self) -> List[NotifyDelivery]:
        return [d for d in self.deliveries if d.delivery.accepted_with_250]


class NotifyEmailCampaign:
    """Sends one legitimate signed notification per domain (Section 6.1)."""

    def __init__(self, testbed: Testbed, spacing: float = 2.0, start_time: float = 0.0) -> None:
        self.testbed = testbed
        self.spacing = spacing
        self.start_time = start_time

    def _message(self, from_address: str, to_address: str, t: float) -> EmailMessage:
        return EmailMessage(
            [
                ("From", from_address),
                ("To", to_address),
                # The Reply-To contact of Section 5.3.
                ("Reply-To", "research@dns-lab.org"),
                ("Subject", "Notification: source address validation issue in your network"),
                ("Date", "Thu, 01 Oct 2020 12:%02d:%02d +0000" % (int(t) // 60 % 60, int(t) % 60)),
                ("Message-ID", "<%d.%s>" % (int(t * 1000), from_address.split("@")[1])),
            ],
            "Dear network operator,\r\n\r\n"
            "During a recent measurement study we observed that your network\r\n"
            "does not enforce destination-side source address validation.\r\n"
            "Details and remediation guidance: https://dns-lab.org/dsav\r\n\r\n"
            "To opt out of future notifications, reply to this message.\r\n",
        )

    def schedule(self, domains: Optional[Sequence[Domain]] = None) -> List[NotifyTask]:
        """The campaign's full schedule: one task per domain."""
        if domains is None:
            domains = self.testbed.universe.domains
        return notify_schedule(domains, spacing=self.spacing, start_time=self.start_time)

    def run(
        self,
        domains: Optional[Sequence[Domain]] = None,
        schedule: Optional[Sequence[NotifyTask]] = None,
    ) -> NotifyEmailResult:
        """Execute ``schedule`` (default: the full schedule over
        ``domains``).  Shard workers pass their slice of the coordinator's
        schedule; start times ride along, so a task runs at the same
        virtual instant whichever process executes it."""
        testbed = self.testbed
        tasks = schedule if schedule is not None else self.schedule(domains)
        deliveries: List[NotifyDelivery] = []
        obs = testbed.obs
        t_last = self.start_time
        with obs.tracer.span("campaign.run", self.start_time, campaign="notifyemail") as span:
            for task in tasks:
                domain, t = task.domain, task.start_time
                from_domain = "%s.%s" % (domain.domainid, testbed.synth_config.notify_suffix)
                sender = SendingMta(
                    "probe.dns-lab.org",
                    testbed.network,
                    testbed.directory,
                    ipv4=SENDER_IPV4,
                    ipv6=SENDER_IPV6,
                    signer=DkimSigner(from_domain, "sel", testbed.keypair.private),
                    obs=obs,
                )
                from_address = "spf-test@%s" % from_domain
                to_address = "operator@%s" % domain.name
                message = self._message(from_address, to_address, t)
                record, t_done = sender.send(message, from_address, to_address, t)
                deliveries.append(NotifyDelivery(domain, from_domain, record))
                obs.metrics.counter(
                    "campaign_deliveries_total",
                    (
                        ("campaign", "notifyemail"),
                        ("outcome", "accepted" if record.accepted_with_250 else "other"),
                    ),
                    t=t_done,
                )
                t_last = max(t_last, t_done)
            span.set(domains=len(deliveries))
            span.end(t_last)
        obs.metrics.gauge("campaign_domains", len(deliveries), (("campaign", "notifyemail"),))
        return NotifyEmailResult(deliveries, testbed.query_index())


@dataclass
class ProbeCampaignResult:
    name: str
    results: List[ProbeResult]
    index: QueryIndex
    #: mtaid -> MtaHost actually probed.
    probed: Dict[str, MtaHost] = field(default_factory=dict)
    #: mtaid -> recipient domain used.
    recipient_domain: Dict[str, str] = field(default_factory=dict)

    def results_for(self, mtaid: str) -> List[ProbeResult]:
        return [r for r in self.results if r.mtaid == mtaid]


class ProbeCampaign:
    """Runs the 39-policy probe against every MTA (Sections 6.2, 6.3)."""

    def __init__(
        self,
        testbed: Testbed,
        name: str,
        testids: Optional[Sequence[str]] = None,
        sleep_seconds: float = 15.0,
        stagger: float = 1.0,
        start_time: float = 0.0,
        seed: int = 0,
        preflight: bool = True,
    ) -> None:
        self.testbed = testbed
        self.name = name
        self.testids = list(testids) if testids is not None else [p.testid for p in POLICIES]
        self.stagger = stagger
        self.start_time = start_time
        self.seed = seed
        # Static pre-flight: audit every selected policy's SPF graph before
        # probing anything.  Purely offline — it reads the policies' record
        # maps through repro.lint, issues zero simulated DNS queries, and
        # therefore cannot perturb the query log the analyses are built on.
        # Pathological findings are the point of the policies; only a policy
        # publishing no SPF record at all aborts (PreflightError).
        self.preflight_audits = (
            preflight_policies(policy_by_id(testid) for testid in self.testids)
            if preflight
            else {}
        )
        self.probe = ProbeClient(
            testbed.network, testbed.synth_config, sleep_seconds=sleep_seconds, obs=testbed.obs
        )

    def eligible_mtas(self) -> List[Tuple[MtaHost, str]]:
        """See :func:`eligible_probe_mtas` (sorted by mtaid)."""
        return eligible_probe_mtas(self.testbed.universe)

    def schedule(self, limit_mtas: Optional[int] = None) -> List[ProbeTask]:
        """The campaign's full schedule (see :func:`probe_schedule`)."""
        return probe_schedule(
            self.testbed.universe,
            self.testids,
            seed=self.seed,
            stagger=self.stagger,
            start_time=self.start_time,
            limit_mtas=limit_mtas,
        )

    def run(
        self,
        limit_mtas: Optional[int] = None,
        schedule: Optional[Sequence[ProbeTask]] = None,
    ) -> ProbeCampaignResult:
        """Execute ``schedule`` (default: the full schedule, optionally
        limited to the first ``limit_mtas`` shuffled MTAs).  Each task
        carries its own start time and per-policy order, so a shard
        worker executing a slice reproduces the serial timing exactly."""
        tasks = schedule if schedule is not None else self.schedule(limit_mtas)
        results: List[ProbeResult] = []
        probed: Dict[str, MtaHost] = {}
        recipients: Dict[str, str] = {}
        obs = self.testbed.obs
        t_last = self.start_time
        with obs.tracer.span("campaign.run", self.start_time, campaign=self.name) as span:
            for task in tasks:
                host = task.host
                probed[host.mtaid] = host
                recipients[host.mtaid] = task.rcpt_domain
                address = host.ipv4 or host.ipv6
                t = task.start_time
                for testid in task.order:
                    result, t = self.probe.probe(address, host.mtaid, testid, task.rcpt_domain, t)
                    results.append(result)
                    obs.metrics.counter(
                        "campaign_probes_total", (("campaign", self.name),), t=t
                    )
                    t += self.probe.sleep_seconds
                t_last = max(t_last, t)
            span.set(mtas=len(probed), probes=len(results))
            span.end(t_last)
        obs.metrics.gauge("campaign_eligible_mtas", len(tasks), (("campaign", self.name),))
        return ProbeCampaignResult(
            name=self.name,
            results=results,
            index=self.testbed.query_index(),
            probed=probed,
            recipient_domain=recipients,
        )
