"""Per-test-policy behaviour classification (paper Sections 6-7).

Everything here consumes ONLY the attributed DNS query log — the same
evidence the paper had.  Each classifier answers one of the paper's
questions about one MTA, given the queries that MTA's validation of one
test policy induced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.querylog import AttributedQuery
from repro.dns.rdata import RdataType

from repro.core.policies import t02_query_order

#: t02 serial query order: name -> 1-based index (see policies.t02).
T02_ORDER: Dict[str, int] = t02_query_order()

#: Per-query server delay in the t02 policy (seconds).
T02_DELAY = 0.8


def _first_time(
    queries: List[AttributedQuery], head: str, qtype: Optional[RdataType] = None
) -> Optional[float]:
    """Earliest arrival time of a query with the given first sublabel."""
    times = [
        q.timestamp
        for q in queries
        if q.head == head and (qtype is None or q.qtype == qtype)
    ]
    return min(times) if times else None


def spf_validated(queries: List[AttributedQuery]) -> bool:
    """The paper's SPF-validating test: at least one policy-related query."""
    return any(q.qtype == RdataType.TXT and q.head == "" for q in queries)


@dataclass
class SerialParallelObservation:
    """t01: did the A query beat the L3 TXT query?"""

    mtaid: str
    saw_l3: bool
    saw_a: bool
    parallel: Optional[bool]  # None when undecidable


def classify_serial_parallel(mtaid: str, queries: List[AttributedQuery]) -> SerialParallelObservation:
    t_l3 = _first_time(queries, head="l3", qtype=RdataType.TXT)
    t_a = min(
        (q.timestamp for q in queries if q.head == "foo" and q.qtype in (RdataType.A, RdataType.AAAA)),
        default=None,
    )
    parallel: Optional[bool] = None
    if t_l3 is not None and t_a is not None:
        parallel = t_a < t_l3
    elif t_a is not None and t_l3 is None:
        # The A arrived but L3 never did: lookups were clearly not serial
        # (a serial validator reaches 'foo' only after finishing the chain).
        parallel = True
    return SerialParallelObservation(mtaid, t_l3 is not None, t_a is not None, parallel)


@dataclass
class LookupLimitObservation:
    """t02: how far into the 46-lookup tree did the validator go?"""

    mtaid: str
    queries_issued: int  # post-base queries, from the last name observed
    elapsed_lower_bound: float

    @property
    def halted_within_limit(self) -> bool:
        return self.queries_issued <= 10

    @property
    def ran_everything(self) -> bool:
        return self.queries_issued >= 46


def classify_lookup_limit(mtaid: str, queries: List[AttributedQuery]) -> Optional[LookupLimitObservation]:
    indexes = [T02_ORDER[q.head] for q in queries if q.head in T02_ORDER]
    if not indexes and not spf_validated(queries):
        return None
    last = max(indexes) if indexes else 0
    return LookupLimitObservation(
        mtaid=mtaid,
        queries_issued=last,
        elapsed_lower_bound=max(0, last - 1) * T02_DELAY,
    )


@dataclass
class HeloObservation:
    """t03: was the HELO identity's policy consulted?"""

    mtaid: str
    checked_helo: bool
    proceeded_to_mail_domain: bool


def classify_helo(mtaid: str, queries: List[AttributedQuery]) -> HeloObservation:
    checked = any(q.head == "h" and q.qtype == RdataType.TXT for q in queries)
    proceeded = spf_validated(queries)
    return HeloObservation(mtaid, checked, proceeded)


def continued_past_error(queries: List[AttributedQuery], marker: str = "after") -> bool:
    """t04/t05/t30: a lookup for the term right of the error is the tell."""
    return any(q.head == marker for q in queries)


def count_void_targets(queries: List[AttributedQuery], prefix: str = "v", total: int = 5) -> int:
    """t06: how many of the five non-resolving names were queried."""
    names = {"%s%d" % (prefix, index) for index in range(1, total + 1)}
    seen: Set[str] = {q.head for q in queries if q.head in names}
    return len(seen)


def count_exists_void_targets(queries: List[AttributedQuery]) -> int:
    """t33 variant of the void counter."""
    return count_void_targets(queries, prefix="w")


def did_mx_fallback(queries: List[AttributedQuery]) -> Optional[bool]:
    """t07: None if the MTA never did the MX lookup; True if it then also
    issued the forbidden A/AAAA query for the same name."""
    did_mx = any(q.head == "nomx" and q.qtype == RdataType.MX for q in queries)
    if not did_mx:
        return None
    return any(q.head == "nomx" and q.qtype in (RdataType.A, RdataType.AAAA) for q in queries)


@dataclass
class MultipleRecordsObservation:
    """t08: neither / one / both of the two policies followed."""

    mtaid: str
    followed: Tuple[bool, bool]

    @property
    def category(self) -> str:
        count = sum(self.followed)
        return {0: "neither", 1: "one", 2: "both"}[count]


def classify_multiple_records(mtaid: str, queries: List[AttributedQuery]) -> MultipleRecordsObservation:
    pol1 = any(q.head == "pol1" for q in queries)
    pol2 = any(q.head == "pol2" for q in queries)
    return MultipleRecordsObservation(mtaid, (pol1, pol2))


@dataclass
class TcpFallbackObservation:
    """t09: UDP attempt seen; was a TCP retry seen too?"""

    mtaid: str
    tried_udp: bool
    retried_tcp: bool


def classify_tcp_fallback(mtaid: str, queries: List[AttributedQuery]) -> TcpFallbackObservation:
    udp = any(q.head == "l1tcp" and q.transport == "udp" for q in queries)
    tcp = any(q.head == "l1tcp" and q.transport == "tcp" for q in queries)
    return TcpFallbackObservation(mtaid, udp, tcp)


def retrieved_over_ipv6(queries: List[AttributedQuery]) -> Optional[bool]:
    """t10: did the validator retrieve the IPv6-only child policy?

    ``None`` when the MTA did not validate this policy at all.
    """
    if not spf_validated([q for q in queries if q.experiment == "probe"]):
        return None
    return any(q.experiment == "v6" for q in queries)


def count_mx_address_lookups(queries: List[AttributedQuery]) -> Optional[int]:
    """t11: how many of the 20 exchange hosts were address-resolved."""
    did_mx = any(q.head == "many" and q.qtype == RdataType.MX for q in queries)
    if not did_mx:
        return None
    hosts = {q.head for q in queries if q.head.startswith("h") and len(q.head) == 3}
    return len(hosts)


def fetched_explanation(queries: List[AttributedQuery]) -> bool:
    """t22: was the exp= TXT fetched?"""
    return any(q.head == "why" and q.qtype == RdataType.TXT for q in queries)


def followed_redirect_after_all(queries: List[AttributedQuery]) -> bool:
    """t32: querying the redirect target despite a terminal 'all'."""
    return any(q.head == "r" for q in queries)


def expanded_ip_macro(queries: List[AttributedQuery]) -> bool:
    """t20: an A query under the 'e' subtree proves macro expansion."""
    return any(len(q.sub) >= 2 and q.sub[-1] == "e" for q in queries)


# -- NotifyEmail-specific classification ------------------------------------


@dataclass
class NotifyValidation:
    """Which mechanisms a NotifyEmail domain exercised (Table 4 basis)."""

    domainid: str
    spf: bool = False
    spf_completed: bool = False  # also resolved the 'a' target (s6.1)
    dkim: bool = False
    dmarc: bool = False

    @property
    def combo(self) -> Tuple[bool, bool, bool]:
        return (self.spf, self.dkim, self.dmarc)

    @property
    def partial_spf(self) -> bool:
        """Fetched the policy but never finished evaluating it."""
        return self.spf and not self.spf_completed


def classify_notify_domain(domainid: str, queries: List[AttributedQuery]) -> NotifyValidation:
    observation = NotifyValidation(domainid)
    for query in queries:
        if query.testid != "notify":
            continue
        if query.sub == () and query.qtype == RdataType.TXT:
            observation.spf = True
        elif query.sub == ("mta",) and query.qtype in (RdataType.A, RdataType.AAAA):
            observation.spf_completed = True
        elif query.sub and query.sub[0].startswith("l") and query.qtype == RdataType.TXT:
            observation.spf = True
        elif query.sub == ("sel", "_domainkey"):
            observation.dkim = True
        elif query.sub == ("_dmarc",):
            observation.dmarc = True
    return observation


def first_spf_lookup_time(queries: List[AttributedQuery]) -> Optional[float]:
    """Earliest base-policy TXT query (for the Figure 2 analysis)."""
    times = [q.timestamp for q in queries if q.sub == () and q.qtype == RdataType.TXT]
    return min(times) if times else None
