"""Paper-vs-measured scorecard.

Encodes the paper's published numbers as data (`PAPER_REFERENCE`), collects
the corresponding measured values from campaign outputs, and renders a
side-by-side scorecard with per-statistic deviation flags.  This is the
machine-checkable version of EXPERIMENTS.md: the bench harness asserts
that the overwhelming majority of statistics land inside their bands.

Tolerances are in absolute percentage points and deliberately generous at
small scale — a 2% universe carries binomial noise the paper's 20-100x
larger samples did not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core import analysis as A
from repro.core.campaign import NotifyEmailResult, ProbeCampaignResult
from repro.core.datasets import Universe
from repro.core.report import Table


@dataclass(frozen=True)
class Reference:
    """One published statistic."""

    key: str
    description: str
    paper_value: float  # percent
    tolerance: float  # absolute percentage points
    section: str


PAPER_REFERENCE: List[Reference] = [
    # Section 6.1 (NotifyEmail)
    Reference("notify_spf_domains", "SPF-validating domains (NotifyEmail)", 85.0, 8.0, "6.1"),
    Reference("notify_spf_mtas", "SPF-validating MTAs (NotifyEmail)", 81.0, 10.0, "6.1"),
    Reference("combo_full", "SPF+DKIM+DMARC domains", 53.0, 10.0, "6.1"),
    Reference("combo_trial", "SPF+DKIM (no DMARC) domains", 24.0, 8.0, "6.1"),
    Reference("combo_none", "no-validation domains", 17.0, 9.0, "6.1"),
    Reference("partial_spf", "partial SPF validators (of SPF validators)", 3.0, 3.0, "6.1"),
    Reference("providers_spf", "popular providers validating SPF", 84.2, 0.5, "6.1"),
    Reference("providers_full", "popular providers validating all three", 68.4, 0.5, "6.1"),
    # Section 6.2 (NotifyMX)
    Reference("notifymx_spf_domains", "SPF-validating domains (NotifyMX)", 51.0, 12.0, "6.2"),
    Reference("notifymx_spf_mtas", "SPF-validating MTAs (NotifyMX)", 50.0, 10.0, "6.2"),
    Reference("fig2_negative", "SPF lookup before delivery (domains)", 83.0, 7.0, "6.2"),
    Reference("fig2_within30", "timestamp diffs within +/-30 s", 91.0, 6.0, "6.2"),
    Reference("reject_spam", "MTAs rejecting citing 'spam'", 27.0, 7.0, "6.2"),
    Reference("reject_blacklist", "MTAs rejecting citing 'blacklist'", 3.0, 3.0, "6.2"),
    # Section 6.3 (TwoWeekMX)
    Reference("twoweek_spf_domains", "SPF-validating domains (TwoWeekMX)", 13.0, 7.0, "6.3"),
    Reference("twoweek_spf_mtas", "SPF-validating MTAs (TwoWeekMX)", 14.0, 7.0, "6.3"),
    Reference("invalid_rcpt", "MTAs with invalid-recipient errors", 6.4, 4.0, "6.3"),
    # Section 7
    Reference("serial_lookups", "serial DNS lookups", 97.0, 4.0, "7.1"),
    Reference("limit_within10", "halted within 10 lookups", 61.0, 12.0, "7.2"),
    Reference("limit_all46", "executed all 46 lookups", 28.0, 10.0, "7.2"),
    Reference("helo_checked", "checked HELO policy", 5.0, 4.0, "7.3"),
    Reference("syntax_main", "continued past main-policy syntax error", 5.5, 4.0, "7.3"),
    Reference("syntax_child", "continued past child-policy syntax error", 12.3, 7.0, "7.3"),
    Reference("void_exceeded", "exceeded two void lookups", 97.0, 5.0, "7.3"),
    Reference("void_all_five", "chased all five void names", 64.0, 10.0, "7.3"),
    Reference("mx_fallback", "illegal A/AAAA fallback after MX", 14.0, 7.0, "7.3"),
    Reference("multi_neither", "ignored both duplicate policies", 77.0, 10.0, "7.3"),
    Reference("multi_both", "followed both duplicate policies", 0.0, 1.0, "7.3"),
    Reference("tcp_fallback", "retried truncated response over TCP", 99.9, 3.0, "7.3"),
    Reference("ipv6_retrieval", "retrieved IPv6-only policy", 49.0, 10.0, "7.3"),
    Reference("mx_limit_within", "stopped at <=10 MX address lookups", 7.7, 6.0, "7.3"),
    Reference("mx_limit_all20", "resolved all 20 MX exchanges", 64.0, 12.0, "7.3"),
]

_STAT_LABEL_TO_KEY = {
    "serial DNS lookups (t01)": "serial_lookups",
    "halted within 10 lookups (t02)": "limit_within10",
    "executed all 46 lookups (t02)": "limit_all46",
    "checked HELO policy (t03)": "helo_checked",
    "continued past syntax error in main policy (t04)": "syntax_main",
    "continued past syntax error in child policy (t05)": "syntax_child",
    "exceeded two void lookups (t06)": "void_exceeded",
    "chased all five void names (t06)": "void_all_five",
    "illegal A/AAAA fallback after MX (t07)": "mx_fallback",
    "ignored both duplicate policies (t08)": "multi_neither",
    "followed both duplicate policies (t08)": "multi_both",
    "retried truncated response over TCP (t09)": "tcp_fallback",
    "retrieved IPv6-only policy (t10)": "ipv6_retrieval",
    "stopped at <=10 MX address lookups (t11)": "mx_limit_within",
    "resolved all 20 MX exchanges (t11)": "mx_limit_all20",
}


def collect_notify_measurements(
    universe: Universe, result: NotifyEmailResult, analysis: Optional[A.NotifyAnalysis] = None
) -> Dict[str, float]:
    """Measured values for the Section 6.1/6.2-figure statistics."""
    if analysis is None:
        analysis = A.analyze_notify(result)
    measured: Dict[str, float] = {}
    row = A.notify_email_spf_row(universe, result, analysis)
    measured["notify_spf_domains"] = _pct(row.validating_domains, row.total_domains)
    measured["notify_spf_mtas"] = _pct(row.validating_mtas, row.total_mtas)
    counts = analysis.combo_counts()
    total = analysis.total
    measured["combo_full"] = _pct(counts.get((True, True, True), 0), total)
    measured["combo_trial"] = _pct(counts.get((True, True, False), 0), total)
    measured["combo_none"] = _pct(counts.get((False, False, False), 0), total)
    measured["partial_spf"] = _pct(
        len(analysis.partial_spf_validators()), len(analysis.validating("spf"))
    )
    provider_rows = A.provider_table(analysis).rows
    measured["providers_spf"] = _pct(
        sum(1 for cells in provider_rows if cells[1] == "Y"), len(provider_rows)
    )
    measured["providers_full"] = _pct(
        sum(1 for cells in provider_rows if cells[1:] == ["Y", "Y", "Y"]), len(provider_rows)
    )
    timing = A.timing_analysis(result)
    measured["fig2_negative"] = 100.0 * timing.negative_fraction
    measured["fig2_within30"] = 100.0 * timing.within_30s_fraction
    return measured


def collect_probe_measurements(
    universe: Universe, result: ProbeCampaignResult, experiment: str
) -> Dict[str, float]:
    """Measured values for a probe campaign (``notifymx`` or ``twoweekmx``)."""
    measured: Dict[str, float] = {}
    row = A.probe_spf_row(experiment, universe, result)
    prefix = "notifymx" if experiment.lower().startswith("notifymx") else "twoweek"
    measured["%s_spf_domains" % prefix] = _pct(row.validating_domains, row.total_domains)
    measured["%s_spf_mtas" % prefix] = _pct(row.validating_mtas, row.total_mtas)
    rejections = A.rejection_stats(result)
    if prefix == "notifymx":
        measured["reject_spam"] = _pct(rejections.spam, rejections.total_mtas)
        measured["reject_blacklist"] = _pct(rejections.blacklist, rejections.total_mtas)
        for stat in A.behavior_stats(result):
            key = _STAT_LABEL_TO_KEY.get(stat.label)
            if key is not None:
                measured[key] = stat.percent
    else:
        measured["invalid_rcpt"] = _pct(rejections.invalid_recipient, rejections.total_mtas)
    return measured


@dataclass
class ScorecardEntry:
    reference: Reference
    measured: Optional[float]

    @property
    def deviation(self) -> Optional[float]:
        if self.measured is None:
            return None
        return self.measured - self.reference.paper_value

    @property
    def within_band(self) -> Optional[bool]:
        if self.measured is None:
            return None
        return abs(self.deviation) <= self.reference.tolerance


@dataclass
class Scorecard:
    entries: List[ScorecardEntry]

    @property
    def evaluated(self) -> List[ScorecardEntry]:
        return [entry for entry in self.entries if entry.measured is not None]

    @property
    def hits(self) -> int:
        return sum(1 for entry in self.evaluated if entry.within_band)

    @property
    def hit_rate(self) -> float:
        evaluated = self.evaluated
        return self.hits / len(evaluated) if evaluated else 0.0

    def to_table(self) -> Table:
        table = Table(
            "Paper-vs-measured scorecard: %d/%d statistics within band"
            % (self.hits, len(self.evaluated)),
            ["Statistic", "Paper", "Measured", "Delta", "Band", "OK"],
        )
        for entry in self.entries:
            reference = entry.reference
            if entry.measured is None:
                table.add(reference.description, "%.1f%%" % reference.paper_value, "-", "-", "-", "?")
                continue
            table.add(
                "%s (s%s)" % (reference.description, reference.section),
                "%.1f%%" % reference.paper_value,
                "%.1f%%" % entry.measured,
                "%+.1f" % entry.deviation,
                "±%.0f" % reference.tolerance,
                "yes" if entry.within_band else "NO",
            )
        return table


def build_scorecard(measured: Dict[str, float]) -> Scorecard:
    """Combine measured values (merge the collect_* dicts) into a scorecard."""
    entries = [
        ScorecardEntry(reference, measured.get(reference.key)) for reference in PAPER_REFERENCE
    ]
    return Scorecard(entries)


def _pct(numerator: int, denominator: int) -> float:
    return 100.0 * numerator / denominator if denominator else 0.0
