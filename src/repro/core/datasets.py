"""Synthetic domain universes (paper Sections 4.1 and 4.2).

The paper measures two real populations it cannot share: 26,695 domains
from a vulnerability-notification campaign (NotifyEmail / NotifyMX) and
22,548 domains from BYU's outbound MX lookups (TwoWeekMX).  This module
generates seeded synthetic universes with the published structure:

* TLD mix per Table 1,
* AS / provider concentration per Table 3 (a handful of giant providers
  plus a very long tail),
* MTA sharing (many domains designating the same provider MTAs — why the
  paper's MTA counts are below its domain counts),
* dual-stack fractions per Table 2,
* Alexa Top-1M / Top-1K membership per Table 7, with validation quality
  conditioned on membership via iterative proportional fitting,
* per-domain demand counts (for the TwoWeekMX decile analysis), and
* the 19 popular providers of Table 6 with their exact validation combos.

Everything scales: ``DatasetSpec.notify_email(scale=0.05)`` is a 5%%-size
universe with the same proportions.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.asmap import AsMap
from repro.mta.behavior import MtaBehavior
from repro.mta.fleet import (
    BehaviorDistribution,
    NOTIFY_EMAIL_PROFILE,
    TABLE4_COMBO_WEIGHTS,
    TWO_WEEK_MX_PROFILE,
    sample_behavior,
)

# -- published distributions ---------------------------------------------------

#: Table 1 (left): NotifyEmail TLD shares.
NOTIFY_EMAIL_TLDS: List[Tuple[str, float]] = [
    ("com", 0.26), ("net", 0.13), ("ru", 0.083), ("pl", 0.050), ("br", 0.045),
    ("de", 0.040), ("ua", 0.025), ("it", 0.019), ("cz", 0.016), ("ro", 0.016),
]

#: Table 1 (right): TwoWeekMX TLD shares.
TWO_WEEK_MX_TLDS: List[Tuple[str, float]] = [
    ("com", 0.49), ("org", 0.17), ("edu", 0.090), ("net", 0.063), ("us", 0.036),
    ("gov", 0.011), ("uk", 0.011), ("cam", 0.010), ("ca", 0.0076), ("de", 0.0066),
]

_OTHER_TLD_POOL = [
    "fr", "nl", "es", "se", "no", "fi", "dk", "ch", "at", "be", "jp", "kr",
    "cn", "in", "au", "nz", "mx", "ar", "cl", "za", "tr", "gr", "pt", "hu",
    "sk", "si", "hr", "bg", "lt", "lv", "ee", "ie", "il", "sg", "hk", "tw",
    "th", "my", "id", "ph", "vn", "ir", "sa", "ae", "eg", "ng", "ke", "io",
    "co", "me", "tv", "cc", "info", "biz", "org", "edu", "us", "ca", "uk",
]

#: Table 3 (left): NotifyEmail AS shares (fraction of domains).
NOTIFY_EMAIL_ASES: List[Tuple[int, str, float]] = [
    (16509, "Amazon", 0.023), (26211, "Proofpoint", 0.017), (22843, "Proofpoint", 0.016),
    (46606, "Unified Layer", 0.013), (16276, "OVH", 0.0095), (24940, "Hetzner", 0.0092),
    (16417, "IronPort", 0.0091), (14618, "Amazon", 0.0088), (12824, "home.pl", 0.0054),
    (52129, "Proofpoint", 0.0043),
]

#: Table 3 (right): TwoWeekMX AS shares.
TWO_WEEK_MX_ASES: List[Tuple[int, str, float]] = [
    (15169, "Google", 0.32), (8075, "Microsoft", 0.20), (16509, "Amazon", 0.043),
    (22843, "Proofpoint", 0.041), (26211, "Proofpoint", 0.032), (30031, "Mimecast", 0.023),
    (14618, "Amazon", 0.017), (26496, "GoDaddy", 0.016), (46606, "Unified Layer", 0.013),
    (16417, "IronPort", 0.012),
]

#: Table 6: the 19 popular providers and their observed validation combos.
POPULAR_PROVIDERS: List[Tuple[str, bool, bool, bool]] = [
    ("hotmail.com", True, True, True),
    ("gmail.com", True, True, True),
    ("yahoo.com", True, True, True),
    ("aol.com", True, True, True),
    ("gmx.de", True, True, False),
    ("mail.ru", True, True, True),
    ("yahoo.co.in", True, True, True),
    ("comcast.net", True, True, True),
    ("web.de", True, True, False),
    ("qq.com", False, False, False),
    ("yahoo.co.jp", True, True, True),
    ("naver.com", True, True, True),
    ("163.com", False, False, False),
    ("libero.it", True, True, True),
    ("yandex.ru", True, True, True),
    ("daum.net", True, True, False),
    ("cox.net", True, True, True),
    ("att.net", False, False, False),
    ("wp.pl", True, True, True),
]

#: Table 7 marginal validation rates per Alexa tier (SPF, DKIM, DMARC).
TIER_MARGINALS: Dict[str, Tuple[float, float, float]] = {
    "rest": (0.85, 0.815, 0.525),
    "top1m": (0.88, 0.84, 0.67),
    "top1k": (0.93, 0.90, 0.79),
}

#: Hosted email-security gateways: SPF validation is their product, so
#: they validate synchronously and visibly even for postmaster probes.
_GATEWAY_PROVIDERS = frozenset({"Proofpoint", "Mimecast", "IronPort"})

_SYLLABLES = [
    "ba", "be", "bo", "ca", "ce", "co", "da", "de", "do", "fa", "fe", "fo",
    "ga", "ge", "go", "ka", "ke", "ko", "la", "le", "lo", "ma", "me", "mo",
    "na", "ne", "no", "pa", "pe", "po", "ra", "re", "ro", "sa", "se", "so",
    "ta", "te", "to", "va", "ve", "vo", "za", "ze", "zo", "mi", "ni", "ti",
]

_WORD_SUFFIXES = ["", "", "", "mail", "net", "corp", "tech", "soft", "host", "web"]


@dataclass
class MtaHost:
    """One receiving mail server in the universe."""

    mtaid: str
    hostname: str
    provider_key: str
    ipv4: Optional[str] = None
    ipv6: Optional[str] = None
    behavior: MtaBehavior = field(default_factory=MtaBehavior)

    def addresses(self) -> List[str]:
        return [address for address in (self.ipv4, self.ipv6) if address]


@dataclass
class Provider:
    """An email-hosting provider: one AS plus a pool of shared MTAs.

    Site-wide mail policy (recipient handling, postmaster whitelisting) is
    sampled once per provider: an organisation configures its whole MX
    fleet the same way, which is what keeps the paper's domain-level and
    MTA-level validation rates close together (Table 5).
    """

    key: str
    asn: int
    as_name: str
    prefix4: str
    prefix6: str
    mtas: List[MtaHost] = field(default_factory=list)
    domain_count: int = 0
    tier: str = "rest"
    #: Lazily sampled site policy: (recipient_mode, whitelists_postmaster).
    site_policy: Optional[Tuple[str, bool]] = None
    #: Lazily sampled site-wide (SPF, DKIM, DMARC) validation combo.
    combo: Optional[Tuple[bool, bool, bool]] = None


@dataclass
class Domain:
    """One email-recipient domain."""

    name: str
    tld: str
    domainid: str
    provider_key: str
    mta_hosts: List[MtaHost] = field(default_factory=list)
    alexa_rank: Optional[int] = None
    demand: int = 1
    is_local: bool = False
    resolution_failed: bool = False  # NotifyMX: MX yielded no addresses

    @property
    def alexa_tier(self) -> str:
        if self.alexa_rank is None:
            return "rest"
        if self.alexa_rank <= 1000:
            return "top1k"
        return "top1m"


@dataclass
class DatasetSpec:
    """Shape parameters of one universe."""

    name: str
    n_domains: int
    tld_weights: List[Tuple[str, float]]
    as_weights: List[Tuple[int, str, float]]
    n_tail_providers: int
    behavior_profile: BehaviorDistribution
    ipv6_mta_fraction: float = 0.09
    domains_per_tail_provider: float = 1.8
    mtas_per_domain: Tuple[int, int] = (1, 2)
    alexa_top1m: int = 0
    alexa_top1k: int = 0
    include_popular_providers: bool = False
    n_local_domains: int = 0
    local_suffix: str = "byu.edu"
    demand_zipf_exponent: float = 1.1
    p_mx_resolution_failure: float = 0.0
    #: Probability that a big-provider (top-10 AS) MTA whitelists
    #: postmaster regardless of the sampled behaviour.  Large providers
    #: gate sender validation behind reputation systems the probe never
    #: passes, which is what keeps the TwoWeekMX *domain* rate below its
    #: MTA rate (Section 6.3).
    big_provider_whitelist: Optional[float] = None

    @classmethod
    def notify_email(cls, scale: float = 1.0) -> "DatasetSpec":
        """The NotifyEmail/NotifyMX population (Tables 1-3, left columns)."""
        return cls(
            name="NotifyEmail",
            n_domains=max(30, int(26695 * scale)),
            tld_weights=NOTIFY_EMAIL_TLDS,
            as_weights=NOTIFY_EMAIL_ASES,
            n_tail_providers=max(10, int(10927 * scale)),
            behavior_profile=NOTIFY_EMAIL_PROFILE,
            ipv6_mta_fraction=0.09,
            alexa_top1m=max(2, int(2953 * scale)),
            alexa_top1k=max(1, int(87 * scale)),
            include_popular_providers=True,
            p_mx_resolution_failure=0.01,
        )

    @classmethod
    def two_week_mx(cls, scale: float = 1.0) -> "DatasetSpec":
        """The TwoWeekMX population (Tables 1-3, right columns)."""
        return cls(
            name="TwoWeekMX",
            n_domains=max(30, int(22548 * scale)),
            tld_weights=TWO_WEEK_MX_TLDS,
            as_weights=TWO_WEEK_MX_ASES,
            n_tail_providers=max(8, int(1785 * scale)),
            behavior_profile=TWO_WEEK_MX_PROFILE,
            ipv6_mta_fraction=0.042,
            domains_per_tail_provider=4.0,
            n_local_domains=max(1, int(27 * scale)),
            big_provider_whitelist=0.97,
        )


@dataclass
class Universe:
    """A fully generated population."""

    spec: DatasetSpec
    domains: List[Domain]
    providers: Dict[str, Provider]
    mtas: List[MtaHost]
    asmap: AsMap

    def domain_by_name(self, name: str) -> Optional[Domain]:
        for domain in self.domains:
            if domain.name == name:
                return domain
        return None

    def mta_by_id(self, mtaid: str) -> Optional[MtaHost]:
        for mta in self.mtas:
            if mta.mtaid == mtaid:
                return mta
        return None

    @property
    def unique_ipv4(self) -> List[str]:
        return [mta.ipv4 for mta in self.mtas if mta.ipv4]

    @property
    def unique_ipv6(self) -> List[str]:
        return [mta.ipv6 for mta in self.mtas if mta.ipv6]


# -- sharding -----------------------------------------------------------------


def stable_hash64(text: str) -> int:
    """A 64-bit hash of ``text`` that is stable across processes and runs.

    Python's builtin ``hash()`` is salted per process (PYTHONHASHSEED), so
    anything that must agree between a campaign coordinator and its worker
    processes — shard membership, derived RNG seeds — goes through this
    instead.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def shard_index(identifier: str, shards: int) -> int:
    """Which of ``shards`` shards ``identifier`` belongs to.

    A pure function of the identifier string: independent of generation
    seed, list order, process, and platform.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1, got %d" % shards)
    return stable_hash64(identifier) % shards


@dataclass(frozen=True)
class UniverseShard:
    """One of K disjoint slices of a universe (see :mod:`repro.core.parallel`).

    Two independent partitions are carried, one per campaign type:

    ``mtaids``
        Probe-campaign assignment, hashed on mtaid.  Probe state (the
        receiver's resolver cache, greylist, SMTP sessions) is per-MTA, so
        any mtaid partition keeps shards independent.
    ``domainids``
        Notify-campaign assignment, hashed on the domain's *provider* key.
        Delivery state lives in the receiving MTA (resolver caches with
        shared names such as the probe host's HELO identity, greylists),
        and a provider's domains share its MTA pool — so domains are
        sharded by delivery group, keeping every receiver's state local to
        exactly one shard.  Domains of different providers never share an
        MTA (pools are provider-private), which makes this partition exact.
    ``notify_mtaids``
        The MTA ids a notify shard must deploy receivers for: the pool of
        every provider assigned to this shard.  Disjoint across shards
        because the provider assignment is.
    """

    index: int
    shards: int
    domainids: FrozenSet[str]
    mtaids: FrozenSet[str]
    notify_mtaids: FrozenSet[str]


def partition_universe(universe: Universe, shards: int) -> List[UniverseShard]:
    """Split ``universe`` into ``shards`` disjoint :class:`UniverseShard`.

    Membership is a pure function of stable identifiers (mtaid for probe
    work, provider key for notify work — see :class:`UniverseShard`), so
    the same universe partitions identically regardless of generation
    seed, iteration order, or platform, and a (domain, MTA) lands in the
    same shard for any fixed K.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1, got %d" % shards)
    domainids: List[set] = [set() for _ in range(shards)]
    mtaids: List[set] = [set() for _ in range(shards)]
    notify_mtaids: List[set] = [set() for _ in range(shards)]
    provider_shard: Dict[str, int] = {}
    for provider_key, provider in universe.providers.items():
        index = shard_index(provider_key, shards)
        provider_shard[provider_key] = index
        notify_mtaids[index].update(host.mtaid for host in provider.mtas)
    for domain in universe.domains:
        domainids[provider_shard[domain.provider_key]].add(domain.domainid)
    for host in universe.mtas:
        mtaids[shard_index(host.mtaid, shards)].add(host.mtaid)
    return [
        UniverseShard(
            index=index,
            shards=shards,
            domainids=frozenset(domainids[index]),
            mtaids=frozenset(mtaids[index]),
            notify_mtaids=frozenset(notify_mtaids[index]),
        )
        for index in range(shards)
    ]


# -- generation ---------------------------------------------------------------


def generate_universe(spec: DatasetSpec, seed: int = 0) -> Universe:
    """Generate one deterministic universe from ``spec`` and ``seed``."""
    rng = random.Random(seed)
    builder = _Builder(spec, rng)
    return builder.build()


class _Builder:
    def __init__(self, spec: DatasetSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self.asmap = AsMap()
        self.providers: Dict[str, Provider] = {}
        self.domains: List[Domain] = []
        self.mtas: List[MtaHost] = []
        self._used_names: set = set()
        self._next_prefix4 = 0
        self._next_prefix6 = 0
        self._next_mta = 1
        self._next_domain = 1
        self._tilted_weights: Dict[str, Dict[Tuple[bool, bool, bool], float]] = {}

    # -- top level ------------------------------------------------------

    def build(self) -> Universe:
        self._make_providers()
        self._make_domains()
        self._assign_tiers()
        self._make_mtas()
        return Universe(
            spec=self.spec,
            domains=self.domains,
            providers=self.providers,
            mtas=self.mtas,
            asmap=self.asmap,
        )

    # -- providers ------------------------------------------------------

    def _make_providers(self) -> None:
        for asn, name, _share in self.spec.as_weights:
            key = "as%d" % asn
            if key not in self.providers:
                self.providers[key] = self._new_provider(key, asn, name)
        for index in range(self.spec.n_tail_providers):
            asn = 64512 + index  # private-use ASN range, then beyond
            key = "tail%d" % index
            self.providers[key] = self._new_provider(key, asn, "Tail-%d" % index)

    def _new_provider(self, key: str, asn: int, name: str) -> Provider:
        prefix4 = "10.%d.%d.0/24" % (self._next_prefix4 // 256, self._next_prefix4 % 256)
        prefix6 = "2001:db8:%x:%x::/64" % (self._next_prefix6 // 65536, self._next_prefix6 % 65536)
        self._next_prefix4 += 1
        self._next_prefix6 += 1
        self.asmap.announce(prefix4, asn, name)
        self.asmap.announce(prefix6, asn, name)
        return Provider(key=key, asn=asn, as_name=name, prefix4=prefix4, prefix6=prefix6)

    def _pick_provider(self) -> Provider:
        roll = self.rng.random()
        accumulated = 0.0
        for asn, _name, share in self.spec.as_weights:
            accumulated += share
            if roll < accumulated:
                return self.providers["as%d" % asn]
        index = self.rng.randrange(self.spec.n_tail_providers)
        return self.providers["tail%d" % index]

    # -- domains -----------------------------------------------------------

    def _make_domains(self) -> None:
        spec = self.spec
        if spec.include_popular_providers:
            for name, *_combo in POPULAR_PROVIDERS:
                self._add_domain(name, name.rsplit(".", 1)[1], self._pick_provider())
        for _ in range(spec.n_local_domains):
            name = "%s.%s" % (self._fresh_word(), spec.local_suffix)
            domain = self._add_domain(name, spec.local_suffix.rsplit(".", 1)[1], self._pick_provider())
            domain.is_local = True
        while len(self.domains) < spec.n_domains:
            tld = self._pick_tld()
            name = "%s.%s" % (self._fresh_word(), tld)
            self._add_domain(name, tld, self._pick_provider())
        # Demand counts follow a Zipf-like law over a shuffled ordering.
        order = list(range(len(self.domains)))
        self.rng.shuffle(order)
        for rank_minus_one, domain_index in enumerate(order):
            domain = self.domains[domain_index]
            base = 20000.0 / ((rank_minus_one + 1) ** spec.demand_zipf_exponent)
            domain.demand = max(1, int(base))
            if domain.is_local:
                domain.demand = 50000 + self.rng.randrange(10000)
        if spec.p_mx_resolution_failure:
            for domain in self.domains:
                if self.rng.random() < spec.p_mx_resolution_failure:
                    domain.resolution_failed = True

    def _add_domain(self, name: str, tld: str, provider: Provider) -> Domain:
        domain = Domain(
            name=name,
            tld=tld,
            domainid="d%05d" % self._next_domain,
            provider_key=provider.key,
        )
        self._next_domain += 1
        provider.domain_count += 1
        self.domains.append(domain)
        self._used_names.add(name)
        return domain

    def _pick_tld(self) -> str:
        roll = self.rng.random()
        accumulated = 0.0
        for tld, share in self.spec.tld_weights:
            accumulated += share
            if roll < accumulated:
                return tld
        return self.rng.choice(_OTHER_TLD_POOL)

    def _fresh_word(self) -> str:
        while True:
            length = self.rng.randint(2, 4)
            word = "".join(self.rng.choice(_SYLLABLES) for _ in range(length))
            word += self.rng.choice(_WORD_SUFFIXES)
            if word not in self._used_names:
                self._used_names.add(word)
                return word

    # -- Alexa tiers ------------------------------------------------------

    def _assign_tiers(self) -> None:
        spec = self.spec
        if not spec.alexa_top1m:
            return
        eligible = [domain for domain in self.domains if not domain.is_local]
        self.rng.shuffle(eligible)
        top1k = eligible[: spec.alexa_top1k]
        top1m = eligible[spec.alexa_top1k : spec.alexa_top1m]
        for domain in top1k:
            domain.alexa_rank = self.rng.randint(1, 1000)
        for domain in top1m:
            domain.alexa_rank = self.rng.randint(1001, 1000000)
        # Popular providers are, of course, highly ranked.
        popular_names = {name for name, *_ in POPULAR_PROVIDERS}
        for domain in self.domains:
            if domain.name in popular_names and domain.alexa_rank is None:
                domain.alexa_rank = self.rng.randint(1, 1000)
        for provider in self.providers.values():
            provider.tier = "rest"
        for domain in self.domains:
            provider = self.providers[domain.provider_key]
            if domain.alexa_tier == "top1k":
                provider.tier = "top1k"
            elif domain.alexa_tier == "top1m" and provider.tier == "rest":
                provider.tier = "top1m"

    # -- MTAs ------------------------------------------------------------

    def _make_mtas(self) -> None:
        spec = self.spec
        popular_combos = {name: combo for name, *combo in POPULAR_PROVIDERS}
        for domain in self.domains:
            provider = self.providers[domain.provider_key]
            pool_cap = self._pool_cap(provider)
            count = self.rng.randint(*spec.mtas_per_domain)
            hosts: List[MtaHost] = []
            for _ in range(count):
                if len(provider.mtas) >= pool_cap:
                    host = self.rng.choice(provider.mtas)
                else:
                    host = self._new_mta(provider, domain.alexa_tier)
                if host not in hosts:
                    hosts.append(host)
            if domain.name in popular_combos:
                spf, dkim, dmarc = popular_combos[domain.name]
                dedicated = self._new_mta(provider, "top1k")
                dedicated.behavior.validates_spf = spf
                dedicated.behavior.validates_dkim = dkim
                dedicated.behavior.validates_dmarc = dmarc
                dedicated.behavior.spf_fetch_only = False
                if spf:
                    from repro.mta.behavior import SpfTrigger

                    dedicated.behavior.spf_trigger = SpfTrigger.ON_MAIL
                hosts = [dedicated]
            domain.mta_hosts = hosts

    def _pool_cap(self, provider: Provider) -> int:
        if provider.key.startswith("tail"):
            return max(1, int(self.spec.domains_per_tail_provider / 1.5) + 1)
        # Big providers share aggressively: pool grows sub-linearly.
        return max(3, int(provider.domain_count ** 0.62))

    def _new_mta(self, provider: Provider, tier: str) -> MtaHost:
        index = len(provider.mtas) + 1
        base4 = provider.prefix4.split("/")[0].rsplit(".", 1)[0]
        ipv4 = "%s.%d" % (base4, (index % 250) + 1) if index <= 250 else None
        ipv6 = None
        if self.rng.random() < self.spec.ipv6_mta_fraction:
            ipv6 = "%s%x" % (provider.prefix6.split("/")[0], index)
        if provider.combo is None:
            # Validation deployment, like recipient policy, is configured
            # fleet-wide by the hosting organisation.  The top-10 providers
            # all run full validation stacks (Gmail, Outlook and the
            # security gateways are the canonical SPF/DKIM/DMARC shops).
            if provider.key.startswith("tail"):
                provider.combo = self._sample_tier_combo(tier)
            else:
                provider.combo = (True, True, True)
        behavior = sample_behavior(self.rng, self.spec.behavior_profile, combo=provider.combo)
        self._apply_site_policy(provider, behavior)
        host = MtaHost(
            mtaid="m%05d" % self._next_mta,
            hostname="mx%d.%s.mail.test" % (index, provider.key),
            provider_key=provider.key,
            ipv4=ipv4,
            ipv6=ipv6,
            behavior=behavior,
        )
        self._next_mta += 1
        provider.mtas.append(host)
        self.mtas.append(host)
        return host

    def _apply_site_policy(self, provider: Provider, behavior: MtaBehavior) -> None:
        """Overwrite per-MTA recipient/whitelist knobs with the provider's
        site-wide policy, sampling it on first use."""
        profile = self.spec.behavior_profile
        if provider.site_policy is None:
            big = (
                self.spec.big_provider_whitelist is not None
                and not provider.key.startswith("tail")
            )
            if big:
                # Top-10 providers host a third to a half of all domains
                # each experiment; their policy is an institutional fact,
                # not a coin flip: unknown recipients are rejected (the
                # probe ends up at postmaster) and sender validation is
                # gated behind reputation systems the probe never passes —
                # except at the security-gateway providers, whose entire
                # product is synchronous sender validation.
                mode = "postmaster-only"
                if provider.as_name in _GATEWAY_PROVIDERS:
                    # Gateways validate synchronously, but roughly half of
                    # the deployments exempt abuse/postmaster addresses.
                    whitelisted = self.rng.random() < 0.45
                else:
                    whitelisted = self.rng.random() < self.spec.big_provider_whitelist
            else:
                roll = self.rng.random()
                if roll < profile.p_rejects_all_recipients:
                    mode = "rejects-all"
                elif roll < profile.p_rejects_all_recipients + profile.p_accepts_any_recipient:
                    mode = "accept-any"
                else:
                    mode = "postmaster-only"
                whitelisted = self.rng.random() < profile.p_whitelists_postmaster
            provider.site_policy = (mode, whitelisted)
        mode, whitelists = provider.site_policy
        behavior.whitelists_postmaster = whitelists
        if mode == "rejects-all":
            behavior.accepts_any_recipient = False
            behavior.accepts_postmaster = False
            behavior.valid_users = frozenset()
        elif mode == "accept-any":
            behavior.accepts_any_recipient = True
            behavior.accepts_postmaster = True
        else:
            behavior.accepts_any_recipient = False
            behavior.accepts_postmaster = True

    def _sample_tier_combo(self, tier: str) -> Tuple[bool, bool, bool]:
        weights = self._tilted_weights.get(tier)
        if weights is None:
            if tier == "rest":
                # The bulk tier reproduces Table 4 directly; the Alexa
                # tiers are IPF-tilted toward Table 7's higher marginals.
                weights = {
                    combo: float(weight) for combo, weight in TABLE4_COMBO_WEIGHTS.items()
                }
            else:
                weights = tilt_combo_weights(TABLE4_COMBO_WEIGHTS, TIER_MARGINALS[tier])
            self._tilted_weights[tier] = weights
        items = list(weights.items())
        total = sum(weight for _, weight in items)
        point = self.rng.random() * total
        accumulated = 0.0
        for combo, weight in items:
            accumulated += weight
            if point < accumulated:
                return combo
        return items[-1][0]


def tilt_combo_weights(
    base: Dict[Tuple[bool, bool, bool], float],
    marginals: Tuple[float, float, float],
    iterations: int = 30,
) -> Dict[Tuple[bool, bool, bool], float]:
    """Iterative proportional fitting: reweight the Table 4 joint so its
    SPF/DKIM/DMARC marginals hit the per-tier targets of Table 7 while
    keeping the association structure of the observed joint."""
    weights = {combo: max(weight, 1e-9) for combo, weight in base.items()}
    total = sum(weights.values())
    weights = {combo: weight / total for combo, weight in weights.items()}
    for _ in range(iterations):
        for axis in range(3):
            target = marginals[axis]
            positive = sum(weight for combo, weight in weights.items() if combo[axis])
            negative = 1.0 - positive
            if positive <= 0 or negative <= 0:
                continue
            for combo in weights:
                if combo[axis]:
                    weights[combo] *= target / positive
                else:
                    weights[combo] *= (1.0 - target) / negative
    return weights
