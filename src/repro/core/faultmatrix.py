"""The fault-matrix campaign: probe outcomes under each fault kind.

The paper's measurements repeatedly hinge on *failure* behaviour — MTAs
that time out, resolvers that cannot fall back to TCP, servers that
never answer — but the ordinary campaigns only meet failures the test
policies script.  :func:`run_fault_matrix` turns the fault-injection
subsystem (:mod:`repro.net.faults`) into an experiment of its own: the
same probe campaign is replayed once per *scenario* (one canonical
:class:`~repro.net.faults.FaultPlan` per fault kind, plus an unfaulted
baseline), each in a freshly wired :class:`~repro.core.campaign.Testbed`
over the same universe, and the per-MTA conversation outcomes are
summarised side by side in one table.

Outcome vocabulary (one bucket per probe conversation):

``done``
    the probe walked EHLO → MAIL → RCPT → DATA to completion;
``stalled``
    the conversation opened but died before DATA (a mid-conversation
    reset, a rejected stage, a lost reply);
``noconnect``
    no SMTP conversation ever started (connect refused, banner absent
    or too late).

Every scenario derives its plan seed with
:func:`~repro.net.faults.derive_fault_seed`, so the whole matrix is a
pure function of ``(universe, seed)`` and reruns byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.campaign import ProbeCampaign, Testbed
from repro.core.datasets import Universe
from repro.core.probe import ProbeResult
from repro.core.report import Table
from repro.net.faults import FaultPlan, derive_fault_seed
from repro.obs import NULL_OBS, Observability

#: One canonical scenario per fault kind.  Probabilities are deliberately
#: heavy-handed — the matrix is a behavioural census, not a realism
#: claim — and each ``where`` clause keeps the blast radius on the layer
#: the kind targets (port 53 = DNS transport, port 25 = SMTP transport).
FAULT_SCENARIOS: Tuple[Tuple[str, str], ...] = (
    ("baseline", ""),
    ("udp_loss", "udp_loss:0.25@53"),
    ("udp_delay", "udp_delay:0.5:7.5@53"),
    ("truncate_no_tcp", "truncate:1.0,tcp_refuse:1.0@53"),
    ("servfail", "servfail:0.5"),
    ("refused", "refused:0.5"),
    ("tcp_refuse", "tcp_refuse:0.25@25"),
    ("tcp_reset", "tcp_reset:0.1@25"),
    ("banner_delay", "banner_delay:0.5:45"),
    ("banner_absent", "banner_absent:0.5"),
)

#: The probe policies each scenario replays.  One cheap, representative
#: policy keeps the matrix ``O(scenarios × MTAs)`` instead of
#: ``O(scenarios × MTAs × 39)``.
DEFAULT_TESTIDS: Tuple[str, ...] = ("t01",)


def classify_outcome(result: ProbeResult) -> str:
    """Bucket one probe conversation (see the module docstring)."""
    if result.stage_reached == "done":
        return "done"
    if result.error_stage == "connect":
        return "noconnect"
    return "stalled"


@dataclass
class ScenarioOutcome:
    """One scenario's probe results and injection tally."""

    label: str
    spec: str
    results: List[ProbeResult] = field(default_factory=list)
    injected: Dict[str, int] = field(default_factory=dict)

    @property
    def buckets(self) -> Dict[str, int]:
        counts = {"done": 0, "stalled": 0, "noconnect": 0}
        for result in self.results:
            counts[classify_outcome(result)] += 1
        return counts


@dataclass
class FaultMatrixResult:
    """The full matrix: one :class:`ScenarioOutcome` per scenario."""

    seed: int
    testids: Tuple[str, ...]
    outcomes: List[ScenarioOutcome] = field(default_factory=list)

    def to_table(self) -> Table:
        table = Table(
            title="Fault matrix: per-MTA probe outcomes by injected fault kind",
            headers=["scenario", "spec", "probes", "done", "stalled", "noconnect", "injected"],
        )
        for outcome in self.outcomes:
            buckets = outcome.buckets
            table.add(
                outcome.label,
                outcome.spec or "(none)",
                len(outcome.results),
                buckets["done"],
                buckets["stalled"],
                buckets["noconnect"],
                sum(outcome.injected.values()),
            )
        table.notes.append(
            "policies %s; plan seeds derived from master seed %d"
            % (",".join(self.testids), self.seed)
        )
        for outcome in self.outcomes:
            if outcome.injected:
                table.notes.append(
                    "%s injections: %s"
                    % (
                        outcome.label,
                        ", ".join(
                            "%s=%d" % pair for pair in sorted(outcome.injected.items())
                        ),
                    )
                )
        return table


def run_fault_matrix(
    universe: Universe,
    seed: int = 2021,
    testids: Sequence[str] = DEFAULT_TESTIDS,
    scenarios: Sequence[Tuple[str, str]] = FAULT_SCENARIOS,
    obs: Optional[Observability] = None,
) -> FaultMatrixResult:
    """Replay the probe campaign once per fault scenario.

    Each scenario gets its own testbed (same universe, same testbed
    seed) so fault effects cannot leak between scenarios through MTA or
    cache state.  Observability defaults to off: the matrix table is the
    artefact, and a shared metrics registry across ten worlds would
    double-count everything.
    """
    matrix = FaultMatrixResult(seed=seed, testids=tuple(testids))
    for label, spec in scenarios:
        faults = (
            FaultPlan.parse(spec, seed=derive_fault_seed(spec, seed)) if spec else None
        )
        testbed = Testbed(
            universe, seed=seed, obs=obs if obs is not None else NULL_OBS, faults=faults
        )
        campaign = ProbeCampaign(
            testbed,
            "FaultMatrix:%s" % label,
            testids=list(testids),
            seed=seed,
            preflight=False,
        )
        result = campaign.run()
        matrix.outcomes.append(
            ScenarioOutcome(
                label=label,
                spec=spec,
                results=result.results,
                injected=dict(faults.injected) if faults is not None else {},
            )
        )
    return matrix
