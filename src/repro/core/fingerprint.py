"""Validator fingerprinting (the paper's Section 8 future work).

    "Among our planned future work is to more fully analyze the results of
    each individual test policy ... The collective set of behaviors might
    be used to classify and even fingerprint an SPF validator
    implementation, to learn how many distinct implementations are
    deployed."

This module implements that idea: each MTA's observable behaviour across
the test policies is folded into a discrete feature vector, identical
vectors are clustered, and the cluster structure estimates how many
distinct validator implementations (or configurations) are deployed.

Like everything in :mod:`repro.core`, the features are computed purely
from the authoritative server's query log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import classify
from repro.core.campaign import ProbeCampaignResult
from repro.core.querylog import QueryIndex
from repro.core.report import Table

#: Feature names in vector order.
FEATURES: Tuple[str, ...] = (
    "lookup_order",  # t01: serial / parallel
    "lookup_limit",  # t02: <=10 / partial / all46
    "helo_check",  # t03
    "syntax_main",  # t04: stops / continues
    "syntax_child",  # t05
    "void_budget",  # t06: <=2 / 3 / 4 / 5
    "mx_fallback",  # t07
    "multiple_records",  # t08: neither / one / both
    "tcp_fallback",  # t09
    "ipv6",  # t10
    "mx_addr_limit",  # t11: <=10 / partial / all20
    "exp_fetch",  # t22
    "redirect_after_all",  # t32
    "ip_macro",  # t20
)


@dataclass(frozen=True)
class BehaviorVector:
    """One MTA's discrete behaviour profile across the test policies.

    ``None`` feature values mean "not observable for this MTA" (it did
    not validate the relevant policy); two MTAs only match if their
    observable features agree exactly.
    """

    values: Tuple[Optional[str], ...]

    def feature(self, name: str) -> Optional[str]:
        return self.values[FEATURES.index(name)]

    @property
    def observed_features(self) -> int:
        return sum(1 for value in self.values if value is not None)

    def to_text(self) -> str:
        return ",".join(
            "%s=%s" % (name, value)
            for name, value in zip(FEATURES, self.values)
            if value is not None
        )


def behavior_vector(mtaid: str, index: QueryIndex) -> BehaviorVector:
    """Fold one MTA's per-policy behaviours into a feature vector."""
    values: List[Optional[str]] = []

    t01 = index.for_pair(mtaid, "t01")
    order = classify.classify_serial_parallel(mtaid, t01).parallel
    values.append(None if order is None else ("parallel" if order else "serial"))

    t02 = classify.classify_lookup_limit(mtaid, index.for_pair(mtaid, "t02"))
    if t02 is None or t02.queries_issued == 0:
        values.append(None)
    elif t02.queries_issued <= 10:
        values.append("<=10")
    elif t02.queries_issued >= 46:
        values.append("all46")
    else:
        values.append("partial")

    t03 = classify.classify_helo(mtaid, index.for_pair(mtaid, "t03"))
    values.append("yes" if t03.checked_helo else ("no" if t03.proceeded_to_mail_domain else None))

    for testid in ("t04", "t05"):
        queries = index.for_pair(mtaid, testid)
        if not classify.spf_validated(queries):
            values.append(None)
        else:
            values.append("continues" if classify.continued_past_error(queries) else "stops")

    t06 = index.for_pair(mtaid, "t06")
    if not classify.spf_validated(t06):
        values.append(None)
    else:
        values.append(str(min(classify.count_void_targets(t06), 5)))

    fallback = classify.did_mx_fallback(index.for_pair(mtaid, "t07"))
    values.append(None if fallback is None else ("yes" if fallback else "no"))

    t08 = index.for_pair(mtaid, "t08")
    if not classify.spf_validated(t08):
        values.append(None)
    else:
        values.append(classify.classify_multiple_records(mtaid, t08).category)

    t09 = classify.classify_tcp_fallback(mtaid, index.for_pair(mtaid, "t09"))
    values.append(None if not t09.tried_udp else ("yes" if t09.retried_tcp else "no"))

    ipv6 = classify.retrieved_over_ipv6(index.for_pair(mtaid, "t10"))
    values.append(None if ipv6 is None else ("yes" if ipv6 else "no"))

    mx_count = classify.count_mx_address_lookups(index.for_pair(mtaid, "t11"))
    if mx_count is None:
        values.append(None)
    elif mx_count <= 10:
        values.append("<=10")
    elif mx_count >= 20:
        values.append("all20")
    else:
        values.append("partial")

    t22 = index.for_pair(mtaid, "t22")
    if not classify.spf_validated(t22):
        values.append(None)
    else:
        values.append("yes" if classify.fetched_explanation(t22) else "no")

    t32 = index.for_pair(mtaid, "t32")
    if not classify.spf_validated(t32):
        values.append(None)
    else:
        values.append("yes" if classify.followed_redirect_after_all(t32) else "no")

    t20 = index.for_pair(mtaid, "t20")
    if not classify.spf_validated(t20):
        values.append(None)
    else:
        values.append("yes" if classify.expanded_ip_macro(t20) else "no")

    return BehaviorVector(tuple(values))


@dataclass
class FingerprintReport:
    """Clustering of MTAs by behaviour vector."""

    clusters: Dict[BehaviorVector, List[str]] = field(default_factory=dict)
    skipped: List[str] = field(default_factory=list)  # MTAs with no signal

    @property
    def distinct_profiles(self) -> int:
        return len(self.clusters)

    @property
    def total_mtas(self) -> int:
        return sum(len(members) for members in self.clusters.values())

    def largest(self, count: int = 10) -> List[Tuple[BehaviorVector, int]]:
        ranked = sorted(self.clusters.items(), key=lambda item: -len(item[1]))
        return [(vector, len(members)) for vector, members in ranked[:count]]

    def entropy_bits(self) -> float:
        """Shannon entropy of the cluster-size distribution — how much a
        fingerprint narrows down *which* deployment you are talking to."""
        total = self.total_mtas
        if total == 0:
            return 0.0
        entropy = 0.0
        for members in self.clusters.values():
            p = len(members) / total
            entropy -= p * math.log2(p)
        return entropy

    def to_table(self, top: int = 10) -> Table:
        table = Table(
            "Section 8: validator fingerprints (distinct profiles: %d, entropy %.2f bits)"
            % (self.distinct_profiles, self.entropy_bits()),
            ["MTAs", "Profile (observable features)"],
        )
        for vector, size in self.largest(top):
            text = vector.to_text()
            table.add(size, text[:100] + ("..." if len(text) > 100 else ""))
        return table


def fingerprint_fleet(
    result: ProbeCampaignResult, min_features: int = 3
) -> FingerprintReport:
    """Cluster every observed-validating MTA by behaviour vector.

    MTAs exposing fewer than ``min_features`` observable features are set
    aside (too little signal to call them an implementation).
    """
    report = FingerprintReport()
    for mtaid in sorted(result.index.mtas_observed()):
        if mtaid not in result.probed:
            continue
        vector = behavior_vector(mtaid, result.index)
        if vector.observed_features < min_features:
            report.skipped.append(mtaid)
            continue
        report.clusters.setdefault(vector, []).append(mtaid)
    return report
