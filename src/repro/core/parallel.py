"""Sharded parallel campaign execution with a deterministic merge.

The virtual-time testbed makes the paper's campaigns embarrassingly
parallel, the same way large active-measurement systems (ZMap-style
scan-out) get their throughput: partition the target population, run each
partition independently, reduce deterministically.  Three facts make the
partition exact rather than approximate:

* **Virtual time.**  Every protocol API threads explicit timestamps, and
  a campaign schedule (:func:`~repro.core.campaign.notify_schedule` /
  :func:`~repro.core.campaign.probe_schedule`) assigns each task its
  start instant up front — task *i* never inherits timing from task
  *i-1*, so executing a subset executes it at identical instants.
* **Path-pure latency.**  :class:`~repro.net.latency.UniformLatency`
  derives each path's delay from ``(seed, path)`` alone, so every
  shard's network times identical exchanges identically.
* **Shard-local state.**  All mutable state lives in per-receiver
  objects (resolver caches, greylists) or in per-delivery senders.
  :func:`~repro.core.datasets.partition_universe` assigns probes by
  mtaid and notify deliveries by provider pool, so each receiver's
  entire workload lands in exactly one shard.

Each worker process stands up a full :class:`~repro.core.campaign.
Testbed` for the universe (receivers filtered to its shard), executes
its slice of the coordinator's schedule, and ships back a picklable
:class:`ShardResult`: campaign records, the raw synthesizing-server
query log, a metrics snapshot, and span counts.  The merge layer
(:func:`merge_shard_results`) reassembles outputs that are
content-identical to a serial run — the same attributed-query multiset,
the same analysis tables, the same tracecheck verdict — which
``tests/test_core_parallel.py`` proves differentially for K ∈ {1, 2, 4}.

Workers are spawn-safe: the worker entry point is a module-level
function and everything it receives or returns pickles cleanly, so the
engine works under any ``multiprocessing`` start method.  Span *objects*
stay in the worker (only counts travel); span/query-log reconciliation
can still run, per shard, inside each worker (``reconcile=True``).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.campaign import (
    NotifyDelivery,
    NotifyEmailCampaign,
    NotifyEmailResult,
    NotifyTask,
    ProbeCampaign,
    ProbeCampaignResult,
    ProbeTask,
    Testbed,
    make_synth_config,
    notify_schedule,
    probe_schedule,
)
from repro.core.datasets import MtaHost, Universe, UniverseShard, partition_universe
from repro.core.policies import POLICIES, policy_by_id
from repro.core.preflight import preflight_policies
from repro.core.probe import ProbeResult
from repro.core.querylog import QueryIndex, attribute_queries
from repro.core.synth import SynthConfig
from repro.dns.server import QueryLogEntry
from repro.net.faults import FaultPlan
from repro.obs import NULL_OBS, Observability
from repro.obs.metrics import MetricsRegistry

_NOTIFY_CAMPAIGN = "notify"
_PROBE_CAMPAIGN = "probe"


@dataclass
class ShardJob:
    """Everything one worker needs, picklable under any start method.

    The coordinator pre-slices its schedule, so a worker never recomputes
    (or risks diverging from) the global ordering; task objects reference
    the same domain/host objects as ``universe``, so the pickle graph
    ships each object once.
    """

    campaign: str  # _NOTIFY_CAMPAIGN | _PROBE_CAMPAIGN
    shard: UniverseShard
    universe: Universe
    tasks: Union[List[NotifyTask], List[ProbeTask]]
    testbed_seed: int
    obs_enabled: bool = True
    reconcile: bool = False
    # notify parameters
    spacing: float = 2.0
    start_time: float = 0.0
    # probe parameters
    name: str = ""
    testids: Tuple[str, ...] = ()
    campaign_seed: int = 0
    sleep_seconds: float = 15.0
    stagger: float = 1.0
    # fault injection: the plan travels as (spec, seed) strings — each
    # worker rebuilds an identical FaultPlan, and because plan decisions
    # are pure functions of (seed, kind, endpoints, virtual time), every
    # shard draws exactly what the serial run would.
    faults_spec: str = ""
    faults_seed: int = 0


@dataclass
class ShardResult:
    """One worker's picklable output."""

    index: int
    deliveries: List[NotifyDelivery] = field(default_factory=list)
    probe_results: List[ProbeResult] = field(default_factory=list)
    raw_log: List[QueryLogEntry] = field(default_factory=list)
    metrics: Optional[MetricsRegistry] = None
    span_count: int = 0
    #: Per-shard span/query-log reconciliation verdict (None if not run).
    reconciled: Optional[bool] = None


@dataclass
class MergedCampaign:
    """A sharded run's merged output — content-identical to a serial run.

    ``raw_log`` is the union of the shard servers' query logs in
    timestamp order; ``metrics`` is the shard registries merged with
    campaign-global gauges restored; ``span_count`` sums the shards'
    span tallies (span objects themselves never leave the workers).
    """

    result: Union[NotifyEmailResult, ProbeCampaignResult]
    raw_log: List[QueryLogEntry]
    synth_config: SynthConfig
    metrics: Optional[MetricsRegistry]
    span_count: int
    shards: int
    workers: int
    #: False if any shard's span/query-log reconciliation failed;
    #: None when reconciliation was not requested.
    reconciled: Optional[bool] = None
    #: Probe campaigns only: the coordinator's pre-flight audits.
    preflight_audits: Dict[str, object] = field(default_factory=dict)


def default_workers() -> int:
    """The runner's default worker count: one per CPU."""
    return os.cpu_count() or 1


def run_shard(job: ShardJob) -> ShardResult:
    """Worker entry point: build the shard's testbed, run its slice.

    Module-level (importable by name) and argument/return picklable, so
    it is valid under fork and spawn alike.
    """
    obs = Observability() if job.obs_enabled else NULL_OBS
    if job.campaign == _NOTIFY_CAMPAIGN:
        mta_filter = job.shard.notify_mtaids
    else:
        mta_filter = job.shard.mtaids
    faults = FaultPlan.parse(job.faults_spec, seed=job.faults_seed) if job.faults_spec else None
    testbed = Testbed(
        job.universe, seed=job.testbed_seed, obs=obs, mta_filter=mta_filter, faults=faults
    )
    result = ShardResult(index=job.shard.index)
    if job.campaign == _NOTIFY_CAMPAIGN:
        campaign = NotifyEmailCampaign(
            testbed, spacing=job.spacing, start_time=job.start_time
        )
        result.deliveries = campaign.run(schedule=job.tasks).deliveries
    elif job.campaign == _PROBE_CAMPAIGN:
        probe_campaign = ProbeCampaign(
            testbed,
            job.name,
            testids=job.testids,
            sleep_seconds=job.sleep_seconds,
            stagger=job.stagger,
            start_time=job.start_time,
            seed=job.campaign_seed,
            preflight=False,  # the coordinator audited the policies once
        )
        result.probe_results = probe_campaign.run(schedule=job.tasks).results
    else:
        raise ValueError("unknown campaign kind: %r" % (job.campaign,))
    result.raw_log = testbed.synth.query_log
    if job.obs_enabled:
        result.metrics = obs.metrics
        result.span_count = len(obs.tracer.finished)
        if job.reconcile:
            from repro.obs.reconcile import reconcile_spans

            verdict = reconcile_spans(
                obs.tracer.finished, testbed.query_index(), testbed.synth_config
            )
            result.reconciled = verdict.matched
    return result


def _execute(jobs: List[ShardJob], workers: int, use_processes: bool) -> List[ShardResult]:
    """Run every job, in shard order, with at most ``workers`` processes."""
    if not jobs:
        return []
    if use_processes and workers > 1:
        with multiprocessing.Pool(processes=min(workers, len(jobs))) as pool:
            return pool.map(run_shard, jobs)
    return [run_shard(job) for job in jobs]


def merge_raw_logs(shard_logs: Sequence[Sequence[QueryLogEntry]]) -> List[QueryLogEntry]:
    """The union of the shards' query logs in virtual-timestamp order.

    A serial server's log is in *arrival* order, which only differs from
    timestamp order for deferred work (post-delivery SPF checks); every
    consumer (``QueryIndex``, tracecheck, the trace dumps) orders by
    timestamp anyway, so the timestamp-sorted union is the canonical
    form.  The sort is stable with ties broken by shard order; distinct
    conversations get distinct continuous latencies, so cross-shard ties
    do not occur in practice.
    """
    merged: List[QueryLogEntry] = []
    for log in shard_logs:
        merged.extend(log)
    merged.sort(key=lambda entry: entry.timestamp)
    return merged


def _merge_metrics(
    shard_results: Sequence[ShardResult], obs_enabled: bool
) -> Optional[MetricsRegistry]:
    if not obs_enabled:
        return None
    return MetricsRegistry.merged(
        shard.metrics for shard in shard_results if shard.metrics is not None
    )


def _merged_reconciliation(shard_results: Sequence[ShardResult]) -> Optional[bool]:
    verdicts = [shard.reconciled for shard in shard_results if shard.reconciled is not None]
    if not verdicts:
        return None
    return all(verdicts)


def merge_shard_results(
    campaign: str,
    schedule: Union[Sequence[NotifyTask], Sequence[ProbeTask]],
    shard_results: Sequence[ShardResult],
    synth_config: SynthConfig,
    name: str = "",
    obs_enabled: bool = True,
) -> Tuple[Union[NotifyEmailResult, ProbeCampaignResult], List[QueryLogEntry], Optional[MetricsRegistry]]:
    """Deterministic reduce: shard outputs → serial-identical objects.

    Record lists are re-ordered to the coordinator's schedule (the order
    the serial path would have produced them in), the raw logs merge by
    timestamp, and the metrics registries merge with the campaign-global
    gauges overwritten — shard workers each recorded their local slice
    size, but the serial run records the global one.
    """
    raw_log = merge_raw_logs([shard.raw_log for shard in shard_results])
    index = QueryIndex(attribute_queries(raw_log, synth_config))
    metrics = _merge_metrics(shard_results, obs_enabled)
    if campaign == _NOTIFY_CAMPAIGN:
        by_domain: Dict[str, NotifyDelivery] = {}
        for shard in shard_results:
            for delivery in shard.deliveries:
                by_domain[delivery.domain.domainid] = delivery
        deliveries = [
            by_domain[task.domain.domainid]
            for task in schedule
            if task.domain.domainid in by_domain
        ]
        if metrics is not None:
            metrics.gauge("campaign_domains", len(deliveries), (("campaign", "notifyemail"),))
        return NotifyEmailResult(deliveries, index), raw_log, metrics
    by_pair: Dict[Tuple[str, str], ProbeResult] = {}
    for shard in shard_results:
        for probe in shard.probe_results:
            by_pair[(probe.mtaid, probe.testid)] = probe
    results: List[ProbeResult] = []
    probed: Dict[str, MtaHost] = {}
    recipients: Dict[str, str] = {}
    for task in schedule:
        probed[task.host.mtaid] = task.host
        recipients[task.host.mtaid] = task.rcpt_domain
        for testid in task.order:
            probe = by_pair.get((task.host.mtaid, testid))
            if probe is not None:
                results.append(probe)
    if metrics is not None:
        metrics.gauge("campaign_eligible_mtas", len(schedule), (("campaign", name),))
    merged = ProbeCampaignResult(
        name=name,
        results=results,
        index=index,
        probed=probed,
        recipient_domain=recipients,
    )
    return merged, raw_log, metrics


def run_notify_sharded(
    universe: Universe,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    testbed_seed: int = 0,
    spacing: float = 2.0,
    start_time: float = 0.0,
    obs: bool = True,
    reconcile: bool = False,
    use_processes: bool = True,
    faults_spec: str = "",
    faults_seed: int = 0,
) -> MergedCampaign:
    """The NotifyEmail campaign, sharded K ways over worker processes.

    Produces deliveries, an attributed query index, and metrics
    content-identical to ``NotifyEmailCampaign(Testbed(universe,
    seed=testbed_seed)).run()``.
    """
    workers = workers if workers is not None else default_workers()
    shards = shards if shards is not None else max(1, workers)
    _, synth_config = make_synth_config(testbed_seed)
    schedule = notify_schedule(universe.domains, spacing=spacing, start_time=start_time)
    slices: Dict[int, List[NotifyTask]] = {}
    partition = partition_universe(universe, shards)
    for shard in partition:
        slices[shard.index] = []
    lookup = {}
    for shard in partition:
        for domainid in shard.domainids:
            lookup[domainid] = shard.index
    for task in schedule:
        slices[lookup[task.domain.domainid]].append(task)
    jobs = [
        ShardJob(
            campaign=_NOTIFY_CAMPAIGN,
            shard=shard,
            universe=universe,
            tasks=slices[shard.index],
            testbed_seed=testbed_seed,
            obs_enabled=obs,
            reconcile=reconcile,
            spacing=spacing,
            start_time=start_time,
            faults_spec=faults_spec,
            faults_seed=faults_seed,
        )
        for shard in partition
        if slices[shard.index]
    ]
    shard_results = _execute(jobs, workers, use_processes)
    result, raw_log, metrics = merge_shard_results(
        _NOTIFY_CAMPAIGN, schedule, shard_results, synth_config, obs_enabled=obs
    )
    return MergedCampaign(
        result=result,
        raw_log=raw_log,
        synth_config=synth_config,
        metrics=metrics,
        span_count=sum(shard.span_count for shard in shard_results),
        shards=shards,
        workers=workers,
        reconciled=_merged_reconciliation(shard_results),
    )


def run_probe_sharded(
    universe: Universe,
    name: str,
    testids: Optional[Sequence[str]] = None,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    testbed_seed: int = 0,
    campaign_seed: int = 0,
    sleep_seconds: float = 15.0,
    stagger: float = 1.0,
    start_time: float = 0.0,
    preflight: bool = True,
    obs: bool = True,
    reconcile: bool = False,
    use_processes: bool = True,
    faults_spec: str = "",
    faults_seed: int = 0,
) -> MergedCampaign:
    """The probe campaign (NotifyMX / TwoWeekMX), sharded K ways.

    Produces results, an attributed query index, and metrics
    content-identical to ``ProbeCampaign(Testbed(universe,
    seed=testbed_seed), name, seed=campaign_seed, ...).run()``.
    """
    workers = workers if workers is not None else default_workers()
    shards = shards if shards is not None else max(1, workers)
    testid_list = tuple(testids) if testids is not None else tuple(p.testid for p in POLICIES)
    audits = (
        preflight_policies(policy_by_id(testid) for testid in testid_list)
        if preflight
        else {}
    )
    _, synth_config = make_synth_config(testbed_seed)
    schedule = probe_schedule(
        universe,
        testid_list,
        seed=campaign_seed,
        stagger=stagger,
        start_time=start_time,
    )
    partition = partition_universe(universe, shards)
    slices: Dict[int, List[ProbeTask]] = {shard.index: [] for shard in partition}
    lookup = {}
    for shard in partition:
        for mtaid in shard.mtaids:
            lookup[mtaid] = shard.index
    for task in schedule:
        slices[lookup[task.host.mtaid]].append(task)
    jobs = [
        ShardJob(
            campaign=_PROBE_CAMPAIGN,
            shard=shard,
            universe=universe,
            tasks=slices[shard.index],
            testbed_seed=testbed_seed,
            obs_enabled=obs,
            reconcile=reconcile,
            name=name,
            testids=testid_list,
            campaign_seed=campaign_seed,
            sleep_seconds=sleep_seconds,
            stagger=stagger,
            start_time=start_time,
            faults_spec=faults_spec,
            faults_seed=faults_seed,
        )
        for shard in partition
        if slices[shard.index]
    ]
    shard_results = _execute(jobs, workers, use_processes)
    result, raw_log, metrics = merge_shard_results(
        _PROBE_CAMPAIGN, schedule, shard_results, synth_config, name=name, obs_enabled=obs
    )
    return MergedCampaign(
        result=result,
        raw_log=raw_log,
        synth_config=synth_config,
        metrics=metrics,
        span_count=sum(shard.span_count for shard in shard_results),
        shards=shards,
        workers=workers,
        reconciled=_merged_reconciliation(shard_results),
        preflight_audits=audits,
    )
