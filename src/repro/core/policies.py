"""The SPF test policies (paper Section 4.3.2).

The paper built 39 test policies, each probing one validation behaviour,
and documents roughly a dozen of them.  Every documented policy is
implemented here faithfully (with its paper section noted); the remainder
are adjacent probes — clearly labelled ``documented=False`` — so that the
harness genuinely carries 39 distinct ``testid``\\ s, as the original did.

A policy answers DNS queries for names of the form::

    [<sublabels>...].<testid>.<mtaid>.spf-test.dns-lab.org

given only the relative ``sublabels`` — the synthesizing server supplies a
:class:`PolicyContext` carrying the absolute base name.  Responses are
declarative: a mapping from sublabel patterns to records, plus per-label
delays and truncation flags.  ``{base}``, ``{v6base}`` and ``{helo}``
placeholders are expanded at synthesis time, which is how a single policy
definition serves every MTA with unique, attributable names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dns.rdata import (
    AAAARecord,
    ARecord,
    CnameRecord,
    MxRecord,
    Rdata,
    RdataType,
    TxtRecord,
)

#: Address the probe policies authorize — deliberately NOT the probe's
#: address, so every probe-side validation fails (the paper's
#: "designed-to-fail" requirement).
UNAFFILIATED_IP = "192.0.2.1"


@dataclass
class PolicyContext:
    """Everything a policy needs to synthesize absolute records."""

    base: str  # <testid>.<mtaid>.<suffix>  (no trailing dot)
    mtaid: str
    testid: str
    v6_base: str = ""  # same labels under the IPv6-only suffix
    helo_base: str = ""  # the HELO identity the probe announces
    probe_ipv4: str = "203.0.113.250"
    probe_ipv6: str = "2001:db8:fe::250"
    #: For NotifyEmail-style policies: addresses that SHOULD validate.
    valid_sender_ips: Sequence[str] = ()
    dkim_key_b64: str = ""

    def expand(self, template: str) -> str:
        return (
            template.replace("{base}", self.base)
            .replace("{v6base}", self.v6_base)
            .replace("{helo}", self.helo_base)
            .replace("{probe4}", self.probe_ipv4)
        )


@dataclass
class SynthResponse:
    """What the server should answer for one (name, type) query."""

    records: List[Rdata] = field(default_factory=list)
    nxdomain: bool = False
    delay: float = 0.0
    force_tcp: bool = False


#: Record spec: (rdtype name, value).  TXT: text; A/AAAA: address;
#: MX: "pref exchange"; CNAME: target.  Values may use placeholders.
RecordSpec = Tuple[str, str]


def _build_rdata(spec: RecordSpec, ctx: PolicyContext) -> Rdata:
    rtype, value = spec
    value = ctx.expand(value)
    if rtype == "TXT":
        return TxtRecord(value)
    if rtype == "A":
        return ARecord(value)
    if rtype == "AAAA":
        return AAAARecord(value)
    if rtype == "MX":
        preference, _, exchange = value.partition(" ")
        return MxRecord(int(preference), exchange)
    if rtype == "CNAME":
        return CnameRecord(value)
    raise ValueError("unknown record spec type %r" % rtype)


class TestPolicy:
    """Base class: a declarative name->records map with per-name options.

    ``records`` maps sublabel patterns to record-spec lists.  A pattern is
    a tuple of labels matched right-aligned against the query's sublabels;
    ``"*"`` matches exactly one label and a leading ``"**"`` matches any
    number (including zero).  The empty tuple is the policy's own name
    (where the L0 TXT lives).
    """

    __test__ = False  # not a pytest test class, despite the name
    documented = False
    section = ""

    def __init__(
        self,
        testid: str,
        name: str,
        description: str,
        records: Dict[Tuple[str, ...], List[RecordSpec]],
        delays: Optional[Dict[str, float]] = None,
        force_tcp_labels: Sequence[str] = (),
        documented: bool = False,
        section: str = "",
    ) -> None:
        self.testid = testid
        self.name = name
        self.description = description
        self.records = records
        self.delays = delays or {}
        self.force_tcp_labels = frozenset(force_tcp_labels)
        self.documented = documented
        self.section = section

    # -- resolution ------------------------------------------------------

    def respond(self, sub: Tuple[str, ...], qtype: RdataType, ctx: PolicyContext) -> SynthResponse:
        specs = self._match(sub)
        response = SynthResponse()
        head = sub[0] if sub else ""
        response.delay = self.delays.get(head, 0.0)
        response.force_tcp = head in self.force_tcp_labels
        if specs is None:
            response.nxdomain = True
            return response
        for spec in specs:
            rdata = _build_rdata(spec, ctx)
            if rdata.rdtype == qtype or (
                qtype == RdataType.CNAME and rdata.rdtype == RdataType.CNAME
            ):
                response.records.append(rdata)
            elif rdata.rdtype == RdataType.CNAME:
                # CNAMEs apply to any query type.
                response.records.append(rdata)
        return response

    def _match(self, sub: Tuple[str, ...]) -> Optional[List[RecordSpec]]:
        exact = self.records.get(sub)
        if exact is not None:
            return exact
        for pattern, specs in self.records.items():
            if _pattern_matches(pattern, sub):
                return specs
        return None

    def all_names_hint(self) -> List[Tuple[str, ...]]:
        """The concrete sublabel paths (patterns excluded) — used by tests
        and documentation tooling."""
        return [key for key in self.records if "*" not in key and "**" not in key]

    def __repr__(self) -> str:
        return "TestPolicy(%s, %s)" % (self.testid, self.name)


def _pattern_matches(pattern: Tuple[str, ...], sub: Tuple[str, ...]) -> bool:
    if "*" not in pattern and "**" not in pattern:
        return False
    if pattern and pattern[0] == "**":
        tail = pattern[1:]
        if len(sub) < len(tail):
            return False
        candidate = sub[len(sub) - len(tail) :]
        return all(p == "*" or p == c for p, c in zip(tail, candidate))
    if len(pattern) != len(sub):
        return False
    return all(p == "*" or p == c for p, c in zip(pattern, sub))


# -- the catalogue -------------------------------------------------------


#: Figure 4 tree shape: 6 branches hanging off L0, each an include chain
#: of 5 levels (L1..L5); branches 1-4 additionally carry one 'a' term at
#: levels 1-4.  Totals: 30 include mechanisms, 16 address lookups — the
#: paper's 46 post-base queries, within the paper's 5 policy levels.
T02_BRANCHES = 6
T02_LEVELS = 5
T02_A_BRANCHES = 4  # branches that carry 'a' terms
T02_A_LEVELS = 4  # levels 1..4 of those branches carry one 'a' each


def _chain_records() -> Dict[Tuple[str, ...], List[RecordSpec]]:
    """The Figure 4 lookup-limit tree.

    Names: ``b<i>l<j>`` is the branch-*i* policy at level *j*;
    ``b<i>a<j>`` is the (resolvable) 'a' target referenced from it.
    Every child policy ends in ``?all``, so a serial evaluator descends
    the include chain first and resolves the 'a' terms while unwinding.
    """
    records: Dict[Tuple[str, ...], List[RecordSpec]] = {}
    l0_terms = " ".join("include:b%dl1.{base}" % branch for branch in range(1, T02_BRANCHES + 1))
    records[()] = [("TXT", "v=spf1 %s ?all" % l0_terms)]
    for branch in range(1, T02_BRANCHES + 1):
        carries_a = branch <= T02_A_BRANCHES
        for level in range(1, T02_LEVELS + 1):
            terms = []
            if level < T02_LEVELS:
                terms.append("include:b%dl%d.{base}" % (branch, level + 1))
            if carries_a and level <= T02_A_LEVELS:
                terms.append("a:b%da%d.{base}" % (branch, level))
                records[("b%da%d" % (branch, level),)] = [
                    ("A", "192.0.2.%d" % (10 + branch * 10 + level))
                ]
            records[("b%dl%d" % (branch, level),)] = [
                ("TXT", "v=spf1 %s ?all" % " ".join(terms) if terms else "v=spf1 ?all")
            ]
    return records


def t02_query_order() -> Dict[str, int]:
    """Serial (depth-first) arrival order of the 46 post-base queries."""
    order: Dict[str, int] = {}
    position = 0
    for branch in range(1, T02_BRANCHES + 1):
        carries_a = branch <= T02_A_BRANCHES
        for level in range(1, T02_LEVELS + 1):  # descend the include chain
            position += 1
            order["b%dl%d" % (branch, level)] = position
        if carries_a:
            for level in range(T02_A_LEVELS, 0, -1):  # unwind the 'a' terms
                position += 1
                order["b%da%d" % (branch, level)] = position
    assert position == 46
    return order


def _deep_chain(levels: int) -> Dict[Tuple[str, ...], List[RecordSpec]]:
    records: Dict[Tuple[str, ...], List[RecordSpec]] = {
        (): [("TXT", "v=spf1 include:n1.{base} ?all")]
    }
    for index in range(1, levels + 1):
        body = "include:n%d.{base} ?all" % (index + 1) if index < levels else "?all"
        records[("n%d" % index,)] = [("TXT", "v=spf1 %s" % body)]
    return records


def build_policies() -> List[TestPolicy]:
    """Construct the full 39-policy catalogue."""
    policies: List[TestPolicy] = []
    add = policies.append

    # ---- documented policies -------------------------------------------

    add(TestPolicy(
        "t01", "serial_parallel",
        "Figure 3 policy: include chain L1..L3 (100 ms server delays on L1 "
        "and L2) plus an 'a' mechanism; the arrival order of the A query "
        "relative to the L3 TXT query separates serial from parallel "
        "validators.",
        {
            (): [("TXT", "v=spf1 include:l1.{base} a:foo.{base} -all")],
            ("l1",): [("TXT", "v=spf1 include:l2.{base} ?all")],
            ("l2",): [("TXT", "v=spf1 include:l3.{base} ?all")],
            ("l3",): [("TXT", "v=spf1 ?all")],
            ("foo",): [("A", UNAFFILIATED_IP)],
        },
        delays={"l1": 0.1, "l2": 0.1},
        documented=True, section="7.1",
    ))

    add(TestPolicy(
        "t02", "lookup_limits",
        "Figure 4 policy: 30 include mechanisms and 16 address lookups "
        "(46 post-base queries across 5 policy levels), 800 ms delay on "
        "every response, so the last query name reveals how many lookups "
        "a validator performed and a lower bound on how long it kept "
        "going.",
        _chain_records(),
        delays={name: 0.8 for name in t02_query_order()},
        documented=True, section="7.2",
    ))

    add(TestPolicy(
        "t03", "helo_policy",
        "A reject-all policy published for the probe's HELO identity; "
        "validators that pre-check HELO (5.0% observed) query it, and all "
        "of them then proceed to the MAIL domain anyway.",
        {
            (): [("TXT", "v=spf1 -all")],
            # The probe announces HELO as h.<testid>.<mtaid>.<suffix>, so a
            # HELO-checking validator's TXT query arrives with sub=("h",).
            ("h",): [("TXT", "v=spf1 -all")],
        },
        documented=True, section="7.3",
    ))

    add(TestPolicy(
        "t04", "syntax_error_main",
        "Main policy contains 'ipv4:' (misspelled mechanism); compliant "
        "validators permerror immediately, tolerant ones (5.5% observed) "
        "keep going and betray themselves by querying the 'a' target to "
        "the right of the error.",
        {
            (): [("TXT", "v=spf1 ipv4:192.0.2.1 a:after.{base} -all")],
            ("after",): [("A", UNAFFILIATED_IP)],
        },
        documented=True, section="7.3",
    ))

    add(TestPolicy(
        "t05", "syntax_error_child",
        "Syntax error inside an included (child) policy; validators that "
        "keep evaluating the parent (12.3% observed) query the 'a' target "
        "after the include.",
        {
            (): [("TXT", "v=spf1 include:l1.{base} a:after.{base} -all")],
            ("l1",): [("TXT", "v=spf1 ipv4:192.0.2.1 -all")],
            ("after",): [("A", UNAFFILIATED_IP)],
        },
        documented=True, section="7.3",
    ))

    add(TestPolicy(
        "t06", "void_lookups",
        "Five 'a' mechanisms, none of which resolve; the spec allows two "
        "void lookups (97% exceeded that, 64% chased all five).",
        {
            (): [("TXT", "v=spf1 a:v1.{base} a:v2.{base} a:v3.{base} a:v4.{base} a:v5.{base} -all")],
            # v1..v5 deliberately have no entries: NXDOMAIN.
        },
        documented=True, section="7.3",
    ))

    add(TestPolicy(
        "t07", "mx_fallback",
        "'mx' mechanism whose target publishes no MX records; the implicit "
        "A/AAAA fallback of mail routing is explicitly disallowed in SPF, "
        "yet 14% of validators performed it.",
        {
            (): [("TXT", "v=spf1 mx:nomx.{base} -all")],
            ("nomx",): [("TXT", "placeholder to make the name exist")],
        },
        documented=True, section="7.3",
    ))

    add(TestPolicy(
        "t08", "multiple_records",
        "Two valid SPF records at the same name, each pointing its 'a' at "
        "a distinct target; the spec demands permerror (77% complied), "
        "following either record (23%) is visible from which target gets "
        "queried.",
        {
            (): [
                ("TXT", "v=spf1 a:pol1.{base} -all"),
                ("TXT", "v=spf1 a:pol2.{base} -all"),
            ],
            ("pol1",): [("A", UNAFFILIATED_IP)],
            ("pol2",): [("A", "192.0.2.2")],
        },
        documented=True, section="7.3",
    ))

    add(TestPolicy(
        "t09", "tcp_only",
        "The included child policy is only retrievable over TCP (UDP "
        "responses come back truncated); 2 of 1,336 resolvers failed to "
        "fall back.",
        {
            (): [("TXT", "v=spf1 include:l1tcp.{base} -all")],
            ("l1tcp",): [("TXT", "v=spf1 ?all")],
        },
        force_tcp_labels=("l1tcp",),
        documented=True, section="7.3",
    ))

    add(TestPolicy(
        "t10", "ipv6_only",
        "The included child policy lives under a suffix whose "
        "authoritative servers have only IPv6 addresses; 49% of MTAs "
        "retrieved it.",
        {
            (): [("TXT", "v=spf1 include:l1.{v6base} -all")],
            ("l1",): [("TXT", "v=spf1 ?all")],  # served under the v6 suffix
        },
        documented=True, section="7.3",
    ))

    add(TestPolicy(
        "t11", "mx_address_limit",
        "An 'mx' mechanism yielding 20 MX records; the spec caps address "
        "lookups at 10 (7.7% complied; 64% queried all 20 exchanges).",
        {
            (): [("TXT", "v=spf1 mx:many.{base} -all")],
            ("many",): [("MX", "%d h%02d.{base}" % (i, i)) for i in range(1, 21)],
            **{("h%02d" % i,): [("A", "192.0.2.%d" % (100 + i))] for i in range(1, 21)},
        },
        documented=True, section="7.3",
    ))

    # ---- undocumented companions (filling out the 39) --------------------

    add(TestPolicy(
        "t12", "baseline_fail",
        "Plain 'v=spf1 -all'; the L0 TXT query is the primary "
        "SPF-validating signal for an MTA.",
        {(): [("TXT", "v=spf1 -all")]},
    ))
    add(TestPolicy(
        "t13", "baseline_softfail",
        "Plain '~all' policy.",
        {(): [("TXT", "v=spf1 ~all")]},
    ))
    add(TestPolicy(
        "t14", "baseline_neutral",
        "Plain '?all' policy.",
        {(): [("TXT", "v=spf1 ?all")]},
    ))
    add(TestPolicy(
        "t15", "passing_sender",
        "Authorizes the probe's own address, the one probe policy designed "
        "to pass.",
        {(): [("TXT", "v=spf1 ip4:{probe4} -all")]},
    ))
    add(TestPolicy(
        "t16", "redirect_simple",
        "redirect= to a sibling policy.",
        {
            (): [("TXT", "v=spf1 redirect=r1.{base}")],
            ("r1",): [("TXT", "v=spf1 -all")],
        },
    ))
    add(TestPolicy(
        "t17", "redirect_loop",
        "redirect= pointing at itself; sound validators abort via the "
        "lookup limit.",
        {(): [("TXT", "v=spf1 redirect={base}")]},
    ))
    add(TestPolicy(
        "t18", "include_loop",
        "Policy that includes itself.",
        {(): [("TXT", "v=spf1 include:{base} -all")]},
    ))
    add(TestPolicy(
        "t19", "deep_nesting",
        "A 25-level include chain with no delays; distinguishes count-based "
        "limit enforcement from timeouts.",
        _deep_chain(25),
    ))
    add(TestPolicy(
        "t20", "exists_ip_macro",
        "exists:%{ir}.%{v}.e.<base>: checks macro expansion of the client "
        "address; any name under 'e' resolves.",
        {
            (): [("TXT", "v=spf1 exists:%{ir}.%{v}.e.{base} -all")],
            ("**", "e"): [("A", "127.0.0.2")],
        },
    ))
    add(TestPolicy(
        "t21", "exists_local_macro",
        "exists:%{l}.lp.<base>: macro expansion of the sender local part.",
        {
            (): [("TXT", "v=spf1 exists:%{l}.lp.{base} -all")],
            ("**", "lp"): [("A", "127.0.0.2")],
        },
    ))
    add(TestPolicy(
        "t22", "exp_modifier",
        "'-all exp=why.<base>'; failing validators that honour exp= fetch "
        "the explanation TXT.",
        {
            (): [("TXT", "v=spf1 -all exp=why.{base}")],
            ("why",): [("TXT", "Mail from %{s} is not authorized by {base}")],
        },
    ))
    add(TestPolicy(
        "t23", "cname_policy",
        "The policy TXT sits behind a CNAME.",
        {
            (): [("CNAME", "real.{base}")],
            ("real",): [("TXT", "v=spf1 -all")],
        },
    ))
    add(TestPolicy(
        "t24", "oversize_policy",
        "A >512-octet policy record, organically truncated over UDP "
        "(unlike t09's forced truncation).",
        {
            (): [("TXT", "v=spf1 " + " ".join("ip4:192.0.2.%d" % i for i in range(1, 120)) + " -all")],
        },
    ))
    add(TestPolicy(
        "t25", "empty_policy",
        "Bare 'v=spf1' — evaluates to neutral.",
        {(): [("TXT", "v=spf1")]},
    ))
    add(TestPolicy(
        "t26", "unknown_modifier",
        "An unknown modifier that compliant validators must ignore, "
        "followed by an 'a' target that shows they kept going.",
        {
            (): [("TXT", "v=spf1 moo=cow a:next.{base} -all")],
            ("next",): [("A", UNAFFILIATED_IP)],
        },
    ))
    add(TestPolicy(
        "t27", "mixed_case",
        "Mechanism names in mixed case (A:, -ALL); matching is "
        "case-insensitive per spec.",
        {
            (): [("TXT", "v=spf1 A:uc.{base} -ALL")],
            ("uc",): [("A", UNAFFILIATED_IP)],
        },
    ))
    add(TestPolicy(
        "t28", "ptr_mechanism",
        "A 'ptr' mechanism; reveals validators willing to do reverse "
        "lookups (the spec says SHOULD NOT use).",
        {(): [("TXT", "v=spf1 ptr:{base} -all")]},
    ))
    add(TestPolicy(
        "t29", "a_dual_cidr",
        "'a' with dual CIDR lengths.",
        {
            (): [("TXT", "v=spf1 a:net.{base}/24//64 -all")],
            ("net",): [("A", "192.0.2.1"), ("AAAA", "2001:db8:99::1")],
        },
    ))
    add(TestPolicy(
        "t30", "include_non_spf",
        "The include target exists but carries no SPF record (permerror); "
        "an 'a' term after it shows who keeps evaluating.",
        {
            (): [("TXT", "v=spf1 include:l1.{base} a:after.{base} -all")],
            ("l1",): [("TXT", "just some text, not a policy")],
            ("after",): [("A", UNAFFILIATED_IP)],
        },
    ))
    add(TestPolicy(
        "t31", "include_slow_child",
        "The include target's server answers after a very long delay "
        "(temperror for impatient resolvers).",
        {
            (): [("TXT", "v=spf1 include:slow.{base} a:after.{base} -all")],
            ("slow",): [("TXT", "v=spf1 ?all")],
            ("after",): [("A", UNAFFILIATED_IP)],
        },
        delays={"slow": 9.0},
    ))
    add(TestPolicy(
        "t32", "redirect_after_all",
        "redirect= alongside an 'all' mechanism; the redirect must be "
        "ignored, so any query for the redirect target is a violation.",
        {
            (): [("TXT", "v=spf1 -all redirect=r.{base}")],
            ("r",): [("TXT", "v=spf1 ?all")],
        },
    ))
    add(TestPolicy(
        "t33", "void_exists",
        "Five void lookups via 'exists' instead of 'a'.",
        {
            (): [("TXT", "v=spf1 " + " ".join("exists:w%d.{base}" % i for i in range(1, 6)) + " -all")],
        },
    ))
    add(TestPolicy(
        "t34", "multi_string_txt",
        "The policy TXT is split across several character-strings that "
        "must be concatenated before parsing.",
        {
            (): [("TXT", "")],  # replaced below; placeholder
            ("seg",): [("A", UNAFFILIATED_IP)],
        },
    ))
    add(TestPolicy(
        "t35", "null_mx",
        "'mx' whose target publishes a null MX (RFC 7505, '0 .'); no "
        "address lookup should follow.",
        {
            (): [("TXT", "v=spf1 mx:nullmx.{base} -all")],
            ("nullmx",): [("MX", "0 .")],
        },
    ))
    add(TestPolicy(
        "t36", "ip6_literal",
        "A pure ip6 literal policy; no follow-up queries expected.",
        {(): [("TXT", "v=spf1 ip6:2001:db8:ffff::/48 -all")]},
    ))
    add(TestPolicy(
        "t37", "slow_base",
        "The L0 response itself is delayed 5 s; probes resolver patience "
        "with the base policy lookup.",
        {(): [("TXT", "v=spf1 -all")]},
        delays={"": 5.0},
    ))
    add(TestPolicy(
        "t38", "dmarc_bait",
        "Publishes a DMARC record for the From domain; any _dmarc query "
        "during a session that never carries a message is notable.",
        {
            (): [("TXT", "v=spf1 -all")],
            ("_dmarc",): [("TXT", "v=DMARC1; p=reject; rua=mailto:contact@dns-lab.org")],
        },
    ))
    add(TestPolicy(
        "t39", "dual_suffix_include",
        "Includes one child under the normal suffix and one under the "
        "IPv6-only suffix; cross-checks t10 within a single evaluation.",
        {
            (): [("TXT", "v=spf1 include:c4.{base} include:l1.{v6base} -all")],
            ("c4",): [("TXT", "v=spf1 ?all")],
            ("l1",): [("TXT", "v=spf1 ?all")],
        },
    ))

    # t34 needs an explicitly multi-string TXT record, which the spec
    # format cannot express; patch it in directly.
    t34 = next(policy for policy in policies if policy.testid == "t34")

    class _MultiStringPolicy(TestPolicy):
        def respond(self, sub, qtype, ctx):
            if sub == () and qtype == RdataType.TXT:
                text = "v=spf1 a:seg.%s -all" % ctx.base
                midpoint = len(text) // 2
                return SynthResponse(records=[TxtRecord([text[:midpoint], text[midpoint:]])])
            return super().respond(sub, qtype, ctx)

    patched = _MultiStringPolicy(
        t34.testid, t34.name, t34.description,
        {("seg",): [("A", UNAFFILIATED_IP)]},
    )
    policies[policies.index(t34)] = patched

    assert len(policies) == 39, "the paper's catalogue has 39 test policies"
    assert len({policy.testid for policy in policies}) == 39
    return policies


#: The singleton catalogue.
POLICIES: List[TestPolicy] = build_policies()

_BY_ID = {policy.testid: policy for policy in POLICIES}


def policy_by_id(testid: str) -> TestPolicy:
    return _BY_ID[testid]


class NotifyEmailPolicy(TestPolicy):
    """The NotifyEmail SPF/DKIM/DMARC configuration (Section 4.3.1).

    Unlike the probe policies, this one authorizes the *real* sending
    MTA (via an 'a' mechanism, so validators must resolve it) and also
    embeds the serial-vs-parallel include chain.  DKIM key and DMARC
    policy records complete the per-domain set.
    """

    def __init__(self) -> None:
        super().__init__(
            "notify", "notify_email",
            "Valid-sender policy with include chain, DKIM key, and strict "
            "DMARC record.",
            {},
            documented=True, section="4.3.1",
        )

    def respond(self, sub: Tuple[str, ...], qtype: RdataType, ctx: PolicyContext) -> SynthResponse:
        response = SynthResponse()
        if sub in (("l1",), ("l2",)):
            response.delay = 0.1
        if sub == ():
            if qtype == RdataType.TXT:
                response.records.append(
                    TxtRecord("v=spf1 include:l1.%s a:mta.%s -all" % (ctx.base, ctx.base))
                )
            return response
        if sub == ("l1",):
            if qtype == RdataType.TXT:
                response.records.append(TxtRecord("v=spf1 include:l2.%s ?all" % ctx.base))
            return response
        if sub == ("l2",):
            if qtype == RdataType.TXT:
                response.records.append(TxtRecord("v=spf1 include:l3.%s ?all" % ctx.base))
            return response
        if sub == ("l3",):
            if qtype == RdataType.TXT:
                response.records.append(TxtRecord("v=spf1 ?all"))
            return response
        if sub == ("mta",):
            for address in ctx.valid_sender_ips:
                if ":" in address and qtype == RdataType.AAAA:
                    response.records.append(AAAARecord(address))
                elif ":" not in address and qtype == RdataType.A:
                    response.records.append(ARecord(address))
            return response
        if sub == ("sel", "_domainkey"):
            if qtype == RdataType.TXT and ctx.dkim_key_b64:
                response.records.append(TxtRecord("v=DKIM1; k=rsa; p=%s" % ctx.dkim_key_b64))
            return response
        if sub == ("_dmarc",):
            if qtype == RdataType.TXT:
                response.records.append(
                    TxtRecord("v=DMARC1; p=reject; rua=mailto:contact@dns-lab.org")
                )
            return response
        response.nxdomain = True
        return response


NOTIFY_POLICY = NotifyEmailPolicy()
