"""Static pre-flight auditing of test policies.

Before a campaign starts probing, it can cheaply verify that every test
policy it is about to deploy actually publishes an analyzable L0 SPF
record — the static equivalent of the paper authors eyeballing their
zone before burning two weeks of measurement time.  The audit runs the
:mod:`repro.lint` term-graph analysis over each policy's declarative
record map through a :class:`PolicyRecordSource`, so **zero simulated DNS
queries** are issued: the campaign's query log, which every analysis in
:mod:`repro.core.analysis` is derived from, is untouched.

Policies are *designed* to be pathological (cycles, 46-lookup trees,
syntax errors), so findings are expected and never fatal; only a policy
with no SPF record at its base name — which would make its probe measure
nothing at all — raises :class:`PreflightError`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.policies import PolicyContext, TestPolicy
from repro.dns.name import Name
from repro.dns.rdata import RdataType
from repro.lint.source import RecordSource, SourceAnswer, SourceStatus
from repro.lint.spfgraph import SpfAudit, SpfLimits, audit_spf_domain


class PreflightError(Exception):
    """A test policy cannot possibly measure anything."""


class PolicyRecordSource(RecordSource):
    """Adapts a :class:`TestPolicy`'s declarative record map to the static
    analyzer's :class:`RecordSource` interface.

    Names under the policy's base (or IPv6 base) are answered by the same
    ``respond`` method the synthesizing DNS server uses — so the analyzer
    sees byte-for-byte the records a validator would, minus the wire.
    Everything else is UNKNOWN: a policy has no opinion about the rest of
    the Internet.
    """

    def __init__(self, policy: TestPolicy, ctx: PolicyContext) -> None:
        self.policy = policy
        self.ctx = ctx
        self._bases: List[Name] = [Name(ctx.base)]
        if ctx.v6_base:
            self._bases.append(Name(ctx.v6_base))

    def fetch(self, name: Union[str, Name], rdtype: RdataType) -> SourceAnswer:
        owner = Name(name)
        for base in self._bases:
            if owner.is_subdomain_of(base):
                sub = tuple(label.lower() for label in owner.relativize(base))
                response = self.policy.respond(sub, rdtype, self.ctx)
                if response.nxdomain:
                    return SourceAnswer(SourceStatus.NXDOMAIN)
                if not response.records:
                    return SourceAnswer(SourceStatus.NODATA)
                return SourceAnswer(SourceStatus.FOUND, response.records)
        return SourceAnswer(SourceStatus.UNKNOWN)


def preflight_context(policy: TestPolicy, suffix: str = "preflight.invalid") -> PolicyContext:
    """A throwaway context: preflight needs *some* absolute names to walk,
    and any placeholder MTA identity will do."""
    base = "%s.mta0.%s" % (policy.testid, suffix)
    return PolicyContext(
        base=base,
        mtaid="mta0",
        testid=policy.testid,
        v6_base="%s.mta0.v6.%s" % (policy.testid, suffix),
        helo_base="helo.%s" % suffix,
    )


def audit_policy(
    policy: TestPolicy,
    ctx: Optional[PolicyContext] = None,
    limits: Optional[SpfLimits] = None,
) -> Optional[SpfAudit]:
    """Statically audit one policy's SPF graph; None if it publishes no SPF."""
    if ctx is None:
        ctx = preflight_context(policy)
    return audit_spf_domain(ctx.base, PolicyRecordSource(policy, ctx), limits)


def preflight_policies(
    policies: Iterable[TestPolicy],
    limits: Optional[SpfLimits] = None,
) -> Dict[str, SpfAudit]:
    """Audit every policy; raise :class:`PreflightError` for unmeasurable ones.

    Returns the per-``testid`` audits so callers (and curious operators)
    can inspect predicted lookup counts and diagnostics.
    """
    audits: Dict[str, SpfAudit] = {}
    missing: List[Tuple[str, str]] = []
    for policy in policies:
        audit = audit_policy(policy, limits=limits)
        if audit is None:
            missing.append((policy.testid, policy.name))
            continue
        audits[policy.testid] = audit
    if missing:
        raise PreflightError(
            "policies publish no L0 SPF record: %s"
            % ", ".join("%s (%s)" % pair for pair in missing)
        )
    return audits
