"""The SMTP probe client (paper Section 4.6).

For each (MTA, test policy) pair the probe opens a TCP connection and
walks ``EHLO → MAIL → RCPT → DATA`` with a 15-second sleep before MAIL,
RCPT and DATA, then disconnects without ever transmitting message data —
so nothing can be delivered, whatever the MTA replies.  The From address
encodes the (testid, mtaid) pair; recipients are guessed usernames tried
in order, postmaster last.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.synth import SynthConfig
from repro.net.network import Network, is_ipv6
from repro.obs import Observability, ensure_obs
from repro.smtp.client import SmtpClient
from repro.smtp.errors import SmtpClientError
from repro.smtp.protocol import Reply

#: The paper's recipient guesses, in order; postmaster is the fallback.
DEFAULT_USERNAMES: Tuple[str, ...] = ("michael", "john.smith", "support", "postmaster")


@dataclass
class ProbeResult:
    """One probe conversation, summarised."""

    mtaid: str
    testid: str
    target_ip: str
    stage_reached: str = "connect"  # connect/ehlo/mail/rcpt/data/done
    accepted_username: Optional[str] = None
    error_stage: Optional[str] = None
    error_text: Optional[str] = None
    replies: List[Tuple[str, int, str]] = field(default_factory=list)
    t_started: float = 0.0
    t_finished: float = 0.0

    @property
    def completed_envelope(self) -> bool:
        """The probe got through DATA (and then disconnected)."""
        return self.stage_reached == "done"

    @property
    def rejected_mentioning(self) -> Optional[str]:
        """'spam' / 'blacklist' if an error reply contained the word."""
        for _, code, text in self.replies:
            if code >= 400:
                lowered = text.lower()
                if "blacklist" in lowered:
                    return "blacklist"
                if "spam" in lowered:
                    return "spam"
        return None

    @property
    def invalid_recipient(self) -> bool:
        return self.error_stage == "rcpt"


class ProbeClient:
    """Drives probe conversations from the measurement host."""

    def __init__(
        self,
        network: Network,
        config: Optional[SynthConfig] = None,
        sleep_seconds: float = 15.0,
        usernames: Sequence[str] = DEFAULT_USERNAMES,
        obs: Optional[Observability] = None,
    ) -> None:
        self.network = network
        self.config = config if config is not None else SynthConfig()
        self.sleep_seconds = sleep_seconds
        self.usernames = tuple(usernames)
        self.obs = ensure_obs(obs)
        network.add_address(self.config.probe_ipv4)
        if self.config.probe_ipv6:
            network.add_address(self.config.probe_ipv6)

    # -- identities -----------------------------------------------------

    def from_address(self, mtaid: str, testid: str) -> str:
        return "spf-test@%s.%s.%s" % (testid, mtaid, self.config.probe_suffix)

    def helo_name(self, mtaid: str, testid: str) -> str:
        return "h.%s.%s.%s" % (testid, mtaid, self.config.probe_suffix)

    # -- probing -----------------------------------------------------------

    def probe(
        self,
        target_ip: str,
        mtaid: str,
        testid: str,
        rcpt_domain: str,
        t: float,
    ) -> Tuple[ProbeResult, float]:
        """Run one probe conversation; never delivers a message."""
        obs = self.obs
        with obs.tracer.span(
            "probe.conversation", t, mtaid=mtaid, testid=testid, target=target_ip
        ) as span:
            result, t_done = self._probe(target_ip, mtaid, testid, rcpt_domain, t)
            span.set(stage=result.stage_reached)
            span.end(t_done)
        obs.metrics.counter(
            "probe_conversations_total", (("stage", result.stage_reached),), t=t_done
        )
        obs.metrics.observe("probe_conversation_seconds", t_done - t, t=t_done)
        return result, t_done

    def _probe(
        self,
        target_ip: str,
        mtaid: str,
        testid: str,
        rcpt_domain: str,
        t: float,
    ) -> Tuple[ProbeResult, float]:
        result = ProbeResult(mtaid=mtaid, testid=testid, target_ip=target_ip, t_started=t)
        source = self.config.probe_ipv6 if is_ipv6(target_ip) else self.config.probe_ipv4
        try:
            client, t = SmtpClient.connect(self.network, source, target_ip, t, obs=self.obs)
        except SmtpClientError as exc:
            result.error_stage = "connect"
            result.error_text = str(exc)
            if exc.reply is not None:
                result.replies.append(("banner", exc.reply.code, exc.reply.text))
            if exc.t is not None:
                t = exc.t
            result.t_finished = t
            return result, t

        def note(stage: str, reply: Reply) -> None:
            result.replies.append((stage, reply.code, reply.text))

        try:
            reply, t = client.ehlo_or_helo(self.helo_name(mtaid, testid), t)
            note("ehlo", reply)
            if not reply.is_success:
                raise _Stop("ehlo", reply)
            result.stage_reached = "ehlo"

            t += self.sleep_seconds
            reply, t = client.mail(self.from_address(mtaid, testid), t)
            note("mail", reply)
            if not reply.is_success:
                raise _Stop("mail", reply)
            result.stage_reached = "mail"

            t += self.sleep_seconds
            accepted = None
            for username in self.usernames:
                reply, t = client.rcpt("%s@%s" % (username, rcpt_domain), t)
                note("rcpt", reply)
                if reply.is_success:
                    accepted = username
                    break
            if accepted is None:
                raise _Stop("rcpt", reply)
            result.accepted_username = accepted
            result.stage_reached = "rcpt"

            t += self.sleep_seconds
            reply, t = client.data_command(t)
            note("data", reply)
            if not reply.is_intermediate:
                raise _Stop("data", reply)
            result.stage_reached = "done"
        except _Stop as stop:
            result.error_stage = stop.stage
            result.error_text = stop.reply.text
        except SmtpClientError as exc:
            result.error_stage = result.stage_reached
            result.error_text = str(exc)
            if exc.t is not None:
                t = exc.t
        finally:
            # Always disconnect before any message data: the no-delivery
            # guarantee of Section 5.1.
            client.abort(t)
        result.t_finished = t
        return result, t


class _Stop(Exception):
    def __init__(self, stage: str, reply: Reply) -> None:
        super().__init__(stage)
        self.stage = stage
        self.reply = reply
