"""Query attribution (paper Sections 4.4 and 4.5).

Every query name the synthesizing server sees embeds the identifiers of
the MTA (or domain) and test policy that induced it, so a single flat
query log can be attributed back to ``(mtaid, testid)`` pairs even when
thousands of MTAs validate concurrently.  :func:`attribute_queries` does
the decomposition; :class:`QueryIndex` provides the groupings every
analysis consumes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field as dataclasses_field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.synth import SynthConfig
from repro.dns.name import Name
from repro.dns.rdata import RdataType
from repro.dns.server import QueryLogEntry


@dataclass(frozen=True)
class AttributedQuery:
    """One observed query, decomposed."""

    entry: QueryLogEntry
    experiment: str  # "probe" | "v6" | "notify"
    mtaid: str  # domainid for the notify experiment
    testid: str  # "notify" for the notify experiment
    sub: Tuple[str, ...]

    @property
    def timestamp(self) -> float:
        return self.entry.timestamp

    @property
    def qtype(self) -> RdataType:
        return self.entry.qtype

    @property
    def transport(self) -> str:
        return self.entry.transport

    @property
    def over_ipv6(self) -> bool:
        return self.entry.over_ipv6

    @property
    def head(self) -> str:
        """First sublabel ('' for the base/L0 name)."""
        return self.sub[0] if self.sub else ""


@dataclass
class AttributionStats:
    """Per-reason accounting of :func:`attribute_queries` drops.

    Operators (and :mod:`repro.lint.tracecheck`) need to distinguish "no
    traffic" from "unattributable traffic": a silent drop of in-suffix
    queries would skew every analysis downstream of the query log.
    """

    total: int = 0
    attributed: int = 0
    #: experiment -> attributed count ("probe" | "v6" | "notify").
    by_experiment: Dict[str, int] = dataclasses_field(default_factory=dict)
    #: Entries whose qname is under none of the measurement suffixes.
    dropped_foreign: int = 0
    #: In-suffix entries with too few labels to carry (mtaid, testid).
    dropped_short: int = 0
    #: The dropped in-suffix entries themselves, for post-mortems.
    short_entries: List[QueryLogEntry] = dataclasses_field(default_factory=list)

    @property
    def dropped(self) -> int:
        return self.dropped_foreign + self.dropped_short


def attribute_queries_with_stats(
    entries: Iterable[QueryLogEntry], config: Optional[SynthConfig] = None
) -> Tuple[List[AttributedQuery], AttributionStats]:
    """Attribute raw log entries, accounting for every drop by reason."""
    if config is None:
        config = SynthConfig()
    probe_suffix = Name(config.probe_suffix)
    v6_suffix = Name(config.v6_suffix)
    notify_suffix = Name(config.notify_suffix)
    attributed: List[AttributedQuery] = []
    stats = AttributionStats()
    for entry in entries:
        stats.total += 1
        qname = entry.qname
        if qname.is_subdomain_of(probe_suffix):
            experiment, suffix = "probe", probe_suffix
        elif qname.is_subdomain_of(v6_suffix):
            experiment, suffix = "v6", v6_suffix
        elif qname.is_subdomain_of(notify_suffix):
            experiment, suffix = "notify", notify_suffix
        else:
            stats.dropped_foreign += 1
            continue
        relative = tuple(label.lower() for label in qname.relativize(suffix))
        if experiment == "notify":
            if not relative:
                stats.dropped_short += 1
                stats.short_entries.append(entry)
                continue
            query = AttributedQuery(entry, experiment, relative[-1], "notify", relative[:-1])
        else:
            if len(relative) < 2:
                stats.dropped_short += 1
                stats.short_entries.append(entry)
                continue
            query = AttributedQuery(entry, experiment, relative[-1], relative[-2], relative[:-2])
        attributed.append(query)
        stats.attributed += 1
        stats.by_experiment[experiment] = stats.by_experiment.get(experiment, 0) + 1
    return attributed, stats


def attribute_queries(
    entries: Iterable[QueryLogEntry], config: Optional[SynthConfig] = None
) -> List[AttributedQuery]:
    """Attribute raw log entries; unparseable names are dropped."""
    attributed, _ = attribute_queries_with_stats(entries, config)
    return attributed


class QueryIndex:
    """Groupings of attributed queries used by the analyses."""

    def __init__(self, queries: Iterable[AttributedQuery]) -> None:
        self.queries: List[AttributedQuery] = sorted(queries, key=lambda q: q.timestamp)
        self._by_pair: Dict[Tuple[str, str], List[AttributedQuery]] = {}
        self._by_mta: Dict[str, List[AttributedQuery]] = {}
        # Precomputed id cross-maps: mtas_observed/tests_with_activity are
        # called per-MTA and per-testid by the analyses, so O(#pairs) scans
        # there turn the whole classification pass quadratic.
        self._mtas_by_test: Dict[str, Set[str]] = {}
        self._tests_by_mta: Dict[str, Set[str]] = {}
        for query in self.queries:
            self._by_pair.setdefault((query.mtaid, query.testid), []).append(query)
            self._by_mta.setdefault(query.mtaid, []).append(query)
            self._mtas_by_test.setdefault(query.testid, set()).add(query.mtaid)
            self._tests_by_mta.setdefault(query.mtaid, set()).add(query.testid)

    @classmethod
    def merge(cls, indexes: Sequence["QueryIndex"]) -> "QueryIndex":
        """One index over the union of ``indexes``' queries.

        Each input is already time-sorted (the constructor's invariant),
        so this is a k-way sorted merge.  The result holds the same query
        multiset as an index built over the concatenated raw logs: shard
        workers and the serial path produce content-identical indexes
        because attributed queries carry absolute virtual timestamps.
        """
        merged = heapq.merge(*(index.queries for index in indexes), key=lambda q: q.timestamp)
        return cls(merged)

    def for_pair(self, mtaid: str, testid: str) -> List[AttributedQuery]:
        """Queries induced by one (MTA, test policy) pair, time-ordered."""
        return self._by_pair.get((mtaid, testid), [])

    def for_mta(self, mtaid: str) -> List[AttributedQuery]:
        return self._by_mta.get(mtaid, [])

    def pairs(self) -> List[Tuple[str, str]]:
        """Every ``(mtaid, testid)`` pair with at least one query."""
        return list(self._by_pair)

    def mtas_observed(self, testid: Optional[str] = None) -> Set[str]:
        """MTA ids with at least one attributable query (optionally for a
        single test policy) — the paper's definition of SPF-validating."""
        if testid is None:
            return set(self._by_mta)
        return set(self._mtas_by_test.get(testid, set()))

    def tests_with_activity(self, mtaid: str) -> Set[str]:
        return set(self._tests_by_mta.get(mtaid, set()))

    def __len__(self) -> int:
        return len(self.queries)
