"""Query attribution (paper Sections 4.4 and 4.5).

Every query name the synthesizing server sees embeds the identifiers of
the MTA (or domain) and test policy that induced it, so a single flat
query log can be attributed back to ``(mtaid, testid)`` pairs even when
thousands of MTAs validate concurrently.  :func:`attribute_queries` does
the decomposition; :class:`QueryIndex` provides the groupings every
analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.synth import SynthConfig
from repro.dns.name import Name
from repro.dns.rdata import RdataType
from repro.dns.server import QueryLogEntry


@dataclass(frozen=True)
class AttributedQuery:
    """One observed query, decomposed."""

    entry: QueryLogEntry
    experiment: str  # "probe" | "v6" | "notify"
    mtaid: str  # domainid for the notify experiment
    testid: str  # "notify" for the notify experiment
    sub: Tuple[str, ...]

    @property
    def timestamp(self) -> float:
        return self.entry.timestamp

    @property
    def qtype(self) -> RdataType:
        return self.entry.qtype

    @property
    def transport(self) -> str:
        return self.entry.transport

    @property
    def over_ipv6(self) -> bool:
        return self.entry.over_ipv6

    @property
    def head(self) -> str:
        """First sublabel ('' for the base/L0 name)."""
        return self.sub[0] if self.sub else ""


def attribute_queries(
    entries: Iterable[QueryLogEntry], config: Optional[SynthConfig] = None
) -> List[AttributedQuery]:
    """Attribute raw log entries; unparseable names are dropped."""
    if config is None:
        config = SynthConfig()
    probe_suffix = Name(config.probe_suffix)
    v6_suffix = Name(config.v6_suffix)
    notify_suffix = Name(config.notify_suffix)
    attributed: List[AttributedQuery] = []
    for entry in entries:
        qname = entry.qname
        if qname.is_subdomain_of(probe_suffix):
            experiment, suffix = "probe", probe_suffix
        elif qname.is_subdomain_of(v6_suffix):
            experiment, suffix = "v6", v6_suffix
        elif qname.is_subdomain_of(notify_suffix):
            experiment, suffix = "notify", notify_suffix
        else:
            continue
        relative = tuple(label.lower() for label in qname.relativize(suffix))
        if experiment == "notify":
            if not relative:
                continue
            attributed.append(
                AttributedQuery(entry, experiment, relative[-1], "notify", relative[:-1])
            )
        else:
            if len(relative) < 2:
                continue
            attributed.append(
                AttributedQuery(entry, experiment, relative[-1], relative[-2], relative[:-2])
            )
    return attributed


class QueryIndex:
    """Groupings of attributed queries used by the analyses."""

    def __init__(self, queries: Iterable[AttributedQuery]) -> None:
        self.queries: List[AttributedQuery] = sorted(queries, key=lambda q: q.timestamp)
        self._by_pair: Dict[Tuple[str, str], List[AttributedQuery]] = {}
        self._by_mta: Dict[str, List[AttributedQuery]] = {}
        for query in self.queries:
            self._by_pair.setdefault((query.mtaid, query.testid), []).append(query)
            self._by_mta.setdefault(query.mtaid, []).append(query)

    def for_pair(self, mtaid: str, testid: str) -> List[AttributedQuery]:
        """Queries induced by one (MTA, test policy) pair, time-ordered."""
        return self._by_pair.get((mtaid, testid), [])

    def for_mta(self, mtaid: str) -> List[AttributedQuery]:
        return self._by_mta.get(mtaid, [])

    def mtas_observed(self, testid: Optional[str] = None) -> Set[str]:
        """MTA ids with at least one attributable query (optionally for a
        single test policy) — the paper's definition of SPF-validating."""
        if testid is None:
            return set(self._by_mta)
        return {mtaid for (mtaid, tid) in self._by_pair if tid == testid}

    def tests_with_activity(self, mtaid: str) -> Set[str]:
        return {tid for (mid, tid) in self._by_pair if mid == mtaid}

    def __len__(self) -> int:
        return len(self.queries)
