"""Plain-text rendering of tables and figures.

The benchmark harness prints the same rows the paper's tables report, so
a side-by-side comparison is a diff, not an archaeology project.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass
class Table:
    """A titled table with left-aligned first column."""

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            parts = []
            for index, cell in enumerate(cells):
                if index == 0:
                    parts.append(cell.ljust(widths[index]))
                else:
                    parts.append(cell.rjust(widths[index]))
            return "  ".join(parts)

        lines = [self.title, "=" * len(self.title), fmt(self.headers), fmt(["-" * w for w in widths])]
        lines.extend(fmt(row) for row in self.rows)
        for note in self.notes:
            lines.append("note: %s" % note)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def pct(numerator: int, denominator: int, digits: int = 1) -> str:
    """'53.2%' (or 'n/a' for an empty denominator)."""
    if denominator == 0:
        return "n/a"
    return "%.*f%%" % (digits, 100.0 * numerator / denominator)


def render_cdf(points: List[Tuple[float, float]], width: int = 50, title: str = "") -> str:
    """A crude monospace CDF plot: value -> cumulative fraction."""
    lines = []
    if title:
        lines.append(title)
    for value, fraction in points:
        bar = "#" * int(round(fraction * width))
        lines.append("%10.1f | %-*s %5.1f%%" % (value, width, bar, fraction * 100))
    return "\n".join(lines)


def render_histogram(buckets: List[Tuple[str, float]], width: int = 50, title: str = "") -> str:
    """Labelled-bucket histogram with percentage bars."""
    lines = []
    if title:
        lines.append(title)
    for label, fraction in buckets:
        bar = "#" * int(round(fraction * width))
        lines.append("%12s | %-*s %5.1f%%" % (label, width, bar, fraction * 100))
    return "\n".join(lines)
