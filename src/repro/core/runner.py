"""Command-line experiment runner.

Runs any of the paper's three experiments end to end and writes the
tables, figures, and raw traces to an output directory::

    python -m repro.core.runner --experiment notifyemail --scale 0.01 --out results/
    python -m repro.core.runner --experiment notifymx   --scale 0.01 --out results/
    python -m repro.core.runner --experiment twoweekmx  --scale 0.01 --out results/
    python -m repro.core.runner --experiment all        --scale 0.01 --out results/

Artefacts per experiment: ``<name>_report.txt`` (every applicable table),
``<name>_queries.jsonl`` and ``<name>_probes.jsonl`` (raw traces loadable
via :mod:`repro.core.trace`), ``<name>_tracecheck.txt`` — the post-flight
differential conformance pass (:mod:`repro.lint.tracecheck`) — and the
observability pair ``<name>_metrics.txt`` / ``<name>_spans.jsonl``
(:mod:`repro.obs`; suppressed by ``--no-obs``).  Because ``notifyemail``
and ``notifymx`` share one testbed, the NotifyMX observability artefacts
are cumulative over both campaigns; see ``OBSERVABILITY.md``.

``--workers N`` (default: one per CPU) runs each campaign sharded over N
worker processes via :mod:`repro.core.parallel`; ``--workers 1`` is the
classic serial path.  The merge layer is deterministic, so every report,
trace, tracecheck, and metrics artefact is identical whichever worker
count produced it.  The one exception is ``<name>_spans.jsonl``: span
*objects* stay inside the worker processes (each shard has its own
``campaign.run`` root span), so parallel runs skip the span dump and
instead reconcile spans against the query log per shard, inside each
worker.

``--faults SPEC`` threads a deterministic fault-injection plan
(:mod:`repro.net.faults`) through every layer of the testbed; the plan's
seed derives from ``--seed``, so a faulted run is as reproducible as a
clean one — including across ``--workers`` counts.  ``--experiment
faultmatrix`` instead replays the probe campaign under one canonical
plan per fault kind and writes ``faultmatrix_report.txt``; it never runs
as part of ``all``.

A non-clean tracecheck or a span/query-log reconciliation mismatch means
the harness, not a validator, misbehaved; the runner says so loudly but
still writes every artefact.  All human-facing output flows through one
:class:`~repro.obs.progress.ProgressSink`, so ``--quiet`` silences
everything uniformly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core import analysis as A
from repro.core import trace
from repro.core.campaign import (
    NotifyEmailCampaign,
    NotifyEmailResult,
    ProbeCampaign,
    ProbeCampaignResult,
    Testbed,
    apply_reputation_effects,
)
from repro.core.datasets import DatasetSpec, Universe, generate_universe
from repro.core.fingerprint import fingerprint_fleet
from repro.core.parallel import (
    default_workers,
    merge_raw_logs,
    run_notify_sharded,
    run_probe_sharded,
)
from repro.core.faultmatrix import FAULT_SCENARIOS, run_fault_matrix
from repro.core.querylog import QueryIndex, attribute_queries_with_stats
from repro.core.report import render_histogram
from repro.core.synth import SynthConfig
from repro.dns.server import QueryLogEntry
from repro.lint.tracecheck import check_index
from repro.net.faults import FaultPlan, derive_fault_seed
from repro.obs import NULL_OBS, ProgressSink
from repro.obs.export import render_metrics_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.reconcile import reconcile_spans
from repro.obs.spans import save_spans

EXPERIMENTS = ("notifyemail", "notifymx", "twoweekmx")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.core.runner",
        description="Re-run the paper's measurement experiments at a chosen scale.",
    )
    parser.add_argument(
        "--experiment",
        choices=EXPERIMENTS + ("all", "faultmatrix"),
        default="all",
        help="which experiment to run (default: all; 'faultmatrix' replays the "
        "probe under every fault kind and is never part of 'all')",
    )
    parser.add_argument("--scale", type=float, default=0.01, help="universe scale factor (default 0.01)")
    parser.add_argument("--seed", type=int, default=2021, help="master RNG seed")
    parser.add_argument("--out", type=Path, default=Path("results"), help="output directory")
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    parser.add_argument(
        "--no-obs",
        action="store_true",
        help="disable metrics/span collection (skips the *_metrics.txt / *_spans.jsonl artefacts)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=default_workers(),
        help="worker processes for sharded campaign execution "
        "(default: one per CPU; 1 = serial)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault-injection plan: 'kind:prob[:param][@where],...' or a JSON "
        "rule array (see repro.net.faults); seeded from --seed, identical "
        "across worker counts.  An empty spec is a guaranteed no-op.",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    args.out.mkdir(parents=True, exist_ok=True)
    sink = ProgressSink(quiet=args.quiet)
    if args.experiment == "faultmatrix":
        _run_faultmatrix(args, sink)
        sink.say("all done in %.1f s -> %s" % (sink.elapsed(), args.out))
        return 0
    wanted = EXPERIMENTS if args.experiment == "all" else (args.experiment,)

    if "notifyemail" in wanted or "notifymx" in wanted:
        _run_notify_family(args, wanted, sink)
    if "twoweekmx" in wanted:
        _run_twoweekmx(args, sink)
    sink.say("all done in %.1f s -> %s" % (sink.elapsed(), args.out))
    return 0


def _make_faults(args) -> Optional[FaultPlan]:
    """The run's fault plan, or ``None`` when ``--faults`` was absent.

    The plan seed is derived from the master seed, so ``--seed`` stays
    the single reproducibility knob; every worker process re-derives the
    identical value from the same two strings."""
    if args.faults is None:
        return None
    return FaultPlan.parse(args.faults, seed=derive_fault_seed(args.faults, args.seed))


def _fault_shard_params(args) -> dict:
    """``faults_spec``/``faults_seed`` keywords for the sharded runners.

    The plan crosses the process boundary as two strings; each worker
    rebuilds an identical plan, and the pure per-event hash draws make
    its decisions match the serial path exactly."""
    if not args.faults:
        return {"faults_spec": "", "faults_seed": 0}
    return {
        "faults_spec": args.faults,
        "faults_seed": derive_fault_seed(args.faults, args.seed),
    }


def _make_testbed(args, universe, seed: int) -> Testbed:
    return Testbed(
        universe,
        seed=seed,
        obs=NULL_OBS if args.no_obs else None,
        faults=_make_faults(args),
    )


# -- report section builders (shared by the serial and sharded paths) ----


def _notifyemail_sections(universe: Universe, result: NotifyEmailResult) -> List[str]:
    analysis = A.analyze_notify(result)
    sections = [
        A.validation_breakdown_table(analysis).render(),
        A.spf_summary_table([A.notify_email_spf_row(universe, result, analysis)]).render(),
        A.provider_table(analysis).render(),
        A.alexa_table(universe, analysis).render(),
    ]
    timing = A.timing_analysis(result)
    sections.append(
        render_histogram(
            timing.buckets,
            title="Figure 2: t(SPF)-t(delivery), n=%d (negative %.0f%%, within30 %.0f%%)"
            % (timing.domains_used, 100 * timing.negative_fraction, 100 * timing.within_30s_fraction),
        )
    )
    return sections


def _notifymx_sections(universe: Universe, probe_result: ProbeCampaignResult) -> List[str]:
    sections = [
        A.spf_summary_table([A.probe_spf_row("NotifyMX", universe, probe_result)]).render(),
        A.behavior_table(A.behavior_stats(probe_result)).render(),
        fingerprint_fleet(probe_result).to_table().render(),
    ]
    limits = A.lookup_limit_analysis(probe_result)
    sections.append(
        "Figure 5: %d MTAs; within 10 lookups %.0f%%; all 46 lookups %.0f%%"
        % (limits.total, 100 * limits.within_limit_fraction, 100 * limits.ran_everything_fraction)
    )
    rejections = A.rejection_stats(probe_result)
    sections.append(
        "rejections: spam %d, blacklist %d, invalid recipient %d of %d MTAs"
        % (rejections.spam, rejections.blacklist, rejections.invalid_recipient, rejections.total_mtas)
    )
    return sections


def _twoweekmx_sections(universe: Universe, result: ProbeCampaignResult) -> List[str]:
    rows = [A.probe_spf_row("TwoWeekMX (all)", universe, result)]
    rows += A.decile_rows(universe, result)
    table = A.spf_summary_table(rows)
    mean, stdev = A.decile_consistency(rows[1:])
    table.notes.append("decile domain-rate mean %.1f%%, stdev %.1f" % (mean, stdev))
    return [
        table.render(),
        A.behavior_table(A.behavior_stats(result)).render(),
    ]


def _run_notify_family(args, wanted, sink: ProgressSink) -> None:
    sink.say("generating NotifyEmail universe (scale %.3f) ..." % args.scale)
    universe = generate_universe(DatasetSpec.notify_email(scale=args.scale), seed=args.seed)
    if args.workers > 1:
        _run_notify_family_sharded(args, wanted, sink, universe)
        return
    testbed = _make_testbed(args, universe, seed=args.seed + 1)

    if "notifyemail" in wanted:
        sink.say("running NotifyEmail: one signed notification per domain ...")
        result = NotifyEmailCampaign(testbed).run()
        _write(args.out / "notifyemail_report.txt", _notifyemail_sections(universe, result))
        trace.save_query_log(result.index.queries, args.out / "notifyemail_queries.jsonl")
        _postflight(
            testbed.synth.query_log, testbed.synth_config,
            args.out / "notifyemail_tracecheck.txt", sink,
        )
        _write_obs(testbed, args.out, "notifyemail", sink)
        sink.say("  -> %s" % (args.out / "notifyemail_report.txt"))

    if "notifymx" in wanted:
        sink.say("running NotifyMX: probing the same MTAs with soured reputation ...")
        apply_reputation_effects(universe, seed=args.seed + 2)
        probe_result = ProbeCampaign(testbed, "NotifyMX", start_time=1e7, seed=args.seed).run()
        _write(args.out / "notifymx_report.txt", _notifymx_sections(universe, probe_result))
        trace.save_query_log(probe_result.index.queries, args.out / "notifymx_queries.jsonl")
        trace.save_probe_results(probe_result.results, args.out / "notifymx_probes.jsonl")
        _postflight(
            testbed.synth.query_log, testbed.synth_config,
            args.out / "notifymx_tracecheck.txt", sink,
        )
        _write_obs(testbed, args.out, "notifymx", sink)
        sink.say("  -> %s" % (args.out / "notifymx_report.txt"))


def _run_notify_family_sharded(args, wanted, sink: ProgressSink, universe: Universe) -> None:
    """The notify family over worker processes.

    Mirrors the serial path's cumulative-testbed semantics: the NotifyMX
    artefacts (query trace, tracecheck, metrics) cover the union of both
    campaigns' traffic, exactly as one shared testbed would have logged.
    """
    obs_enabled = not args.no_obs
    notify_raw: List[QueryLogEntry] = []
    notify_metrics: Optional[MetricsRegistry] = None

    if "notifyemail" in wanted:
        sink.say("running NotifyEmail over %d workers ..." % args.workers)
        merged = run_notify_sharded(
            universe,
            workers=args.workers,
            testbed_seed=args.seed + 1,
            obs=obs_enabled,
            reconcile=obs_enabled,
            **_fault_shard_params(args),
        )
        notify_raw = merged.raw_log
        notify_metrics = merged.metrics
        result = merged.result
        assert isinstance(result, NotifyEmailResult)
        _write(args.out / "notifyemail_report.txt", _notifyemail_sections(universe, result))
        trace.save_query_log(result.index.queries, args.out / "notifyemail_queries.jsonl")
        _postflight(
            merged.raw_log, merged.synth_config,
            args.out / "notifyemail_tracecheck.txt", sink,
        )
        _write_obs_merged(merged.metrics, merged.reconciled, args.out, "notifyemail", sink)
        sink.say("  -> %s" % (args.out / "notifyemail_report.txt"))

    if "notifymx" in wanted:
        sink.say("running NotifyMX over %d workers ..." % args.workers)
        apply_reputation_effects(universe, seed=args.seed + 2)
        merged = run_probe_sharded(
            universe,
            "NotifyMX",
            workers=args.workers,
            testbed_seed=args.seed + 1,
            campaign_seed=args.seed,
            start_time=1e7,
            obs=obs_enabled,
            reconcile=obs_enabled,
            **_fault_shard_params(args),
        )
        probe_result = merged.result
        assert isinstance(probe_result, ProbeCampaignResult)
        # The serial path's NotifyMX artefacts are cumulative over the
        # shared testbed; reproduce that from the phases' merged logs.
        cumulative_raw = merge_raw_logs([notify_raw, merged.raw_log])
        probe_result.index = _attributed_index(cumulative_raw, merged.synth_config)
        cumulative_metrics = merged.metrics
        if obs_enabled and notify_metrics is not None and merged.metrics is not None:
            cumulative_metrics = MetricsRegistry.merged([notify_metrics, merged.metrics])
        _write(args.out / "notifymx_report.txt", _notifymx_sections(universe, probe_result))
        trace.save_query_log(probe_result.index.queries, args.out / "notifymx_queries.jsonl")
        trace.save_probe_results(probe_result.results, args.out / "notifymx_probes.jsonl")
        _postflight(
            cumulative_raw, merged.synth_config, args.out / "notifymx_tracecheck.txt", sink
        )
        _write_obs_merged(cumulative_metrics, merged.reconciled, args.out, "notifymx", sink)
        sink.say("  -> %s" % (args.out / "notifymx_report.txt"))


def _run_twoweekmx(args, sink: ProgressSink) -> None:
    sink.say("generating TwoWeekMX universe (scale %.3f) ..." % args.scale)
    universe = generate_universe(DatasetSpec.two_week_mx(scale=args.scale), seed=args.seed + 3)
    if args.workers > 1:
        sink.say("running TwoWeekMX probe campaign over %d workers ..." % args.workers)
        obs_enabled = not args.no_obs
        merged = run_probe_sharded(
            universe,
            "TwoWeekMX",
            workers=args.workers,
            testbed_seed=args.seed + 4,
            campaign_seed=args.seed,
            obs=obs_enabled,
            reconcile=obs_enabled,
            **_fault_shard_params(args),
        )
        result = merged.result
        assert isinstance(result, ProbeCampaignResult)
        _write(args.out / "twoweekmx_report.txt", _twoweekmx_sections(universe, result))
        trace.save_query_log(result.index.queries, args.out / "twoweekmx_queries.jsonl")
        trace.save_probe_results(result.results, args.out / "twoweekmx_probes.jsonl")
        _postflight(
            merged.raw_log, merged.synth_config, args.out / "twoweekmx_tracecheck.txt", sink
        )
        _write_obs_merged(merged.metrics, merged.reconciled, args.out, "twoweekmx", sink)
        sink.say("  -> %s" % (args.out / "twoweekmx_report.txt"))
        return
    testbed = _make_testbed(args, universe, seed=args.seed + 4)
    sink.say("running TwoWeekMX probe campaign ...")
    result = ProbeCampaign(testbed, "TwoWeekMX", seed=args.seed).run()
    _write(args.out / "twoweekmx_report.txt", _twoweekmx_sections(universe, result))
    trace.save_query_log(result.index.queries, args.out / "twoweekmx_queries.jsonl")
    trace.save_probe_results(result.results, args.out / "twoweekmx_probes.jsonl")
    _postflight(
        testbed.synth.query_log, testbed.synth_config,
        args.out / "twoweekmx_tracecheck.txt", sink,
    )
    _write_obs(testbed, args.out, "twoweekmx", sink)
    sink.say("  -> %s" % (args.out / "twoweekmx_report.txt"))


def _run_faultmatrix(args, sink: ProgressSink) -> None:
    """Replay the probe campaign under every canonical fault scenario
    (see :mod:`repro.core.faultmatrix`) and write the summary table."""
    if args.faults:
        sink.warn("  !! --faults is ignored by faultmatrix (it runs its own scenario set)")
    sink.say("generating fault-matrix universe (scale %.3f) ..." % args.scale)
    universe = generate_universe(DatasetSpec.two_week_mx(scale=args.scale), seed=args.seed + 3)
    sink.say("running the probe under %d fault scenarios ..." % len(FAULT_SCENARIOS))
    matrix = run_fault_matrix(universe, seed=args.seed)
    _write(args.out / "faultmatrix_report.txt", [matrix.to_table().render()])
    sink.say("  -> %s" % (args.out / "faultmatrix_report.txt"))


def _attributed_index(entries: Sequence[QueryLogEntry], config: SynthConfig) -> QueryIndex:
    attributed, _ = attribute_queries_with_stats(entries, config)
    return QueryIndex(attributed)


def _postflight(
    entries: Sequence[QueryLogEntry], config: SynthConfig, path: Path, sink: ProgressSink
) -> None:
    """Diff a raw query log against the policy footprints; the written
    report is an artefact like any other.  Serial callers pass the
    testbed's cumulative log, sharded callers the merged one."""
    attributed, stats = attribute_queries_with_stats(entries, config)
    result = check_index(QueryIndex(attributed), config=config, stats=stats)
    header = "tracecheck: %d queries over %d (mtaid, testid) pairs" % (
        result.queries_checked,
        result.pairs_checked,
    )
    _write(path, [result.report.render_text(header=header)])
    if not result.clean:
        sink.warn("  !! tracecheck found %d conformance finding(s) -> %s"
                  % (len(result.report.diagnostics), path))


def _write_obs(testbed: Testbed, out: Path, name: str, sink: ProgressSink) -> None:
    """Export the testbed's cumulative metrics and spans (no-op under
    ``--no-obs``), then reconcile spans against the attributed query log
    as a second, independent witness of what the campaign did."""
    obs = testbed.obs
    if not obs.enabled:
        return
    metrics_path = out / ("%s_metrics.txt" % name)
    _write(metrics_path, [render_metrics_text(obs.metrics, header="%s metrics" % name)])
    spans_path = out / ("%s_spans.jsonl" % name)
    count = save_spans(obs.tracer.finished, spans_path)
    sink.say("  -> %s (%d series), %s (%d spans)"
             % (metrics_path, len(obs.metrics), spans_path, count))
    verdict = reconcile_spans(obs.tracer.finished, testbed.query_index(), testbed.synth_config)
    if not verdict.matched:
        sink.warn("  !! span/query-log reconciliation mismatch:\n%s" % verdict.render_text())


def _write_obs_merged(
    metrics: Optional[MetricsRegistry],
    reconciled: Optional[bool],
    out: Path,
    name: str,
    sink: ProgressSink,
) -> None:
    """Export a sharded run's merged metrics (no-op under ``--no-obs``).

    Span objects never left the worker processes, so there is no
    ``<name>_spans.jsonl`` here; each worker instead reconciled its own
    spans against its own query log, and ``reconciled`` reports the
    conjunction of those per-shard verdicts."""
    if metrics is None:
        return
    metrics_path = out / ("%s_metrics.txt" % name)
    _write(metrics_path, [render_metrics_text(metrics, header="%s metrics" % name)])
    sink.say(
        "  -> %s (%d series); spans reconciled per shard, no span dump"
        % (metrics_path, len(metrics))
    )
    if reconciled is False:
        sink.warn("  !! span/query-log reconciliation mismatch in at least one shard")


def _write(path: Path, sections: List[str]) -> None:
    path.write_text("\n\n".join(sections) + "\n", encoding="utf-8")


if __name__ == "__main__":
    sys.exit(main())
