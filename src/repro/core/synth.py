"""The synthesizing authoritative DNS server (paper Section 4.5).

Hosting the experiments statically would require ~27.8 million records
(704 per MTA × 39,533 MTAs).  The paper's solution — reproduced here — is
an authoritative server that *synthesizes* responses from the query name:
it recognises the ``<sublabels>.<testid>.<mtaid>.<suffix>`` pattern,
routes to the matching test policy, and fabricates the records on the
fly.  Per-query response delays and forced UDP truncation come from the
policy definitions too.

Three suffixes are served:

* the probe suffix (``spf-test.dns-lab.org``) for NotifyMX / TwoWeekMX,
* an IPv6-only suffix (reachable only at the server's IPv6 address) for
  the ``ipv6_only`` test policy, and
* the NotifyEmail suffix (``dsav-mail.dns-lab.org``), keyed by domainid
  instead of (testid, mtaid).

The inherited query log *is* the experiment's measurement output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

from repro.core.policies import (
    NOTIFY_POLICY,
    POLICIES,
    PolicyContext,
    TestPolicy,
)
from repro.dns.message import Message
from repro.dns.name import Name
from repro.dns.rdata import Rcode, RdataType, SoaRecord
from repro.dns.resolver import AuthorityDirectory
from repro.dns.server import AuthoritativeServer
from repro.net.network import Network
from repro.obs import Observability


@lru_cache(maxsize=None)
def _synth_labels(experiment: str, outcome: str) -> tuple:
    # Experiments and outcomes form a tiny closed set; memoizing keeps
    # the per-query hot path from rebuilding the same label tuples.
    return (("experiment", experiment), ("outcome", outcome))


#: Sentinel distinguishing "not cached yet" from a cached parse failure.
_UNSET = object()

#: Bound on the per-server response cache.  Synthesis is a pure function
#: of the query, so eviction (we simply clear) can never change an
#: answer — only cost a recomputation.
_CACHE_LIMIT = 65536


@dataclass
class SynthConfig:
    """Deployment parameters of the synthesizing server."""

    probe_suffix: str = "spf-test.dns-lab.org"
    v6_suffix: str = "spf-test-v6.dns-lab.org"
    notify_suffix: str = "dsav-mail.dns-lab.org"
    contact_rname: str = "contact.dns-lab.org"
    server_ipv4: str = "198.51.100.53"
    server_ipv6: str = "2001:db8:53::53"
    probe_ipv4: str = "203.0.113.250"
    probe_ipv6: str = "2001:db8:fe::250"
    #: Real sender addresses (authorized by the NotifyEmail policy).
    sender_ips: Sequence[str] = ()
    dkim_key_b64: str = ""
    ttl: int = 60
    policies: Sequence[TestPolicy] = field(default_factory=lambda: list(POLICIES))


class SynthesizingAuthority(AuthoritativeServer):
    """Answers everything under its suffixes by synthesis."""

    def __init__(
        self,
        config: Optional[SynthConfig] = None,
        obs: Optional[Observability] = None,
        faults=None,
    ) -> None:
        super().__init__(zones=[], obs=obs, faults=faults)
        self.config = config if config is not None else SynthConfig()
        self._policies = {policy.testid: policy for policy in self.config.policies}
        self._probe_suffix = Name(self.config.probe_suffix)
        self._v6_suffix = Name(self.config.v6_suffix)
        self._notify_suffix = Name(self.config.notify_suffix)
        self.response_delay = self._policy_delay
        self.force_tcp_for = self._policy_force_tcp
        # Per-query synthesis is pure (policies are static, the context is
        # a function of the qname), but the server computes it up to three
        # times per query: the delay hook, the force-TCP hook, and
        # resolve() itself each re-parse and re-synthesize.  Campaign
        # traffic also repeats names heavily (every validating MTA walks
        # the same per-policy record graph), so memoize both stages.
        # Name's hash/equality are case-insensitive and _parse lowercases,
        # so DNS 0x20-randomized repeats of one name share an entry.
        self._parse_cache: Dict[Name, object] = {}
        self._answer_cache: Dict[Tuple[Name, RdataType], object] = {}

    # -- deployment ------------------------------------------------------

    def deploy(self, network: Network, directory: AuthorityDirectory) -> None:
        """Attach to the network and register suffix delegations.

        The IPv6-only suffix is registered with *only* the IPv6 server
        address — that asymmetry is the whole point of the ``ipv6_only``
        test policy.
        """
        config = self.config
        self.attach(network, config.server_ipv4, config.server_ipv6)
        directory.register(config.probe_suffix, config.server_ipv4, config.server_ipv6)
        directory.register(config.notify_suffix, config.server_ipv4, config.server_ipv6)
        directory.register(config.v6_suffix, config.server_ipv6)

    # -- name parsing -------------------------------------------------------

    def _parse(self, qname: Name) -> Optional[Tuple[TestPolicy, Tuple[str, ...], PolicyContext]]:
        """Decompose ``qname`` into (policy, sublabels, context)."""
        config = self.config
        for suffix, suffix_text in (
            (self._probe_suffix, config.probe_suffix),
            (self._v6_suffix, config.v6_suffix),
        ):
            if not qname.is_subdomain_of(suffix):
                continue
            relative = tuple(label.lower() for label in qname.relativize(suffix))
            if len(relative) < 2:
                return None
            mtaid = relative[-1]
            testid = relative[-2]
            sub = relative[:-2]
            policy = self._policies.get(testid)
            if policy is None:
                return None
            context = PolicyContext(
                base="%s.%s.%s" % (testid, mtaid, config.probe_suffix),
                mtaid=mtaid,
                testid=testid,
                v6_base="%s.%s.%s" % (testid, mtaid, config.v6_suffix),
                helo_base="h.%s.%s.%s" % (testid, mtaid, config.probe_suffix),
                probe_ipv4=config.probe_ipv4,
                probe_ipv6=config.probe_ipv6,
                valid_sender_ips=config.sender_ips,
                dkim_key_b64=config.dkim_key_b64,
            )
            return policy, sub, context
        if qname.is_subdomain_of(self._notify_suffix):
            relative = tuple(label.lower() for label in qname.relativize(self._notify_suffix))
            if not relative:
                return None
            domainid = relative[-1]
            sub = relative[:-1]
            context = PolicyContext(
                base="%s.%s" % (domainid, config.notify_suffix),
                mtaid=domainid,
                testid="notify",
                probe_ipv4=config.probe_ipv4,
                probe_ipv6=config.probe_ipv6,
                valid_sender_ips=config.sender_ips,
                dkim_key_b64=config.dkim_key_b64,
            )
            return NOTIFY_POLICY, sub, context
        return None

    def _parse_cached(
        self, qname: Name
    ) -> Optional[Tuple[TestPolicy, Tuple[str, ...], PolicyContext]]:
        cached = self._parse_cache.get(qname, _UNSET)
        if cached is _UNSET:
            if len(self._parse_cache) >= _CACHE_LIMIT:
                self._parse_cache.clear()
            cached = self._parse_cache[qname] = self._parse(qname)
        return cached  # type: ignore[return-value]

    def _respond(self, qname: Name, qtype: RdataType):
        """The policy's (memoized) answer for ``(qname, qtype)``.

        Returns ``None`` for names that do not parse.  Cached responses
        are shared between queries — callers must treat the synthesized
        records as immutable (they already do: responses are assembled
        record-by-record and only ever read).
        """
        key = (qname, qtype)
        cached = self._answer_cache.get(key, _UNSET)
        if cached is _UNSET:
            parsed = self._parse_cached(qname)
            if parsed is None:
                cached = None
            else:
                policy, sub, context = parsed
                cached = policy.respond(sub, qtype, context)
            if len(self._answer_cache) >= _CACHE_LIMIT:
                self._answer_cache.clear()
            self._answer_cache[key] = cached
        return cached

    # -- server hooks ------------------------------------------------------

    def resolve(self, query: Message, transport: str, client_ip: str, t_arrival: float) -> Message:
        response = query.make_response()
        qname, qtype = query.qname, query.qtype
        if qname is None or qtype is None:
            response.flags.rcode = Rcode.FORMERR
            return response
        suffix = self._owning_suffix(qname)
        if suffix is None:
            self._count_synth("foreign", "refused", t_arrival)
            response.flags.rcode = Rcode.REFUSED
            return response
        experiment = self._experiment_label(suffix)
        response.flags.aa = True
        soa = SoaRecord(
            "ns1.%s" % suffix,
            self.config.contact_rname,  # the published abuse contact (s5.3)
        )
        if qname == Name(suffix) and qtype == RdataType.SOA:
            from repro.dns.rdata import ResourceRecord

            response.answer.append(ResourceRecord(qname, self.config.ttl, soa))
            self._count_synth(experiment, "soa", t_arrival)
            return response
        synthesized = self._respond(qname, qtype)
        if synthesized is None:
            self._negative(response, suffix, soa, nxdomain=True)
            self._count_synth(experiment, "nxdomain", t_arrival)
            return response
        if synthesized.nxdomain:
            self._negative(response, suffix, soa, nxdomain=True)
            self._count_synth(experiment, "nxdomain", t_arrival)
            return response
        if not synthesized.records:
            self._negative(response, suffix, soa, nxdomain=False)
            self._count_synth(experiment, "nodata", t_arrival)
            return response
        from repro.dns.rdata import ResourceRecord

        for rdata in synthesized.records:
            response.answer.append(ResourceRecord(qname, self.config.ttl, rdata))
        self._count_synth(experiment, "records", t_arrival)
        return response

    def _experiment_label(self, suffix: str) -> str:
        if suffix == self.config.v6_suffix:
            return "v6"
        if suffix == self.config.notify_suffix:
            return "notify"
        return "probe"

    def _count_synth(self, experiment: str, outcome: str, t_arrival: float) -> None:
        self.obs.metrics.counter(
            "synth_responses_total", _synth_labels(experiment, outcome), t=t_arrival
        )

    def _owning_suffix(self, qname: Name) -> Optional[str]:
        for suffix_name, text in (
            (self._probe_suffix, self.config.probe_suffix),
            (self._v6_suffix, self.config.v6_suffix),
            (self._notify_suffix, self.config.notify_suffix),
        ):
            if qname.is_subdomain_of(suffix_name):
                return text
        return None

    def _negative(self, response: Message, suffix: str, soa: SoaRecord, nxdomain: bool) -> None:
        from repro.dns.rdata import ResourceRecord

        response.authority.append(ResourceRecord(Name(suffix), self.config.ttl, soa))
        if nxdomain:
            response.flags.rcode = Rcode.NXDOMAIN

    # -- per-query options ----------------------------------------------

    def _policy_options(self, qname: Name, qtype: RdataType):
        return self._respond(qname, qtype)

    def _policy_delay(self, qname: Name, qtype: RdataType) -> float:
        synthesized = self._policy_options(qname, qtype)
        return synthesized.delay if synthesized is not None else 0.0

    def _policy_force_tcp(self, qname: Name) -> bool:
        synthesized = self._policy_options(qname, RdataType.TXT)
        return synthesized.force_tcp if synthesized is not None else False
