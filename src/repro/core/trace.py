"""Campaign artefact export/import ("data release" tooling).

Measurement papers live or die by their released artefacts.  This module
serialises a campaign's raw evidence — the attributed DNS query log and
the SMTP probe transcripts — to JSON-lines files and reads them back, so
analyses can be rerun (or challenged) without re-running the campaign.

Formats are line-oriented JSON with a one-line header record carrying a
format tag and version, so partially-written files fail loudly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.core.probe import ProbeResult
from repro.core.querylog import AttributedQuery, QueryIndex
from repro.dns.name import Name
from repro.dns.rdata import RdataType
from repro.dns.server import QueryLogEntry

FORMAT_VERSION = 1


class TraceError(Exception):
    """Unreadable or incompatible trace file."""


# -- query logs --------------------------------------------------------------


def save_query_log(queries: Iterable[AttributedQuery], path: Union[str, Path]) -> int:
    """Write attributed queries as JSON lines; returns the record count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps({"format": "repro-querylog", "version": FORMAT_VERSION}) + "\n")
        for query in queries:
            record = {
                "t": query.timestamp,
                "qname": str(query.entry.qname),
                "qtype": query.qtype.name,
                "transport": query.transport,
                "client": query.entry.client_ip,
                "experiment": query.experiment,
                "mtaid": query.mtaid,
                "testid": query.testid,
                "sub": list(query.sub),
            }
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def load_query_log(path: Union[str, Path]) -> List[AttributedQuery]:
    """Read a query-log trace back into attributed queries."""
    path = Path(path)
    queries: List[AttributedQuery] = []
    with path.open("r", encoding="utf-8") as handle:
        header = _read_header(handle, "repro-querylog", path)
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                entry = QueryLogEntry(
                    timestamp=float(record["t"]),
                    qname=Name(record["qname"]),
                    qtype=RdataType[record["qtype"]],
                    transport=record["transport"],
                    client_ip=record["client"],
                )
                queries.append(
                    AttributedQuery(
                        entry=entry,
                        experiment=record["experiment"],
                        mtaid=record["mtaid"],
                        testid=record["testid"],
                        sub=tuple(record["sub"]),
                    )
                )
            except (KeyError, ValueError) as exc:
                raise TraceError("%s:%d: bad record: %s" % (path, line_number, exc)) from exc
    return queries


def load_query_index(path: Union[str, Path]) -> QueryIndex:
    """Convenience: a ready-to-analyse index from a trace file."""
    return QueryIndex(load_query_log(path))


# -- probe results -------------------------------------------------------------


def save_probe_results(results: Iterable[ProbeResult], path: Union[str, Path]) -> int:
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps({"format": "repro-probes", "version": FORMAT_VERSION}) + "\n")
        for result in results:
            record = {
                "mtaid": result.mtaid,
                "testid": result.testid,
                "target": result.target_ip,
                "stage": result.stage_reached,
                "username": result.accepted_username,
                "error_stage": result.error_stage,
                "error_text": result.error_text,
                "replies": [[stage, code, text] for stage, code, text in result.replies],
                "t0": result.t_started,
                "t1": result.t_finished,
            }
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def load_probe_results(path: Union[str, Path]) -> List[ProbeResult]:
    path = Path(path)
    results: List[ProbeResult] = []
    with path.open("r", encoding="utf-8") as handle:
        _read_header(handle, "repro-probes", path)
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                results.append(
                    ProbeResult(
                        mtaid=record["mtaid"],
                        testid=record["testid"],
                        target_ip=record["target"],
                        stage_reached=record["stage"],
                        accepted_username=record["username"],
                        error_stage=record["error_stage"],
                        error_text=record["error_text"],
                        replies=[(stage, code, text) for stage, code, text in record["replies"]],
                        t_started=float(record["t0"]),
                        t_finished=float(record["t1"]),
                    )
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise TraceError("%s:%d: bad record: %s" % (path, line_number, exc)) from exc
    return results


def _read_header(handle, expected_format: str, path: Path) -> dict:
    first = handle.readline()
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise TraceError("%s: missing trace header" % path) from exc
    if not isinstance(header, dict) or header.get("format") != expected_format:
        raise TraceError(
            "%s: expected %s trace, found %r" % (path, expected_format, header)
        )
    if header.get("version") != FORMAT_VERSION:
        raise TraceError("%s: unsupported trace version %r" % (path, header.get("version")))
    return header
