"""DomainKeys Identified Mail (RFC 6376).

Real signing and verification: pure-Python RSA (Miller–Rabin key
generation, PKCS#1 v1.5 with SHA-256), simple and relaxed canonicalization,
DKIM-Signature header construction/parsing, and DNS-published key records
(``<selector>._domainkey.<domain>`` TXT) fetched through the same resolver
the rest of the stack uses — so DKIM verification produces exactly the DNS
queries the paper's instrumentation watches for.
"""

from repro.dkim.canonical import canonicalize_body, canonicalize_header
from repro.dkim.errors import DkimError, DkimKeyError, DkimSignatureError
from repro.dkim.rsa import RsaKeyPair, RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.dkim.sign import DkimSigner
from repro.dkim.signature import DkimSignature, KeyRecord
from repro.dkim.verify import DkimResult, DkimVerifier, VerificationOutcome

__all__ = [
    "DkimError",
    "DkimKeyError",
    "DkimResult",
    "DkimSignature",
    "DkimSignatureError",
    "DkimSigner",
    "DkimVerifier",
    "KeyRecord",
    "RsaKeyPair",
    "RsaPrivateKey",
    "RsaPublicKey",
    "VerificationOutcome",
    "canonicalize_body",
    "canonicalize_header",
    "generate_keypair",
]
