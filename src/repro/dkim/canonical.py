"""DKIM canonicalization (RFC 6376 section 3.4).

Implements ``simple`` and ``relaxed`` for both headers and bodies.  Header
canonicalization operates on ``(name, value)`` pairs as stored by
:class:`repro.smtp.message.EmailMessage` (folding preserved in the value,
which is what relaxed unfolding needs to undo).
"""

from __future__ import annotations

import re

CRLF = "\r\n"

_WSP_RUN = re.compile(r"[ \t]+")
_FOLD = re.compile(r"\r\n[ \t]")


def canonicalize_header(name: str, value: str, algorithm: str) -> str:
    """One canonicalized header field, including trailing CRLF."""
    if algorithm == "simple":
        return "%s: %s%s" % (name, value, CRLF)
    if algorithm == "relaxed":
        unfolded = _FOLD.sub(" ", value)
        collapsed = _WSP_RUN.sub(" ", unfolded).strip()
        return "%s:%s%s" % (name.lower().strip(), collapsed, CRLF)
    raise ValueError("unknown header canonicalization %r" % algorithm)


def canonicalize_body(body: str, algorithm: str) -> str:
    """The canonicalized body, per section 3.4.3 / 3.4.4."""
    if algorithm not in ("simple", "relaxed"):
        raise ValueError("unknown body canonicalization %r" % algorithm)
    text = body
    if algorithm == "relaxed":
        lines = text.split(CRLF)
        lines = [_WSP_RUN.sub(" ", line).rstrip(" ") for line in lines]
        text = CRLF.join(lines)
    # Both algorithms: reduce trailing empty lines to a single CRLF.
    while text.endswith(CRLF + CRLF):
        text = text[: -len(CRLF)]
    if text and not text.endswith(CRLF):
        text += CRLF
    if not text:
        # Simple canonicalization of an empty body is a lone CRLF.
        text = CRLF if algorithm == "simple" else ""
    return text
