"""DKIM error types."""


class DkimError(Exception):
    """Base class for DKIM errors."""


class DkimSignatureError(DkimError):
    """The DKIM-Signature header is malformed or unsupported."""


class DkimKeyError(DkimError):
    """The published key record is malformed or unusable."""
