"""Pure-Python RSA for DKIM's ``rsa-sha256`` algorithm.

Implements deterministic-given-a-seed key generation (Miller–Rabin primality
over candidates from a seeded PRNG), RSASSA-PKCS1-v1_5 signing and
verification with SHA-256 (RFC 8017 section 8.2), and just enough DER to
publish keys the way DKIM does: the ``p=`` tag of a key record carries a
base64 SubjectPublicKeyInfo (RFC 6376 section 3.6.1).

Keys default to 1024 bits: fast to generate in pure Python and perfectly
adequate for a simulation (the paper's crypto strength is not under test;
its DNS observability is).
"""

from __future__ import annotations

import base64
import hashlib
import random
from dataclasses import dataclass
from typing import Tuple

from repro.dkim.errors import DkimKeyError

# DigestInfo prefix for SHA-256 (RFC 8017 section 9.2 notes).
_SHA256_DIGEST_INFO = bytes.fromhex("3031300d060960864801650304020105000420")

# rsaEncryption OID 1.2.840.113549.1.1.1, DER-encoded with NULL params.
_RSA_ALGORITHM_IDENTIFIER = bytes.fromhex("300d06092a864886f70d0101010500")

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
]


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key (n, e)."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> bool:
        """RSASSA-PKCS1-v1_5 verification with SHA-256."""
        if len(signature) != self.byte_length:
            return False
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            return False
        em = pow(s, self.e, self.n).to_bytes(self.byte_length, "big")
        expected = _emsa_pkcs1_v15(message, self.byte_length)
        return em == expected

    def to_der(self) -> bytes:
        """SubjectPublicKeyInfo DER encoding."""
        rsa_key = _der_sequence(_der_integer(self.n) + _der_integer(self.e))
        return _der_sequence(_RSA_ALGORITHM_IDENTIFIER + _der_bit_string(rsa_key))

    def to_base64(self) -> str:
        """The ``p=`` tag value for a DKIM key record."""
        return base64.b64encode(self.to_der()).decode("ascii")

    @classmethod
    def from_der(cls, data: bytes) -> "RsaPublicKey":
        try:
            spki, rest = _der_read(data, 0x30)
            if rest:
                raise ValueError("trailing data after SPKI")
            algorithm, remainder = _der_read(spki, 0x30)
            bits, rest = _der_read(remainder, 0x03)
            if rest:
                raise ValueError("trailing data after bit string")
            if not bits or bits[0] != 0:
                raise ValueError("unsupported bit-string padding")
            rsa_key, rest = _der_read(bits[1:], 0x30)
            n_bytes, remainder = _der_read(rsa_key, 0x02)
            e_bytes, rest = _der_read(remainder, 0x02)
            if rest:
                raise ValueError("trailing data in RSA key")
            return cls(int.from_bytes(n_bytes, "big"), int.from_bytes(e_bytes, "big"))
        except ValueError as exc:
            raise DkimKeyError("bad DER public key: %s" % exc) from exc

    @classmethod
    def from_base64(cls, text: str) -> "RsaPublicKey":
        try:
            der = base64.b64decode(text.encode("ascii"), validate=True)
        except Exception as exc:
            raise DkimKeyError("bad base64 public key") from exc
        return cls.from_der(der)


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key with CRT parameters for fast signing."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def sign(self, message: bytes) -> bytes:
        """RSASSA-PKCS1-v1_5 signature with SHA-256."""
        em = _emsa_pkcs1_v15(message, self.byte_length)
        m = int.from_bytes(em, "big")
        # CRT: two half-size exponentiations instead of one full-size.
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        q_inv = pow(self.q, -1, self.p)
        m1 = pow(m % self.p, dp, self.p)
        m2 = pow(m % self.q, dq, self.q)
        h = (q_inv * (m1 - m2)) % self.p
        s = m2 + h * self.q
        return s.to_bytes(self.byte_length, "big")

    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)


@dataclass(frozen=True)
class RsaKeyPair:
    private: RsaPrivateKey
    public: RsaPublicKey


def generate_keypair(bits: int = 1024, seed: int = 0, e: int = 65537) -> RsaKeyPair:
    """Generate an RSA key pair deterministically from ``seed``."""
    if bits < 512 or bits % 2:
        raise ValueError("key size must be an even number of bits >= 512")
    rng = random.Random(seed)
    half = bits // 2
    while True:
        p = _random_prime(rng, half)
        q = _random_prime(rng, half)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        private = RsaPrivateKey(n=n, e=e, d=d, p=p, q=q)
        return RsaKeyPair(private=private, public=private.public_key())


# -- primality ---------------------------------------------------------------


def _random_prime(rng: random.Random, bits: int) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


def _is_probable_prime(n: int, rng: random.Random, rounds: int = 24) -> bool:
    if n < 2:
        return False
    for prime in _SMALL_PRIMES:
        if n == prime:
            return True
        if n % prime == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


# -- PKCS#1 v1.5 encoding ------------------------------------------------------


def _emsa_pkcs1_v15(message: bytes, em_length: int) -> bytes:
    digest = hashlib.sha256(message).digest()
    t = _SHA256_DIGEST_INFO + digest
    if em_length < len(t) + 11:
        raise ValueError("intended encoded message length too short")
    padding = b"\xff" * (em_length - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


# -- minimal DER --------------------------------------------------------------


def _der_length(length: int) -> bytes:
    if length < 0x80:
        return bytes([length])
    encoded = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(encoded)]) + encoded


def _der_integer(value: int) -> bytes:
    data = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
    if data[0] & 0x80:
        data = b"\x00" + data
    return b"\x02" + _der_length(len(data)) + data


def _der_sequence(content: bytes) -> bytes:
    return b"\x30" + _der_length(len(content)) + content


def _der_bit_string(content: bytes) -> bytes:
    return b"\x03" + _der_length(len(content) + 1) + b"\x00" + content


def _der_read(data: bytes, expected_tag: int) -> Tuple[bytes, bytes]:
    """Read one TLV with ``expected_tag``; return (content, remainder)."""
    if len(data) < 2:
        raise ValueError("short DER")
    if data[0] != expected_tag:
        raise ValueError("expected tag 0x%02x, got 0x%02x" % (expected_tag, data[0]))
    length = data[1]
    offset = 2
    if length & 0x80:
        count = length & 0x7F
        if count == 0 or len(data) < 2 + count:
            raise ValueError("bad DER length")
        length = int.from_bytes(data[2 : 2 + count], "big")
        offset = 2 + count
    if len(data) < offset + length:
        raise ValueError("DER content overruns buffer")
    return data[offset : offset + length], data[offset + length :]
