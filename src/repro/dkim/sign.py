"""DKIM signing (RFC 6376 section 5)."""

from __future__ import annotations

import base64
import hashlib
from typing import List, Optional, Sequence

from repro.dkim.canonical import canonicalize_body, canonicalize_header
from repro.dkim.rsa import RsaPrivateKey
from repro.dkim.signature import DkimSignature
from repro.smtp.message import EmailMessage

#: Headers Exim-style signers cover by default.
DEFAULT_SIGNED_HEADERS = ["from", "to", "subject", "date", "message-id", "reply-to"]


class DkimSigner:
    """Signs outgoing messages for one (domain, selector, key) triple."""

    def __init__(
        self,
        domain: str,
        selector: str,
        private_key: RsaPrivateKey,
        signed_headers: Optional[Sequence[str]] = None,
        canonicalization: str = "relaxed/relaxed",
    ) -> None:
        self.domain = domain
        self.selector = selector
        self.private_key = private_key
        self.signed_headers = [h.lower() for h in (signed_headers or DEFAULT_SIGNED_HEADERS)]
        self.canonicalization = canonicalization

    def sign(self, message: EmailMessage, timestamp: Optional[int] = None) -> DkimSignature:
        """Compute a signature and prepend the DKIM-Signature header.

        Returns the :class:`DkimSignature` that was attached.
        """
        signature = DkimSignature(
            domain=self.domain,
            selector=self.selector,
            signed_headers=self._present_headers(message),
            canonicalization=self.canonicalization,
            timestamp=int(timestamp) if timestamp is not None else None,
        )
        body = canonicalize_body(message.body, signature.body_canon)
        signature.body_hash = base64.b64encode(hashlib.sha256(body.encode("utf-8")).digest()).decode(
            "ascii"
        )
        signing_input = build_signing_input(message, signature)
        raw = self.private_key.sign(signing_input)
        signature.signature = base64.b64encode(raw).decode("ascii")
        message.prepend_header("DKIM-Signature", signature.to_header_value())
        return signature

    def _present_headers(self, message: EmailMessage) -> List[str]:
        """The configured header list filtered to headers actually present
        (signing absent headers is legal but pointlessly brittle here)."""
        present = [h for h in self.signed_headers if message.get_header(h) is not None]
        if "from" not in present:
            raise ValueError("message has no From header; DKIM requires signing it")
        return present


def build_signing_input(message: EmailMessage, signature: DkimSignature) -> bytes:
    """The exact byte string whose SHA-256 gets signed: the canonicalized
    selected headers followed by the canonicalized DKIM-Signature header
    with an empty ``b=`` tag and no trailing CRLF (section 3.7).

    Used by both the signer and the verifier, which is the best guarantee
    the two stay in agreement.
    """
    header_canon = signature.header_canon
    pieces: List[str] = []
    # Select instances bottom-up per name, as the spec requires for
    # repeated headers.
    consumed: dict = {}
    for wanted in signature.signed_headers:
        instances = [
            (index, name, value)
            for index, (name, value) in enumerate(message.headers)
            if name.lower() == wanted
        ]
        taken = consumed.get(wanted, 0)
        if taken >= len(instances):
            continue  # over-signed (absent) header contributes nothing
        index, name, value = instances[len(instances) - 1 - taken]
        consumed[wanted] = taken + 1
        pieces.append(canonicalize_header(name, value, header_canon))
    unsigned = signature.to_header_value(with_signature=False)
    final = canonicalize_header("DKIM-Signature", unsigned, header_canon)
    # Strip the trailing CRLF of the final header field.
    if final.endswith("\r\n"):
        final = final[:-2]
    pieces.append(final)
    return "".join(pieces).encode("utf-8")
