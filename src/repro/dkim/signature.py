"""DKIM-Signature headers and key records (RFC 6376 sections 3.5, 3.6.1).

Both are DKIM tag=value lists.  :class:`DkimSignature` models the header;
:class:`KeyRecord` models the TXT record published at
``<selector>._domainkey.<domain>``.
"""

from __future__ import annotations

import base64
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dkim.errors import DkimKeyError, DkimSignatureError

_TAG_LIST_RE = re.compile(r"([a-zA-Z][a-zA-Z0-9_]*)\s*=\s*([^;]*)")


def parse_tag_list(text: str) -> Dict[str, str]:
    """Parse a DKIM tag=value list; whitespace (incl. folding) is elided
    from values, as the spec's FWS rules allow."""
    tags: Dict[str, str] = {}
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        name, separator, value = part.partition("=")
        if not separator:
            raise DkimSignatureError("malformed tag %r" % part)
        tags[name.strip()] = re.sub(r"\s+", "", value)
    return tags


@dataclass
class DkimSignature:
    """A parsed (or to-be-serialised) DKIM-Signature header value."""

    domain: str  # d=
    selector: str  # s=
    body_hash: str = ""  # bh= (base64)
    signature: str = ""  # b=  (base64)
    signed_headers: List[str] = field(default_factory=lambda: ["from"])  # h=
    algorithm: str = "rsa-sha256"  # a=
    canonicalization: str = "relaxed/relaxed"  # c=
    timestamp: Optional[int] = None  # t=
    expiration: Optional[int] = None  # x=
    identity: Optional[str] = None  # i=

    @property
    def header_canon(self) -> str:
        return self.canonicalization.split("/", 1)[0]

    @property
    def body_canon(self) -> str:
        parts = self.canonicalization.split("/", 1)
        return parts[1] if len(parts) == 2 else "simple"

    @property
    def key_query_domain(self) -> str:
        """Where verifiers fetch the public key — the DNS query the paper
        counts as evidence of DKIM validation."""
        return "%s._domainkey.%s" % (self.selector, self.domain)

    def to_header_value(self, with_signature: bool = True) -> str:
        tags: List[Tuple[str, str]] = [
            ("v", "1"),
            ("a", self.algorithm),
            ("c", self.canonicalization),
            ("d", self.domain),
            ("s", self.selector),
        ]
        if self.timestamp is not None:
            tags.append(("t", str(self.timestamp)))
        if self.expiration is not None:
            tags.append(("x", str(self.expiration)))
        if self.identity is not None:
            tags.append(("i", self.identity))
        tags.append(("h", ":".join(self.signed_headers)))
        tags.append(("bh", self.body_hash))
        tags.append(("b", self.signature if with_signature else ""))
        return "; ".join("%s=%s" % (name, value) for name, value in tags)

    @classmethod
    def from_header_value(cls, text: str) -> "DkimSignature":
        tags = parse_tag_list(text)
        for required in ("v", "a", "d", "s", "h", "bh", "b"):
            if required not in tags:
                raise DkimSignatureError("missing required tag %s=" % required)
        if tags["v"] != "1":
            raise DkimSignatureError("unsupported DKIM version %r" % tags["v"])
        signature = cls(
            domain=tags["d"],
            selector=tags["s"],
            body_hash=tags["bh"],
            signature=tags["b"],
            signed_headers=[h for h in tags["h"].lower().split(":") if h],
            algorithm=tags.get("a", "rsa-sha256"),
            canonicalization=tags.get("c", "simple/simple"),
            identity=tags.get("i"),
        )
        if "t" in tags:
            signature.timestamp = _parse_int(tags["t"], "t")
        if "x" in tags:
            signature.expiration = _parse_int(tags["x"], "x")
        if "from" not in signature.signed_headers:
            raise DkimSignatureError("h= must include From")
        return signature

    def signature_bytes(self) -> bytes:
        try:
            return base64.b64decode(self.signature.encode("ascii"), validate=True)
        except Exception as exc:
            raise DkimSignatureError("bad base64 in b=") from exc

    def body_hash_bytes(self) -> bytes:
        try:
            return base64.b64decode(self.body_hash.encode("ascii"), validate=True)
        except Exception as exc:
            raise DkimSignatureError("bad base64 in bh=") from exc


def _parse_int(value: str, tag: str) -> int:
    try:
        return int(value)
    except ValueError as exc:
        raise DkimSignatureError("non-numeric %s= tag" % tag) from exc


@dataclass
class KeyRecord:
    """A DKIM key record (the TXT at ``<selector>._domainkey.<domain>``)."""

    public_key_b64: str  # p= ; empty means "key revoked"
    key_type: str = "rsa"  # k=
    version: str = "DKIM1"  # v=
    flags: List[str] = field(default_factory=list)  # t=
    notes: Optional[str] = None  # n=

    def to_text(self) -> str:
        parts = ["v=%s" % self.version, "k=%s" % self.key_type]
        if self.flags:
            parts.append("t=%s" % ":".join(self.flags))
        if self.notes:
            parts.append("n=%s" % self.notes)
        parts.append("p=%s" % self.public_key_b64)
        return "; ".join(parts)

    @classmethod
    def from_text(cls, text: str) -> "KeyRecord":
        try:
            tags = parse_tag_list(text)
        except DkimSignatureError as exc:
            raise DkimKeyError(str(exc)) from exc
        if "p" not in tags:
            raise DkimKeyError("key record missing p=")
        version = tags.get("v", "DKIM1")
        if version != "DKIM1":
            raise DkimKeyError("unsupported key record version %r" % version)
        key_type = tags.get("k", "rsa")
        if key_type != "rsa":
            raise DkimKeyError("unsupported key type %r" % key_type)
        return cls(
            public_key_b64=tags["p"],
            key_type=key_type,
            version=version,
            flags=[f for f in tags.get("t", "").split(":") if f],
            notes=tags.get("n"),
        )

    @property
    def revoked(self) -> bool:
        return not self.public_key_b64
