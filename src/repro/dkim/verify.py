"""DKIM verification (RFC 6376 section 6).

The verifier fetches the public key from DNS through the caller-supplied
resolver — producing the ``<selector>._domainkey.<domain>`` TXT query that
the paper's instrumentation treats as the signal of DKIM validation —
then checks the body hash and the RSA signature.
"""

from __future__ import annotations

import enum
import hashlib
import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dkim.canonical import canonicalize_body, canonicalize_header
from repro.dkim.errors import DkimError, DkimKeyError, DkimSignatureError
from repro.dkim.rsa import RsaPublicKey
from repro.dkim.signature import DkimSignature, KeyRecord
from repro.dns.rdata import RdataType
from repro.dns.resolver import Resolver
from repro.smtp.message import EmailMessage

_B_TAG_RE = re.compile(r"([;\s]|\A)b\s*=\s*[^;]*")


class DkimResult(enum.Enum):
    """RFC 8601-style outcomes."""

    PASS = "pass"
    FAIL = "fail"
    PERMERROR = "permerror"
    TEMPERROR = "temperror"
    NONE = "none"


@dataclass
class VerificationOutcome:
    result: DkimResult
    domain: Optional[str] = None
    selector: Optional[str] = None
    reason: Optional[str] = None

    def __str__(self) -> str:
        detail = " (%s)" % self.reason if self.reason else ""
        return "dkim=%s d=%s s=%s%s" % (self.result.value, self.domain, self.selector, detail)


class DkimVerifier:
    """Verifies the first DKIM-Signature header of a message."""

    def __init__(self, resolver: Resolver) -> None:
        self.resolver = resolver

    def verify(self, message: EmailMessage, t: float) -> Tuple[VerificationOutcome, float]:
        """Verify ``message`` starting at virtual time ``t``.

        Returns ``(outcome, t_done)``; DNS time is accounted for even on
        failure paths that reach the key lookup.
        """
        raw = message.get_header("DKIM-Signature")
        if raw is None:
            return VerificationOutcome(DkimResult.NONE, reason="no signature"), t

        try:
            signature = DkimSignature.from_header_value(raw)
        except DkimSignatureError as exc:
            return VerificationOutcome(DkimResult.PERMERROR, reason=str(exc)), t

        outcome = VerificationOutcome(
            DkimResult.FAIL, domain=signature.domain, selector=signature.selector
        )
        if signature.algorithm != "rsa-sha256":
            outcome.result = DkimResult.PERMERROR
            outcome.reason = "unsupported a=%s" % signature.algorithm
            return outcome, t
        if signature.expiration is not None and t > signature.expiration:
            outcome.reason = "signature expired (x=%d)" % signature.expiration
            return outcome, t

        # Key fetch first: even a message that will fail body-hash produces
        # the observable DNS query, exactly as real verifiers do.
        answer, t = self.resolver.query_at(signature.key_query_domain, RdataType.TXT, t)
        if answer.status.is_error:
            outcome.result = DkimResult.TEMPERROR
            outcome.reason = "key lookup failed"
            return outcome, t
        texts = answer.texts()
        if not texts:
            outcome.result = DkimResult.PERMERROR
            outcome.reason = "no key record"
            return outcome, t
        try:
            key_record = KeyRecord.from_text(texts[0])
            if key_record.revoked:
                raise DkimKeyError("key revoked")
            public_key = RsaPublicKey.from_base64(key_record.public_key_b64)
        except DkimError as exc:
            outcome.result = DkimResult.PERMERROR
            outcome.reason = str(exc)
            return outcome, t

        body = canonicalize_body(message.body, signature.body_canon)
        digest = hashlib.sha256(body.encode("utf-8")).digest()
        try:
            declared = signature.body_hash_bytes()
        except DkimSignatureError as exc:
            outcome.result = DkimResult.PERMERROR
            outcome.reason = str(exc)
            return outcome, t
        if digest != declared:
            outcome.reason = "body hash mismatch"
            return outcome, t

        signing_input = build_verification_input(message, raw, signature)
        try:
            raw_signature = signature.signature_bytes()
        except DkimSignatureError as exc:
            outcome.result = DkimResult.PERMERROR
            outcome.reason = str(exc)
            return outcome, t
        if public_key.verify(signing_input, raw_signature):
            outcome.result = DkimResult.PASS
            outcome.reason = None
        else:
            outcome.reason = "signature mismatch"
        return outcome, t


def build_verification_input(
    message: EmailMessage, raw_signature_value: str, signature: DkimSignature
) -> bytes:
    """Reconstruct the signed byte string on the verification side.

    The received DKIM-Signature header is used *verbatim* with only the
    ``b=`` tag value removed, so verification is independent of how the
    signer ordered or spaced its tags (section 3.7).
    """
    header_canon = signature.header_canon
    pieces: List[str] = []
    consumed: dict = {}
    for wanted in signature.signed_headers:
        instances = [
            (name, value)
            for (name, value) in message.headers
            if name.lower() == wanted and not (name.lower() == "dkim-signature" and value == raw_signature_value)
        ]
        taken = consumed.get(wanted, 0)
        if taken >= len(instances):
            continue
        name, value = instances[len(instances) - 1 - taken]
        consumed[wanted] = taken + 1
        pieces.append(canonicalize_header(name, value, header_canon))
    stripped = _B_TAG_RE.sub(lambda match: match.group(1) + "b=", raw_signature_value, count=1)
    final = canonicalize_header("DKIM-Signature", stripped, header_canon)
    if final.endswith("\r\n"):
        final = final[:-2]
    pieces.append(final)
    return "".join(pieces).encode("utf-8")
