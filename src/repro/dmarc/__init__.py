"""DMARC (RFC 7489).

Policy discovery (``_dmarc.<domain>`` with organizational-domain fallback),
SPF/DKIM identifier alignment in strict and relaxed modes, and disposition
computation — all through the same resolver/virtual-time machinery, so
DMARC validation emits the ``_dmarc.*`` TXT queries the paper counts.
"""

from repro.dmarc.evaluate import DmarcDisposition, DmarcEvaluator, DmarcOutcome, DmarcResult
from repro.dmarc.psl import PublicSuffixList, organizational_domain
from repro.dmarc.record import AlignmentMode, DmarcPolicy, DmarcRecord
from repro.dmarc.report import AggregateReport, ReportRow, build_aggregate_report

__all__ = [
    "AggregateReport",
    "AlignmentMode",
    "DmarcDisposition",
    "DmarcEvaluator",
    "DmarcOutcome",
    "DmarcPolicy",
    "DmarcRecord",
    "DmarcResult",
    "PublicSuffixList",
    "ReportRow",
    "build_aggregate_report",
    "organizational_domain",
]
