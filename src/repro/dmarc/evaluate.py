"""DMARC evaluation (RFC 7489 sections 3.1, 6.6.2, 6.6.3).

Given the RFC5322.From domain and the SPF / DKIM authentication results,
the evaluator discovers the applicable policy (``_dmarc.<from-domain>``,
falling back to the organizational domain) and decides pass/fail and the
disposition.  Policy discovery goes through the resolver, producing the
``_dmarc.*`` queries the measurement harness attributes to DMARC
validation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.dmarc.psl import PublicSuffixList
from repro.dmarc.record import (
    AlignmentMode,
    DmarcRecord,
    DmarcRecordError,
    looks_like_dmarc,
)
from repro.dns.rdata import RdataType
from repro.dns.resolver import Resolver


class DmarcResult(enum.Enum):
    PASS = "pass"
    FAIL = "fail"
    NONE = "none"  # no policy published
    TEMPERROR = "temperror"
    PERMERROR = "permerror"


class DmarcDisposition(enum.Enum):
    """What the receiver should do with the message."""

    NONE = "none"
    QUARANTINE = "quarantine"
    REJECT = "reject"


@dataclass
class DmarcOutcome:
    result: DmarcResult
    disposition: DmarcDisposition
    record: Optional[DmarcRecord] = None
    policy_domain: Optional[str] = None
    spf_aligned: bool = False
    dkim_aligned: bool = False

    def __str__(self) -> str:
        return "dmarc=%s disposition=%s (policy at %s)" % (
            self.result.value,
            self.disposition.value,
            self.policy_domain,
        )


class DmarcEvaluator:
    """Evaluates DMARC for one message's identifier set."""

    def __init__(self, resolver: Resolver, psl: Optional[PublicSuffixList] = None) -> None:
        self.resolver = resolver
        self.psl = psl if psl is not None else PublicSuffixList()

    def evaluate(
        self,
        from_domain: str,
        spf_result: str,
        spf_domain: Optional[str],
        dkim_result: str,
        dkim_domain: Optional[str],
        t: float,
    ) -> Tuple[DmarcOutcome, float]:
        """Discover policy and compute the outcome.

        ``spf_result`` / ``dkim_result`` are the textual results
        (``"pass"`` etc.); ``spf_domain`` is the MAIL FROM domain SPF
        authenticated, ``dkim_domain`` the ``d=`` of a passing signature.
        """
        record, policy_domain, t = self._discover(from_domain, t)
        if record is None:
            return (
                DmarcOutcome(DmarcResult.NONE, DmarcDisposition.NONE, policy_domain=policy_domain),
                t,
            )
        if isinstance(record, DmarcRecordError):
            return (
                DmarcOutcome(DmarcResult.PERMERROR, DmarcDisposition.NONE, policy_domain=policy_domain),
                t,
            )

        spf_aligned = spf_result == "pass" and spf_domain is not None and self._aligned(
            from_domain, spf_domain, record.spf_alignment
        )
        dkim_aligned = dkim_result == "pass" and dkim_domain is not None and self._aligned(
            from_domain, dkim_domain, record.dkim_alignment
        )
        passed = spf_aligned or dkim_aligned

        org = self.psl.organizational_domain(from_domain)
        is_subdomain = from_domain.rstrip(".").lower() != org
        if passed:
            disposition = DmarcDisposition.NONE
        else:
            disposition = DmarcDisposition(record.effective_policy(is_subdomain).value)
        return (
            DmarcOutcome(
                result=DmarcResult.PASS if passed else DmarcResult.FAIL,
                disposition=disposition,
                record=record,
                policy_domain=policy_domain,
                spf_aligned=spf_aligned,
                dkim_aligned=dkim_aligned,
            ),
            t,
        )

    # -- policy discovery ---------------------------------------------------

    def _discover(self, from_domain: str, t: float):
        """Section 6.6.3: query _dmarc.<from>, then _dmarc.<org>."""
        domain = from_domain.rstrip(".").lower()
        candidates = ["_dmarc.%s" % domain]
        org = self.psl.organizational_domain(domain)
        if org != domain:
            candidates.append("_dmarc.%s" % org)
        for index, qname in enumerate(candidates):
            answer, t = self.resolver.query_at(qname, RdataType.TXT, t)
            if answer.status.is_error:
                return None, qname, t
            texts = [text for text in answer.texts() if looks_like_dmarc(text)]
            if not texts:
                continue
            if len(texts) > 1:
                return DmarcRecordError("multiple DMARC records"), qname, t
            try:
                return DmarcRecord.from_text(texts[0]), qname, t
            except DmarcRecordError as exc:
                return exc, qname, t
        return None, candidates[-1], t

    def _aligned(self, from_domain: str, auth_domain: str, mode: AlignmentMode) -> bool:
        lhs = from_domain.rstrip(".").lower()
        rhs = auth_domain.rstrip(".").lower()
        if mode is AlignmentMode.STRICT:
            return lhs == rhs
        return self.psl.organizational_domain(lhs) == self.psl.organizational_domain(rhs)
