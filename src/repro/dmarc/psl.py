"""A built-in public-suffix list subset.

DMARC needs the *organizational domain* (RFC 7489 section 3.2), computed
against the Public Suffix List.  Shipping the full Mozilla list would be
overkill for a simulation whose domain universe we generate ourselves;
this subset covers every TLD the paper's Table 1 reports plus the common
multi-label suffixes, and the class accepts additional suffixes for tests.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

#: Single-label suffixes (classic TLDs) — superset of the paper's Table 1.
_DEFAULT_TLDS = {
    "com", "net", "org", "edu", "gov", "mil", "int", "arpa", "info", "biz",
    "ru", "pl", "br", "de", "ua", "it", "cz", "ro", "us", "uk", "cam", "ca",
    "fr", "nl", "es", "se", "no", "fi", "dk", "ch", "at", "be", "jp", "kr",
    "cn", "in", "au", "nz", "mx", "ar", "cl", "za", "tr", "gr", "pt", "hu",
    "sk", "si", "hr", "bg", "lt", "lv", "ee", "ie", "il", "sg", "hk", "tw",
    "th", "my", "id", "ph", "vn", "ir", "sa", "ae", "eg", "ng", "ke", "io",
    "co", "me", "tv", "cc", "ws", "nu", "to", "lab", "test", "invalid",
}

#: Multi-label public suffixes.
_DEFAULT_MULTI = {
    ("co", "uk"), ("org", "uk"), ("ac", "uk"), ("gov", "uk"), ("me", "uk"),
    ("com", "br"), ("net", "br"), ("org", "br"), ("gov", "br"), ("edu", "br"),
    ("com", "au"), ("net", "au"), ("org", "au"), ("edu", "au"), ("gov", "au"),
    ("co", "jp"), ("ne", "jp"), ("or", "jp"), ("ac", "jp"), ("go", "jp"),
    ("com", "cn"), ("net", "cn"), ("org", "cn"), ("edu", "cn"), ("gov", "cn"),
    ("co", "in"), ("net", "in"), ("org", "in"), ("ac", "in"), ("gov", "in"),
    ("com", "mx"), ("com", "tr"), ("com", "ar"), ("com", "sg"), ("com", "hk"),
    ("com", "tw"), ("co", "kr"), ("co", "za"), ("co", "il"), ("co", "nz"),
    ("com", "ua"), ("net", "ua"), ("org", "ua"), ("edu", "ua"), ("gov", "ua"),
    ("com", "pl"), ("net", "pl"), ("org", "pl"), ("edu", "pl"), ("waw", "pl"),
    ("com", "ru"), ("net", "ru"), ("org", "ru"), ("msk", "ru"), ("spb", "ru"),
}


class PublicSuffixList:
    """Longest-match public-suffix lookup over a fixed rule set."""

    def __init__(
        self,
        tlds: Optional[Iterable[str]] = None,
        multi: Optional[Iterable[Tuple[str, ...]]] = None,
    ) -> None:
        self._tlds: Set[str] = set(tlds) if tlds is not None else set(_DEFAULT_TLDS)
        self._multi: Set[Tuple[str, ...]] = (
            {tuple(s) for s in multi} if multi is not None else set(_DEFAULT_MULTI)
        )

    def add_suffix(self, suffix: str) -> None:
        labels = tuple(label.lower() for label in suffix.strip(".").split("."))
        if len(labels) == 1:
            self._tlds.add(labels[0])
        else:
            self._multi.add(labels)

    def public_suffix(self, domain: str) -> Optional[str]:
        """The matched public suffix of ``domain``, or None."""
        labels = [label.lower() for label in domain.strip(".").split(".") if label]
        if not labels:
            return None
        # Longest multi-label match wins over single-label.
        best: Optional[Tuple[str, ...]] = None
        for length in range(len(labels), 1, -1):
            candidate = tuple(labels[-length:])
            if candidate in self._multi:
                best = candidate
                break
        if best is None and labels[-1] in self._tlds:
            best = (labels[-1],)
        return ".".join(best) if best else None

    def organizational_domain(self, domain: str) -> str:
        """The registered (organizational) domain of ``domain``.

        Unknown suffixes fall back to the last two labels, which is what
        practical implementations do for names outside their list.
        """
        labels = [label.lower() for label in domain.strip(".").split(".") if label]
        suffix = self.public_suffix(domain)
        if suffix is None:
            return ".".join(labels[-2:]) if len(labels) >= 2 else domain.strip(".").lower()
        suffix_length = suffix.count(".") + 1
        if len(labels) <= suffix_length:
            return ".".join(labels)
        return ".".join(labels[-(suffix_length + 1) :])


_DEFAULT_PSL = PublicSuffixList()


def organizational_domain(domain: str) -> str:
    """Module-level convenience using the built-in list."""
    return _DEFAULT_PSL.organizational_domain(domain)
