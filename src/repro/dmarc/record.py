"""DMARC record parsing (RFC 7489 section 6.3)."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class DmarcPolicy(enum.Enum):
    """Requested disposition for failing mail (``p=`` / ``sp=``)."""

    NONE = "none"
    QUARANTINE = "quarantine"
    REJECT = "reject"


class AlignmentMode(enum.Enum):
    """Identifier alignment strictness (``aspf=`` / ``adkim=``)."""

    RELAXED = "r"
    STRICT = "s"


class DmarcRecordError(Exception):
    """The record text is not a usable DMARC record."""


@dataclass
class DmarcRecord:
    """A parsed DMARC record."""

    policy: DmarcPolicy
    subdomain_policy: Optional[DmarcPolicy] = None
    spf_alignment: AlignmentMode = AlignmentMode.RELAXED
    dkim_alignment: AlignmentMode = AlignmentMode.RELAXED
    percent: int = 100
    rua: List[str] = field(default_factory=list)
    ruf: List[str] = field(default_factory=list)
    #: Tags outside the RFC 7489 registry, preserved for diagnostics
    #: (validators ignore them; ``repro.lint`` reports them as DMARC008).
    unknown_tags: Dict[str, str] = field(default_factory=dict)

    def to_text(self) -> str:
        parts = ["v=DMARC1", "p=%s" % self.policy.value]
        if self.subdomain_policy is not None:
            parts.append("sp=%s" % self.subdomain_policy.value)
        if self.spf_alignment is not AlignmentMode.RELAXED:
            parts.append("aspf=%s" % self.spf_alignment.value)
        if self.dkim_alignment is not AlignmentMode.RELAXED:
            parts.append("adkim=%s" % self.dkim_alignment.value)
        if self.percent != 100:
            parts.append("pct=%d" % self.percent)
        if self.rua:
            parts.append("rua=%s" % ",".join(self.rua))
        if self.ruf:
            parts.append("ruf=%s" % ",".join(self.ruf))
        return "; ".join(parts)

    @classmethod
    def from_text(cls, text: str) -> "DmarcRecord":
        tags = _parse_tags(text)
        if tags.get("v") != "DMARC1":
            raise DmarcRecordError("missing or wrong v= tag")
        if "p" not in tags:
            raise DmarcRecordError("missing required p= tag")
        record = cls(policy=_parse_policy(tags["p"]))
        if "sp" in tags:
            record.subdomain_policy = _parse_policy(tags["sp"])
        if "aspf" in tags:
            record.spf_alignment = _parse_alignment(tags["aspf"])
        if "adkim" in tags:
            record.dkim_alignment = _parse_alignment(tags["adkim"])
        if "pct" in tags:
            try:
                record.percent = max(0, min(100, int(tags["pct"])))
            except ValueError as exc:
                raise DmarcRecordError("bad pct= value") from exc
        if "rua" in tags:
            record.rua = [uri.strip() for uri in tags["rua"].split(",") if uri.strip()]
        if "ruf" in tags:
            record.ruf = [uri.strip() for uri in tags["ruf"].split(",") if uri.strip()]
        record.unknown_tags = {k: v for k, v in tags.items() if k not in _KNOWN_TAGS}
        return record

    def effective_policy(self, is_subdomain: bool) -> DmarcPolicy:
        """``sp=`` applies to subdomains of the organizational domain."""
        if is_subdomain and self.subdomain_policy is not None:
            return self.subdomain_policy
        return self.policy


#: The RFC 7489 section 6.3 tag registry (``fo``/``rf``/``ri`` are parsed
#: by real validators even though this model does not act on them).
_KNOWN_TAGS = frozenset({"v", "p", "sp", "adkim", "aspf", "fo", "pct", "rf", "ri", "rua", "ruf"})


def looks_like_dmarc(text: str) -> bool:
    """Record-selection test, analogous to SPF's: v=DMARC1 first."""
    return bool(re.match(r"^v\s*=\s*DMARC1\s*(;|$)", text))


def _parse_tags(text: str) -> Dict[str, str]:
    tags: Dict[str, str] = {}
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        name, separator, value = part.partition("=")
        if not separator:
            raise DmarcRecordError("malformed tag %r" % part)
        tags.setdefault(name.strip().lower(), value.strip())
    return tags


def _parse_policy(value: str) -> DmarcPolicy:
    try:
        return DmarcPolicy(value.strip().lower())
    except ValueError as exc:
        raise DmarcRecordError("unknown policy %r" % value) from exc


def _parse_alignment(value: str) -> AlignmentMode:
    try:
        return AlignmentMode(value.strip().lower())
    except ValueError as exc:
        raise DmarcRecordError("unknown alignment %r" % value) from exc
