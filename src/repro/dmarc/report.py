"""DMARC aggregate reports (RFC 7489 section 7.2 / Appendix C).

A DMARC record's ``rua=`` tag asks receivers to mail back aggregate
feedback: per-source-IP rows of how many messages arrived and how SPF,
DKIM, and the DMARC evaluation itself went.  The paper's instrumentation
published ``rua=`` addresses (Section 5.3); this module closes the loop by
letting the simulated receivers *produce* those reports.

The XML schema follows Appendix C closely enough that real-world DMARC
report parsers would accept the output.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dmarc.record import AlignmentMode, DmarcPolicy, DmarcRecord


@dataclass
class ReportMetadata:
    """Who generated the report, covering which interval."""

    org_name: str
    email: str
    report_id: str
    date_begin: int  # epoch-ish virtual seconds
    date_end: int


@dataclass
class PolicyPublished:
    """The policy the receiver discovered for the reported domain."""

    domain: str
    policy: DmarcPolicy = DmarcPolicy.NONE
    subdomain_policy: Optional[DmarcPolicy] = None
    adkim: AlignmentMode = AlignmentMode.RELAXED
    aspf: AlignmentMode = AlignmentMode.RELAXED
    percent: int = 100

    @classmethod
    def from_record(cls, domain: str, record: DmarcRecord) -> "PolicyPublished":
        return cls(
            domain=domain,
            policy=record.policy,
            subdomain_policy=record.subdomain_policy,
            adkim=record.dkim_alignment,
            aspf=record.spf_alignment,
            percent=record.percent,
        )


@dataclass
class ReportRow:
    """One <record> element: a source IP and its evaluation outcome."""

    source_ip: str
    count: int
    disposition: str  # none / quarantine / reject
    dkim_aligned: str  # pass / fail
    spf_aligned: str  # pass / fail
    header_from: str
    spf_domain: Optional[str] = None
    spf_result: Optional[str] = None
    dkim_domain: Optional[str] = None
    dkim_result: Optional[str] = None


@dataclass
class AggregateReport:
    """A full aggregate report document."""

    metadata: ReportMetadata
    policy: PolicyPublished
    rows: List[ReportRow] = field(default_factory=list)

    @property
    def message_count(self) -> int:
        return sum(row.count for row in self.rows)

    # -- XML ------------------------------------------------------------

    def to_xml(self) -> str:
        root = ET.Element("feedback")
        meta = ET.SubElement(root, "report_metadata")
        _text(meta, "org_name", self.metadata.org_name)
        _text(meta, "email", self.metadata.email)
        _text(meta, "report_id", self.metadata.report_id)
        date_range = ET.SubElement(meta, "date_range")
        _text(date_range, "begin", str(self.metadata.date_begin))
        _text(date_range, "end", str(self.metadata.date_end))

        published = ET.SubElement(root, "policy_published")
        _text(published, "domain", self.policy.domain)
        _text(published, "adkim", self.policy.adkim.value)
        _text(published, "aspf", self.policy.aspf.value)
        _text(published, "p", self.policy.policy.value)
        if self.policy.subdomain_policy is not None:
            _text(published, "sp", self.policy.subdomain_policy.value)
        _text(published, "pct", str(self.policy.percent))

        for row in self.rows:
            record = ET.SubElement(root, "record")
            row_element = ET.SubElement(record, "row")
            _text(row_element, "source_ip", row.source_ip)
            _text(row_element, "count", str(row.count))
            evaluated = ET.SubElement(row_element, "policy_evaluated")
            _text(evaluated, "disposition", row.disposition)
            _text(evaluated, "dkim", row.dkim_aligned)
            _text(evaluated, "spf", row.spf_aligned)
            identifiers = ET.SubElement(record, "identifiers")
            _text(identifiers, "header_from", row.header_from)
            auth = ET.SubElement(record, "auth_results")
            if row.spf_domain is not None:
                spf = ET.SubElement(auth, "spf")
                _text(spf, "domain", row.spf_domain)
                _text(spf, "result", row.spf_result or "none")
            if row.dkim_domain is not None:
                dkim = ET.SubElement(auth, "dkim")
                _text(dkim, "domain", row.dkim_domain)
                _text(dkim, "result", row.dkim_result or "none")
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "AggregateReport":
        root = ET.fromstring(text)
        if root.tag != "feedback":
            raise ValueError("not a DMARC aggregate report")
        meta = root.find("report_metadata")
        date_range = meta.find("date_range")
        metadata = ReportMetadata(
            org_name=_get(meta, "org_name"),
            email=_get(meta, "email"),
            report_id=_get(meta, "report_id"),
            date_begin=int(_get(date_range, "begin")),
            date_end=int(_get(date_range, "end")),
        )
        published = root.find("policy_published")
        policy = PolicyPublished(
            domain=_get(published, "domain"),
            policy=DmarcPolicy(_get(published, "p")),
            subdomain_policy=(
                DmarcPolicy(_get(published, "sp")) if published.find("sp") is not None else None
            ),
            adkim=AlignmentMode(_get(published, "adkim")),
            aspf=AlignmentMode(_get(published, "aspf")),
            percent=int(_get(published, "pct")),
        )
        report = cls(metadata=metadata, policy=policy)
        for record in root.findall("record"):
            row_element = record.find("row")
            evaluated = row_element.find("policy_evaluated")
            identifiers = record.find("identifiers")
            auth = record.find("auth_results")
            spf = auth.find("spf") if auth is not None else None
            dkim = auth.find("dkim") if auth is not None else None
            report.rows.append(
                ReportRow(
                    source_ip=_get(row_element, "source_ip"),
                    count=int(_get(row_element, "count")),
                    disposition=_get(evaluated, "disposition"),
                    dkim_aligned=_get(evaluated, "dkim"),
                    spf_aligned=_get(evaluated, "spf"),
                    header_from=_get(identifiers, "header_from"),
                    spf_domain=_get(spf, "domain") if spf is not None else None,
                    spf_result=_get(spf, "result") if spf is not None else None,
                    dkim_domain=_get(dkim, "domain") if dkim is not None else None,
                    dkim_result=_get(dkim, "result") if dkim is not None else None,
                )
            )
        return report


def _text(parent: ET.Element, tag: str, value: str) -> None:
    element = ET.SubElement(parent, tag)
    element.text = value


def _get(parent: Optional[ET.Element], tag: str) -> str:
    if parent is None:
        raise ValueError("missing element %r" % tag)
    element = parent.find(tag)
    if element is None or element.text is None:
        raise ValueError("missing element %r" % tag)
    return element.text


# -- building reports from receiver state -------------------------------------


def build_aggregate_report(
    receiver,
    domain: str,
    org_name: Optional[str] = None,
    period: Optional[Tuple[float, float]] = None,
) -> Optional[AggregateReport]:
    """Assemble the aggregate report one receiving MTA would send for
    ``domain``, from its validation records and deliveries.

    Returns ``None`` when the receiver never evaluated DMARC for the
    domain (nothing to report).
    """
    from repro.mta.receiver import ReceivingMta  # local: avoid import cycle

    assert isinstance(receiver, ReceivingMta)
    domain = domain.rstrip(".").lower()
    evaluations = [
        v for v in receiver.validations if v.kind == "dmarc" and v.domain == domain
    ]
    if not evaluations:
        return None
    record: Optional[DmarcRecord] = None
    for validation in evaluations:
        outcome = validation.detail
        if outcome is not None and getattr(outcome, "record", None) is not None:
            record = outcome.record
            break
    policy = PolicyPublished.from_record(domain, record) if record else PolicyPublished(domain)

    begin = min(v.t_started for v in evaluations)
    end = max(v.t_completed for v in evaluations)
    if period is not None:
        begin, end = period

    # One row per (source_ip, disposition, alignment) combination.
    buckets: Dict[Tuple, ReportRow] = {}
    for validation in evaluations:
        outcome = validation.detail
        source_ip = validation.client_ip or "0.0.0.0"
        disposition = outcome.disposition.value if outcome else "none"
        spf_aligned = "pass" if outcome and outcome.spf_aligned else "fail"
        dkim_aligned = "pass" if outcome and outcome.dkim_aligned else "fail"
        key = (source_ip, disposition, spf_aligned, dkim_aligned)
        row = buckets.get(key)
        if row is None:
            row = ReportRow(
                source_ip=source_ip,
                count=0,
                disposition=disposition,
                dkim_aligned=dkim_aligned,
                spf_aligned=spf_aligned,
                header_from=domain,
                spf_domain=domain if spf_aligned == "pass" else None,
                spf_result="pass" if spf_aligned == "pass" else None,
                dkim_domain=domain if dkim_aligned == "pass" else None,
                dkim_result="pass" if dkim_aligned == "pass" else None,
            )
            buckets[key] = row
        row.count += 1

    metadata = ReportMetadata(
        org_name=org_name or receiver.hostname,
        email="noreply-dmarc@%s" % receiver.hostname,
        report_id="%s-%d-%d" % (domain, int(begin), int(end)),
        date_begin=int(begin),
        date_end=int(end),
    )
    report = AggregateReport(metadata=metadata, policy=policy)
    report.rows = list(buckets.values())
    return report


