"""A from-scratch DNS implementation.

Covers everything the measurement system needs: a domain-name type with
case-insensitive semantics, the record types SPF/DKIM/DMARC touch (A, AAAA,
MX, TXT, SOA, NS, CNAME, PTR), a complete wire codec with name compression,
zone storage, an authoritative server, and a caching resolver that falls
back from UDP to TCP on truncation and can prefer IPv4 or IPv6 transport.
"""

from repro.dns.errors import (
    DnsError,
    FormError,
    NameTooLong,
    NoNameservers,
    NxDomain,
    ResolutionTimeout,
    WireError,
)
from repro.dns.message import Flags, Message, Question
from repro.dns.name import Name, root
from repro.dns.rdata import (
    AAAARecord,
    ARecord,
    CnameRecord,
    MxRecord,
    NsRecord,
    PtrRecord,
    Rcode,
    RdataType,
    ResourceRecord,
    SoaRecord,
    TxtRecord,
)
from repro.dns.resolver import Answer, Resolver, ResolverConfig
from repro.dns.server import AuthoritativeServer, QueryLogEntry
from repro.dns.zone import Zone
from repro.dns.zonefile import ZoneFileError, parse_zone

__all__ = [
    "AAAARecord",
    "ARecord",
    "Answer",
    "AuthoritativeServer",
    "CnameRecord",
    "DnsError",
    "Flags",
    "FormError",
    "Message",
    "MxRecord",
    "Name",
    "NameTooLong",
    "NoNameservers",
    "NsRecord",
    "NxDomain",
    "PtrRecord",
    "Question",
    "QueryLogEntry",
    "Rcode",
    "RdataType",
    "ResolutionTimeout",
    "Resolver",
    "ResolverConfig",
    "ResourceRecord",
    "SoaRecord",
    "TxtRecord",
    "WireError",
    "Zone",
    "ZoneFileError",
    "parse_zone",
    "root",
]
