"""TTL-bounded cache used by the resolver.

Keys are ``(name.key, rdtype)``; values are whatever the resolver stores
(positive and negative answers alike).  Expiry uses virtual time supplied
by the caller, so the cache is as deterministic as everything else.
"""

from __future__ import annotations

from typing import Dict, Generic, Optional, Tuple, TypeVar

from repro.dns.name import Name
from repro.dns.rdata import RdataType

V = TypeVar("V")


class TtlCache(Generic[V]):
    """A name/type-keyed cache with per-entry absolute expiry times."""

    def __init__(self, max_entries: int = 100000) -> None:
        self._entries: Dict[Tuple[Tuple[str, ...], RdataType], Tuple[float, V]] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def get(self, name: Name, rdtype: RdataType, now: float) -> Optional[V]:
        key = (name.key, rdtype)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        expiry, value = entry
        if now >= expiry:
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, name: Name, rdtype: RdataType, value: V, ttl: float, now: float) -> None:
        if ttl <= 0:
            return
        key = (name.key, rdtype)
        # Overwriting never grows the cache, so it must not evict: at
        # capacity the oldest-expiry victim could be an unrelated live
        # entry — or this very key.
        if key not in self._entries and len(self._entries) >= self._max_entries:
            # Simple wholesale eviction of expired entries, then oldest-expiry.
            self._evict(now)
        self._entries[key] = (now + ttl, value)

    def _evict(self, now: float) -> None:
        expired = [key for key, (expiry, _) in self._entries.items() if expiry <= now]
        for key in expired:
            del self._entries[key]
        while len(self._entries) >= self._max_entries:
            victim = min(self._entries, key=lambda key: self._entries[key][0])
            del self._entries[victim]

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
