"""DNS error types."""


class DnsError(Exception):
    """Base class for DNS errors."""


class NameError_(DnsError):
    """Base class for malformed-name errors."""


class NameTooLong(NameError_):
    """A name exceeded 255 octets or a label exceeded 63 octets."""


class EmptyLabel(NameError_):
    """A name contained an empty interior label (``a..b``)."""


class WireError(DnsError):
    """Malformed wire-format data (bad pointer, short buffer, ...)."""


class FormError(DnsError):
    """A peer sent a structurally invalid message."""


class NxDomain(DnsError):
    """The queried name does not exist (RCODE 3)."""


class NoNameservers(DnsError):
    """No authoritative server could be found or reached for the name."""


class ResolutionTimeout(DnsError):
    """The resolver gave up waiting for a response."""
