"""DNS message model (RFC 1035 section 4).

A :class:`Message` holds the header fields the experiments care about —
notably the TC (truncation) bit that drives the UDP-to-TCP fallback test
policy — plus the question and the three record sections.  Serialisation
lives in :mod:`repro.dns.wire`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.dns.name import Name
from repro.dns.rdata import Rclass, Rcode, RdataType, ResourceRecord


@dataclass
class Flags:
    """Header flag bits and the 4-bit RCODE."""

    qr: bool = False  # response?
    aa: bool = False  # authoritative answer
    tc: bool = False  # truncated
    rd: bool = True  # recursion desired
    ra: bool = False  # recursion available
    opcode: int = 0
    rcode: Rcode = Rcode.NOERROR

    def to_int(self) -> int:
        value = 0
        if self.qr:
            value |= 0x8000
        value |= (self.opcode & 0xF) << 11
        if self.aa:
            value |= 0x0400
        if self.tc:
            value |= 0x0200
        if self.rd:
            value |= 0x0100
        if self.ra:
            value |= 0x0080
        value |= int(self.rcode) & 0xF
        return value

    @classmethod
    def from_int(cls, value: int) -> "Flags":
        return cls(
            qr=bool(value & 0x8000),
            opcode=(value >> 11) & 0xF,
            aa=bool(value & 0x0400),
            tc=bool(value & 0x0200),
            rd=bool(value & 0x0100),
            ra=bool(value & 0x0080),
            rcode=Rcode(value & 0xF),
        )


@dataclass(frozen=True)
class Question:
    """One entry of the question section."""

    name: Name
    rdtype: RdataType
    rdclass: Rclass = Rclass.IN

    def __str__(self) -> str:
        return "%s %s %s" % (self.name, self.rdclass.name, self.rdtype.name)


@dataclass
class Message:
    """A DNS query or response.

    ``edns_payload`` carries EDNS0 (RFC 6891): when not ``None``, the
    message includes an OPT pseudo-RR advertising that UDP payload size.
    Modern resolvers advertise ~1232 octets, which spares mid-sized
    responses the classic 512-octet truncation dance.
    """

    msg_id: int = 0
    flags: Flags = field(default_factory=Flags)
    question: List[Question] = field(default_factory=list)
    answer: List[ResourceRecord] = field(default_factory=list)
    authority: List[ResourceRecord] = field(default_factory=list)
    additional: List[ResourceRecord] = field(default_factory=list)
    edns_payload: Optional[int] = None

    # -- constructors ---------------------------------------------------

    @classmethod
    def make_query(
        cls,
        qname: Union[str, Name],
        rdtype: RdataType,
        msg_id: int = 0,
        recursion_desired: bool = True,
        edns_payload: Optional[int] = None,
    ) -> "Message":
        """Build a standard query for one name/type."""
        return cls(
            msg_id=msg_id,
            flags=Flags(qr=False, rd=recursion_desired),
            question=[Question(Name(qname), rdtype)],
            edns_payload=edns_payload,
        )

    def make_response(self) -> "Message":
        """Start a response to this query: same id/question, QR set.

        Per RFC 6891 a responder echoes EDNS support when the query
        carried an OPT record.
        """
        return Message(
            msg_id=self.msg_id,
            flags=Flags(qr=True, rd=self.flags.rd),
            question=list(self.question),
            edns_payload=self.edns_payload,
        )

    # -- accessors --------------------------------------------------------

    @property
    def qname(self) -> Optional[Name]:
        return self.question[0].name if self.question else None

    @property
    def qtype(self) -> Optional[RdataType]:
        return self.question[0].rdtype if self.question else None

    @property
    def rcode(self) -> Rcode:
        return self.flags.rcode

    def answers_of(self, rdtype: RdataType) -> List[ResourceRecord]:
        """Answer-section records of the given type."""
        return [rr for rr in self.answer if rr.rdtype == rdtype]

    def __str__(self) -> str:
        lines = [
            "id %d %s rcode=%s%s" % (
                self.msg_id,
                "response" if self.flags.qr else "query",
                self.flags.rcode.name,
                " TC" if self.flags.tc else "",
            )
        ]
        for question in self.question:
            lines.append(";%s" % question)
        for section, records in (
            ("answer", self.answer),
            ("authority", self.authority),
            ("additional", self.additional),
        ):
            for rr in records:
                lines.append("%s: %s" % (section, rr.to_text()))
        return "\n".join(lines)
