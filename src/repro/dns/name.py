"""Domain names.

A :class:`Name` is an immutable sequence of labels, always stored fully
qualified (the empty root label is implicit, not stored).  Comparison and
hashing are case-insensitive, per RFC 1034 section 3.1; the original casing
is preserved for presentation.

Names are used as dictionary keys throughout the zone and cache layers, and
the measurement harness leans on :meth:`Name.is_subdomain_of` and
:meth:`Name.relativize` to attribute observed queries back to test
policies.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

from repro.dns.errors import EmptyLabel, NameTooLong

_MAX_LABEL = 63
_MAX_NAME = 255


def _validate_label(label: str) -> str:
    if not label:
        raise EmptyLabel("empty label")
    if len(label.encode("ascii", "strict")) > _MAX_LABEL:
        raise NameTooLong("label exceeds 63 octets: %r" % label)
    return label


class Name:
    """A fully-qualified domain name.

    Construct from a dotted string (``Name("Foo.Example.COM")``) or from an
    iterable of labels (``Name(("foo", "example", "com"))``).  A trailing
    dot is accepted and ignored; ``Name(".")`` and ``Name("")`` both denote
    the root.
    """

    __slots__ = ("_labels", "_key")

    def __init__(self, value: Union[str, Iterable[str], "Name"] = ()) -> None:
        if isinstance(value, Name):
            labels: Tuple[str, ...] = value._labels
        elif isinstance(value, str):
            text = value.rstrip(".")
            labels = tuple(_validate_label(p) for p in text.split(".")) if text else ()
        else:
            labels = tuple(_validate_label(str(p)) for p in value)
        # +1 per label length octet, +1 for the root label.
        wire_length = sum(len(label) + 1 for label in labels) + 1
        if wire_length > _MAX_NAME:
            raise NameTooLong("name exceeds 255 octets: %s" % ".".join(labels))
        self._labels = labels
        self._key = tuple(label.lower() for label in labels)

    # -- structure ------------------------------------------------------

    @property
    def labels(self) -> Tuple[str, ...]:
        """The labels, most-specific first, original casing preserved."""
        return self._labels

    @property
    def key(self) -> Tuple[str, ...]:
        """Lower-cased labels — the canonical comparison key."""
        return self._key

    def is_root(self) -> bool:
        return not self._labels

    def parent(self) -> "Name":
        """The name with its leftmost label removed."""
        if not self._labels:
            raise ValueError("the root name has no parent")
        return Name(self._labels[1:])

    def child(self, *labels: str) -> "Name":
        """A new name with ``labels`` prepended (leftmost first)."""
        return Name(tuple(labels) + self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    # -- relations --------------------------------------------------------

    def is_subdomain_of(self, other: "Name") -> bool:
        """True if ``self`` equals ``other`` or sits beneath it."""
        if len(other._key) > len(self._key):
            return False
        offset = len(self._key) - len(other._key)
        return self._key[offset:] == other._key

    def relativize(self, suffix: "Name") -> Tuple[str, ...]:
        """Labels of ``self`` with ``suffix`` stripped from the right.

        Raises ``ValueError`` if ``self`` is not a subdomain of ``suffix``.
        """
        if not self.is_subdomain_of(suffix):
            raise ValueError("%s is not under %s" % (self, suffix))
        return self._labels[: len(self._labels) - len(suffix._labels)]

    # -- value semantics --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Name):
            return self._key == other._key
        if isinstance(other, str):
            return self._key == Name(other)._key
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key)

    def __lt__(self, other: "Name") -> bool:
        # Canonical DNS ordering compares labels right to left.
        return tuple(reversed(self._key)) < tuple(reversed(other._key))

    def __str__(self) -> str:
        return ".".join(self._labels) + "." if self._labels else "."

    def __repr__(self) -> str:
        return "Name(%r)" % str(self)

    def to_text(self, omit_final_dot: bool = False) -> str:
        """Dotted textual form; optionally without the trailing dot."""
        text = str(self)
        if omit_final_dot and text != ".":
            text = text[:-1]
        return text


#: The DNS root name.
root = Name(())
