"""Resource-record data types.

Only the types the measurement system touches are implemented, which is
exactly the set the paper's experiments exercise: A, AAAA, MX, TXT (SPF,
DKIM key, and DMARC records all live in TXT), SOA (contact publication in
RNAME, negative caching), NS, CNAME and PTR.

Rdata classes are immutable value objects holding parsed fields; the wire
codec in :mod:`repro.dns.wire` knows how to serialise each.
"""

from __future__ import annotations

import enum
import ipaddress
from typing import Sequence, Tuple, Union

from repro.dns.name import Name


class RdataType(enum.IntEnum):
    """RR TYPE values (RFC 1035 / 3596)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28

    @classmethod
    def from_text(cls, text: str) -> "RdataType":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError("unknown rdata type %r" % text) from None


class Rclass(enum.IntEnum):
    """RR CLASS values; only IN is used."""

    IN = 1


class Rcode(enum.IntEnum):
    """Response codes (RFC 1035 section 4.1.1)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


class Rdata:
    """Base class for typed record data."""

    rdtype: RdataType

    def to_text(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return "%s(%s)" % (type(self).__name__, self.to_text())

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._fields() == other._fields()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__,) + self._fields())

    def _fields(self) -> tuple:
        raise NotImplementedError


class ARecord(Rdata):
    """An IPv4 address."""

    rdtype = RdataType.A
    __slots__ = ("address",)

    def __init__(self, address: str) -> None:
        self.address = str(ipaddress.IPv4Address(address))

    def to_text(self) -> str:
        return self.address

    def _fields(self) -> tuple:
        return (self.address,)


class AAAARecord(Rdata):
    """An IPv6 address (stored in canonical compressed form)."""

    rdtype = RdataType.AAAA
    __slots__ = ("address",)

    def __init__(self, address: str) -> None:
        self.address = str(ipaddress.IPv6Address(address))

    def to_text(self) -> str:
        return self.address

    def _fields(self) -> tuple:
        return (self.address,)


class NsRecord(Rdata):
    """An authoritative name-server name."""

    rdtype = RdataType.NS
    __slots__ = ("target",)

    def __init__(self, target: Union[str, Name]) -> None:
        self.target = Name(target)

    def to_text(self) -> str:
        return str(self.target)

    def _fields(self) -> tuple:
        return (self.target.key,)


class CnameRecord(Rdata):
    """A canonical-name alias."""

    rdtype = RdataType.CNAME
    __slots__ = ("target",)

    def __init__(self, target: Union[str, Name]) -> None:
        self.target = Name(target)

    def to_text(self) -> str:
        return str(self.target)

    def _fields(self) -> tuple:
        return (self.target.key,)


class PtrRecord(Rdata):
    """A reverse-mapping pointer."""

    rdtype = RdataType.PTR
    __slots__ = ("target",)

    def __init__(self, target: Union[str, Name]) -> None:
        self.target = Name(target)

    def to_text(self) -> str:
        return str(self.target)

    def _fields(self) -> tuple:
        return (self.target.key,)


class MxRecord(Rdata):
    """A mail-exchange record: preference plus exchange host name."""

    rdtype = RdataType.MX
    __slots__ = ("preference", "exchange")

    def __init__(self, preference: int, exchange: Union[str, Name]) -> None:
        if not 0 <= preference <= 0xFFFF:
            raise ValueError("MX preference out of range: %r" % preference)
        self.preference = int(preference)
        self.exchange = Name(exchange)

    def to_text(self) -> str:
        return "%d %s" % (self.preference, self.exchange)

    def _fields(self) -> tuple:
        return (self.preference, self.exchange.key)


class TxtRecord(Rdata):
    """One TXT record: a sequence of character-strings (each <= 255 bytes).

    SPF, DKIM key, and DMARC records are all published as TXT.  The
    :attr:`text` property joins the strings, which is how SPF (RFC 7208
    section 3.3) and DKIM consumers reassemble long records.
    """

    rdtype = RdataType.TXT
    __slots__ = ("strings",)

    def __init__(self, strings: Union[str, Sequence[str]]) -> None:
        if isinstance(strings, str):
            strings = _split_character_strings(strings)
        parts = tuple(strings)
        if not parts:
            raise ValueError("TXT record needs at least one character-string")
        for part in parts:
            if len(part.encode("utf-8")) > 255:
                raise ValueError("TXT character-string exceeds 255 octets")
        self.strings: Tuple[str, ...] = parts

    @property
    def text(self) -> str:
        """All character-strings concatenated, per SPF/DKIM record rules."""
        return "".join(self.strings)

    def to_text(self) -> str:
        return " ".join('"%s"' % part.replace('"', '\\"') for part in self.strings)

    def _fields(self) -> tuple:
        return (self.strings,)


def _split_character_strings(text: str, limit: int = 255) -> Tuple[str, ...]:
    """Split ``text`` into <=255-octet chunks, as publishers of long TXT
    records (DKIM public keys, big SPF policies) must."""
    if not text:
        return ("",)
    return tuple(text[i : i + limit] for i in range(0, len(text), limit))


class SoaRecord(Rdata):
    """Start-of-authority.

    The RNAME field is where the paper published a contact address
    (Section 5.3), so it is a first-class field here.
    """

    rdtype = RdataType.SOA
    __slots__ = ("mname", "rname", "serial", "refresh", "retry", "expire", "minimum")

    def __init__(
        self,
        mname: Union[str, Name],
        rname: Union[str, Name],
        serial: int = 1,
        refresh: int = 7200,
        retry: int = 3600,
        expire: int = 1209600,
        minimum: int = 300,
    ) -> None:
        self.mname = Name(mname)
        self.rname = Name(rname)
        self.serial = int(serial)
        self.refresh = int(refresh)
        self.retry = int(retry)
        self.expire = int(expire)
        self.minimum = int(minimum)

    def to_text(self) -> str:
        return "%s %s %d %d %d %d %d" % (
            self.mname,
            self.rname,
            self.serial,
            self.refresh,
            self.retry,
            self.expire,
            self.minimum,
        )

    def _fields(self) -> tuple:
        return (
            self.mname.key,
            self.rname.key,
            self.serial,
            self.refresh,
            self.retry,
            self.expire,
            self.minimum,
        )


class ResourceRecord:
    """A complete RR: owner name, class, TTL and typed rdata."""

    __slots__ = ("name", "ttl", "rdata")

    def __init__(self, name: Union[str, Name], ttl: int, rdata: Rdata) -> None:
        self.name = Name(name)
        if ttl < 0:
            raise ValueError("negative TTL")
        self.ttl = int(ttl)
        self.rdata = rdata

    @property
    def rdtype(self) -> RdataType:
        return self.rdata.rdtype

    def to_text(self) -> str:
        return "%s %d IN %s %s" % (self.name, self.ttl, self.rdtype.name, self.rdata.to_text())

    def __repr__(self) -> str:
        return "ResourceRecord(%s)" % self.to_text()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceRecord):
            return NotImplemented
        return (self.name, self.ttl, self.rdata) == (other.name, other.ttl, other.rdata)

    def __hash__(self) -> int:
        return hash((self.name, self.ttl, self.rdata))
