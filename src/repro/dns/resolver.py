"""Caching resolver.

Each simulated MTA owns a :class:`Resolver`, which plays the role of the
"recursive resolver" in the paper's Figure 1.  Recursion is abbreviated: a
shared :class:`AuthorityDirectory` maps zone origins to authoritative
server addresses (standing in for the delegation walk from the root), and
the resolver then performs real wire-format exchanges with those servers —
UDP first, retrying over TCP when the TC bit comes back, choosing IPv4 or
IPv6 transport according to its capabilities.

All timing is explicit: :meth:`Resolver.query_at` takes a start timestamp
and returns the completion timestamp alongside the answer, so callers can
model serial chains or parallel fans of lookups.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple, Union

from repro.dns import wire
from repro.dns.cache import TtlCache
from repro.dns.message import Message
from repro.dns.name import Name
from repro.dns.rdata import Rcode, RdataType, ResourceRecord
from repro.net.errors import ConnectionResetByPeer, NetError, PacketLost
from repro.net.network import DNS_PORT, Network, is_ipv6
from repro.net.retry import NO_RETRY, RetryPolicy
from repro.obs import Observability, ensure_obs


class AnswerStatus(enum.Enum):
    """Resolver-level interpretation of a lookup outcome."""

    SUCCESS = "success"
    NODATA = "nodata"
    NXDOMAIN = "nxdomain"
    SERVFAIL = "servfail"
    TIMEOUT = "timeout"
    UNREACHABLE = "unreachable"

    @property
    def is_void(self) -> bool:
        """Void lookup in the RFC 7208 sense: name yields no records."""
        return self in (AnswerStatus.NODATA, AnswerStatus.NXDOMAIN)

    @property
    def is_error(self) -> bool:
        return self in (AnswerStatus.SERVFAIL, AnswerStatus.TIMEOUT, AnswerStatus.UNREACHABLE)


# Constant metric-label tuples for the per-query hot path; rdtype/status
# combinations form a small closed set, so they are memoized too.
_CACHE_HIT_LABELS = (("outcome", "hit"),)
_CACHE_MISS_LABELS = (("outcome", "miss"),)
_UDP_LABELS = (("transport", "udp"),)
_TCP_LABELS = (("transport", "tcp"),)


@lru_cache(maxsize=None)
def _query_labels(rdtype_name: str, status_value: str) -> tuple:
    return (("rdtype", rdtype_name), ("status", status_value))


@dataclass
class Answer:
    """The result of one resolution, with timing and transport metadata."""

    qname: Name
    rdtype: RdataType
    status: AnswerStatus
    records: List[ResourceRecord] = field(default_factory=list)
    rcode: Rcode = Rcode.NOERROR
    transport: str = "udp"
    server_ip: Optional[str] = None
    from_cache: bool = False
    negative_ttl: float = 300.0

    @property
    def min_ttl(self) -> float:
        if not self.records:
            return self.negative_ttl
        return min(rr.ttl for rr in self.records)

    def texts(self) -> List[str]:
        """Concatenated TXT strings of each TXT answer record."""
        return [rr.rdata.text for rr in self.records if rr.rdtype == RdataType.TXT]

    def addresses(self) -> List[str]:
        """A/AAAA addresses in the answer."""
        return [
            rr.rdata.address
            for rr in self.records
            if rr.rdtype in (RdataType.A, RdataType.AAAA)
        ]


@dataclass
class ResolverConfig:
    """Behavioural knobs of a resolver.

    ``tcp_fallback`` and ``ipv6_capable`` correspond directly to the
    resolver properties the paper probes in Section 7.3 (2 of 1,336
    resolvers failed TCP fallback; 49% of MTAs retrieved a policy over
    IPv6).
    """

    use_cache: bool = True
    timeout: float = 5.0
    tcp_fallback: bool = True
    ipv4_capable: bool = True
    ipv6_capable: bool = True
    prefer_ipv6: bool = False
    max_cname_chain: int = 8
    #: EDNS0 advertised UDP payload size; ``None`` disables EDNS and
    #: falls back to the classic 512-octet ceiling (RFC 6891).
    edns_payload: Optional[int] = 1232
    #: DNS 0x20 (draft-vixie-dnsext-dns0x20): randomise the query name's
    #: letter case and reject answers that fail to echo it — an
    #: anti-spoofing measure several large resolvers deploy.
    use_0x20: bool = False
    #: Per-server retry policy: how many times the same server is tried
    #: (with exponential virtual-time backoff between attempts) before
    #: the resolver fails over to the next candidate.  The default — one
    #: attempt, no backoff — matches historical behaviour exactly.  A
    #: ``retry.timeout`` overrides :attr:`timeout` per try.
    retry: RetryPolicy = NO_RETRY


class AuthorityDirectory:
    """Maps zone origins to authoritative server addresses.

    Stands in for the delegation hierarchy: the resolver asks for the most
    specific registered origin covering the query name and contacts those
    servers directly.
    """

    def __init__(self) -> None:
        self._origins: Dict[Tuple[str, ...], List[str]] = {}

    def register(self, origin: Union[str, Name], *addresses: str) -> None:
        if not addresses:
            raise ValueError("at least one server address is required")
        self._origins.setdefault(Name(origin).key, []).extend(addresses)

    def servers_for(self, qname: Name) -> List[str]:
        """Addresses for the most specific origin covering ``qname``.

        Walks the name's suffixes longest-first, so the cost is one dict
        probe per label rather than a scan of every registered origin.
        """
        key = qname.key
        for start in range(len(key) + 1):
            addresses = self._origins.get(key[start:])
            if addresses is not None:
                return list(addresses)
        return []


class Resolver:
    """A caching resolver bound to one or two source addresses."""

    def __init__(
        self,
        network: Network,
        directory: AuthorityDirectory,
        address4: Optional[str] = None,
        address6: Optional[str] = None,
        config: Optional[ResolverConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if address4 is None and address6 is None:
            raise ValueError("resolver needs at least one source address")
        self.network = network
        self.directory = directory
        self.address4 = address4
        self.address6 = address6
        self.config = config if config is not None else ResolverConfig()
        self.obs = ensure_obs(obs)
        self.cache: TtlCache[Answer] = TtlCache()
        self._next_id = 1
        for address in (address4, address6):
            if address is not None:
                network.add_address(address)

    # -- public API ------------------------------------------------------

    def query_at(self, qname: Union[str, Name], rdtype: RdataType, t_start: float) -> Tuple[Answer, float]:
        """Resolve ``qname``/``rdtype`` starting at ``t_start``.

        Returns ``(answer, t_done)``.  Never raises for resolution
        failures; inspect :attr:`Answer.status`.
        """
        name = Name(qname)
        obs = self.obs
        with obs.tracer.span("dns.query", t_start, qname=str(name), rdtype=rdtype.name) as span:
            answer, t_done = self._query_at(name, rdtype, t_start)
            span.set(status=answer.status.value, transport=answer.transport, cached=answer.from_cache)
            span.end(t_done)
        obs.metrics.counter(
            "dns_client_queries_total", _query_labels(rdtype.name, answer.status.value), t=t_done
        )
        if answer.status.is_void:
            obs.metrics.counter("dns_client_void_lookups_total", t=t_done)
        obs.metrics.observe("dns_client_query_seconds", t_done - t_start, t=t_done)
        return answer, t_done

    def _query_at(self, name: Name, rdtype: RdataType, t_start: float) -> Tuple[Answer, float]:
        answer, t_done = self._resolve(name, rdtype, t_start)
        chain = 0
        # Chase cross-zone CNAMEs the authoritative server did not follow.
        while (
            answer.status is AnswerStatus.SUCCESS
            and rdtype != RdataType.CNAME
            and not any(rr.rdtype == rdtype for rr in answer.records)
            and any(rr.rdtype == RdataType.CNAME for rr in answer.records)
        ):
            chain += 1
            if chain > self.config.max_cname_chain:
                answer.status = AnswerStatus.SERVFAIL
                break
            cname = next(rr for rr in answer.records if rr.rdtype == RdataType.CNAME)
            target = cname.rdata.target
            follow, t_done = self._resolve(target, rdtype, t_done)
            merged = Answer(
                qname=name,
                rdtype=rdtype,
                status=follow.status,
                records=answer.records + follow.records,
                rcode=follow.rcode,
                transport=follow.transport,
                server_ip=follow.server_ip,
            )
            answer = merged
            if follow.status is not AnswerStatus.SUCCESS:
                break
        return answer, t_done

    def resolve_addresses(
        self, qname: Union[str, Name], t_start: float, want_ipv6: bool = True
    ) -> Tuple[List[str], float]:
        """Convenience: serial A then AAAA lookups, returning all addresses."""
        name = Name(qname)
        answer_a, t = self.query_at(name, RdataType.A, t_start)
        addresses = answer_a.addresses()
        if want_ipv6:
            answer_aaaa, t = self.query_at(name, RdataType.AAAA, t)
            addresses += answer_aaaa.addresses()
        return addresses, t

    # -- internals -----------------------------------------------------

    def _resolve(self, name: Name, rdtype: RdataType, t_start: float) -> Tuple[Answer, float]:
        if self.config.use_cache:
            cached = self.cache.get(name, rdtype, t_start)
            self.obs.metrics.counter(
                "dns_client_cache_events_total",
                _CACHE_HIT_LABELS if cached is not None else _CACHE_MISS_LABELS,
                t=t_start,
            )
            if cached is not None:
                hit = Answer(
                    qname=name,
                    rdtype=rdtype,
                    status=cached.status,
                    records=list(cached.records),
                    rcode=cached.rcode,
                    transport=cached.transport,
                    server_ip=cached.server_ip,
                    from_cache=True,
                )
                return hit, t_start

        servers = self.directory.servers_for(name)
        candidates = self._order_candidates(servers)
        if not candidates:
            answer = Answer(name, rdtype, AnswerStatus.UNREACHABLE, rcode=Rcode.SERVFAIL)
            return answer, t_start

        retry = self.config.retry
        t = t_start
        last_status = AnswerStatus.UNREACHABLE
        last_answer: Optional[Answer] = None
        give_up = False
        for src_ip, dst_ip in candidates:
            for attempt in range(1, retry.attempts + 1):
                t += retry.delay_before(attempt)
                answer, t_done, failure_status, retryable = self._exchange(
                    name, rdtype, src_ip, dst_ip, t
                )
                t = t_done
                if answer is not None and not answer.status.is_error:
                    if self.config.use_cache:
                        self.cache.put(name, rdtype, answer, answer.min_ttl, t_done)
                    return answer, t_done
                # Graceful degradation: error rcodes and wire-level
                # failures both feed failover (same server again per the
                # retry policy, then the next candidate) instead of
                # surfacing immediately.
                if answer is not None:
                    last_answer = answer
                    last_status = answer.status
                elif failure_status is not None:
                    last_status = failure_status
                if not retryable:
                    # The retry_next_server contract: a non-retryable
                    # failure (a server that answered, just too late or
                    # unusably) means trying elsewhere cannot help.
                    give_up = True
                    break
            if give_up:
                break
        if last_answer is not None:
            return last_answer, t
        failure = Answer(name, rdtype, last_status, rcode=Rcode.SERVFAIL)
        return failure, t

    def _order_candidates(self, servers: List[str]) -> List[Tuple[str, str]]:
        """(source, destination) pairs in the order they will be tried."""
        v4 = [s for s in servers if not is_ipv6(s)]
        v6 = [s for s in servers if is_ipv6(s)]
        pairs: List[Tuple[str, str]] = []
        families: List[Tuple[Optional[str], List[str]]] = []
        if self.config.prefer_ipv6:
            families = [(self.address6, v6), (self.address4, v4)]
        else:
            families = [(self.address4, v4), (self.address6, v6)]
        for src, dsts in families:
            if src is None:
                continue
            if src == self.address4 and not self.config.ipv4_capable:
                continue
            if src == self.address6 and not self.config.ipv6_capable:
                continue
            pairs.extend((src, dst) for dst in dsts)
        return pairs

    def _timeout(self) -> float:
        retry_timeout = self.config.retry.timeout
        return self.config.timeout if retry_timeout is None else retry_timeout

    def _exchange(
        self, name: Name, rdtype: RdataType, src_ip: str, dst_ip: str, t_send: float
    ) -> Tuple[Optional[Answer], float, Optional[AnswerStatus], bool]:
        """One UDP exchange (plus optional TCP retry) with one server.

        Returns ``(answer_or_None, t_done, failure_status,
        retry_next_server)``.  ``failure_status`` classifies answerless
        failures into the :class:`AnswerStatus` taxonomy (``None`` when
        an answer is present); ``retry_next_server`` is ``False`` when
        trying another server cannot help (the server *answered*, just
        too late or unusably), which per the contract stops the failover
        loop.
        """
        msg_id = self._take_id()
        wire_name = self._randomize_case(name) if self.config.use_0x20 else name
        query = Message.make_query(
            wire_name, rdtype, msg_id=msg_id, recursion_desired=False,
            edns_payload=self.config.edns_payload,
        )
        payload = wire.to_wire(query)
        timeout = self._timeout()
        obs = self.obs
        with obs.tracer.span(
            "dns.exchange", t_send, qname=str(wire_name), qtype=rdtype.name,
            transport="udp", client=src_ip, server=dst_ip,
        ) as span:
            try:
                reply_bytes, t_reply = self.network.udp_request(src_ip, dst_ip, DNS_PORT, payload, t_send)
            except PacketLost:
                # The datagram vanished; the caller only learns so by
                # waiting out its own timeout, and — unlike a late reply
                # from a live server — retrying is the right move.
                span.set(outcome="lost").end(t_send + timeout)
                return None, t_send + timeout, AnswerStatus.TIMEOUT, True
            except NetError:
                span.set(outcome="neterror").end(t_send)
                return None, t_send, AnswerStatus.UNREACHABLE, True
            obs.metrics.counter("dns_client_exchanges_total", _UDP_LABELS, t=t_reply)
            if t_reply - t_send > timeout:
                # The reply arrived after we gave up listening.
                span.set(outcome="timeout").end(t_send + timeout)
                return None, t_send + timeout, AnswerStatus.TIMEOUT, False
            try:
                reply = wire.from_wire(reply_bytes)
            except Exception:
                span.set(outcome="badreply").end(t_reply)
                return None, t_reply, AnswerStatus.SERVFAIL, True
            if reply.msg_id != msg_id:
                span.set(outcome="mismatch").end(t_reply)
                return None, t_reply, AnswerStatus.SERVFAIL, True
            if self.config.use_0x20 and (
                not reply.question or reply.question[0].name.labels != wire_name.labels
            ):
                # The echoed question's case does not match what we sent —
                # exactly what 0x20 exists to catch.  Treat as a spoof attempt.
                span.set(outcome="0x20").end(t_reply)
                return None, t_reply, AnswerStatus.SERVFAIL, True
            if reply.flags.tc:
                if not self.config.tcp_fallback:
                    span.set(outcome="truncated", fallback=False).end(t_reply)
                    answer = Answer(
                        name, rdtype, AnswerStatus.SERVFAIL, rcode=Rcode.SERVFAIL, transport="udp", server_ip=dst_ip
                    )
                    return answer, t_reply, None, False
                span.set(outcome="truncated", fallback=True).end(t_reply)
                obs.metrics.counter("dns_client_tcp_fallbacks_total", t=t_reply)
                # Called inside the open span so the TCP retry nests as a
                # child of the truncated UDP exchange.
                return self._exchange_tcp(name, rdtype, src_ip, dst_ip, t_reply)
            span.set(outcome="ok").end(t_reply)
            return self._interpret(reply, name, rdtype, "udp", dst_ip), t_reply, None, True

    def _exchange_tcp(
        self, name: Name, rdtype: RdataType, src_ip: str, dst_ip: str, t_start: float
    ) -> Tuple[Optional[Answer], float, Optional[AnswerStatus], bool]:
        msg_id = self._take_id()
        query = Message.make_query(name, rdtype, msg_id=msg_id, recursion_desired=False)
        payload = wire.to_wire(query)
        framed = struct.pack("!H", len(payload)) + payload
        obs = self.obs
        with obs.tracer.span(
            "dns.exchange", t_start, qname=str(name), qtype=rdtype.name,
            transport="tcp", client=src_ip, server=dst_ip,
        ) as span:
            try:
                channel = self.network.connect_tcp(src_ip, dst_ip, DNS_PORT, t_start)
                reply_framed, t_reply = channel.request(framed, channel.t_established)
                channel.close(t_reply)
            except ConnectionResetByPeer as exc:
                t_reset = exc.t if exc.t is not None else t_start
                span.set(outcome="reset").end(t_reset)
                return None, t_reset, AnswerStatus.SERVFAIL, True
            except NetError:
                span.set(outcome="neterror").end(t_start)
                return None, t_start, AnswerStatus.UNREACHABLE, True
            obs.metrics.counter("dns_client_exchanges_total", _TCP_LABELS, t=t_reply)
            if reply_framed is None or len(reply_framed) < 2:
                span.set(outcome="badreply").end(t_reply)
                return None, t_reply, AnswerStatus.SERVFAIL, True
            (length,) = struct.unpack("!H", reply_framed[:2])
            try:
                reply = wire.from_wire(reply_framed[2 : 2 + length])
            except Exception:
                span.set(outcome="badreply").end(t_reply)
                return None, t_reply, AnswerStatus.SERVFAIL, True
            span.set(outcome="ok").end(t_reply)
            return self._interpret(reply, name, rdtype, "tcp", dst_ip), t_reply, None, True

    def _interpret(self, reply: Message, name: Name, rdtype: RdataType, transport: str, server_ip: str) -> Answer:
        negative_ttl = 300.0
        if reply.authority:
            soa = reply.authority[0]
            if hasattr(soa.rdata, "minimum"):
                negative_ttl = float(min(soa.ttl, soa.rdata.minimum))
        if reply.rcode == Rcode.NXDOMAIN:
            status = AnswerStatus.NXDOMAIN
        elif reply.rcode != Rcode.NOERROR:
            status = AnswerStatus.SERVFAIL
        elif reply.answer:
            status = AnswerStatus.SUCCESS
        else:
            status = AnswerStatus.NODATA
        return Answer(
            qname=name,
            rdtype=rdtype,
            status=status,
            records=list(reply.answer),
            rcode=reply.rcode,
            transport=transport,
            server_ip=server_ip,
            negative_ttl=negative_ttl,
        )

    def _take_id(self) -> int:
        msg_id = self._next_id
        self._next_id = (self._next_id + 1) & 0xFFFF or 1
        return msg_id

    def _randomize_case(self, name: Name) -> Name:
        """DNS 0x20: flip each letter's case pseudo-randomly (but
        deterministically per resolver instance and query ordinal)."""
        import hashlib

        seed_material = "%s|%s|%d" % (self.address4 or "", str(name), self._next_id)
        digest = hashlib.md5(seed_material.encode("utf-8")).digest()
        bits = int.from_bytes(digest, "big")
        randomized = []
        position = 0
        for label in name.labels:
            characters = []
            for char in label:
                if char.isalpha():
                    characters.append(char.upper() if (bits >> position) & 1 else char.lower())
                    position += 1
                else:
                    characters.append(char)
            randomized.append("".join(characters))
        return Name(randomized)
