"""Authoritative DNS server.

Serves one or more zones over the virtual network's UDP and TCP, applying
the classic 512-octet UDP ceiling (and optional forced truncation, used by
the ``tcp_only`` test policy).  Every query is appended to a query log —
this log *is* the paper's measurement instrument (Section 4.5): analyses
attribute entries back to MTAs and test policies via labels embedded in the
query names.

Subclasses may override :meth:`resolve` to synthesize answers instead of
serving stored zones; :class:`repro.core.synth.SynthesizingAuthority` does
exactly that.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from repro.dns import wire
from repro.dns.message import Message
from repro.dns.name import Name
from repro.dns.rdata import Rcode, RdataType
from repro.dns.zone import LookupStatus, Zone
from repro.net.faults import FaultKind, FaultPlan
from repro.net.network import DNS_PORT, Network, is_ipv6
from repro.obs import Observability, ensure_obs

# Constant metric-label tuples for the per-query hot path; rcodes are a
# small closed set, so those label tuples are memoized as they appear.
_UDP_QUERY_LABELS = (("transport", "udp"),)
_TCP_QUERY_LABELS = (("transport", "tcp"),)
_TRUNCATED_FORCED = (("reason", "forced"),)
_TRUNCATED_SIZE = (("reason", "size"),)
_TRUNCATED_INJECTED = (("reason", "injected"),)
_RCODE_LABELS: dict = {}


@dataclass(frozen=True)
class QueryLogEntry:
    """One observed query: the unit of measurement for the whole study."""

    timestamp: float
    qname: Name
    qtype: RdataType
    transport: str  # "udp" or "tcp"
    client_ip: str

    @property
    def over_ipv6(self) -> bool:
        return is_ipv6(self.client_ip)


class AuthoritativeServer:
    """An authoritative-only server for a set of zones.

    Parameters
    ----------
    zones:
        Zones this server is authoritative for.
    response_delay:
        Optional callable ``(qname, qtype) -> seconds`` adding a
        server-side processing delay per query; the paper's test policies
        insert 100 ms / 800 ms delays this way.
    force_tcp_for:
        Optional predicate ``(qname) -> bool``; matching queries get a
        truncated (TC=1, empty) response over UDP regardless of size,
        forcing well-behaved resolvers to retry over TCP.
    faults:
        Optional :class:`~repro.net.faults.FaultPlan` consulted for the
        DNS-answer kinds (``truncate``, ``servfail``, ``refused``).
        Injection happens *after* the query is logged: both witnesses —
        the server's query log and the client's spans — agree the query
        arrived, only its answer was sabotaged.
    """

    def __init__(
        self,
        zones: Optional[List[Zone]] = None,
        response_delay: Optional[Callable[[Name, RdataType], float]] = None,
        force_tcp_for: Optional[Callable[[Name], bool]] = None,
        max_udp_payload: int = 1232,
        obs: Optional[Observability] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.zones: List[Zone] = list(zones) if zones else []
        self.response_delay = response_delay
        self.force_tcp_for = force_tcp_for
        self.faults = faults
        self.obs = ensure_obs(obs)
        #: The largest UDP response this server will emit to an EDNS
        #: client, regardless of what the client advertises (RFC 6891).
        self.max_udp_payload = max_udp_payload
        self.query_log: List[QueryLogEntry] = []

    # -- deployment ------------------------------------------------------

    def add_zone(self, zone: Zone) -> None:
        self.zones.append(zone)

    def attach(self, network: Network, *addresses: str, port: int = DNS_PORT) -> None:
        """Bind UDP and TCP listeners on every given address."""
        for address in addresses:
            network.listen_udp(address, port, self.udp_handler)
            network.listen_tcp(address, port, self._tcp_session_factory)

    # -- zone selection ----------------------------------------------------

    def zone_for(self, qname: Name) -> Optional[Zone]:
        """The most specific zone containing ``qname``, if any."""
        best: Optional[Zone] = None
        for zone in self.zones:
            if qname.is_subdomain_of(zone.origin):
                if best is None or len(zone.origin) > len(best.origin):
                    best = zone
        return best

    # -- query answering ---------------------------------------------------

    def resolve(self, query: Message, transport: str, client_ip: str, t_arrival: float) -> Message:
        """Produce the response message for ``query``.

        The default implementation answers from stored zones, following
        CNAME chains within the same server and attaching the zone SOA to
        the authority section of negative answers (RFC 2308 style).
        """
        response = query.make_response()
        qname, qtype = query.qname, query.qtype
        if qname is None or qtype is None:
            response.flags.rcode = Rcode.FORMERR
            return response
        zone = self.zone_for(qname)
        if zone is None:
            response.flags.rcode = Rcode.REFUSED
            return response
        response.flags.aa = True
        name = qname
        for _ in range(16):  # CNAME chain ceiling
            status, records = zone.lookup(name, qtype)
            if status is LookupStatus.SUCCESS:
                response.answer.extend(records)
                return response
            if status is LookupStatus.CNAME:
                response.answer.extend(records)
                target = records[0].rdata.target
                next_zone = self.zone_for(target)
                if next_zone is None:
                    return response
                zone, name = next_zone, target
                continue
            soa = zone.soa
            if soa is not None:
                response.authority.append(soa)
            if status is LookupStatus.NXDOMAIN:
                response.flags.rcode = Rcode.NXDOMAIN
            return response
        response.flags.rcode = Rcode.SERVFAIL
        return response

    def _handle(self, payload: bytes, client_ip: str, transport: str, t_arrival: float) -> Tuple[bytes, float]:
        try:
            query = wire.from_wire(payload)
        except Exception:
            # Unparseable query: a real server answers FORMERR with id 0.
            error = Message()
            error.flags.qr = True
            error.flags.rcode = Rcode.FORMERR
            return wire.to_wire(error), 0.0
        qname, qtype = query.qname, query.qtype
        delay = 0.0
        metrics = self.obs.metrics
        if qname is not None and qtype is not None:
            self.query_log.append(QueryLogEntry(t_arrival, qname, qtype, transport, client_ip))
            metrics.counter(
                "dns_server_queries_total",
                _UDP_QUERY_LABELS if transport == "udp" else _TCP_QUERY_LABELS,
                t=t_arrival,
            )
            if self.response_delay is not None:
                delay = float(self.response_delay(qname, qtype))
        if (
            transport == "udp"
            and qname is not None
            and self.force_tcp_for is not None
            and self.force_tcp_for(qname)
        ):
            stub = query.make_response()
            stub.flags.tc = True
            metrics.counter("dns_server_truncated_total", _TRUNCATED_FORCED, t=t_arrival)
            return wire.to_wire(stub), delay
        response = None
        if self.faults is not None and qname is not None:
            qname_text = str(qname)
            if transport == "udp" and self.faults.inject(
                FaultKind.TRUNCATE, client_ip, qname_text, t_arrival
            ):
                stub = query.make_response()
                stub.flags.tc = True
                metrics.counter("dns_server_truncated_total", _TRUNCATED_INJECTED, t=t_arrival)
                return wire.to_wire(stub), delay
            if self.faults.inject(FaultKind.SERVFAIL, client_ip, qname_text, t_arrival):
                response = query.make_response()
                response.flags.rcode = Rcode.SERVFAIL
            elif self.faults.inject(FaultKind.REFUSED, client_ip, qname_text, t_arrival):
                response = query.make_response()
                response.flags.rcode = Rcode.REFUSED
        if response is None:
            response = self.resolve(query, transport, client_ip, t_arrival)
        rcode = response.rcode.name
        labels = _RCODE_LABELS.get(rcode)
        if labels is None:
            labels = _RCODE_LABELS[rcode] = (("rcode", rcode),)
        metrics.counter("dns_server_responses_total", labels, t=t_arrival)
        if transport == "udp":
            if query.edns_payload:
                limit = min(query.edns_payload, self.max_udp_payload)
                response.edns_payload = limit
            else:
                limit = wire.UDP_PAYLOAD_LIMIT
                response.edns_payload = None
            payload_out, truncated = wire.truncate_for_udp(response, limit=limit)
            if truncated:
                metrics.counter("dns_server_truncated_total", _TRUNCATED_SIZE, t=t_arrival)
            return payload_out, delay
        return wire.to_wire(response), delay

    # -- transport adapters ---------------------------------------------

    def udp_handler(self, payload: bytes, client_ip: str, transport: str, t_arrival: float) -> Tuple[bytes, float]:
        return self._handle(payload, client_ip, "udp", t_arrival)

    def _tcp_session_factory(self, client_ip: str, t_accept: float) -> "_DnsTcpSession":
        return _DnsTcpSession(self, client_ip)

    # -- log convenience -------------------------------------------------

    def queries_under(self, suffix: Union[str, Name]) -> List[QueryLogEntry]:
        """Query-log entries whose qname sits under ``suffix``."""
        suffix_name = Name(suffix)
        return [entry for entry in self.query_log if entry.qname.is_subdomain_of(suffix_name)]

    def clear_log(self) -> None:
        self.query_log.clear()


class _DnsTcpSession:
    """DNS-over-TCP framing: two-octet length prefix per message."""

    def __init__(self, server: AuthoritativeServer, client_ip: str) -> None:
        self._server = server
        self._client_ip = client_ip
        self._buffer = b""

    def on_connect(self, t: float) -> Optional[bytes]:
        return None

    def on_data(self, data: bytes, t: float) -> Tuple[Optional[bytes], float]:
        self._buffer += data
        replies = bytearray()
        total_delay = 0.0
        while len(self._buffer) >= 2:
            (length,) = struct.unpack("!H", self._buffer[:2])
            if len(self._buffer) < 2 + length:
                break
            frame = self._buffer[2 : 2 + length]
            self._buffer = self._buffer[2 + length :]
            reply, delay = self._server._handle(frame, self._client_ip, "tcp", t)
            total_delay += delay
            replies += struct.pack("!H", len(reply)) + reply
        if not replies:
            return None, 0.0
        return bytes(replies), total_delay

    def on_close(self, t: float) -> None:
        self._buffer = b""
