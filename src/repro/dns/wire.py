"""DNS wire-format codec (RFC 1035 section 4.1).

Every DNS exchange in the simulation is serialised through this module, so
the resolver and the authoritative servers really do speak the wire
protocol: name compression pointers are emitted and followed, the TC bit
controls the UDP 512-octet ceiling, and malformed input raises
:class:`~repro.dns.errors.WireError` rather than being silently accepted.
"""

from __future__ import annotations

import struct
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.dns.errors import WireError
from repro.dns.message import Flags, Message, Question
from repro.dns.name import Name
from repro.dns.rdata import (
    AAAARecord,
    ARecord,
    CnameRecord,
    MxRecord,
    NsRecord,
    PtrRecord,
    Rclass,
    Rdata,
    RdataType,
    ResourceRecord,
    SoaRecord,
    TxtRecord,
)

#: Classic UDP payload ceiling; responses longer than this set TC over UDP.
UDP_PAYLOAD_LIMIT = 512

#: EDNS0 OPT pseudo-RR type code (RFC 6891).
OPT_TYPE = 41

_POINTER_MASK = 0xC0
_MAX_POINTER_HOPS = 64


@lru_cache(maxsize=8192)
def _encoded_labels(labels: Tuple[str, ...]) -> Tuple[bytes, ...]:
    """Each label as its wire chunk (length octet + ASCII octets).

    Campaign traffic re-encodes the same few thousand names constantly
    (suffixes on every query, MTA/test names on every retry), so the
    per-label ``encode``/length work is memoized.  Keyed by the exact
    ``Name.labels`` tuple — deliberately *not* by ``Name``, whose
    equality is case-insensitive: DNS 0x20 case randomization must
    round-trip byte-exactly.
    """
    return tuple(
        bytes((len(encoded) & 0xFF,)) + encoded
        for encoded in (label.encode("ascii") for label in labels)
    )


class _Encoder:
    """Accumulates output octets and tracks compression targets."""

    def __init__(self) -> None:
        self.buffer = bytearray()
        self._offsets: Dict[Tuple[str, ...], int] = {}

    def u8(self, value: int) -> None:
        self.buffer.append(value & 0xFF)

    def u16(self, value: int) -> None:
        self.buffer += struct.pack("!H", value & 0xFFFF)

    def u32(self, value: int) -> None:
        self.buffer += struct.pack("!I", value & 0xFFFFFFFF)

    def raw(self, data: bytes) -> None:
        self.buffer += data

    def name(self, name: Name, compress: bool = True) -> None:
        """Emit ``name``, using a compression pointer for any stored suffix."""
        labels = name.labels
        key = name.key
        chunks = _encoded_labels(labels)
        for index in range(len(labels)):
            suffix_key = key[index:]
            if compress and suffix_key in self._offsets:
                pointer = self._offsets[suffix_key]
                self.u16(0xC000 | pointer)
                return
            offset = len(self.buffer)
            # Pointers only address the first 16 KiB minus the two flag bits.
            if compress and offset < 0x4000:
                self._offsets[suffix_key] = offset
            self.raw(chunks[index])
        self.u8(0)  # root label

    def character_string(self, text: str) -> None:
        data = text.encode("utf-8")
        if len(data) > 255:
            raise WireError("character-string exceeds 255 octets")
        self.u8(len(data))
        self.raw(data)


class _Decoder:
    """Reads octets with bounds checking and pointer chasing."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def _need(self, count: int, at: int) -> None:
        if at + count > len(self.data):
            raise WireError("truncated message: need %d octets at %d" % (count, at))

    def u8(self) -> int:
        self._need(1, self.offset)
        value = self.data[self.offset]
        self.offset += 1
        return value

    def u16(self) -> int:
        self._need(2, self.offset)
        (value,) = struct.unpack_from("!H", self.data, self.offset)
        self.offset += 2
        return value

    def u32(self) -> int:
        self._need(4, self.offset)
        (value,) = struct.unpack_from("!I", self.data, self.offset)
        self.offset += 4
        return value

    def raw(self, count: int) -> bytes:
        self._need(count, self.offset)
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def name(self) -> Name:
        """Decode a (possibly compressed) name starting at the cursor."""
        labels: List[str] = []
        cursor = self.offset
        jumped = False
        hops = 0
        while True:
            self._need(1, cursor)
            length = self.data[cursor]
            if length & _POINTER_MASK == _POINTER_MASK:
                self._need(2, cursor)
                pointer = struct.unpack_from("!H", self.data, cursor)[0] & 0x3FFF
                if not jumped:
                    self.offset = cursor + 2
                    jumped = True
                if pointer >= cursor:
                    raise WireError("forward compression pointer")
                cursor = pointer
                hops += 1
                if hops > _MAX_POINTER_HOPS:
                    raise WireError("compression pointer loop")
                continue
            if length & _POINTER_MASK:
                raise WireError("reserved label type 0x%02x" % (length & _POINTER_MASK))
            cursor += 1
            if length == 0:
                if not jumped:
                    self.offset = cursor
                break
            self._need(length, cursor)
            labels.append(self.data[cursor : cursor + length].decode("ascii", "strict"))
            cursor += length
        return Name(labels)

    def character_string(self) -> str:
        length = self.u8()
        return self.raw(length).decode("utf-8", "strict")


# -- rdata codecs -----------------------------------------------------------


def _encode_rdata(encoder: _Encoder, rdata: Rdata) -> None:
    """Emit rdata, preceded by its RDLENGTH, patching the length afterwards.

    Compression inside rdata is applied only for the name-bearing types
    RFC 1035 allows compression for (NS, CNAME, PTR, MX, SOA).
    """
    length_at = len(encoder.buffer)
    encoder.u16(0)  # placeholder
    start = len(encoder.buffer)
    if isinstance(rdata, ARecord):
        encoder.raw(bytes(int(part) for part in rdata.address.split(".")))
    elif isinstance(rdata, AAAARecord):
        import ipaddress

        encoder.raw(ipaddress.IPv6Address(rdata.address).packed)
    elif isinstance(rdata, (NsRecord, CnameRecord, PtrRecord)):
        encoder.name(rdata.target)
    elif isinstance(rdata, MxRecord):
        encoder.u16(rdata.preference)
        encoder.name(rdata.exchange)
    elif isinstance(rdata, TxtRecord):
        for part in rdata.strings:
            encoder.character_string(part)
    elif isinstance(rdata, SoaRecord):
        encoder.name(rdata.mname)
        encoder.name(rdata.rname)
        for value in (rdata.serial, rdata.refresh, rdata.retry, rdata.expire, rdata.minimum):
            encoder.u32(value)
    else:
        raise WireError("cannot encode rdata type %r" % type(rdata).__name__)
    rdlength = len(encoder.buffer) - start
    struct.pack_into("!H", encoder.buffer, length_at, rdlength)


def _decode_rdata(decoder: _Decoder, rdtype: int, rdlength: int) -> Rdata:
    end = decoder.offset + rdlength
    if rdtype == RdataType.A:
        if rdlength != 4:
            raise WireError("A rdata must be 4 octets")
        rdata: Rdata = ARecord(".".join(str(b) for b in decoder.raw(4)))
    elif rdtype == RdataType.AAAA:
        if rdlength != 16:
            raise WireError("AAAA rdata must be 16 octets")
        import ipaddress

        rdata = AAAARecord(str(ipaddress.IPv6Address(decoder.raw(16))))
    elif rdtype == RdataType.NS:
        rdata = NsRecord(decoder.name())
    elif rdtype == RdataType.CNAME:
        rdata = CnameRecord(decoder.name())
    elif rdtype == RdataType.PTR:
        rdata = PtrRecord(decoder.name())
    elif rdtype == RdataType.MX:
        preference = decoder.u16()
        rdata = MxRecord(preference, decoder.name())
    elif rdtype == RdataType.TXT:
        strings: List[str] = []
        while decoder.offset < end:
            strings.append(decoder.character_string())
        rdata = TxtRecord(strings)
    elif rdtype == RdataType.SOA:
        mname = decoder.name()
        rname = decoder.name()
        serial = decoder.u32()
        refresh = decoder.u32()
        retry = decoder.u32()
        expire = decoder.u32()
        minimum = decoder.u32()
        rdata = SoaRecord(mname, rname, serial, refresh, retry, expire, minimum)
    else:
        raise WireError("cannot decode rdata type %d" % rdtype)
    if decoder.offset != end:
        raise WireError("rdata length mismatch for type %d" % rdtype)
    return rdata


# -- message codec -----------------------------------------------------------


def to_wire(message: Message) -> bytes:
    """Serialise a :class:`~repro.dns.message.Message` to wire format."""
    encoder = _Encoder()
    encoder.u16(message.msg_id)
    encoder.u16(message.flags.to_int())
    encoder.u16(len(message.question))
    encoder.u16(len(message.answer))
    encoder.u16(len(message.authority))
    arcount = len(message.additional) + (1 if message.edns_payload is not None else 0)
    encoder.u16(arcount)
    for question in message.question:
        encoder.name(question.name)
        encoder.u16(int(question.rdtype))
        encoder.u16(int(question.rdclass))
    for rr in message.answer + message.authority + message.additional:
        encoder.name(rr.name)
        encoder.u16(int(rr.rdtype))
        encoder.u16(int(Rclass.IN))
        encoder.u32(rr.ttl)
        _encode_rdata(encoder, rr.rdata)
    if message.edns_payload is not None:
        # OPT pseudo-RR: root owner, CLASS carries the UDP payload size.
        encoder.u8(0)  # root name
        encoder.u16(OPT_TYPE)
        encoder.u16(message.edns_payload & 0xFFFF)
        encoder.u32(0)  # extended RCODE and flags, all clear
        encoder.u16(0)  # no options
    return bytes(encoder.buffer)


def from_wire(data: bytes) -> Message:
    """Parse wire-format bytes into a :class:`~repro.dns.message.Message`."""
    decoder = _Decoder(data)
    msg_id = decoder.u16()
    flags = Flags.from_int(decoder.u16())
    qdcount = decoder.u16()
    ancount = decoder.u16()
    nscount = decoder.u16()
    arcount = decoder.u16()
    message = Message(msg_id=msg_id, flags=flags)
    for _ in range(qdcount):
        qname = decoder.name()
        rdtype = decoder.u16()
        rdclass = decoder.u16()
        try:
            question = Question(qname, RdataType(rdtype), Rclass(rdclass))
        except ValueError as exc:
            raise WireError(str(exc)) from exc
        message.question.append(question)
    for section, count in (
        (message.answer, ancount),
        (message.authority, nscount),
        (message.additional, arcount),
    ):
        for _ in range(count):
            name = decoder.name()
            rdtype = decoder.u16()
            rdclass = decoder.u16()
            ttl = decoder.u32()
            rdlength = decoder.u16()
            if rdtype == OPT_TYPE:
                # EDNS0: the class field is the advertised payload size.
                message.edns_payload = rdclass
                decoder.raw(rdlength)  # skip any options
                continue
            rdata = _decode_rdata(decoder, rdtype, rdlength)
            section.append(ResourceRecord(name, ttl, rdata))
    return message


def truncate_for_udp(message: Message, limit: Optional[int] = None) -> Tuple[bytes, bool]:
    """Serialise for UDP, honouring the payload ``limit``.

    ``limit`` defaults to the message's negotiated EDNS payload size, or
    the classic 512 octets without EDNS.  Returns ``(wire, truncated)``.
    If the full encoding does not fit, the record sections are emptied and
    TC is set, which is how the paper's ``tcp_only`` test policy forces
    resolvers onto TCP.
    """
    if limit is None:
        limit = message.edns_payload if message.edns_payload else UDP_PAYLOAD_LIMIT
    wire = to_wire(message)
    if len(wire) <= limit:
        return wire, False
    stub = Message(
        msg_id=message.msg_id,
        flags=Flags(
            qr=message.flags.qr,
            aa=message.flags.aa,
            tc=True,
            rd=message.flags.rd,
            ra=message.flags.ra,
            opcode=message.flags.opcode,
            rcode=message.flags.rcode,
        ),
        question=list(message.question),
        edns_payload=message.edns_payload,
    )
    return to_wire(stub), True
