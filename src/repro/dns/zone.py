"""Zone storage.

A :class:`Zone` maps owner names to record sets under one origin.  Lookup
distinguishes the three outcomes an SPF evaluator must tell apart:

* records found,
* NODATA (name exists, no records of the queried type), and
* NXDOMAIN (name does not exist) — these last two are both "void lookups"
  in RFC 7208 terms but are signalled differently on the wire.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.dns.name import Name
from repro.dns.rdata import Rdata, RdataType, ResourceRecord, SoaRecord


class LookupStatus(enum.Enum):
    """Outcome of a zone lookup."""

    SUCCESS = "success"
    NODATA = "nodata"
    NXDOMAIN = "nxdomain"
    CNAME = "cname"


class Zone:
    """All records under one origin name.

    Records added outside the origin are rejected; that catch has saved
    every test-policy author at least once.
    """

    def __init__(self, origin: Union[str, Name], soa: Optional[SoaRecord] = None, default_ttl: int = 300) -> None:
        self.origin = Name(origin)
        self.default_ttl = int(default_ttl)
        self._records: Dict[Tuple[Tuple[str, ...], RdataType], List[ResourceRecord]] = {}
        self._nodes: set = {self.origin.key}
        if soa is not None:
            self.add(self.origin, soa)

    # -- building -----------------------------------------------------

    def add(self, name: Union[str, Name], rdata: Rdata, ttl: Optional[int] = None) -> ResourceRecord:
        """Add one record; returns the stored :class:`ResourceRecord`."""
        owner = Name(name)
        if not owner.is_subdomain_of(self.origin):
            raise ValueError("%s is outside zone %s" % (owner, self.origin))
        rr = ResourceRecord(owner, self.default_ttl if ttl is None else ttl, rdata)
        self._records.setdefault((owner.key, rdata.rdtype), []).append(rr)
        # Register the node and every empty non-terminal above it.
        node = owner
        while node.key not in self._nodes:
            self._nodes.add(node.key)
            node = node.parent()
        return rr

    def add_all(self, name: Union[str, Name], rdatas: Iterable[Rdata], ttl: Optional[int] = None) -> None:
        for rdata in rdatas:
            self.add(name, rdata, ttl)

    def remove(self, name: Union[str, Name], rdtype: RdataType) -> None:
        """Remove an entire rrset (no-op if absent)."""
        self._records.pop((Name(name).key, rdtype), None)

    # -- lookup --------------------------------------------------------

    def contains_name(self, name: Union[str, Name]) -> bool:
        return Name(name).key in self._nodes

    def lookup(self, name: Union[str, Name], rdtype: RdataType) -> Tuple[LookupStatus, List[ResourceRecord]]:
        """Resolve ``name``/``rdtype`` within the zone.

        Returns ``(status, records)``.  For ``CNAME`` status the records are
        the CNAME rrset (callers chase the target themselves).
        """
        owner = Name(name)
        if not owner.is_subdomain_of(self.origin):
            return LookupStatus.NXDOMAIN, []
        records = self._records.get((owner.key, rdtype))
        if records:
            return LookupStatus.SUCCESS, list(records)
        if rdtype != RdataType.CNAME:
            cname = self._records.get((owner.key, RdataType.CNAME))
            if cname:
                return LookupStatus.CNAME, list(cname)
        if owner.key in self._nodes:
            return LookupStatus.NODATA, []
        return LookupStatus.NXDOMAIN, []

    def rrsets(self) -> Iterable[Tuple[Name, RdataType, List[ResourceRecord]]]:
        """Iterate every rrset as ``(owner, rdtype, records)``.

        Order is deterministic (hierarchical owner order, then rdtype), so
        auditors and serializers built on it produce stable output.
        """
        items = sorted(
            self._records.items(),
            key=lambda item: (tuple(reversed(item[0][0])), item[0][1].value),
        )
        for (_, rdtype), records in items:
            yield records[0].name, rdtype, list(records)

    @property
    def soa(self) -> Optional[ResourceRecord]:
        records = self._records.get((self.origin.key, RdataType.SOA))
        return records[0] if records else None

    def record_count(self) -> int:
        return sum(len(records) for records in self._records.values())

    def __repr__(self) -> str:
        return "Zone(%s, %d records)" % (self.origin, self.record_count())
