"""Master-file (zone file) parsing — RFC 1035 section 5, pragmatically.

Supports the constructs operational zones actually use: ``$ORIGIN`` and
``$TTL`` directives, relative and absolute owner names, ``@`` for the
origin, owner inheritance from the previous record, per-record TTLs,
parenthesised multi-line records (SOA, long TXT), quoted character-strings
with ``\\"`` escapes, and ``;`` comments.

Only the record types the package implements are accepted; an unknown
type is a :class:`ZoneFileError`, not a silent skip — mystery records in
a measurement study's configuration are exactly the kind of thing one
wants to hear about.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union

from repro.dns.name import Name
from repro.dns.rdata import (
    AAAARecord,
    ARecord,
    CnameRecord,
    MxRecord,
    NsRecord,
    PtrRecord,
    Rdata,
    SoaRecord,
    TxtRecord,
)
from repro.dns.zone import Zone


class ZoneFileError(Exception):
    """Malformed zone file content; carries the offending line number."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__("line %d: %s" % (line, message))
        self.line = line


def parse_zone(text: str, origin: Optional[Union[str, Name]] = None, default_ttl: int = 300) -> Zone:
    """Parse ``text`` into a :class:`~repro.dns.zone.Zone`.

    ``origin`` seeds ``$ORIGIN``; the file may override it.  The zone's
    origin is the first ``$ORIGIN`` in effect when the first record is
    read (the usual layout for hand-written zones).
    """
    parser = _ZoneFileParser(origin, default_ttl)
    return parser.parse(text)


class _ZoneFileParser:
    def __init__(self, origin: Optional[Union[str, Name]], default_ttl: int) -> None:
        self.origin: Optional[Name] = Name(origin) if origin is not None else None
        self.default_ttl = default_ttl
        self.previous_owner: Optional[Name] = None
        self.zone: Optional[Zone] = None
        self.pending: List[Tuple[Name, int, Rdata]] = []

    def parse(self, text: str) -> Zone:
        for line_number, tokens in _logical_lines(text):
            self._line(tokens, line_number)
        if self.zone is None:
            if self.origin is None:
                raise ZoneFileError("no records and no $ORIGIN", 0)
            self.zone = Zone(self.origin, default_ttl=self.default_ttl)
        return self.zone

    # -- line handling -----------------------------------------------------

    def _line(self, tokens: List[str], line: int) -> None:
        if tokens[0] == "$ORIGIN":
            if len(tokens) != 2:
                raise ZoneFileError("$ORIGIN takes one argument", line)
            self.origin = Name(tokens[1])
            return
        if tokens[0] == "$TTL":
            if len(tokens) != 2 or not tokens[1].isdigit():
                raise ZoneFileError("$TTL takes one numeric argument", line)
            self.default_ttl = int(tokens[1])
            if self.zone is not None:
                self.zone.default_ttl = self.default_ttl
            return
        if tokens[0].startswith("$"):
            raise ZoneFileError("unsupported directive %s" % tokens[0], line)
        self._record(tokens, line)

    def _record(self, tokens: List[str], line: int) -> None:
        if self.origin is None:
            raise ZoneFileError("record before any $ORIGIN", line)
        index = 0
        if tokens[0] == "\0INDENT":
            # Continuation of the previous owner.
            if self.previous_owner is None:
                raise ZoneFileError("owner-less record with no previous owner", line)
            owner = self.previous_owner
            index = 1
        else:
            owner = self._absolute(tokens[0], line)
            index = 1
        self.previous_owner = owner

        ttl = self.default_ttl
        if index < len(tokens) and tokens[index].isdigit():
            ttl = int(tokens[index])
            index += 1
        if index < len(tokens) and tokens[index].upper() == "IN":
            index += 1
        # TTL may also follow the class.
        if index < len(tokens) and tokens[index].isdigit():
            ttl = int(tokens[index])
            index += 1
        if index >= len(tokens):
            raise ZoneFileError("record without a type", line)
        rtype = tokens[index].upper()
        rdata_tokens = tokens[index + 1 :]
        rdata = self._rdata(rtype, rdata_tokens, line)

        if self.zone is None:
            self.zone = Zone(self.origin, default_ttl=self.default_ttl)
        try:
            self.zone.add(owner, rdata, ttl)
        except ValueError as exc:
            raise ZoneFileError(str(exc), line) from exc

    def _absolute(self, token: str, line: int) -> Name:
        if token == "@":
            return self.origin  # type: ignore[return-value]
        try:
            if token.endswith("."):
                return Name(token)
            # Relative names hang off the current origin.
            relative = Name(token)
            return Name(relative.labels + self.origin.labels)  # type: ignore[union-attr]
        except Exception as exc:
            raise ZoneFileError("bad owner name %r: %s" % (token, exc), line) from exc

    def _rdata(self, rtype: str, tokens: List[str], line: int) -> Rdata:
        def need(count: int) -> None:
            if len(tokens) < count:
                raise ZoneFileError("%s needs %d field(s)" % (rtype, count), line)

        try:
            if rtype == "A":
                need(1)
                return ARecord(tokens[0])
            if rtype == "AAAA":
                need(1)
                return AAAARecord(tokens[0])
            if rtype == "NS":
                need(1)
                return NsRecord(self._absolute(tokens[0], line))
            if rtype == "CNAME":
                need(1)
                return CnameRecord(self._absolute(tokens[0], line))
            if rtype == "PTR":
                need(1)
                return PtrRecord(self._absolute(tokens[0], line))
            if rtype == "MX":
                need(2)
                return MxRecord(int(tokens[0]), self._absolute(tokens[1], line))
            if rtype == "TXT":
                need(1)
                return TxtRecord(tokens)
            if rtype == "SOA":
                need(7)
                return SoaRecord(
                    self._absolute(tokens[0], line),
                    self._absolute(tokens[1], line),
                    *(int(value) for value in tokens[2:7])
                )
        except ZoneFileError:
            raise
        except Exception as exc:
            raise ZoneFileError("bad %s rdata: %s" % (rtype, exc), line) from exc
        raise ZoneFileError("unsupported record type %r" % rtype, line)


# -- tokenizer ---------------------------------------------------------------


def _logical_lines(text: str) -> Iterable[Tuple[int, List[str]]]:
    """Yield (line_number, tokens) per logical line.

    Handles parentheses continuation, quoted strings, comments, and marks
    indented owner-inheriting lines with a ``\\0INDENT`` pseudo-token.
    """
    tokens: List[str] = []
    start_line = 0
    depth = 0
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line_tokens, opened, closed = _tokenize(raw, line_number)
        if not tokens and (line_tokens or depth):
            start_line = line_number
            if raw[:1] in (" ", "\t") and line_tokens:
                line_tokens.insert(0, "\0INDENT")
        tokens.extend(line_tokens)
        depth += opened - closed
        if depth < 0:
            raise ZoneFileError("unbalanced ')'", line_number)
        if depth == 0 and tokens:
            yield start_line, tokens
            tokens = []
    if depth != 0:
        raise ZoneFileError("unclosed '('", start_line)
    if tokens:
        yield start_line, tokens


def _tokenize(raw: str, line_number: int) -> Tuple[List[str], int, int]:
    tokens: List[str] = []
    current: List[str] = []
    opened = closed = 0
    in_quote = False
    index = 0
    while index < len(raw):
        char = raw[index]
        if in_quote:
            if char == "\\" and index + 1 < len(raw):
                current.append(raw[index + 1])
                index += 2
                continue
            if char == '"':
                tokens.append("".join(current))
                current = []
                in_quote = False
                index += 1
                continue
            current.append(char)
            index += 1
            continue
        if char == '"':
            if current:
                tokens.append("".join(current))
                current = []
            in_quote = True
            index += 1
            continue
        if char == ";":
            break  # comment to end of line
        if char == "(":
            opened += 1
            index += 1
            continue
        if char == ")":
            closed += 1
            index += 1
            continue
        if char in " \t":
            if current:
                tokens.append("".join(current))
                current = []
            index += 1
            continue
        current.append(char)
        index += 1
    if in_quote:
        raise ZoneFileError("unterminated quoted string", line_number)
    if current:
        tokens.append("".join(current))
    return tokens, opened, closed
