"""Static analysis of sender-validation configuration.

The paper measures what validators *do* with SPF policies; this package
predicts it without resolving anything.  It walks parsed SPF/DMARC
records and whole :class:`~repro.dns.zone.Zone` objects, follows
``include:``/``redirect=`` edges through a :class:`RecordSource`, and
reports findings as stable-coded :class:`Diagnostic` objects — including
the worst-case RFC 7208 lookup/void counts, verified against the dynamic
:class:`~repro.spf.evaluator.SpfEvaluator` on all 39 test policies.

Entry points:

* :func:`audit_record_text` / :func:`audit_spf_domain` — one SPF policy;
* :func:`audit_zone` — every SPF/DMARC/DKIM publisher in a zone;
* :func:`audit_key_record` / :func:`audit_signature_header` — DKIM key
  records and ``DKIM-Signature`` headers (:mod:`repro.lint.dkimlint`);
* :func:`repro.lint.astcheck.check_source_tree` — the repository's own
  determinism invariants, via a registry of coded AST rules;
* :func:`repro.lint.tracecheck.check_index` — differential conformance
  of observed query traces against each policy's derived DNS footprint;
* :func:`to_sarif` — SARIF 2.1.0 rendering of any report;
* ``python -m repro.lint`` — all of the above from the command line.
"""

from repro.lint.diagnostics import RULES, Diagnostic, LintReport, Severity, Span
from repro.lint.dkimlint import audit_key_record, audit_signature_header, audit_zone_dkim
from repro.lint.sarif import render_sarif, to_sarif
from repro.lint.source import (
    DictRecordSource,
    EmptySource,
    RecordSource,
    SourceAnswer,
    SourceStatus,
    ZoneRecordSource,
)
from repro.lint.spfgraph import (
    SpfAudit,
    SpfLimits,
    StaticPrediction,
    audit_record_text,
    audit_spf_domain,
)
from repro.lint.zonelint import ZoneAudit, audit_zone

__all__ = [
    "RULES",
    "Diagnostic",
    "LintReport",
    "Severity",
    "Span",
    "RecordSource",
    "SourceAnswer",
    "SourceStatus",
    "ZoneRecordSource",
    "DictRecordSource",
    "EmptySource",
    "SpfAudit",
    "SpfLimits",
    "StaticPrediction",
    "audit_record_text",
    "audit_spf_domain",
    "ZoneAudit",
    "audit_zone",
    "audit_key_record",
    "audit_signature_header",
    "audit_zone_dkim",
    "to_sarif",
    "render_sarif",
]
