"""Command-line front end: ``python -m repro.lint``.

Subcommands::

    python -m repro.lint record 'v=spf1 include:a.example.com -all'
    python -m repro.lint zone records.txt --origin example.com
    python -m repro.lint policies [t02 t18 ...]
    python -m repro.lint dkim-key 'v=DKIM1; k=rsa; p=MIGf...'
    python -m repro.lint dkim-sig 'v=1; a=rsa-sha256; d=...; s=sel; ...'
    python -m repro.lint repo [path] --format text|json|sarif
    python -m repro.lint rules
    python -m repro.lint --self-check

``zone`` reads a minimal three-column record file (see ``_load_zone``);
``policies`` audits the paper's 39 test policies statically; ``repo``
runs the AST rule engine over a source tree (default: this very
package) and can emit SARIF 2.1.0 for CI code-scanning upload;
``--self-check`` is the shorthand CI uses for the same check in text
form.  ``--json`` switches any subcommand's output to JSON.  Exit
status is 1 when any ERROR-severity finding (or self-check violation)
is reported.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.dns.rdata import AAAARecord, ARecord, CnameRecord, MxRecord, Rdata, TxtRecord
from repro.dns.zone import Zone
from repro.lint.astcheck import check_source_tree
from repro.lint.diagnostics import RULES
from repro.lint.dkimlint import audit_key_record, audit_signature_header
from repro.lint.sarif import render_sarif
from repro.lint.spfgraph import SpfAudit, audit_record_text
from repro.lint.zonelint import audit_zone


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Static analyzer for SPF/DMARC configuration (no resolution).",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON instead of text")
    parser.add_argument(
        "--self-check",
        action="store_true",
        dest="self_check",
        help="check the repro package's own determinism invariants",
    )
    commands = parser.add_subparsers(dest="command")

    record = commands.add_parser("record", help="audit one SPF record text")
    record.add_argument("text", help="the record, e.g. 'v=spf1 mx -all'")
    record.add_argument("--domain", default="", help="domain the record is published at")

    zone = commands.add_parser(
        "zone",
        help="audit every SPF/DMARC publisher in a record file",
        description="File format: one 'name TYPE value' per line; '#' comments; "
        "'@' for the origin; TXT values may be double-quoted; MX values are "
        "'preference exchange'.",
    )
    zone.add_argument("path", type=Path)
    zone.add_argument("--origin", required=True, help="zone origin, e.g. example.com")

    policies = commands.add_parser("policies", help="audit the paper's 39 test policies")
    policies.add_argument("testids", nargs="*", help="restrict to these testids (default: all)")

    dkim_key = commands.add_parser("dkim-key", help="audit one DKIM key record text")
    dkim_key.add_argument("text", help="the TXT value at <selector>._domainkey.<domain>")
    dkim_key.add_argument("--subject", default="", help="owner name to attach to findings")

    dkim_sig = commands.add_parser("dkim-sig", help="audit one DKIM-Signature header value")
    dkim_sig.add_argument("text", help="the header value, e.g. 'v=1; a=rsa-sha256; ...'")
    dkim_sig.add_argument(
        "--now",
        type=float,
        default=None,
        help="epoch seconds for x= expiry checks (omitted: only static relations)",
    )

    repo = commands.add_parser(
        "repo", help="run the AST rule engine over a source tree (SARIF-capable)"
    )
    repo.add_argument(
        "path",
        nargs="?",
        type=Path,
        default=None,
        help="source tree to scan (default: the installed repro package)",
    )
    repo.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="format",
        help="output format (sarif emits a SARIF 2.1.0 log for CI upload)",
    )
    repo.add_argument(
        "--output", type=Path, default=None, help="write the report to this file instead of stdout"
    )

    commands.add_parser("rules", help="list every rule code the analyzers can fire")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.self_check:
        return _cmd_self_check(args)
    if args.command == "record":
        return _cmd_record(args)
    if args.command == "zone":
        return _cmd_zone(args)
    if args.command == "policies":
        return _cmd_policies(args)
    if args.command == "dkim-key":
        return _cmd_dkim(args, audit_key_record(args.text, subject=args.subject))
    if args.command == "dkim-sig":
        return _cmd_dkim(args, audit_signature_header(args.text, now=args.now))
    if args.command == "repo":
        return _cmd_repo(args)
    if args.command == "rules":
        return _cmd_rules(args)
    build_parser().print_help()
    return 2


# -- subcommands ---------------------------------------------------------


def _cmd_record(args) -> int:
    audit = audit_record_text(args.text, domain=args.domain)
    if args.json:
        print(json.dumps(_audit_dict(audit), indent=2, sort_keys=True))
    else:
        print(audit.report.render_text(header=_prediction_line(audit)))
    return 1 if audit.report.errors else 0


def _cmd_zone(args) -> int:
    try:
        zone = _load_zone(args.path, args.origin)
    except (OSError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    audit = audit_zone(zone)
    if args.json:
        payload = {
            "origin": audit.origin,
            "findings": [d.to_dict() for d in audit.report.diagnostics],
            "spf": {domain: _audit_dict(a) for domain, a in sorted(audit.spf_audits.items())},
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        lines = ["zone %s: %d SPF publisher(s)" % (audit.origin, len(audit.spf_audits))]
        for domain, spf_audit in sorted(audit.spf_audits.items()):
            lines.append("  " + _prediction_line(spf_audit))
        lines.append(audit.report.render_text())
        print("\n".join(lines))
    return 1 if audit.report.errors else 0


def _cmd_policies(args) -> int:
    # Imported here: the analyzers must stay importable without the
    # measurement harness, but this subcommand is explicitly about it.
    from repro.core.policies import POLICIES
    from repro.core.preflight import audit_policy

    policies = [p for p in POLICIES if not args.testids or p.testid in args.testids]
    if not policies:
        print("error: no such testid (try: %s ...)" % POLICIES[0].testid, file=sys.stderr)
        return 2
    payload = {}
    exit_code = 0
    for policy in policies:
        audit = audit_policy(policy)
        if audit is None:
            print("%s: no SPF record" % policy.testid, file=sys.stderr)
            exit_code = 1
            continue
        payload[policy.testid] = _audit_dict(audit)
        if not args.json:
            print("%s (%s)" % (policy.testid, policy.name))
            print("  " + _prediction_line(audit))
            for diagnostic in audit.report.diagnostics:
                print("  " + diagnostic.format())
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return exit_code


def _cmd_rules(args) -> int:
    if args.json:
        payload = {
            code: {"severity": severity.name.lower(), "title": title}
            for code, (severity, title) in RULES.items()
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for code, (severity, title) in RULES.items():
        print("%-9s %-8s %s" % (code, severity.name.lower(), title))
    return 0


def _cmd_dkim(args, report) -> int:
    if args.json:
        print(report.to_json())
    else:
        print(report.render_text())
    return 1 if report.errors else 0


def _cmd_repo(args) -> int:
    report = check_source_tree(args.path)
    if args.format == "sarif":
        rendered = render_sarif(report)
    elif args.format == "json":
        rendered = report.to_json()
    else:
        rendered = report.render_text(header="repository invariants")
    if args.output is not None:
        args.output.write_text(rendered + "\n", encoding="utf-8")
        print("wrote %s report to %s" % (args.format, args.output))
    else:
        print(rendered)
    return 1 if report.errors else 0


def _cmd_self_check(args) -> int:
    report = check_source_tree()
    if args.json:
        print(report.to_json())
    else:
        print(report.render_text(header="self-check: repro package invariants"))
    return 1 if report.diagnostics else 0


# -- helpers -------------------------------------------------------------


def _prediction_line(audit: SpfAudit) -> str:
    prediction = audit.prediction
    parts = [
        "%s:" % (audit.domain or "record"),
        "%d lookup term(s), %d void(s)" % (prediction.lookup_terms, prediction.void_lookups),
    ]
    if prediction.first_abort:
        parts.append("aborts with %s" % prediction.first_abort)
    if prediction.result is not None:
        parts.append("-> %s" % prediction.result.value)
    if not prediction.complete:
        parts.append("(lower bound: targets outside audited data)")
    return " ".join(parts)


def _audit_dict(audit: SpfAudit) -> dict:
    prediction = audit.prediction
    return {
        "domain": audit.domain,
        "record": audit.record_text,
        "prediction": {
            "lookup_terms": prediction.lookup_terms,
            "void_lookups": prediction.void_lookups,
            "first_abort": prediction.first_abort,
            "result": prediction.result.value if prediction.result else None,
            "cycle": prediction.cycle,
            "complete": prediction.complete,
        },
        "findings": [d.to_dict() for d in audit.report.diagnostics],
    }


def _load_zone(path: Path, origin: str) -> Zone:
    """Read a three-column ``name TYPE value`` record file into a Zone."""
    zone = Zone(origin)
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name, rtype, value = line.split(None, 2)
        except ValueError:
            raise ValueError("%s:%d: expected 'name TYPE value'" % (path, lineno)) from None
        owner = origin if name == "@" else (name if name.endswith(".") else "%s.%s" % (name, origin))
        try:
            zone.add(owner, _parse_rdata(rtype.upper(), value))
        except ValueError as exc:
            raise ValueError("%s:%d: %s" % (path, lineno, exc)) from None
    return zone


def _parse_rdata(rtype: str, value: str) -> Rdata:
    if rtype == "TXT":
        return TxtRecord(value.strip('"'))
    if rtype == "A":
        return ARecord(value)
    if rtype == "AAAA":
        return AAAARecord(value)
    if rtype == "MX":
        preference, _, exchange = value.partition(" ")
        return MxRecord(int(preference), exchange.strip())
    if rtype == "CNAME":
        return CnameRecord(value)
    raise ValueError("unsupported record type %r" % rtype)


if __name__ == "__main__":
    sys.exit(main())
