"""Repository invariant checking over Python ASTs — a small rule engine.

The reproduction's core bet is determinism: every run of the simulated
measurement produces identical results because *all* time flows through
the virtual :class:`~repro.net.clock.Clock` and *all* networking through
the simulated :class:`~repro.net.network.Network`.  Those invariants are
easy to break with one careless ``time.time()`` — so this module walks
the ASTs of the source tree and enforces them mechanically.

Checks are *rules* in a registry (:data:`AST_RULES`): each has a stable
code, a set of AST node types it inspects, and a check function that
receives the shared per-file facts (import alias map, async-function
nesting, path-based allowances).  A single dispatcher visitor walks each
file once and runs every applicable rule per node, so adding a rule is a
decorated function, not a new visitor.

* **AST001** — wall-clock reads (``time.time``, ``datetime.now``, ...)
  anywhere except ``net/clock.py``, the one sanctioned bridge to real
  time (used only for human-facing log stamps, never for simulation).
* **AST002** — ``import socket`` outside ``net/``: simulation code must
  not be able to reach the real Internet.
* **AST003** — bare ``except:`` clauses, which swallow the control-flow
  exceptions the evaluator uses for its abort semantics.
* **AST004** — blocking calls (``time.sleep``, real connects,
  subprocess waits) directly inside ``async def``: they stall any event
  loop the coroutine runs on.
* **AST005** — mutable default arguments, the classic shared-state trap.
* **AST006** — naive ``datetime`` construction (no ``tzinfo``), which
  mixes undefined timezones into timestamp math.
* **AST007** — ``wall_now()`` calls outside its two sanctioned homes
  (``net/clock.py``, which defines it, and ``obs/progress.py``, the
  human-facing progress sink).  Everything else — including every metric
  and span in ``repro.obs`` — must carry virtual timestamps only.

Findings can be locally waived with an inline ``# lint: disable=CODE``
(or ``# lint: disable=CODE1,CODE2``, or a bare ``# lint: disable`` for
every code) on the offending line.

``check_source_tree`` runs as a tier-1 test (``tests/test_lint_astcheck.py``)
and via ``python -m repro.lint --self-check``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Type

from repro.lint.diagnostics import LintReport

#: Call targets (as dotted suffixes, aliases resolved) that read the real
#: clock or block on it.  ``datetime.datetime.now`` matches the
#: ``datetime.now`` suffix; method calls like ``self.clock.now`` do not.
WALL_CLOCK_CALLS = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.sleep",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: Call targets that block the calling thread — forbidden directly inside
#: ``async def`` (AST004), where they stall the event loop.
BLOCKING_CALLS = (
    "time.sleep",
    "socket.create_connection",
    "socket.getaddrinfo",
    "socket.gethostbyname",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "os.system",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.request",
)

#: Path suffixes (POSIX form, relative to the scanned tree) where wall-clock
#: reads are sanctioned.  ``net/clock.py`` is the virtual clock itself.
WALL_CLOCK_ALLOWED = ("net/clock.py",)

#: Path suffixes where calling ``wall_now()`` — the one sanctioned bridge
#: from real time to human-facing output — is itself sanctioned (AST007):
#: the bridge's home module and the progress sink that stamps log lines.
WALL_NOW_ALLOWED = ("net/clock.py", "obs/progress.py")

#: Top-level directories (relative to the scanned tree) where importing the
#: real ``socket`` module is sanctioned.
SOCKET_ALLOWED_DIRS = ("net",)

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable(?:=([A-Za-z0-9_,\s]+))?")


# -- the rule registry ---------------------------------------------------


@dataclass(frozen=True)
class AstRule:
    """One registered invariant: code, node types inspected, check."""

    code: str
    node_types: Tuple[Type[ast.AST], ...]
    check: Callable[["RuleContext", ast.AST], None]


#: code -> rule.  Populated by the :func:`rule` decorator below.
AST_RULES: Dict[str, AstRule] = {}


def rule(code: str, *node_types: Type[ast.AST]):
    """Register a check function as the implementation of ``code``."""

    def register(check: Callable[["RuleContext", ast.AST], None]):
        AST_RULES[code] = AstRule(code, node_types, check)
        return check

    return register


class RuleContext:
    """Shared per-file facts every rule can consult."""

    def __init__(self, relpath: str, report: LintReport, source: str) -> None:
        self.relpath = relpath
        self.report = report
        self.clock_allowed = relpath.endswith(WALL_CLOCK_ALLOWED)
        self.wall_now_allowed = relpath.endswith(WALL_NOW_ALLOWED)
        first_dir = relpath.split("/")[0] if "/" in relpath else ""
        self.socket_allowed = first_dir in SOCKET_ALLOWED_DIRS
        #: local name -> dotted origin, from imports (``from time import time``
        #: binds ``time`` -> ``time.time``).
        self.aliases: Dict[str, str] = {}
        #: Nesting of enclosing functions: "async" or "sync", innermost last.
        self.function_stack: List[str] = []
        #: lineno -> suppressed codes (None = every code).
        self.suppressions: Dict[int, Optional[Set[str]]] = _parse_suppressions(source)

    @property
    def in_async_function(self) -> bool:
        """Is the *nearest* enclosing function ``async def``?"""
        return bool(self.function_stack) and self.function_stack[-1] == "async"

    def where(self, node: ast.AST) -> str:
        return "%s:%d" % (self.relpath, getattr(node, "lineno", 0))

    def suppressed(self, code: str, node: ast.AST) -> bool:
        codes = self.suppressions.get(getattr(node, "lineno", -1), set())
        return codes is None or code in codes

    def emit(self, code: str, message: str, node: ast.AST, hint: Optional[str] = None) -> None:
        if self.suppressed(code, node):
            return
        self.report.add(code, message, subject=self.where(node), hint=hint)

    def resolve(self, func: ast.AST) -> Optional[str]:
        """Dotted call target with import aliases resolved, or None."""
        parts = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


def _parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), 1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        if match.group(1) is None:
            suppressions[lineno] = None
        else:
            codes = {code.strip() for code in match.group(1).split(",") if code.strip()}
            existing = suppressions.get(lineno, set())
            suppressions[lineno] = None if existing is None else (existing | codes)
    return suppressions


def _matches_any(dotted: str, targets: Iterable[str]) -> Optional[str]:
    for target in targets:
        if dotted == target or dotted.endswith("." + target):
            return target
    return None


# -- the rules -----------------------------------------------------------


@rule("AST001", ast.Call)
def _check_wall_clock(ctx: RuleContext, node: ast.Call) -> None:
    if ctx.clock_allowed:
        return
    dotted = ctx.resolve(node.func)
    if dotted is not None and _matches_any(dotted, WALL_CLOCK_CALLS):
        ctx.emit(
            "AST001",
            "%s() reads the wall clock" % dotted,
            node,
            hint="take time from the Clock (or net.clock.wall_now for log stamps)",
        )


@rule("AST002", ast.Import, ast.ImportFrom)
def _check_socket_import(ctx: RuleContext, node: ast.AST) -> None:
    if ctx.socket_allowed:
        return
    if isinstance(node, ast.Import):
        modules = [alias.name for alias in node.names]
    else:
        modules = [node.module] if node.module and node.level == 0 else []
    for module in modules:
        if module.split(".")[0] == "socket":
            ctx.emit(
                "AST002",
                "import of %r outside net/" % module,
                node,
                hint="route traffic through repro.net.network",
            )


@rule("AST003", ast.ExceptHandler)
def _check_bare_except(ctx: RuleContext, node: ast.ExceptHandler) -> None:
    if node.type is None:
        ctx.emit(
            "AST003",
            "bare 'except:' also catches the evaluator's control-flow exceptions",
            node,
            hint="catch Exception (or something narrower)",
        )


@rule("AST004", ast.Call)
def _check_blocking_in_async(ctx: RuleContext, node: ast.Call) -> None:
    if not ctx.in_async_function:
        return
    dotted = ctx.resolve(node.func)
    if dotted is not None and _matches_any(dotted, BLOCKING_CALLS):
        ctx.emit(
            "AST004",
            "%s() blocks the thread inside an async function" % dotted,
            node,
            hint="await an async equivalent or move the call off the event loop",
        )


@rule("AST005", ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
def _check_mutable_defaults(ctx: RuleContext, node: ast.AST) -> None:
    arguments = node.args
    for default in list(arguments.defaults) + [d for d in arguments.kw_defaults if d is not None]:
        mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
        if not mutable and isinstance(default, ast.Call):
            dotted = ctx.resolve(default.func)
            mutable = dotted in ("list", "dict", "set", "collections.defaultdict")
        if mutable:
            name = getattr(node, "name", "<lambda>")
            ctx.emit(
                "AST005",
                "mutable default argument of %s() is shared across calls" % name,
                default,
                hint="default to None and create the container in the body",
            )


@rule("AST006", ast.Call)
def _check_naive_datetime(ctx: RuleContext, node: ast.Call) -> None:
    dotted = ctx.resolve(node.func)
    if dotted is None:
        return
    keywords = {kw.arg for kw in node.keywords}
    naive = False
    if dotted == "datetime.datetime":
        # datetime(y, m, d, H, M, S, us, tzinfo): 8th positional is tzinfo.
        naive = "tzinfo" not in keywords and len(node.args) < 8
    elif dotted == "datetime.datetime.fromtimestamp":
        naive = "tz" not in keywords and len(node.args) < 2
    elif dotted == "datetime.datetime.utcfromtimestamp":
        naive = True
    if naive:
        ctx.emit(
            "AST006",
            "%s() builds a naive datetime (no tzinfo)" % dotted,
            node,
            hint="pass tzinfo= (e.g. timezone.utc) or keep timestamps as floats",
        )


@rule("AST007", ast.Call)
def _check_wall_now_containment(ctx: RuleContext, node: ast.Call) -> None:
    if ctx.wall_now_allowed:
        return
    dotted = ctx.resolve(node.func)
    if dotted is not None and _matches_any(dotted, ("wall_now",)):
        ctx.emit(
            "AST007",
            "%s() used outside the sanctioned wall-clock homes" % dotted,
            node,
            hint="report human-facing progress through repro.obs.ProgressSink; "
            "metrics and spans take virtual timestamps only",
        )


# -- the dispatcher ------------------------------------------------------


class _RuleEngine(ast.NodeVisitor):
    """Walks a module once, feeding each node to every applicable rule."""

    def __init__(self, ctx: RuleContext) -> None:
        self.ctx = ctx
        self._dispatch: Dict[Type[ast.AST], List[AstRule]] = {}
        for registered in AST_RULES.values():
            for node_type in registered.node_types:
                self._dispatch.setdefault(node_type, []).append(registered)

    def visit(self, node: ast.AST) -> None:
        # Facts first (aliases must exist before rules inspect calls on the
        # same line), then rules, then recursion — with function nesting
        # tracked around the recursion into function bodies.
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            self._record_aliases(node)
        for registered in self._dispatch.get(type(node), ()):
            registered.check(self.ctx, node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            kind = "async" if isinstance(node, ast.AsyncFunctionDef) else "sync"
            self.ctx.function_stack.append(kind)
            try:
                self.generic_visit(node)
            finally:
                self.ctx.function_stack.pop()
        else:
            self.generic_visit(node)

    def _record_aliases(self, node: ast.AST) -> None:
        aliases = self.ctx.aliases
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                aliases[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = node.module + "." + alias.name


# -- entry points --------------------------------------------------------


def check_source_tree(tree: Optional[Path] = None) -> LintReport:
    """Check every ``*.py`` under ``tree`` (default: this installed package)."""
    if tree is None:
        tree = Path(__file__).resolve().parent.parent  # src/repro
    report = LintReport()
    for path in sorted(tree.rglob("*.py")):
        check_file(path, path.relative_to(tree).as_posix(), report)
    return report


def check_file(path: Path, relpath: str, report: LintReport) -> None:
    """Check one file; findings use ``relpath`` as the subject."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        report.add("AST000", str(exc), subject=relpath)
        return
    check_source(source, relpath, report)


def check_source(source: str, relpath: str, report: LintReport) -> None:
    """Check one file's source text; findings use ``relpath`` as the subject."""
    try:
        module = ast.parse(source, filename=relpath)
    except (SyntaxError, ValueError) as exc:
        report.add("AST000", str(exc), subject=relpath)
        return
    _RuleEngine(RuleContext(relpath, report, source)).visit(module)


def iter_violations(tree: Optional[Path] = None) -> Iterable[Tuple[str, str]]:
    """Convenience: yield ``(code, subject)`` pairs for quick assertions."""
    for diagnostic in check_source_tree(tree).diagnostics:
        yield diagnostic.code, diagnostic.subject
