"""Repository invariant checking over Python ASTs.

The reproduction's core bet is determinism: every run of the simulated
measurement produces identical results because *all* time flows through
the virtual :class:`~repro.net.clock.Clock` and *all* networking through
the simulated :class:`~repro.net.network.Network`.  Those invariants are
easy to break with one careless ``time.time()`` — so this module walks
the ASTs of the source tree and enforces them mechanically:

* **AST001** — wall-clock reads (``time.time``, ``datetime.now``, ...)
  anywhere except ``net/clock.py``, the one sanctioned bridge to real
  time (used only for human-facing log stamps, never for simulation).
* **AST002** — ``import socket`` outside ``net/``: simulation code must
  not be able to reach the real Internet.
* **AST003** — bare ``except:`` clauses, which swallow the control-flow
  exceptions the evaluator uses for its abort semantics.

``check_source_tree`` runs as a tier-1 test (``tests/test_lint_astcheck.py``)
and via ``python -m repro.lint --self-check``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

from repro.lint.diagnostics import LintReport

#: Call targets (as dotted suffixes, aliases resolved) that read the real
#: clock or block on it.  ``datetime.datetime.now`` matches the
#: ``datetime.now`` suffix; method calls like ``self.clock.now`` do not.
WALL_CLOCK_CALLS = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.sleep",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: Path suffixes (POSIX form, relative to the scanned tree) where wall-clock
#: reads are sanctioned.  ``net/clock.py`` is the virtual clock itself.
WALL_CLOCK_ALLOWED = ("net/clock.py",)

#: Top-level directories (relative to the scanned tree) where importing the
#: real ``socket`` module is sanctioned.
SOCKET_ALLOWED_DIRS = ("net",)


def check_source_tree(tree: Optional[Path] = None) -> LintReport:
    """Check every ``*.py`` under ``tree`` (default: this installed package)."""
    if tree is None:
        tree = Path(__file__).resolve().parent.parent  # src/repro
    report = LintReport()
    for path in sorted(tree.rglob("*.py")):
        check_file(path, path.relative_to(tree).as_posix(), report)
    return report


def check_file(path: Path, relpath: str, report: LintReport) -> None:
    """Check one file; findings use ``relpath`` as the subject."""
    try:
        source = path.read_text(encoding="utf-8")
        module = ast.parse(source, filename=relpath)
    except (OSError, SyntaxError, ValueError) as exc:
        report.add("AST000", str(exc), subject=relpath)
        return
    _FileChecker(relpath, report).visit(module)


class _FileChecker(ast.NodeVisitor):
    def __init__(self, relpath: str, report: LintReport) -> None:
        self.relpath = relpath
        self.report = report
        self.clock_allowed = relpath.endswith(WALL_CLOCK_ALLOWED)
        first_dir = relpath.split("/")[0] if "/" in relpath else ""
        self.socket_allowed = first_dir in SOCKET_ALLOWED_DIRS
        #: local name -> dotted origin, from imports (``from time import time``
        #: binds ``time`` -> ``time.time``).
        self.aliases: Dict[str, str] = {}

    def _where(self, node: ast.AST) -> str:
        return "%s:%d" % (self.relpath, getattr(node, "lineno", 0))

    # -- imports ---------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.aliases[local] = alias.name if alias.asname else alias.name.split(".")[0]
            self._check_socket_import(alias.name, node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = node.module + "." + alias.name
            self._check_socket_import(node.module, node)
        self.generic_visit(node)

    def _check_socket_import(self, module: str, node: ast.AST) -> None:
        if module.split(".")[0] == "socket" and not self.socket_allowed:
            self.report.add(
                "AST002",
                "import of %r outside net/" % module,
                subject=self._where(node),
                hint="route traffic through repro.net.network",
            )

    # -- calls -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._resolve(node.func)
        if dotted is not None and not self.clock_allowed:
            for banned in WALL_CLOCK_CALLS:
                if dotted == banned or dotted.endswith("." + banned):
                    self.report.add(
                        "AST001",
                        "%s() reads the wall clock" % dotted,
                        subject=self._where(node),
                        hint="take time from the Clock (or net.clock.wall_now for log stamps)",
                    )
                    break
        self.generic_visit(node)

    def _resolve(self, func: ast.AST) -> Optional[str]:
        parts = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    # -- exception handling ----------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report.add(
                "AST003",
                "bare 'except:' also catches the evaluator's control-flow exceptions",
                subject=self._where(node),
                hint="catch Exception (or something narrower)",
            )
        self.generic_visit(node)


def iter_violations(tree: Optional[Path] = None) -> Iterable[Tuple[str, str]]:
    """Convenience: yield ``(code, subject)`` pairs for quick assertions."""
    for diagnostic in check_source_tree(tree).diagnostics:
        yield diagnostic.code, diagnostic.subject
