"""The diagnostic model of the static auditor.

Every rule the :mod:`repro.lint` analyzers can fire is registered here
with a stable code (``SPF010``, ``DMARC002``, ``AST001``, ...), a default
severity, and a one-line title.  A :class:`Diagnostic` is one finding: the
rule, the subject (a domain, a record, a file), an optional character
span into the raw record text, and a fix hint.  :class:`LintReport`
aggregates findings and renders them as text or JSON — the two output
modes of ``python -m repro.lint``.

Severities follow the compiler convention: an ERROR is a condition that
makes a strict RFC 7208/7489 validator return ``permerror`` (or, for AST
rules, breaks a reproduction invariant); a WARNING degrades protection or
wastes validator budget; INFO is advisory.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Finding severity, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2


#: code -> (default severity, one-line title).  The README's rule table is
#: generated from this registry (see ``python -m repro.lint rules``).
RULES: Dict[str, Tuple[Severity, str]] = {
    # -- SPF record syntax and shape --------------------------------------
    "SPF001": (Severity.ERROR, "syntax error in term (strict validators permerror)"),
    "SPF002": (Severity.ERROR, "record is not parseable SPF"),
    "SPF003": (Severity.ERROR, "multiple SPF records at one name (permerror)"),
    "SPF004": (Severity.ERROR, "duplicate redirect=/exp= modifier (RFC 7208 s6 permerror)"),
    "SPF005": (Severity.WARNING, "record risks UDP truncation (over 450 octets)"),
    # -- RFC 7208 processing limits (section 4.6.4) -----------------------
    "SPF010": (Severity.ERROR, "worst-case DNS-lookup terms exceed the limit of 10 (permerror)"),
    "SPF011": (Severity.WARNING, "worst-case DNS-lookup terms near the limit of 10"),
    "SPF012": (Severity.ERROR, "worst-case void lookups exceed the limit of 2 (permerror)"),
    "SPF013": (Severity.ERROR, "include cycle (evaluation spins until the lookup limit)"),
    "SPF014": (Severity.ERROR, "redirect cycle (evaluation spins until the lookup limit)"),
    "SPF015": (Severity.ERROR, "include target publishes no SPF record (permerror)"),
    "SPF016": (Severity.ERROR, "redirect target publishes no SPF record (permerror)"),
    "SPF017": (Severity.WARNING, "mechanism target does not resolve (void lookup)"),
    "SPF018": (Severity.ERROR, "mx target yields more than 10 exchanges (permerror)"),
    "SPF019": (Severity.INFO, "mx target publishes a null MX (RFC 7505)"),
    # -- policy hygiene ----------------------------------------------------
    "SPF020": (Severity.WARNING, "terms after 'all' are never evaluated"),
    "SPF021": (Severity.WARNING, "redirect= is ignored when 'all' is present"),
    "SPF022": (Severity.ERROR, "'+all' authorizes the entire Internet"),
    "SPF023": (Severity.WARNING, "terminal '?all' asserts nothing"),
    "SPF024": (Severity.WARNING, "no terminal 'all' or redirect=; unmatched senders are neutral"),
    "SPF025": (Severity.WARNING, "'ptr' is slow and unreliable; RFC 7208 says do not use"),
    "SPF026": (Severity.INFO, "macro target cannot be followed statically"),
    "SPF027": (Severity.INFO, "unknown modifier is ignored by validators"),
    "SPF028": (Severity.INFO, "target outside the audited data; counts are lower bounds"),
    "SPF029": (Severity.INFO, "include chain deeper than the analyzer follows"),
    # -- DMARC / DKIM cross-checks ----------------------------------------
    "DMARC001": (Severity.WARNING, "domain publishes SPF but no DMARC record"),
    "DMARC002": (Severity.WARNING, "p=none monitors but never protects"),
    "DMARC003": (Severity.ERROR, "DMARC record is not parseable"),
    "DMARC004": (Severity.ERROR, "multiple DMARC records (validators ignore all of them)"),
    "DMARC005": (Severity.WARNING, "pct<100 leaves some spoofed mail unfiltered"),
    "DMARC006": (Severity.WARNING, "sp= subdomain policy weaker than p="),
    "DMARC007": (Severity.ERROR, "alignment impossible: neither SPF nor DKIM identity exists"),
    "DMARC008": (Severity.INFO, "unknown DMARC tag is ignored by validators"),
    # -- DKIM key records and signature headers (repro.lint.dkimlint) ------
    "DKIM001": (Severity.ERROR, "DKIM key record is not parseable"),
    "DKIM002": (Severity.WARNING, "key is revoked (empty p=); signatures can never verify"),
    "DKIM003": (Severity.ERROR, "RSA key shorter than 1024 bits is trivially factorable"),
    "DKIM004": (Severity.WARNING, "RSA key shorter than 2048 bits (RFC 8301 recommends 2048)"),
    "DKIM005": (Severity.ERROR, "rsa-sha1 must not be used for signing or verifying (RFC 8301)"),
    "DKIM006": (Severity.WARNING, "l= signs only part of the body; appended content still passes"),
    "DKIM007": (Severity.INFO, "t=y testing flag: verifiers treat the domain as unsigned"),
    "DKIM008": (Severity.ERROR, "signature expired (x= is in the past)"),
    "DKIM009": (Severity.WARNING, "signature expires soon"),
    "DKIM010": (Severity.ERROR, "x= expiration is not later than t= timestamp"),
    "DKIM011": (Severity.ERROR, "missing required tag"),
    "DKIM012": (Severity.ERROR, "duplicate tag in tag=value list"),
    "DKIM013": (Severity.WARNING, "simple body canonicalization breaks on whitespace changes"),
    "DKIM014": (Severity.ERROR, "i= identity is outside the d= signing domain"),
    "DKIM015": (Severity.WARNING, "selector is not a valid DNS label"),
    "DKIM016": (Severity.INFO, "unknown tag is ignored by verifiers"),
    # -- trace conformance (repro.lint.tracecheck) -------------------------
    "TRACE001": (Severity.ERROR, "query name impossible under the policy's derived DNS footprint"),
    "TRACE002": (Severity.ERROR, "query type not permitted for this name in the policy footprint"),
    "TRACE003": (Severity.ERROR, "timestamp anomaly in the attributed query stream"),
    "TRACE004": (Severity.ERROR, "query under the IPv6-only suffix arrived over IPv4"),
    "TRACE005": (Severity.ERROR, "SPF-walk queries observed without the walk's root TXT fetch"),
    "TRACE006": (Severity.ERROR, "observed footprint exceeds the static worst-case prediction"),
    "TRACE007": (Severity.WARNING, "in-suffix traffic could not be attributed"),
    "TRACE008": (Severity.ERROR, "query attributed to a testid not in the policy catalogue"),
    # -- repository invariants (repro.lint.astcheck) ----------------------
    "AST000": (Severity.ERROR, "file does not parse"),
    "AST001": (Severity.ERROR, "wall-clock read outside net/clock.py breaks determinism"),
    "AST002": (Severity.ERROR, "real socket use outside net/ breaks the simulation boundary"),
    "AST003": (Severity.ERROR, "bare 'except:' swallows control-flow exceptions"),
    "AST004": (Severity.ERROR, "blocking call inside 'async def' stalls the event loop"),
    "AST005": (Severity.WARNING, "mutable default argument is shared across calls"),
    "AST006": (Severity.WARNING, "naive datetime construction has no timezone"),
    "AST007": (Severity.ERROR, "wall_now() escape hatch used outside its sanctioned homes"),
}


@dataclass(frozen=True)
class Span:
    """Half-open character range ``[start, end)`` into a raw record."""

    start: int
    end: int

    def slice(self, text: str) -> str:
        return text[self.start : self.end]


@dataclass
class Diagnostic:
    """One finding of the static auditor."""

    code: str
    message: str
    subject: str = ""  # domain, owner name, or file path
    span: Optional[Span] = None
    hint: Optional[str] = None
    severity: Severity = field(default=Severity.INFO)

    def __post_init__(self) -> None:
        if self.code not in RULES:
            raise ValueError("unregistered rule code %r" % self.code)
        # The registry's severity is authoritative unless explicitly overridden.
        if self.severity is Severity.INFO and RULES[self.code][0] is not Severity.INFO:
            self.severity = RULES[self.code][0]

    @property
    def title(self) -> str:
        return RULES[self.code][1]

    def format(self) -> str:
        location = self.subject
        if self.span is not None:
            location += "[%d:%d]" % (self.span.start, self.span.end)
        parts = ["%s %s" % (self.code, self.severity.name.lower())]
        if location:
            parts.append(location)
        line = " ".join(parts) + ": " + self.message
        if self.hint:
            line += "  (fix: %s)" % self.hint
        return line

    def to_dict(self) -> dict:
        payload = {
            "code": self.code,
            "severity": self.severity.name.lower(),
            "subject": self.subject,
            "message": self.message,
        }
        if self.span is not None:
            payload["span"] = [self.span.start, self.span.end]
        if self.hint:
            payload["hint"] = self.hint
        return payload


@dataclass
class LintReport:
    """An ordered collection of diagnostics plus rendering helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(
        self,
        code: str,
        message: str,
        subject: str = "",
        span: Optional[Span] = None,
        hint: Optional[str] = None,
    ) -> Diagnostic:
        diagnostic = Diagnostic(code=code, message=message, subject=subject, span=span, hint=hint)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def render_text(self, header: Optional[str] = None) -> str:
        lines: List[str] = []
        if header:
            lines.append(header)
        if not self.diagnostics:
            lines.append("clean: no findings")
        for diagnostic in self.diagnostics:
            lines.append(diagnostic.format())
        if self.diagnostics:
            lines.append(
                "%d error(s), %d warning(s), %d info"
                % (
                    len(self.errors),
                    len(self.warnings),
                    len(self.by_severity(Severity.INFO)),
                )
            )
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        payload = {
            "findings": [d.to_dict() for d in self.diagnostics],
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.by_severity(Severity.INFO)),
            },
        }
        return json.dumps(payload, indent=indent, sort_keys=True)
