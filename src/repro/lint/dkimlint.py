"""Static DKIM auditing (RFC 6376, hardened per RFC 8301).

Completes the third protocol of the static analyzer: DKIM key records
(the TXT at ``<selector>._domainkey.<domain>``) and ``DKIM-Signature``
header values are audited without verifying a single signature.  The
pass reuses the strict parsers in :mod:`repro.dkim` where they apply,
but runs its own *tolerant* tag=value scan first — the strict
``parse_tag_list`` silently overwrites duplicate tags and raises on the
first malformed one, both of which are exactly the findings a linter
must report.

Zone-level entry point :func:`audit_zone_dkim` feeds
:mod:`repro.lint.zonelint`'s "can DKIM ever align" cross-check
(DMARC007) with real key parsing: a ``_domainkey`` name whose records
are revoked or undecodable can never produce an aligned pass.

All time-dependent checks (``x=`` expiry) take ``now`` explicitly — the
repository's determinism invariant (AST001) bans wall-clock reads.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Set, Tuple

from repro.dkim.errors import DkimKeyError
from repro.dkim.rsa import RsaPublicKey
from repro.dns.name import Name
from repro.dns.rdata import RdataType
from repro.dns.zone import Zone
from repro.lint.diagnostics import LintReport

#: RFC 8301: verifiers MUST support 1024..2048 and SHOULD NOT verify below.
MIN_KEY_BITS = 1024
#: RFC 8301: signers SHOULD sign with at least 2048-bit keys.
RECOMMENDED_KEY_BITS = 2048
#: ``x=`` closer than this to ``now`` draws a near-expiry warning.
EXPIRY_WARNING_SECONDS = 7 * 86400

_SIGNATURE_TAGS = frozenset("v a b bh c d h i l q s t x z".split())
_SIGNATURE_REQUIRED = ("v", "a", "d", "s", "h", "bh", "b")
_KEY_TAGS = frozenset("v k p t n h s".split())

_LABEL_RE = re.compile(r"^(?!-)[A-Za-z0-9_-]{1,63}(?<!-)$")


def _scan_tags(text: str, subject: str, report: LintReport) -> Optional[List[Tuple[str, str]]]:
    """Tolerant tag=value scan preserving order and duplicates.

    Returns None (after reporting DKIM001) when the list is structurally
    broken; individual bad tags otherwise become findings but do not stop
    the scan, so one typo does not hide every other problem.
    """
    tags: List[Tuple[str, str]] = []
    for part in text.split(";"):
        stripped = part.strip()
        if not stripped:  # trailing ";" and ";;" are tolerated
            continue
        name, separator, value = stripped.partition("=")
        name = name.strip()
        if not separator or not re.match(r"^[a-zA-Z][a-zA-Z0-9_]*$", name):
            report.add(
                "DKIM001",
                "malformed tag %r in tag=value list" % stripped,
                subject=subject,
                hint="every part must be name=value",
            )
            return None
        tags.append((name, re.sub(r"\s+", "", value)))
    seen: Set[str] = set()
    for name, _ in tags:
        if name in seen:
            report.add(
                "DKIM012",
                "tag %s= appears more than once; verifiers reject the list" % name,
                subject=subject,
                hint="keep the first occurrence only",
            )
        seen.add(name)
    return tags


def _first(tags: Iterable[Tuple[str, str]], name: str) -> Optional[str]:
    for tag, value in tags:
        if tag == name:
            return value
    return None


def _check_selector(selector: str, subject: str, report: LintReport) -> None:
    labels = selector.split(".") if selector else [""]
    for label in labels:
        if not _LABEL_RE.match(label):
            report.add(
                "DKIM015",
                "selector %r is not a valid DNS label sequence" % selector,
                subject=subject,
                hint="use letters, digits, '_' and interior '-' only, 1-63 chars per label",
            )
            return


# -- key records ---------------------------------------------------------


def audit_key_record(
    text: str, subject: str = "", report: Optional[LintReport] = None
) -> LintReport:
    """Audit one DKIM key record (the TXT value)."""
    if report is None:
        report = LintReport()
    tags = _scan_tags(text, subject, report)
    if tags is None:
        return report
    for name, value in tags:
        if name not in _KEY_TAGS:
            report.add(
                "DKIM016", "unknown key-record tag %s=%s" % (name, value), subject=subject
            )
    version = _first(tags, "v")
    if version is not None and version != "DKIM1":
        report.add(
            "DKIM001",
            "unsupported key record version %r" % version,
            subject=subject,
            hint="v=DKIM1, and it must be the first tag when present",
        )
        return report
    if version is not None and tags and tags[0][0] != "v":
        report.add(
            "DKIM001",
            "v= must be the first tag of a key record (RFC 6376 s3.6.1)",
            subject=subject,
        )
    key_type = _first(tags, "k")
    if key_type is not None and key_type != "rsa":
        report.add(
            "DKIM001",
            "unsupported key type k=%s; verifiers treat the key as unusable" % key_type,
            subject=subject,
        )
        return report
    hashes = _first(tags, "h")
    if hashes is not None:
        accepted = [h for h in hashes.lower().split(":") if h]
        if accepted and "sha256" not in accepted:
            report.add(
                "DKIM005",
                "key h=%s accepts no sha256 signatures (RFC 8301 forbids sha1)" % hashes,
                subject=subject,
                hint="allow sha256 or drop the h= restriction",
            )
    flags = [f for f in (_first(tags, "t") or "").split(":") if f]
    if "y" in flags:
        report.add(
            "DKIM007",
            "t=y marks the domain as testing; verifiers ignore failures",
            subject=subject,
            hint="remove the flag once rollout is done",
        )
    public = _first(tags, "p")
    if public is None:
        report.add(
            "DKIM011", "key record is missing the required p= tag", subject=subject
        )
        return report
    if public == "":
        report.add(
            "DKIM002",
            "p= is empty: the key is revoked and every signature fails",
            subject=subject,
        )
        return report
    try:
        key = RsaPublicKey.from_base64(public)
    except DkimKeyError as exc:
        report.add(
            "DKIM001", "p= is not a decodable RSA public key: %s" % exc, subject=subject
        )
        return report
    bits = key.n.bit_length()
    if bits < MIN_KEY_BITS:
        report.add(
            "DKIM003",
            "%d-bit RSA key; RFC 8301 verifiers must not accept below %d"
            % (bits, MIN_KEY_BITS),
            subject=subject,
            hint="rotate to a 2048-bit key",
        )
    elif bits < RECOMMENDED_KEY_BITS:
        report.add(
            "DKIM004",
            "%d-bit RSA key; RFC 8301 recommends %d" % (bits, RECOMMENDED_KEY_BITS),
            subject=subject,
            hint="rotate to a 2048-bit key",
        )
    return report


def key_is_usable(text: str) -> bool:
    """Can this key record ever contribute an aligned DKIM pass?

    Parsed leniently but honestly: unparseable, revoked, undecodable, or
    non-RSA keys can never verify anything.
    """
    report = audit_key_record(text)
    return not any(d.code in ("DKIM001", "DKIM002", "DKIM011") for d in report.diagnostics)


# -- signature headers ---------------------------------------------------


def audit_signature_header(
    text: str,
    subject: str = "",
    now: Optional[float] = None,
    report: Optional[LintReport] = None,
) -> LintReport:
    """Audit one ``DKIM-Signature`` header value.

    ``now`` (virtual or wall seconds, caller's choice) enables the
    expiry checks; without it only the static ``x= <= t=`` relation is
    checked.
    """
    if report is None:
        report = LintReport()
    tags = _scan_tags(text, subject, report)
    if tags is None:
        return report
    for name, value in tags:
        if name not in _SIGNATURE_TAGS:
            report.add(
                "DKIM016", "unknown signature tag %s=%s" % (name, value), subject=subject
            )
    for required in _SIGNATURE_REQUIRED:
        if _first(tags, required) is None:
            report.add(
                "DKIM011",
                "signature is missing the required %s= tag" % required,
                subject=subject,
            )
    version = _first(tags, "v")
    if version is not None and version != "1":
        report.add("DKIM001", "unsupported signature version v=%s" % version, subject=subject)
    algorithm = _first(tags, "a")
    if algorithm is not None and algorithm.lower() == "rsa-sha1":
        report.add(
            "DKIM005",
            "a=rsa-sha1 signatures are forbidden by RFC 8301",
            subject=subject,
            hint="sign with rsa-sha256",
        )
    length = _first(tags, "l")
    if length is not None:
        report.add(
            "DKIM006",
            "l=%s limits the body hash; content appended after that offset "
            "survives verification" % length,
            subject=subject,
            hint="drop l= and sign the whole body",
        )
    canonicalization = _first(tags, "c")
    if canonicalization is not None:
        parts = canonicalization.lower().split("/", 1)
        header_canon = parts[0]
        body_canon = parts[1] if len(parts) == 2 else "simple"
        if header_canon not in ("simple", "relaxed") or body_canon not in ("simple", "relaxed"):
            report.add(
                "DKIM001", "unknown canonicalization c=%s" % canonicalization, subject=subject
            )
        elif body_canon == "simple":
            report.add(
                "DKIM013",
                "c=%s: simple body canonicalization breaks on any trailing-"
                "whitespace rewrite in transit" % canonicalization,
                subject=subject,
                hint="use relaxed body canonicalization",
            )
    headers = _first(tags, "h")
    if headers is not None:
        signed = [h.strip().lower() for h in headers.split(":") if h.strip()]
        if "from" not in signed:
            report.add(
                "DKIM011",
                "h= does not include From; RFC 6376 requires it",
                subject=subject,
            )
    selector = _first(tags, "s")
    if selector is not None:
        _check_selector(selector, subject, report)
    domain = _first(tags, "d")
    identity = _first(tags, "i")
    if identity is not None and domain:
        identity_domain = identity.rpartition("@")[2]
        if identity_domain and not Name(identity_domain).is_subdomain_of(Name(domain)):
            report.add(
                "DKIM014",
                "i=%s is not within the d=%s signing domain" % (identity, domain),
                subject=subject,
            )
    timestamp = _int_tag(tags, "t", subject, report)
    expiration = _int_tag(tags, "x", subject, report)
    if expiration is not None:
        if timestamp is not None and expiration <= timestamp:
            report.add(
                "DKIM010",
                "x=%d is not later than t=%d; the signature never validates"
                % (expiration, timestamp),
                subject=subject,
            )
        elif now is not None:
            if expiration <= now:
                report.add(
                    "DKIM008",
                    "signature expired at x=%d (now %d)" % (expiration, int(now)),
                    subject=subject,
                )
            elif expiration - now < EXPIRY_WARNING_SECONDS:
                report.add(
                    "DKIM009",
                    "signature expires in %d seconds" % int(expiration - now),
                    subject=subject,
                )
    return report


def _int_tag(
    tags: List[Tuple[str, str]], name: str, subject: str, report: LintReport
) -> Optional[int]:
    value = _first(tags, name)
    if value is None:
        return None
    try:
        return int(value)
    except ValueError:
        report.add("DKIM001", "non-numeric %s= tag %r" % (name, value), subject=subject)
        return None


# -- zone-level sweep ----------------------------------------------------


def audit_zone_dkim(zone: Zone) -> Tuple[LintReport, Set[Tuple[str, ...]]]:
    """Audit every ``_domainkey`` TXT rrset in ``zone``.

    Returns the findings plus the set of domain name-keys (lowercased
    label tuples) that publish at least one *usable* key — the real
    answer to "can DKIM ever align here", replacing the name-existence
    heuristic zonelint used before.
    """
    report = LintReport()
    usable: Set[Tuple[str, ...]] = set()
    for owner, rdtype, records in zone.rrsets():
        if rdtype != RdataType.TXT:
            continue
        labels = [label.lower() for label in owner.labels]
        if "_domainkey" not in labels:
            continue
        position = labels.index("_domainkey")
        subject = owner.to_text(omit_final_dot=True)
        selector_labels = labels[:position]
        domain_key = tuple(labels[position + 1 :])
        if selector_labels:
            _check_selector(".".join(selector_labels), subject, report)
        for rr in records:
            text = rr.rdata.text
            audit_key_record(text, subject=subject, report=report)
            if key_is_usable(text):
                usable.add(domain_key)
    return report, usable
