"""SARIF 2.1.0 rendering of a :class:`~repro.lint.diagnostics.LintReport`.

SARIF (Static Analysis Results Interchange Format, OASIS) is the lingua
franca CI systems ingest for code-scanning annotations.  The auditor's
diagnostics map onto it naturally: the :data:`~repro.lint.diagnostics.RULES`
registry becomes ``tool.driver.rules`` and each finding becomes a
``result`` pointing at its rule by index.

Subjects of the form ``path:line`` (the shape :mod:`repro.lint.astcheck`
emits) become physical locations with a region; any other subject (a
domain name, a record) is carried as a logical location, since SARIF has
no notion of DNS names.
"""

from __future__ import annotations

import json
import re
from typing import List, Optional, Tuple

from repro.lint.diagnostics import RULES, Diagnostic, LintReport, Severity

#: SARIF schema pinned by the spec; consumers validate against it.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

TOOL_NAME = "repro.lint"
TOOL_URI = "https://example.org/repro/lint"  # informationUri is required-ish by consumers

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

_FILE_LINE_RE = re.compile(r"^(?P<path>[^\s:]+\.py):(?P<line>\d+)$")


def _split_subject(subject: str) -> Tuple[Optional[str], Optional[int]]:
    """``"core/loop.py:17"`` -> ``("core/loop.py", 17)``; else ``(None, None)``."""
    match = _FILE_LINE_RE.match(subject)
    if match is None:
        return None, None
    return match.group("path"), int(match.group("line"))


def _rule_ids() -> List[str]:
    """Registry codes in their (stable) declaration order."""
    return list(RULES)


def _result(diagnostic: Diagnostic, rule_index: dict) -> dict:
    message = diagnostic.message
    if diagnostic.hint:
        message += " (fix: %s)" % diagnostic.hint
    result = {
        "ruleId": diagnostic.code,
        "ruleIndex": rule_index[diagnostic.code],
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": message},
    }
    path, line = _split_subject(diagnostic.subject)
    if path is not None:
        region = {"startLine": line}
        if diagnostic.span is not None:
            region["startColumn"] = diagnostic.span.start + 1
            region["endColumn"] = diagnostic.span.end + 1
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": path},
                    "region": region,
                }
            }
        ]
    elif diagnostic.subject:
        result["locations"] = [
            {
                "logicalLocations": [
                    {"fullyQualifiedName": diagnostic.subject, "kind": "namespace"}
                ]
            }
        ]
    return result


def to_sarif(report: LintReport, tool_version: str = "0") -> dict:
    """Render ``report`` as a SARIF 2.1.0 log object (a plain dict)."""
    codes = _rule_ids()
    rule_index = {code: i for i, code in enumerate(codes)}
    rules = [
        {
            "id": code,
            "shortDescription": {"text": RULES[code][1]},
            "defaultConfiguration": {"level": _LEVELS[RULES[code][0]]},
        }
        for code in codes
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": tool_version,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": [_result(d, rule_index) for d in report.diagnostics],
            }
        ],
    }


def render_sarif(report: LintReport, tool_version: str = "0") -> str:
    """``to_sarif`` serialized with stable formatting."""
    return json.dumps(to_sarif(report, tool_version), indent=2, sort_keys=False)
