"""Record sources: how the static analyzer sees DNS data.

The analyzer never performs a (simulated or real) DNS round-trip.  It
reads records through a :class:`RecordSource`, which answers "what does
``name``/``rdtype`` hold?" from data it already has — a
:class:`~repro.dns.zone.Zone`, a plain dict, or (in
:mod:`repro.core.preflight`) a test policy's declarative record map.

A source distinguishes the same outcomes a resolver would, because the
SPF limit math depends on them: FOUND, NODATA and NXDOMAIN (the two void
flavours), and UNKNOWN for names outside the audited data — the honest
answer a zone file cannot give about the rest of the Internet.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.dns.name import Name
from repro.dns.rdata import Rdata, RdataType
from repro.dns.zone import LookupStatus, Zone


class SourceStatus(enum.Enum):
    """Outcome of a static lookup."""

    FOUND = "found"
    NODATA = "nodata"
    NXDOMAIN = "nxdomain"
    UNKNOWN = "unknown"

    @property
    def is_void(self) -> bool:
        """Void lookup in the RFC 7208 sense: the name yields no records."""
        return self in (SourceStatus.NODATA, SourceStatus.NXDOMAIN)


@dataclass
class SourceAnswer:
    """What a record source knows about one (name, type) pair."""

    status: SourceStatus
    records: List[Rdata] = field(default_factory=list)

    def texts(self) -> List[str]:
        return [r.text for r in self.records if r.rdtype == RdataType.TXT]


_UNKNOWN = SourceAnswer(SourceStatus.UNKNOWN)


def _normalize(name: Union[str, Name]) -> Tuple[str, ...]:
    return Name(name).key


class RecordSource:
    """Base class.  Subclasses implement :meth:`fetch`; callers use
    :meth:`lookup`, which adds bounded CNAME chasing on top."""

    #: How many CNAME links :meth:`lookup` follows before giving up.
    max_cname_chain = 8

    def fetch(self, name: Union[str, Name], rdtype: RdataType) -> SourceAnswer:
        raise NotImplementedError

    def lookup(self, name: Union[str, Name], rdtype: RdataType) -> SourceAnswer:
        """Like :meth:`fetch`, but follows CNAMEs the way a resolver would."""
        answer = self.fetch(name, rdtype)
        chain = 0
        while (
            answer.status is SourceStatus.FOUND
            and rdtype != RdataType.CNAME
            and not any(r.rdtype == rdtype for r in answer.records)
            and any(r.rdtype == RdataType.CNAME for r in answer.records)
        ):
            chain += 1
            if chain > self.max_cname_chain:
                return _UNKNOWN
            target = next(r for r in answer.records if r.rdtype == RdataType.CNAME).target
            answer = self.fetch(target, rdtype)
        return answer

    def has_records(self, name: Union[str, Name], rdtype: RdataType) -> Optional[bool]:
        """Three-valued: True/False when the source knows, None when not."""
        answer = self.lookup(name, rdtype)
        if answer.status is SourceStatus.UNKNOWN:
            return None
        return any(r.rdtype == rdtype for r in answer.records)


class ZoneRecordSource(RecordSource):
    """Reads straight out of a :class:`~repro.dns.zone.Zone`.

    Names outside the zone's origin are UNKNOWN — the zone genuinely has
    no opinion about them — which the analyzer reports as lower-bound
    coverage rather than inventing voids.
    """

    def __init__(self, zone: Zone) -> None:
        self.zone = zone

    def fetch(self, name: Union[str, Name], rdtype: RdataType) -> SourceAnswer:
        owner = Name(name)
        if not owner.is_subdomain_of(self.zone.origin):
            return _UNKNOWN
        status, records = self.zone.lookup(owner, rdtype)
        rdatas = [rr.rdata for rr in records]
        if status is LookupStatus.SUCCESS or status is LookupStatus.CNAME:
            return SourceAnswer(SourceStatus.FOUND, rdatas)
        if status is LookupStatus.NODATA:
            return SourceAnswer(SourceStatus.NODATA)
        return SourceAnswer(SourceStatus.NXDOMAIN)


class DictRecordSource(RecordSource):
    """A source backed by a plain ``{name: [Rdata, ...]}`` mapping.

    Convenient for tests and for auditing ad-hoc record sets that never
    lived in a zone.  Empty non-terminals are registered automatically so
    NODATA/NXDOMAIN come out the same way a zone would report them.
    ``origin`` bounds what the source claims to know: names outside it are
    UNKNOWN (default: knows everything it was given, NXDOMAIN elsewhere).
    """

    def __init__(
        self,
        records: Dict[str, Iterable[Rdata]],
        origin: Optional[Union[str, Name]] = None,
    ) -> None:
        self.origin = Name(origin) if origin is not None else None
        self._records: Dict[Tuple[str, ...], List[Rdata]] = {}
        self._nodes: Set[Tuple[str, ...]] = set()
        for name, rdatas in records.items():
            key = _normalize(name)
            self._records.setdefault(key, []).extend(rdatas)
            node = Name(name)
            while node.key not in self._nodes and len(node.key) > 0:
                self._nodes.add(node.key)
                node = node.parent()

    def fetch(self, name: Union[str, Name], rdtype: RdataType) -> SourceAnswer:
        owner = Name(name)
        if self.origin is not None and not owner.is_subdomain_of(self.origin):
            return _UNKNOWN
        rdatas = self._records.get(owner.key)
        if rdatas:
            matching = [r for r in rdatas if r.rdtype == rdtype]
            if matching:
                return SourceAnswer(SourceStatus.FOUND, matching)
            cname = [r for r in rdatas if r.rdtype == RdataType.CNAME]
            if cname:
                return SourceAnswer(SourceStatus.FOUND, cname)
            return SourceAnswer(SourceStatus.NODATA)
        if owner.key in self._nodes:
            return SourceAnswer(SourceStatus.NODATA)
        return SourceAnswer(SourceStatus.NXDOMAIN)


class EmptySource(RecordSource):
    """Knows nothing; every lookup is UNKNOWN.  Used when auditing a bare
    record text with no surrounding data."""

    def fetch(self, name: Union[str, Name], rdtype: RdataType) -> SourceAnswer:
        return _UNKNOWN
