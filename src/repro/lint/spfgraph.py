"""Static SPF term-graph analysis (no resolution).

``audit_spf_domain`` walks an SPF policy the way an RFC-strict
``check_host`` would — following ``include:`` and ``redirect=`` edges
through a :class:`~repro.lint.source.RecordSource`, charging the same
counters at the same points — but reads record data instead of issuing
DNS queries.  The result is a :class:`StaticPrediction`: the worst-case
DNS-lookup and void-lookup counts a validator will pay, which RFC 7208
section 4.6.4 limit (if any) a compliant validator hits first, and the
final result when it is statically decidable (``permerror`` conditions,
``all``/``exists`` matches).

"Worst case" means the designed-to-fail traversal: no IP-dependent
mechanism matches, so evaluation reaches every reachable term.  That is
exactly the path the paper's probes force (the authorized address is
never the probe's), which is why the prediction agrees term-for-term
with :class:`~repro.spf.evaluator.SpfEvaluator` on the 39 test policies
— asserted in ``tests/test_lint_spf.py``.

Counter placement mirrors the evaluator precisely:

* every ``include``/``a``/``mx``/``ptr``/``exists`` directive and the
  ``redirect=`` modifier charges one mechanism lookup *before* anything
  else happens (the 11th charge is the ``lookup_limit`` abort);
* every ``a``/``mx``/``exists`` *target* resolution is preceded by a void
  budget check (aborts once two voids have accrued) and followed by void
  accounting;
* an ``mx`` target's exchanges charge one address resolution each, with
  the 11th exchange being the ``mx_limit`` abort;
* include cycles spin until the lookup limit, so they predict
  ``lookup_limit``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dns.rdata import RdataType
from repro.lint.diagnostics import LintReport, Span
from repro.lint.source import EmptySource, RecordSource, SourceStatus
from repro.spf.errors import SpfSyntaxError
from repro.spf.parser import parse_record
from repro.spf.result import QUALIFIER_RESULTS, SpfResult
from repro.spf.terms import (
    Directive,
    MechanismKind,
    Modifier,
    SpfRecord,
    looks_like_spf,
)

#: Record sizes above this risk UDP truncation without EDNS0 (512-octet
#: classic ceiling minus headers/question overhead).
_TRUNCATION_RISK_OCTETS = 450


@dataclass
class SpfLimits:
    """The RFC 7208 section 4.6.4 processing limits, as knobs."""

    max_lookups: int = 10
    max_voids: int = 2
    max_mx: int = 10
    near_lookups: int = 7  # warn above this, error above max_lookups
    max_depth: int = 40  # analyzer recursion bound, above any sane policy


@dataclass
class StaticPrediction:
    """What a strict validator will do with a policy, decided statically."""

    lookup_terms: int = 0  # worst-case mechanism lookups (full traversal)
    void_lookups: int = 0  # worst-case void lookups
    #: First statically-certain abort in evaluation order, or None:
    #: "lookup_limit" | "void_limit" | "mx_limit" | "permerror:<why>".
    first_abort: Optional[str] = None
    #: Final result when statically decidable (permerror conditions,
    #: ``all``/``exists`` matches); None when it depends on the client IP.
    result: Optional[SpfResult] = None
    cycle: bool = False
    #: False when UNKNOWN targets made the counts lower bounds.
    complete: bool = True

    @property
    def exceeds_limits(self) -> bool:
        return self.first_abort in ("lookup_limit", "void_limit", "mx_limit")

    @property
    def statically_permerror(self) -> bool:
        return self.first_abort is not None


@dataclass
class SpfAudit:
    """One audited SPF policy: findings plus the strict-validator forecast."""

    domain: str
    record_text: Optional[str]
    report: LintReport = field(default_factory=LintReport)
    prediction: StaticPrediction = field(default_factory=StaticPrediction)


def audit_record_text(
    text: str,
    domain: str = "",
    source: Optional[RecordSource] = None,
    limits: Optional[SpfLimits] = None,
) -> SpfAudit:
    """Audit one SPF record; ``source`` supplies include/redirect targets."""
    walker = _Walker(source if source is not None else EmptySource(), limits or SpfLimits())
    return walker.run(text, domain)


def audit_spf_domain(
    domain: str,
    source: RecordSource,
    limits: Optional[SpfLimits] = None,
) -> Optional[SpfAudit]:
    """Audit the SPF policy published at ``domain`` within ``source``.

    Returns None when the domain publishes no SPF record at all.  Multiple
    records are themselves a finding (SPF003); the first is then audited,
    matching the wild validators that "follow one".
    """
    answer = source.lookup(domain, RdataType.TXT)
    spf_texts = [t for t in answer.texts() if looks_like_spf(t)]
    if not spf_texts:
        return None
    walker = _Walker(source, limits or SpfLimits())
    if len(spf_texts) > 1:
        walker.report.add(
            "SPF003",
            "%d SPF records published at %s" % (len(spf_texts), domain),
            subject=domain,
            hint="merge them into a single record",
        )
        walker.abort("permerror:multiple-records")
    return walker.run(spf_texts[0], domain)


class _Walker:
    """One audit run: the counters plus the recursive record walk."""

    def __init__(self, source: RecordSource, limits: SpfLimits) -> None:
        self.source = source
        self.limits = limits
        self.report = LintReport()
        self.prediction = StaticPrediction()
        self.lookups = 0
        self.voids = 0
        self.active: List[str] = []  # include/redirect stack, lowered domains

    # -- entry -----------------------------------------------------------

    def run(self, text: str, domain: str) -> SpfAudit:
        if len(text.encode("utf-8")) > _TRUNCATION_RISK_OCTETS:
            self.report.add(
                "SPF005",
                "record is %d octets; plain-UDP responses truncate" % len(text),
                subject=domain,
                hint="trim the record or rely on EDNS0/TCP-capable validators",
            )
        result = self._walk(text, domain, depth=0)
        prediction = self.prediction
        prediction.lookup_terms = self.lookups
        prediction.void_lookups = self.voids
        if prediction.first_abort is not None:
            prediction.result = SpfResult.PERMERROR
        else:
            prediction.result = result
        self._summarize(domain)
        return SpfAudit(domain=domain, record_text=text, report=self.report, prediction=prediction)

    def _summarize(self, domain: str) -> None:
        if self.prediction.first_abort == "lookup_limit":
            self.report.add(
                "SPF010",
                "worst-case evaluation needs %s DNS-lookup terms; the limit is %d"
                % ("unbounded" if self.prediction.cycle else str(self.lookups), self.limits.max_lookups),
                subject=domain,
                hint="flatten includes into ip4/ip6 networks",
            )
        elif self.lookups > self.limits.near_lookups:
            self.report.add(
                "SPF011",
                "worst-case evaluation needs %d of %d permitted DNS-lookup terms"
                % (self.lookups, self.limits.max_lookups),
                subject=domain,
                hint="nested includes can push past the limit",
            )
        if self.prediction.first_abort == "void_limit":
            self.report.add(
                "SPF012",
                "worst-case evaluation hits %d void lookups; the limit is %d"
                % (self.voids, self.limits.max_voids),
                subject=domain,
                hint="remove mechanisms whose targets do not resolve",
            )

    # -- counters (placement mirrors SpfEvaluator) -----------------------

    def abort(self, kind: str) -> None:
        if self.prediction.first_abort is None:
            self.prediction.first_abort = kind

    def _count_lookup(self) -> None:
        self.lookups += 1
        if self.lookups > self.limits.max_lookups:
            self.abort("lookup_limit")

    def _void_budget_check(self) -> None:
        if self.voids >= self.limits.max_voids:
            self.abort("void_limit")

    def _note_void(self) -> None:
        self.voids += 1
        if self.voids > self.limits.max_voids:
            self.abort("void_limit")

    # -- the walk --------------------------------------------------------

    def _walk(self, text: str, domain: str, depth: int) -> Optional[SpfResult]:
        """Walk one record; returns the statically-decided result or None."""
        top = depth == 0
        try:
            record = parse_record(text, tolerant=True)
        except SpfSyntaxError as exc:
            self.report.add("SPF002", str(exc), subject=domain)
            self.abort("permerror:unparseable")
            return SpfResult.PERMERROR
        self._record_checks(record, domain, top)
        self.active.append(_canonical(domain))
        try:
            return self._walk_terms(record, domain, depth, top)
        finally:
            self.active.pop()

    def _record_checks(self, record: SpfRecord, domain: str, top: bool) -> None:
        """Per-record findings a strict parse would reject outright."""
        for invalid in record.invalid_terms:
            code = "SPF004" if invalid.reason.startswith("duplicate") else "SPF001"
            self.report.add(
                code,
                "%s: %r" % (invalid.reason, invalid.text),
                subject=domain,
                span=_span(invalid),
            )
        if record.invalid_terms:
            self.abort("permerror:syntax")
        for term in record.terms:
            if isinstance(term, Modifier) and term.name.lower() not in ("redirect", "exp"):
                self.report.add(
                    "SPF027",
                    "unknown modifier %s= is ignored" % term.name,
                    subject=domain,
                    span=_span(term),
                )

    def _walk_terms(
        self, record: SpfRecord, domain: str, depth: int, top: bool
    ) -> Optional[SpfResult]:
        directives = record.directives
        for index, term in enumerate(t for t in record.terms if isinstance(t, Directive)):
            mechanism = term.mechanism
            kind = mechanism.kind
            if kind.consumes_dns_lookup:
                self._count_lookup()
            if kind is MechanismKind.ALL:
                self._all_checks(record, term, index, directives, domain, top)
                return QUALIFIER_RESULTS[term.qualifier.value]
            if kind is MechanismKind.INCLUDE:
                result = self._follow_include(term, domain, depth)
                if result is SpfResult.PASS:
                    return QUALIFIER_RESULTS[term.qualifier.value]
            elif kind is MechanismKind.A:
                self._address_mechanism(term, mechanism.domain_spec or domain, domain)
            elif kind is MechanismKind.MX:
                self._mx_mechanism(term, mechanism.domain_spec or domain, domain)
            elif kind is MechanismKind.EXISTS:
                matched = self._exists_mechanism(term, domain)
                if matched:
                    return QUALIFIER_RESULTS[term.qualifier.value]
            elif kind is MechanismKind.PTR:
                self.report.add(
                    "SPF025",
                    "'ptr' costs per-client reverse lookups and rarely matches",
                    subject=domain,
                    span=_span(term),
                    hint="replace with ip4/ip6 or a",
                )
            # ip4/ip6 match depends on the client address: worst case, no match.
        return self._follow_redirect(record, domain, depth, top)

    def _all_checks(
        self,
        record: SpfRecord,
        term: Directive,
        index: int,
        directives: List[Directive],
        domain: str,
        top: bool,
    ) -> None:
        if top:
            if term.qualifier.value == "+":
                self.report.add(
                    "SPF022",
                    "'+all' passes every sender on the Internet",
                    subject=domain,
                    span=_span(term),
                    hint="use -all (or ~all while rolling out)",
                )
            elif term.qualifier.value == "?":
                self.report.add(
                    "SPF023",
                    "terminal '?all' leaves spoofed mail neutral",
                    subject=domain,
                    span=_span(term),
                    hint="tighten to ~all or -all",
                )
        if index != len(directives) - 1:
            self.report.add(
                "SPF020",
                "%d mechanism(s) after 'all' are unreachable" % (len(directives) - 1 - index),
                subject=domain,
                span=_span(term),
                hint="delete the dead terms",
            )
        if record.modifier("redirect") is not None:
            self.report.add(
                "SPF021",
                "redirect= never takes effect alongside 'all'",
                subject=domain,
                hint="drop one of the two",
            )

    # -- mechanism handlers ----------------------------------------------

    def _follow_include(self, term: Directive, domain: str, depth: int) -> Optional[SpfResult]:
        target = term.mechanism.domain_spec or ""
        if "%" in target:
            self.report.add(
                "SPF026",
                "include:%s expands per-message; child policy not followed" % target,
                subject=domain,
                span=_span(term),
            )
            self.prediction.complete = False
            return None
        if _canonical(target) in self.active:
            self.report.add(
                "SPF013",
                "include:%s re-enters a policy already on the evaluation stack" % target,
                subject=domain,
                span=_span(term),
                hint="break the loop; validators spin until the lookup limit",
            )
            self.prediction.cycle = True
            self.abort("lookup_limit")
            return None
        if depth >= self.limits.max_depth:
            self.report.add(
                "SPF029",
                "include chain deeper than %d levels; not followed further" % self.limits.max_depth,
                subject=domain,
            )
            self.prediction.complete = False
            return None
        answer = self.source.lookup(target, RdataType.TXT)
        if answer.status is SourceStatus.UNKNOWN:
            self.report.add(
                "SPF028",
                "include:%s is outside the audited data" % target,
                subject=domain,
                span=_span(term),
            )
            self.prediction.complete = False
            return None
        spf_texts = [t for t in answer.texts() if looks_like_spf(t)]
        if not spf_texts:
            self.report.add(
                "SPF015",
                "include:%s resolves to no SPF record (child result 'none')" % target,
                subject=domain,
                span=_span(term),
                hint="publish a policy at the target or remove the include",
            )
            self.abort("permerror:include-none")
            return None
        if len(spf_texts) > 1:
            self.report.add(
                "SPF003",
                "%d SPF records published at include target %s" % (len(spf_texts), target),
                subject=target,
            )
            self.abort("permerror:multiple-records")
            return None
        return self._walk(spf_texts[0], target, depth + 1)

    def _address_mechanism(self, term: Directive, target: str, domain: str) -> None:
        self._void_budget_check()
        if "%" in target:
            self.report.add(
                "SPF026",
                "%s target expands per-message; resolvability unknown" % term.mechanism.kind.value,
                subject=domain,
                span=_span(term),
            )
            self.prediction.complete = False
            return
        known = self._has_address(target)
        if known is None:
            self.prediction.complete = False
        elif not known:
            self._note_void()
            self.report.add(
                "SPF017",
                "a:%s does not resolve" % target,
                subject=domain,
                span=_span(term),
                hint="remove the mechanism or publish the address",
            )

    def _mx_mechanism(self, term: Directive, target: str, domain: str) -> None:
        self._void_budget_check()
        if "%" in target:
            self.report.add(
                "SPF026",
                "mx target expands per-message; resolvability unknown",
                subject=domain,
                span=_span(term),
            )
            self.prediction.complete = False
            return
        answer = self.source.lookup(target, RdataType.MX)
        if answer.status is SourceStatus.UNKNOWN:
            self.prediction.complete = False
            return
        exchanges = [r for r in answer.records if r.rdtype == RdataType.MX]
        if not exchanges:
            self._note_void()
            self.report.add(
                "SPF017",
                "mx:%s publishes no MX records (and SPF forbids the A fallback)" % target,
                subject=domain,
                span=_span(term),
                hint="point mx at a name with MX records or use a:",
            )
            return
        if len(exchanges) == 1 and len(exchanges[0].exchange.labels) == 0:
            self.report.add(
                "SPF019",
                "mx:%s is a null MX; the mechanism can never match" % target,
                subject=domain,
                span=_span(term),
            )
            return
        ordered = sorted(exchanges, key=lambda mx: mx.preference)
        for index, exchange in enumerate(ordered):
            if index >= self.limits.max_mx:
                self.report.add(
                    "SPF018",
                    "mx:%s yields %d exchanges; validators abort after %d address lookups"
                    % (target, len(ordered), self.limits.max_mx),
                    subject=domain,
                    span=_span(term),
                )
                self.abort("mx_limit")
                break
            self._void_budget_check()
            exchange_name = exchange.exchange.to_text(omit_final_dot=True)
            known = self._has_address(exchange_name)
            if known is None:
                self.prediction.complete = False
            elif not known:
                self._note_void()
                self.report.add(
                    "SPF017",
                    "mx exchange %s does not resolve" % exchange_name,
                    subject=domain,
                    span=_span(term),
                )

    def _exists_mechanism(self, term: Directive, domain: str) -> bool:
        """Returns True when the target is known to resolve (a static match)."""
        self._void_budget_check()
        target = term.mechanism.domain_spec or ""
        if "%" in target:
            self.report.add(
                "SPF026",
                "exists:%s expands per-message; match is client-dependent" % target,
                subject=domain,
                span=_span(term),
            )
            self.prediction.complete = False
            return False
        answer = self.source.lookup(target, RdataType.A)
        if answer.status is SourceStatus.UNKNOWN:
            self.prediction.complete = False
            return False
        if not any(r.rdtype == RdataType.A for r in answer.records):
            self._note_void()
            self.report.add(
                "SPF017",
                "exists:%s does not resolve" % target,
                subject=domain,
                span=_span(term),
            )
            return False
        return True

    def _follow_redirect(
        self, record: SpfRecord, domain: str, depth: int, top: bool
    ) -> Optional[SpfResult]:
        redirect = record.modifier("redirect")
        if redirect is None:
            if top:
                self.report.add(
                    "SPF024",
                    "no terminal 'all' or redirect=",
                    subject=domain,
                    hint="end the record with -all or ~all",
                )
            return SpfResult.NEUTRAL
        self._count_lookup()
        if "%" in redirect:
            self.report.add(
                "SPF026",
                "redirect=%s expands per-message; target not followed" % redirect,
                subject=domain,
            )
            self.prediction.complete = False
            return None
        if _canonical(redirect) in self.active:
            self.report.add(
                "SPF014",
                "redirect=%s re-enters a policy already on the evaluation stack" % redirect,
                subject=domain,
                hint="break the loop; validators spin until the lookup limit",
            )
            self.prediction.cycle = True
            self.abort("lookup_limit")
            return None
        if depth >= self.limits.max_depth:
            self.report.add("SPF029", "redirect chain deeper than analyzer bound", subject=domain)
            self.prediction.complete = False
            return None
        answer = self.source.lookup(redirect, RdataType.TXT)
        if answer.status is SourceStatus.UNKNOWN:
            self.report.add(
                "SPF028",
                "redirect=%s is outside the audited data" % redirect,
                subject=domain,
            )
            self.prediction.complete = False
            return None
        spf_texts = [t for t in answer.texts() if looks_like_spf(t)]
        if not spf_texts:
            self.report.add(
                "SPF016",
                "redirect=%s resolves to no SPF record (permerror)" % redirect,
                subject=domain,
                hint="publish a policy at the target or drop the redirect",
            )
            self.abort("permerror:redirect-none")
            return None
        if len(spf_texts) > 1:
            self.report.add(
                "SPF003",
                "%d SPF records published at redirect target %s" % (len(spf_texts), redirect),
                subject=redirect,
            )
            self.abort("permerror:multiple-records")
            return None
        return self._walk(spf_texts[0], redirect, depth + 1)

    def _has_address(self, target: str) -> Optional[bool]:
        """Three-valued A/AAAA presence (the evaluator's _address_set)."""
        answer = self.source.lookup(target, RdataType.A)
        if answer.status is SourceStatus.UNKNOWN:
            return None
        if any(r.rdtype in (RdataType.A, RdataType.AAAA) for r in answer.records):
            return True
        aaaa = self.source.lookup(target, RdataType.AAAA)
        if aaaa.status is SourceStatus.UNKNOWN:
            return None
        return any(r.rdtype == RdataType.AAAA for r in aaaa.records)


def _canonical(domain: str) -> str:
    return domain.lower().rstrip(".")


def _span(term) -> Optional[Span]:
    if getattr(term, "start", -1) >= 0:
        return Span(term.start, term.end)
    return None
