"""Differential trace-conformance checking.

The static analyzer predicts what a policy's DNS footprint *can* look
like; the measurement harness records what validators *actually* query.
This module closes the loop: :func:`build_footprint` derives, from a
test policy's declarative record map alone, every query name and type
any validator could legitimately emit against it, and
:func:`check_index` diffs an observed :class:`~repro.core.querylog.QueryIndex`
against those footprints, per ``(mtaid, testid)`` pair.

The MTA fleet is *deliberately* diverse — the paper's whole point is
that validators disagree, exceed limits, or skip validation entirely —
so the rules here are behavior-universal invariants, not RFC-compliance
checks.  Whatever subset of the footprint a validator chooses to fetch
is fine; a query *outside* the footprint (TRACE001/002), an IPv4 arrival
under the IPv6-only suffix (TRACE004), walk queries with no record fetch
to induce them (TRACE005), or more mechanism roots than the static
worst-case prediction allows (TRACE006) can only mean the harness — or
the attribution pipeline — is broken.  A clean run reports nothing.

Footprint derivation is maximally permissive: every SPF-looking TXT is
walked tolerantly, ``a``/``mx`` targets admit both address families,
CNAME chains are chased, macro targets become wildcard patterns, and
per-base DMARC/DKIM discovery names are always allowed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclasses_field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.policies import NOTIFY_POLICY, POLICIES, PolicyContext, TestPolicy
from repro.core.preflight import PolicyRecordSource
from repro.core.querylog import AttributedQuery, AttributionStats, QueryIndex
from repro.core.synth import SynthConfig
from repro.dns.name import Name
from repro.dns.rdata import CnameRecord, RdataType
from repro.lint.diagnostics import LintReport
from repro.lint.spfgraph import StaticPrediction
from repro.spf.errors import SpfSyntaxError
from repro.spf.parser import parse_record
from repro.spf.terms import MechanismKind, Modifier, looks_like_spf

#: CNAME chains longer than this are abandoned (mirrors the resolver).
_MAX_CNAME_CHAIN = 8

#: A walk name key: (experiment, sublabels).
NameKey = Tuple[str, Tuple[str, ...]]

_ADDR = frozenset((RdataType.A, RdataType.AAAA))


@dataclass(frozen=True)
class NamePattern:
    """One permissible name in a policy's footprint.

    ``labels`` may contain ``"*"`` (one label) or lead with ``"**"``
    (any number of labels, for macro targets); ``concrete`` is True when
    they do not.  ``root`` is the walk this name belongs to — a query
    matching only rooted patterns is legitimate only alongside the
    walk's own root TXT fetch (TRACE005); ``None`` marks always-allowed
    extras (DMARC/DKIM discovery).
    """

    experiment: str  # "probe" | "v6" | "notify"
    labels: Tuple[str, ...]
    qtypes: frozenset
    role: str  # "root" | "mechanism" | "exchange" | "extra" | "helo-*"
    root: Optional[NameKey]
    concrete: bool


def _labels_match(pattern: Tuple[str, ...], sub: Tuple[str, ...]) -> bool:
    """Right-aligned wildcard match, same semantics as the policy maps."""
    if pattern and pattern[0] == "**":
        tail = pattern[1:]
        if len(sub) < len(tail):
            return False
        sub = sub[len(sub) - len(tail) :]
        pattern = tail
    if len(pattern) != len(sub):
        return False
    return all(p == "*" or p == s for p, s in zip(pattern, sub))


class PolicyFootprint:
    """Every query name/type one policy can legitimately induce."""

    def __init__(self, testid: str, patterns: Iterable[NamePattern]) -> None:
        self.testid = testid
        self.patterns: List[NamePattern] = list(patterns)
        self._exact: Dict[NameKey, List[NamePattern]] = {}
        self._wild: List[NamePattern] = []
        for pattern in self.patterns:
            if pattern.concrete:
                self._exact.setdefault((pattern.experiment, pattern.labels), []).append(pattern)
            else:
                self._wild.append(pattern)

    def match(self, experiment: str, sub: Tuple[str, ...]) -> List[NamePattern]:
        """All patterns this (experiment, sublabels) name satisfies."""
        matched = list(self._exact.get((experiment, sub), ()))
        for pattern in self._wild:
            if pattern.experiment == experiment and _labels_match(pattern.labels, sub):
                matched.append(pattern)
        return matched

    def permitted_qtypes(self, experiment: str, sub: Tuple[str, ...]) -> frozenset:
        permitted: Set[RdataType] = set()
        for pattern in self.match(experiment, sub):
            permitted |= pattern.qtypes
        return frozenset(permitted)


class _FootprintBuilder:
    """Derives a :class:`PolicyFootprint` by walking the policy's own
    records through the same :class:`PolicyRecordSource` preflight uses."""

    def __init__(self, policy: TestPolicy, config: SynthConfig) -> None:
        self.policy = policy
        self.config = config
        self.ctx = _placeholder_context(policy, config)
        self.source = PolicyRecordSource(policy, self.ctx)
        self._bases: List[Tuple[str, Name]] = []
        if policy.testid == "notify":
            self._bases.append(("notify", Name(self.ctx.base)))
        else:
            self._bases.append(("probe", Name(self.ctx.base)))
            self._bases.append(("v6", Name(self.ctx.v6_base)))
        #: (experiment, labels) -> [qtypes, roles, roots, concrete]
        self._acc: Dict[Tuple[str, Tuple[str, ...]], list] = {}

    # -- accumulation ----------------------------------------------------

    def _classify(self, name: Name) -> Optional[NameKey]:
        for experiment, base in self._bases:
            if name.is_subdomain_of(base):
                sub = tuple(label.lower() for label in name.relativize(base))
                return experiment, sub
        return None

    def _add(
        self,
        key: NameKey,
        qtypes: Iterable[RdataType],
        role: str,
        root: Optional[NameKey],
    ) -> None:
        concrete = not any(label in ("*", "**") or "*" in label for label in key[1])
        entry = self._acc.setdefault(key, [set(), set(), set(), concrete])
        entry[0].update(qtypes)
        entry[1].add(role)
        entry[2].add(root)

    # -- record access ---------------------------------------------------

    def _chase(
        self, name: Name, qtype: RdataType, role: str, root: Optional[NameKey]
    ) -> List:
        """Fetch ``qtype`` at ``name``, registering every CNAME-chain hop
        (each is a name the stub re-queries); returns final records."""
        for _ in range(_MAX_CNAME_CHAIN):
            key = self._classify(name)
            if key is None:
                return []
            self._add(key, (qtype,), role, root)
            answer = self.source.fetch(name, qtype)
            records = [r for r in answer.records if r.rdtype == qtype]
            if records:
                return records
            cnames = [r for r in answer.records if isinstance(r, CnameRecord)]
            if not cnames:
                return []
            name = Name(cnames[0].target)
        return []

    def _spf_texts(self, name: Name, role: str, root: Optional[NameKey]) -> List[str]:
        records = self._chase(name, RdataType.TXT, role, root)
        return [r.text for r in records if looks_like_spf(r.text)]

    # -- the walk --------------------------------------------------------

    def build(self) -> PolicyFootprint:
        experiment = self._bases[0][0]
        main_root: NameKey = (experiment, ())
        self._walk(Name(self.ctx.base), main_root, prefix="")
        if self.ctx.helo_base:
            helo_root = self._classify(Name(self.ctx.helo_base))
            if helo_root is not None:
                self._walk(Name(self.ctx.helo_base), helo_root, prefix="helo-")
        # DMARC and DKIM discovery: receivers of the notify mail (and any
        # validator curious about a probe identity) may look these up with
        # no SPF walk to anchor them.
        for _, base in self._bases:
            for labels, qtypes in ((("_dmarc",), (RdataType.TXT,)), (("*", "_domainkey"), (RdataType.TXT,))):
                key = self._classify(base)
                assert key is not None
                self._add((key[0], labels + key[1]), qtypes, "extra", None)
        patterns = [
            NamePattern(
                experiment=key[0],
                labels=key[1],
                qtypes=frozenset(entry[0]),
                role=min(entry[1]),  # deterministic representative
                root=next((r for r in sorted(entry[2], key=repr) if r is not None), None)
                if entry[2] != {None}
                else None,
                concrete=entry[3],
            )
            for key, entry in sorted(self._acc.items())
        ]
        return PolicyFootprint(self.policy.testid, patterns)

    def _walk(self, start: Name, root: NameKey, prefix: str) -> None:
        visited: Set[Tuple[str, ...]] = set()
        stack = [(start, prefix + "root")]
        while stack:
            name, role = stack.pop()
            if name.key in visited:
                continue
            visited.add(name.key)
            for text in self._spf_texts(name, role, root):
                try:
                    record = parse_record(text, tolerant=True)
                except SpfSyntaxError:
                    continue
                for directive in record.directives:
                    self._walk_directive(name, directive, root, prefix, stack)
                for term in record.terms:
                    if isinstance(term, Modifier) and term.name in ("redirect", "exp"):
                        target = self._target(name, term.value, root, prefix, term.name)
                        if term.name == "redirect" and target is not None:
                            stack.append((target, prefix + "mechanism"))

    def _walk_directive(self, name: Name, directive, root, prefix, stack) -> None:
        mechanism = directive.mechanism
        kind = mechanism.kind
        if kind in (MechanismKind.ALL, MechanismKind.IP4, MechanismKind.IP6, MechanismKind.PTR):
            return  # ptr walks the sender's reverse tree: out of suffix
        spec = mechanism.domain_spec
        if kind is MechanismKind.INCLUDE:
            target = self._target(name, spec, root, prefix, "include")
            if target is not None:
                stack.append((target, prefix + "mechanism"))
            return
        if kind is MechanismKind.EXISTS:
            self._target(name, spec, root, prefix, "exists")
            return
        target = Name(spec) if spec else name
        if kind is MechanismKind.A:
            key = self._classify(target)
            if spec and "%" in spec:
                self._macro(spec, _ADDR, root, prefix)
            elif key is not None:
                self._add(key, _ADDR, prefix + "mechanism", root)
        elif kind is MechanismKind.MX:
            if spec and "%" in spec:
                self._macro(spec, _ADDR | {RdataType.MX}, root, prefix)
                return
            key = self._classify(target)
            if key is None:
                return
            # Target gets MX plus both address types: some validators
            # fall back to the implicit-MX A lookup when no MX exists.
            self._add(key, _ADDR | {RdataType.MX}, prefix + "mechanism", root)
            for rec in self._chase(target, RdataType.MX, prefix + "mechanism", root):
                exchange_key = self._classify(Name(rec.exchange))
                if exchange_key is not None:
                    self._add(exchange_key, _ADDR, prefix + "exchange", root)

    def _target(
        self, name: Name, spec: Optional[str], root, prefix: str, what: str
    ) -> Optional[Name]:
        """Register a TXT-bearing target (include/redirect/exp/exists)."""
        if spec is None or not spec:
            return None
        qtypes = (RdataType.A,) if what == "exists" else (RdataType.TXT,)
        role = prefix + ("extra" if what == "exp" else "mechanism")
        if "%" in spec:
            self._macro(spec, qtypes, root, prefix, role=role)
            return None
        target = Name(spec)
        key = self._classify(target)
        if key is None:
            return None
        self._add(key, qtypes, role, root)
        return target if what in ("include", "redirect") else None

    def _macro(
        self,
        spec: str,
        qtypes: Iterable[RdataType],
        root,
        prefix: str,
        role: Optional[str] = None,
    ) -> None:
        """A macro target expands per-message: admit any labels in front
        of the static tail that follows the last macro-bearing label."""
        labels = spec.rstrip(".").split(".")
        last_macro = max(i for i, label in enumerate(labels) if "%" in label)
        tail = ".".join(labels[last_macro + 1 :])
        if not tail:
            return
        key = self._classify(Name(tail))
        if key is None:
            return
        self._add((key[0], ("**",) + key[1]), qtypes, role or (prefix + "mechanism"), root)


def _placeholder_context(policy: TestPolicy, config: SynthConfig) -> PolicyContext:
    """The context :meth:`SynthesizingAuthority._parse` would build, with a
    placeholder MTA identity (footprints are identical across MTAs)."""
    if policy.testid == "notify":
        return PolicyContext(
            base="d0.%s" % config.notify_suffix,
            mtaid="d0",
            testid="notify",
            probe_ipv4=config.probe_ipv4,
            probe_ipv6=config.probe_ipv6,
            valid_sender_ips=config.sender_ips,
            dkim_key_b64=config.dkim_key_b64,
        )
    base = "%s.mta0.%s" % (policy.testid, config.probe_suffix)
    return PolicyContext(
        base=base,
        mtaid="mta0",
        testid=policy.testid,
        v6_base="%s.mta0.%s" % (policy.testid, config.v6_suffix),
        helo_base="h.%s" % base,
        probe_ipv4=config.probe_ipv4,
        probe_ipv6=config.probe_ipv6,
        valid_sender_ips=config.sender_ips,
        dkim_key_b64=config.dkim_key_b64,
    )


def build_footprint(policy: TestPolicy, config: Optional[SynthConfig] = None) -> PolicyFootprint:
    """Derive the full permissible footprint of one test policy."""
    if config is None:
        config = SynthConfig()
    return _FootprintBuilder(policy, config).build()


# -- the checker ---------------------------------------------------------


@dataclass
class TraceCheckResult:
    """Outcome of one differential conformance pass."""

    report: LintReport = dataclasses_field(default_factory=LintReport)
    pairs_checked: int = 0
    queries_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.report.diagnostics


def check_index(
    index: QueryIndex,
    policies: Optional[Iterable[TestPolicy]] = None,
    config: Optional[SynthConfig] = None,
    stats: Optional[AttributionStats] = None,
    predictions: Optional[Dict[str, StaticPrediction]] = None,
) -> TraceCheckResult:
    """Diff every attributed query stream against its policy footprint.

    ``stats`` (from :func:`~repro.core.querylog.attribute_queries_with_stats`)
    enables the unattributable-traffic check; ``predictions`` (testid ->
    :class:`~repro.lint.spfgraph.StaticPrediction`, e.g. from preflight)
    enables the footprint-vs-prediction bound.  On output from an intact
    harness every rule is silent — each one firing means a layer between
    the policy catalogue and the query log disagrees with the others.
    """
    if config is None:
        config = SynthConfig()
    catalogue = {p.testid: p for p in (policies if policies is not None else list(POLICIES) + [NOTIFY_POLICY])}
    footprints: Dict[str, PolicyFootprint] = {}
    result = TraceCheckResult()
    report = result.report

    if stats is not None and stats.dropped_short:
        report.add(
            "TRACE007",
            "%d in-suffix quer%s could not be attributed to any (mtaid, testid)"
            % (stats.dropped_short, "y" if stats.dropped_short == 1 else "ies"),
            subject=config.probe_suffix,
            hint="inspect AttributionStats.short_entries",
        )

    for mtaid, testid in sorted(index.pairs()):
        result.pairs_checked += 1
        subject = "%s/%s" % (mtaid, testid)
        queries = index.for_pair(mtaid, testid)
        policy = catalogue.get(testid)
        if policy is None:
            report.add(
                "TRACE008",
                "%d quer%s attributed to unknown testid %r"
                % (len(queries), "y" if len(queries) == 1 else "ies", testid),
                subject=subject,
            )
            result.queries_checked += len(queries)
            continue
        if testid not in footprints:
            footprints[testid] = build_footprint(policy, config)
        _check_pair(footprints[testid], queries, subject, report, result)
        _check_prediction(
            footprints[testid], queries, subject, report, predictions, testid
        )
    return result


def _check_pair(
    footprint: PolicyFootprint,
    queries: List[AttributedQuery],
    subject: str,
    report: LintReport,
    result: TraceCheckResult,
) -> None:
    seen: Set[Tuple[str, Tuple[str, ...], RdataType]] = set()
    for query in queries:
        seen.add((query.experiment, query.sub, query.qtype))
    previous = None
    for query in queries:
        result.queries_checked += 1
        qname = query.entry.qname.to_text(omit_final_dot=True)
        timestamp = query.timestamp
        if not math.isfinite(timestamp) or timestamp < 0:
            report.add(
                "TRACE003",
                "query for %s carries timestamp %r" % (qname, timestamp),
                subject=subject,
            )
        elif previous is not None and timestamp < previous:
            report.add(
                "TRACE003",
                "query for %s at %.3f precedes the previous query at %.3f "
                "in an index stream contracted to be time-ordered"
                % (qname, timestamp, previous),
                subject=subject,
            )
        if math.isfinite(timestamp):
            previous = timestamp
        if query.experiment == "v6" and not query.over_ipv6:
            report.add(
                "TRACE004",
                "query for %s under the IPv6-only suffix arrived from %s over IPv4"
                % (qname, query.entry.client_ip),
                subject=subject,
                hint="the v6 suffix must be delegated to the IPv6 address only",
            )
        matched = footprint.match(query.experiment, query.sub)
        if not matched:
            report.add(
                "TRACE001",
                "no name in the %s footprint admits the %s query for %s"
                % (footprint.testid, query.qtype.name, qname),
                subject=subject,
            )
            continue
        permitted = frozenset().union(*(p.qtypes for p in matched))
        if query.qtype not in permitted:
            report.add(
                "TRACE002",
                "%s query for %s; the footprint permits only %s here"
                % (
                    query.qtype.name,
                    qname,
                    "/".join(sorted(t.name for t in permitted)) or "nothing",
                ),
                subject=subject,
            )
            continue
        roots = [p.root for p in matched]
        if all(
            root is not None
            and root != (query.experiment, query.sub)
            and (root[0], root[1], RdataType.TXT) not in seen
            for root in roots
        ):
            missing = sorted({".".join(root[1]) or "<base>" for root in roots if root})
            report.add(
                "TRACE005",
                "walk query for %s observed without the walk's root TXT fetch (%s)"
                % (qname, ", ".join(missing)),
                subject=subject,
                hint="a validator cannot follow a record it never fetched",
            )


def _check_prediction(
    footprint: PolicyFootprint,
    queries: List[AttributedQuery],
    subject: str,
    report: LintReport,
    predictions: Optional[Dict[str, StaticPrediction]],
    testid: str,
) -> None:
    if not predictions or testid not in predictions:
        return
    prediction = predictions[testid]
    if not prediction.complete or prediction.first_abort is not None:
        return  # the bound only holds when the static walk saw everything
    roots: Set[NameKey] = set()
    for query in queries:
        for pattern in footprint.match(query.experiment, query.sub):
            if pattern.concrete and pattern.role == "mechanism":
                roots.add((query.experiment, query.sub))
    if len(roots) > prediction.lookup_terms:
        report.add(
            "TRACE006",
            "%d distinct mechanism targets observed; the static prediction "
            "bounds the policy at %d lookup term(s)"
            % (len(roots), prediction.lookup_terms),
            subject=subject,
            hint="the deployed policy diverged from the audited catalogue",
        )
