"""Whole-zone static auditing.

``audit_zone`` sweeps every TXT rrset in a :class:`~repro.dns.zone.Zone`,
runs the SPF term-graph analysis (:mod:`repro.lint.spfgraph`) on each SPF
publisher with the zone itself as the record source, and cross-checks the
sender-authentication posture the paper measures end to end:

* a domain that publishes SPF but no ``_dmarc`` record gets DMARC001 —
  SPF alone never tells receivers what to do with failures;
* published DMARC records are parsed and checked for the configurations
  that monitor without protecting (``p=none``, ``pct<100``, weak ``sp=``)
  or that can never produce an aligned pass (strict alignment with no
  in-zone identity to align against).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.dmarc.record import DmarcPolicy, DmarcRecord, DmarcRecordError, looks_like_dmarc
from repro.dns.name import Name
from repro.dns.rdata import RdataType
from repro.dns.zone import Zone
from repro.lint.diagnostics import LintReport
from repro.lint.dkimlint import audit_zone_dkim
from repro.lint.source import ZoneRecordSource
from repro.lint.spfgraph import SpfAudit, SpfLimits, audit_spf_domain
from repro.spf.terms import looks_like_spf

#: Ordering for "is sp= weaker than p=" (DMARC006).
_POLICY_STRENGTH = {
    DmarcPolicy.NONE: 0,
    DmarcPolicy.QUARANTINE: 1,
    DmarcPolicy.REJECT: 2,
}


@dataclass
class ZoneAudit:
    """Everything the static auditor found in one zone."""

    origin: str
    report: LintReport = field(default_factory=LintReport)
    #: Per-publisher SPF audits, keyed by domain (no trailing dot).
    spf_audits: Dict[str, SpfAudit] = field(default_factory=dict)
    #: Domain name-keys (lowercased label tuples) with a usable DKIM key.
    dkim_domains: Set[tuple] = field(default_factory=set)

    @property
    def clean(self) -> bool:
        return not self.report.errors


def audit_zone(zone: Zone, limits: Optional[SpfLimits] = None) -> ZoneAudit:
    """Statically audit every SPF/DMARC publisher in ``zone``."""
    source = ZoneRecordSource(zone)
    audit = ZoneAudit(origin=zone.origin.to_text(omit_final_dot=True))
    dkim_report, audit.dkim_domains = audit_zone_dkim(zone)
    audit.report.extend(dkim_report)

    spf_publishers: List[Name] = []
    dmarc_owners: List[Name] = []
    for owner, rdtype, records in zone.rrsets():
        if rdtype != RdataType.TXT:
            continue
        if "_domainkey" in (label.lower() for label in owner.labels):
            continue  # audited by audit_zone_dkim above
        texts = [rr.rdata.text for rr in records]
        if owner.labels and owner.labels[0].lower() == "_dmarc":
            if any(looks_like_dmarc(t) for t in texts):
                dmarc_owners.append(owner)
            continue
        if any(looks_like_spf(t) for t in texts):
            spf_publishers.append(owner)

    for owner in spf_publishers:
        domain = owner.to_text(omit_final_dot=True)
        spf_audit = audit_spf_domain(domain, source, limits)
        if spf_audit is None:  # pragma: no cover - publisher list guarantees a record
            continue
        audit.spf_audits[domain] = spf_audit
        audit.report.extend(spf_audit.report)

    checked: set = set()
    for owner in spf_publishers:
        dmarc_name = owner.child("_dmarc")
        checked.add(dmarc_name.key)
        _check_dmarc(audit.dkim_domains, source, dmarc_name, owner, audit.report, spf_published=True)
    # DMARC records whose parent publishes no SPF still deserve a parse check.
    for owner in dmarc_owners:
        if owner.key in checked:
            continue
        _check_dmarc(
            audit.dkim_domains, source, owner, owner.parent(), audit.report, spf_published=False
        )

    return audit


def _check_dmarc(
    dkim_domains: Set[tuple],
    source: ZoneRecordSource,
    dmarc_name: Name,
    domain: Name,
    report: LintReport,
    spf_published: bool,
) -> None:
    subject = domain.to_text(omit_final_dot=True)
    answer = source.lookup(dmarc_name, RdataType.TXT)
    dmarc_texts = [t for t in answer.texts() if looks_like_dmarc(t)]
    if not dmarc_texts:
        if spf_published:
            report.add(
                "DMARC001",
                "%s publishes SPF but no record at %s" % (subject, dmarc_name),
                subject=subject,
                hint="publish at least 'v=DMARC1; p=none' to see failure reports",
            )
        return
    if len(dmarc_texts) > 1:
        report.add(
            "DMARC004",
            "%d DMARC records at %s" % (len(dmarc_texts), dmarc_name),
            subject=subject,
            hint="keep exactly one",
        )
        return
    try:
        record = DmarcRecord.from_text(dmarc_texts[0])
    except DmarcRecordError as exc:
        report.add("DMARC003", str(exc), subject=subject)
        return
    _check_dmarc_record(dkim_domains, record, domain, subject, report, spf_published)


def _check_dmarc_record(
    dkim_domains: Set[tuple],
    record: DmarcRecord,
    domain: Name,
    subject: str,
    report: LintReport,
    spf_published: bool,
) -> None:
    if record.policy is DmarcPolicy.NONE:
        report.add(
            "DMARC002",
            "p=none requests no action against spoofed mail",
            subject=subject,
            hint="move to p=quarantine once reports look clean",
        )
    if record.percent < 100:
        report.add(
            "DMARC005",
            "pct=%d applies the policy to a sample only" % record.percent,
            subject=subject,
        )
    if (
        record.subdomain_policy is not None
        and _POLICY_STRENGTH[record.subdomain_policy] < _POLICY_STRENGTH[record.policy]
    ):
        report.add(
            "DMARC006",
            "sp=%s undercuts p=%s for subdomains — the paper's spoofing "
            "target of choice" % (record.subdomain_policy.value, record.policy.value),
            subject=subject,
        )
    for tag, value in sorted(record.unknown_tags.items()):
        report.add(
            "DMARC008",
            "unknown tag %s=%s is ignored by validators" % (tag, value),
            subject=subject,
        )
    # Alignment feasibility from zone data alone: an aligned SPF pass needs
    # an SPF record at the domain; an aligned DKIM pass needs a *usable*
    # key under _domainkey.<domain> — parsed by repro.lint.dkimlint, so a
    # name that exists but holds only revoked or undecodable keys no
    # longer counts.  Neither being possible means every message fails
    # DMARC no matter how it is sent.
    dkim_possible = domain.key in dkim_domains
    if not spf_published and not dkim_possible:
        report.add(
            "DMARC007",
            "no SPF record and no usable _domainkey.%s keys: no identity can ever align"
            % subject,
            subject=subject,
            hint="publish SPF or a valid DKIM key for the domain",
        )
