"""Mail transfer agents for the simulated world.

:class:`~repro.mta.behavior.MtaBehavior` captures every axis of receiving-
MTA behaviour the paper measures; :class:`~repro.mta.receiver.ReceivingMta`
executes a behaviour faithfully on top of the real SPF/DKIM/DMARC engines;
:class:`~repro.mta.sender.SendingMta` plays the Exim role of the
NotifyEmail experiment; and :mod:`repro.mta.fleet` samples whole
populations of receivers from the distributions the paper reports.
"""

from repro.mta.authres import AuthenticationResults, MethodResult
from repro.mta.behavior import MtaBehavior, SpfTrigger
from repro.mta.fleet import BehaviorDistribution, sample_behavior
from repro.mta.receiver import ReceivingMta, ValidationRecord
from repro.mta.sender import DeliveryRecord, SendingMta

__all__ = [
    "AuthenticationResults",
    "BehaviorDistribution",
    "MethodResult",
    "DeliveryRecord",
    "MtaBehavior",
    "ReceivingMta",
    "SendingMta",
    "SpfTrigger",
    "ValidationRecord",
    "sample_behavior",
]
