"""Authentication-Results headers (RFC 8601).

Receiving MTAs record their SPF/DKIM/DMARC verdicts in an
``Authentication-Results`` header before handing a message to delivery;
downstream filters (and measurement researchers grepping mail corpora)
read them back.  This module serialises and parses the header format and
is wired into :class:`~repro.mta.receiver.ReceivingMta`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

HEADER_NAME = "Authentication-Results"

_RESULT_RE = re.compile(r"^([a-zA-Z0-9-]+)\s*=\s*([a-zA-Z0-9]+)\s*(.*)$")
_PROP_RE = re.compile(r"([a-zA-Z0-9-]+)\.([a-zA-Z0-9_-]+)\s*=\s*([^\s;]+)")


@dataclass
class MethodResult:
    """One ``method=result`` clause with its property/value pairs."""

    method: str  # "spf" | "dkim" | "dmarc" | ...
    result: str  # "pass" | "fail" | "none" | ...
    properties: List[Tuple[str, str, str]] = field(default_factory=list)
    reason: Optional[str] = None

    def add_property(self, ptype: str, name: str, value: str) -> "MethodResult":
        self.properties.append((ptype, name, value))
        return self

    def to_text(self) -> str:
        parts = ["%s=%s" % (self.method, self.result)]
        if self.reason:
            parts.append('reason="%s"' % self.reason.replace('"', "'"))
        for ptype, name, value in self.properties:
            parts.append("%s.%s=%s" % (ptype, name, value))
        return " ".join(parts)


@dataclass
class AuthenticationResults:
    """A full header value: authserv-id plus method results."""

    authserv_id: str
    results: List[MethodResult] = field(default_factory=list)

    def add(self, method: str, result: str, **properties: str) -> MethodResult:
        """Append one method result; keyword args become properties using
        the conventional ptype for the method (``smtp`` for spf,
        ``header`` for dkim/dmarc)."""
        entry = MethodResult(method, result)
        default_ptype = {"spf": "smtp", "dkim": "header", "dmarc": "header"}.get(method, "policy")
        for name, value in properties.items():
            entry.add_property(default_ptype, name, value)
        self.results.append(entry)
        return entry

    def result_for(self, method: str) -> Optional[MethodResult]:
        for entry in self.results:
            if entry.method == method:
                return entry
        return None

    def to_header_value(self) -> str:
        if not self.results:
            return "%s; none" % self.authserv_id
        clauses = "; ".join(entry.to_text() for entry in self.results)
        return "%s; %s" % (self.authserv_id, clauses)

    @classmethod
    def from_header_value(cls, text: str) -> "AuthenticationResults":
        segments = [segment.strip() for segment in text.split(";")]
        if not segments or not segments[0]:
            raise ValueError("empty Authentication-Results value")
        # The authserv-id may carry an optional version number.
        authserv_id = segments[0].split()[0]
        parsed = cls(authserv_id)
        for segment in segments[1:]:
            if not segment or segment == "none":
                continue
            match = _RESULT_RE.match(segment)
            if match is None:
                raise ValueError("malformed resinfo clause: %r" % segment)
            method, result, rest = match.groups()
            entry = MethodResult(method.lower(), result.lower())
            reason_match = re.search(r'reason="([^"]*)"', rest)
            if reason_match:
                entry.reason = reason_match.group(1)
            for ptype, name, value in _PROP_RE.findall(rest):
                entry.add_property(ptype, name, value)
            parsed.results.append(entry)
        return parsed
