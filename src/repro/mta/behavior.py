"""Receiving-MTA behaviour profiles.

One :class:`MtaBehavior` captures everything the paper can observe about a
receiving MTA, from whether it validates at all, through when it validates
(during SMTP or after delivery), to every RFC deviation of Section 7.  The
profile translates mechanically into the configuration of the SPF
evaluator and the resolver, so the *same* protocol engines produce both
compliant and wild behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.dns.resolver import ResolverConfig
from repro.spf.evaluator import SpfConfig


class SpfTrigger(enum.Enum):
    """When during the SMTP dialogue SPF validation is initiated.

    The paper's Figure 2 shows 83% of domains validating before message
    delivery completes and 17% only afterwards; probes that never transmit
    a message (NotifyMX / TwoWeekMX) are invisible to the late group.
    """

    ON_MAIL = "mail"  # synchronously while answering MAIL
    ON_RCPT = "rcpt"  # synchronously while answering RCPT
    ON_DATA = "data"  # synchronously while answering DATA
    POST_DELIVERY = "post_delivery"  # queued after the message is accepted


@dataclass
class MtaBehavior:
    """Everything configurable about one receiving MTA.

    The defaults describe a well-behaved, fully-validating, RFC-strict
    server; the fleet generator perturbs them according to the measured
    distributions.
    """

    # -- which mechanisms are validated at all (paper Table 4) ----------
    validates_spf: bool = True
    validates_dkim: bool = True
    validates_dmarc: bool = True
    #: Fetches the SPF policy TXT but never resolves its mechanisms — the
    #: 3.0% "partial validators" of Section 6.1.
    spf_fetch_only: bool = False

    # -- when SPF runs (Section 6.2 / Figure 2) -----------------------
    spf_trigger: SpfTrigger = SpfTrigger.ON_MAIL
    #: Seconds after delivery at which a POST_DELIVERY validator runs.
    post_delivery_delay: float = 5.0

    # -- SPF evaluation deviations (Section 7) ---------------------------
    spf_parallel_lookups: bool = False  # 3% of MTAs prefetch in parallel
    spf_max_dns_mechanisms: Optional[int] = 10  # None: no limit (28% ran all 46)
    spf_max_void_lookups: Optional[int] = 2  # None: no limit (64% did all 5)
    spf_max_mx_addresses: Optional[int] = 10  # None: no limit (64% did all 20)
    spf_tolerant_syntax: bool = False  # 5.5% keep going past errors
    spf_ignore_child_permerror: bool = False  # 12.3% ignore child errors
    spf_on_multiple_records: str = "permerror"  # 23% follow one record
    spf_mx_a_fallback: bool = False  # 14% do the illegal A fallback
    spf_timeout: Optional[float] = None  # validation wall-clock budget
    #: Checks the HELO identity's policy before MAIL (5.0% of MTAs); every
    #: one observed then ignored the HELO verdict, so there is no knob for
    #: honouring it.
    checks_helo: bool = False

    # -- resolver properties (Section 7.3) ------------------------------
    resolver_tcp_fallback: bool = True  # 2 of 1,336 lacked it
    resolver_ipv6_capable: bool = True  # 49% reached IPv6-only servers
    resolver_prefer_ipv6: bool = False
    #: EDNS0 support: modern resolvers advertise ~1232-octet payloads;
    #: legacy ones live with the 512-octet ceiling and truncation retries.
    resolver_edns: bool = True

    # -- SMTP-level policy ----------------------------------------------
    #: Local users that exist besides ``postmaster``.
    valid_users: FrozenSet[str] = field(default_factory=frozenset)
    accepts_any_recipient: bool = False
    accepts_postmaster: bool = True
    #: Skips sender validation when the only recipient is postmaster —
    #: the whitelisting the paper blames for part of the low TwoWeekMX
    #: rate (Section 6.3).
    whitelists_postmaster: bool = False
    #: Rejects the probe source early with a DNSBL-style error; the text
    #: is what the paper greps for ("spam" 27%, "blacklist" 3%).
    blacklist_rejection: Optional[str] = None  # None / "spam" / "blacklist"
    #: Greylisting: temporarily reject the first contact from a new
    #: (client, sender, recipient) triple with a 451; accept the retry.
    #: This is what produced the multi-day timestamp outliers the paper's
    #: Figure 2 analysis filters out (an early attempt triggers SPF, the
    #: eventual delivery happens much later).
    greylists: bool = False
    greylist_window: float = 300.0  # retry must come at least this much later
    #: Enforce DMARC reject/quarantine dispositions on delivery.
    enforces_dmarc: bool = True
    #: Server-side processing delay before the 354 reply to DATA (content
    #: scanning setup, greylisting checks, ...).
    data_processing_delay: float = 0.0
    #: Server-side processing delay before the final 250 acceptance —
    #: queueing and content scanning; this is what separates a MAIL-time
    #: SPF lookup from the delivery timestamp in the Figure 2 analysis.
    acceptance_delay: float = 0.0

    def spf_config(self) -> SpfConfig:
        """The evaluator configuration this behaviour induces."""
        return SpfConfig(
            max_dns_mechanisms=self.spf_max_dns_mechanisms,
            max_void_lookups=self.spf_max_void_lookups,
            max_mx_addresses=self.spf_max_mx_addresses,
            tolerant_syntax=self.spf_tolerant_syntax,
            ignore_child_permerror=self.spf_ignore_child_permerror,
            on_multiple_records=self.spf_on_multiple_records,
            parallel_lookups=self.spf_parallel_lookups,
            mx_a_fallback=self.spf_mx_a_fallback,
            overall_timeout=self.spf_timeout,
            fetch_only=self.spf_fetch_only,
        )

    def resolver_config(self) -> ResolverConfig:
        return ResolverConfig(
            tcp_fallback=self.resolver_tcp_fallback,
            ipv6_capable=self.resolver_ipv6_capable,
            prefer_ipv6=self.resolver_prefer_ipv6,
            edns_payload=1232 if self.resolver_edns else None,
        )

    @property
    def validates_anything(self) -> bool:
        return self.validates_spf or self.validates_dkim or self.validates_dmarc
