"""Sampling receiving-MTA behaviours from the paper's measured distributions.

The paper measures a *population*; we need the inverse: a population whose
measurement reproduces the paper's numbers.  :class:`BehaviorDistribution`
holds the marginals (each annotated with the paper section it comes from),
and :func:`sample_behavior` draws one concrete
:class:`~repro.mta.behavior.MtaBehavior` with a seeded RNG.

Three presets correspond to the three experiments:

``NOTIFY_EMAIL_PROFILE``
    Domains that received a real notification email; validation combos per
    Table 4, no blacklisting, a real recipient mailbox.
``NOTIFY_MX_PROFILE``
    The same population nine months later, as seen by a probe with a
    soured sender reputation: 27% reject citing spam, 3% citing a
    blacklist (Section 6.2).
``TWO_WEEK_MX_PROFILE``
    The BYU-outbound population: recipients are guessed, most MTAs fall
    back to postmaster and many of those whitelist it (Section 6.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.mta.behavior import MtaBehavior, SpfTrigger

#: Joint (SPF, DKIM, DMARC) validation weights — paper Table 4 row counts.
TABLE4_COMBO_WEIGHTS: Dict[Tuple[bool, bool, bool], float] = {
    (True, True, True): 14056,
    (True, True, False): 6322,
    (False, False, False): 4456,
    (True, False, False): 2156,
    (False, True, False): 1436,
    (False, False, True): 211,
    (True, False, True): 169,
    (False, True, True): 0,
}


@dataclass
class BehaviorDistribution:
    """Marginal distributions for sampling MTA behaviours."""

    #: Joint weights over (validates_spf, validates_dkim, validates_dmarc).
    combo_weights: Dict[Tuple[bool, bool, bool], float] = field(
        default_factory=lambda: dict(TABLE4_COMBO_WEIGHTS)
    )
    #: Fraction of SPF validators that fetch the policy but never evaluate
    #: it (paper s6.1: 690 of 22,703 = 3.0%).
    p_fetch_only: float = 0.030
    #: Fraction of SPF validators that validate only after delivery
    #: (paper Fig. 2: 17%).
    p_post_delivery: float = 0.17
    #: Trigger mix within the during-SMTP group.
    trigger_weights: Dict[SpfTrigger, float] = field(
        default_factory=lambda: {
            SpfTrigger.ON_MAIL: 0.60,
            SpfTrigger.ON_RCPT: 0.25,
            SpfTrigger.ON_DATA: 0.15,
        }
    )
    #: Post-delivery validation delay range (seconds); Fig. 2 shows 91% of
    #: |differences| under 30 s with a tail beyond.
    post_delivery_delay_range: Tuple[float, float] = (1.0, 25.0)
    p_post_delivery_long_tail: float = 0.09
    post_delivery_tail_range: Tuple[float, float] = (30.0, 300.0)

    # -- Section 7 deviations (all conditioned on validating SPF) ---------
    p_parallel_lookups: float = 0.03  # s7.1: 97% serial
    #: s7.2: 61% halt before 10 lookups, 28% run all 46, rest stop midway.
    lookup_limit_weights: Dict[str, float] = field(
        default_factory=lambda: {"enforced": 0.61, "unlimited": 0.28, "timeout": 0.11}
    )
    timeout_range: Tuple[float, float] = (8.0, 30.0)
    #: s7.3 void lookups: the 3% observed respecting the limit are mostly
    #: the fetch-only partial validators (who issue no mechanism lookups
    #: at all); almost nobody enforces the limit of two, 64% chase all
    #: five voids, the rest stop at three or four.
    void_limit_weights: Dict[Optional[int], float] = field(
        default_factory=lambda: {2: 0.005, 3: 0.17, 4: 0.185, None: 0.64}
    )
    p_helo_check: float = 0.050  # s7.3: 73 of 1,473
    p_tolerant_syntax: float = 0.055  # s7.3: 79 of 1,444
    #: Conditional on NOT being syntax-tolerant (tolerant validators sail
    #: past child errors anyway); (0.123-0.055)/0.945 keeps the observable
    #: continue-past-child-error rate at the paper's 12.3%.
    p_ignore_child_permerror: float = 0.072
    #: s7.3 multiple records: 77% permerror, 23% follow exactly one.
    multiple_records_weights: Dict[str, float] = field(
        default_factory=lambda: {"permerror": 0.77, "first": 0.135, "last": 0.095}
    )
    p_mx_a_fallback: float = 0.14  # s7.3: 189 of 1,338
    #: s7.3 mx-address limit: 7.7% stop at 10, 64% do all 20, rest midway.
    mx_limit_weights: Dict[Optional[int], float] = field(
        default_factory=lambda: {10: 0.077, 14: 0.283, None: 0.64}
    )
    p_no_tcp_fallback: float = 2.0 / 1336.0  # s7.3
    p_ipv6_resolver: float = 0.49  # s7.3
    p_edns_resolver: float = 0.85  # RFC 6891 deployment circa 2021

    # -- SMTP-level policy ------------------------------------------------
    p_blacklist_spam: float = 0.0  # s6.2 (NotifyMX): 27%
    p_blacklist_blacklist: float = 0.0  # s6.2 (NotifyMX): 3%
    p_whitelists_postmaster: float = 0.0  # s6.3 (TwoWeekMX)
    p_accepts_any_recipient: float = 1.0  # catch-all / real recipient known
    p_rejects_all_recipients: float = 0.0  # s6.3: 6.4% invalid recipient
    common_users: Sequence[str] = ("michael", "john.smith", "support")
    p_enforces_dmarc: float = 0.9
    #: Greylisting deployment — the source of the paper's removed
    #: "several days" timestamp outliers (an early rejected attempt
    #: triggers SPF; the accepted retry delivers much later).
    p_greylists: float = 0.02
    #: Processing delay before the 354 reply to DATA.
    data_delay_range: Tuple[float, float] = (0.0, 2.0)
    #: Mixture over (low, high) ranges for the final-acceptance delay —
    #: queueing/content-scan time separating a MAIL-time SPF lookup from
    #: the delivery timestamp (shapes Figure 2's left tail).
    acceptance_delay_mixture: Sequence[Tuple[Tuple[float, float], float]] = (
        ((0.2, 5.0), 0.55),
        ((5.0, 20.0), 0.30),
        ((20.0, 60.0), 0.13),
        ((60.0, 240.0), 0.02),
    )


def sample_behavior(
    rng: random.Random,
    dist: Optional[BehaviorDistribution] = None,
    combo: Optional[Tuple[bool, bool, bool]] = None,
) -> MtaBehavior:
    """Draw one MTA behaviour from ``dist`` using ``rng``.

    ``combo`` forces the (SPF, DKIM, DMARC) validation triple — used when
    the caller conditions validation quality on something external, like
    Alexa membership — while every other knob is still sampled.
    """
    if dist is None:
        dist = BehaviorDistribution()
    if combo is None:
        combo = _weighted(rng, list(dist.combo_weights.items()))
    spf, dkim, dmarc = combo
    behavior = MtaBehavior(validates_spf=spf, validates_dkim=dkim, validates_dmarc=dmarc)

    if spf:
        behavior.spf_fetch_only = rng.random() < dist.p_fetch_only
        if rng.random() < dist.p_post_delivery:
            behavior.spf_trigger = SpfTrigger.POST_DELIVERY
            if rng.random() < dist.p_post_delivery_long_tail:
                behavior.post_delivery_delay = rng.uniform(*dist.post_delivery_tail_range)
            else:
                behavior.post_delivery_delay = rng.uniform(*dist.post_delivery_delay_range)
        else:
            behavior.spf_trigger = _weighted(rng, list(dist.trigger_weights.items()))
        behavior.spf_parallel_lookups = rng.random() < dist.p_parallel_lookups
        limit_mode = _weighted(rng, list(dist.lookup_limit_weights.items()))
        if limit_mode == "enforced":
            behavior.spf_max_dns_mechanisms = 10
        elif limit_mode == "unlimited":
            behavior.spf_max_dns_mechanisms = None
        else:
            behavior.spf_max_dns_mechanisms = None
            behavior.spf_timeout = rng.uniform(*dist.timeout_range)
        behavior.spf_max_void_lookups = _weighted(rng, list(dist.void_limit_weights.items()))
        behavior.spf_max_mx_addresses = _weighted(rng, list(dist.mx_limit_weights.items()))
        behavior.checks_helo = rng.random() < dist.p_helo_check
        behavior.spf_tolerant_syntax = rng.random() < dist.p_tolerant_syntax
        behavior.spf_ignore_child_permerror = (
            not behavior.spf_tolerant_syntax
            and rng.random() < dist.p_ignore_child_permerror
        )
        behavior.spf_on_multiple_records = _weighted(rng, list(dist.multiple_records_weights.items()))
        behavior.spf_mx_a_fallback = rng.random() < dist.p_mx_a_fallback

    behavior.resolver_tcp_fallback = rng.random() >= dist.p_no_tcp_fallback
    behavior.resolver_ipv6_capable = rng.random() < dist.p_ipv6_resolver
    behavior.resolver_edns = rng.random() < dist.p_edns_resolver

    roll = rng.random()
    if roll < dist.p_blacklist_spam:
        behavior.blacklist_rejection = "spam"
    elif roll < dist.p_blacklist_spam + dist.p_blacklist_blacklist:
        behavior.blacklist_rejection = "blacklist"

    behavior.whitelists_postmaster = rng.random() < dist.p_whitelists_postmaster
    recipient_roll = rng.random()
    if recipient_roll < dist.p_rejects_all_recipients:
        behavior.accepts_any_recipient = False
        behavior.accepts_postmaster = False
        behavior.valid_users = frozenset()
    elif recipient_roll < dist.p_rejects_all_recipients + dist.p_accepts_any_recipient:
        behavior.accepts_any_recipient = True
    else:
        behavior.accepts_any_recipient = False
        behavior.accepts_postmaster = True
        # A random subset of common usernames actually exists.
        behavior.valid_users = frozenset(
            user for user in dist.common_users if rng.random() < 0.05
        )
    behavior.enforces_dmarc = rng.random() < dist.p_enforces_dmarc
    behavior.greylists = rng.random() < dist.p_greylists
    behavior.data_processing_delay = rng.uniform(*dist.data_delay_range)
    low_high = _weighted(rng, [(range_, weight) for range_, weight in dist.acceptance_delay_mixture])
    behavior.acceptance_delay = rng.uniform(*low_high)
    return behavior


def _weighted(rng: random.Random, items):
    """Pick a key from ``[(key, weight), ...]``."""
    total = sum(weight for _, weight in items)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.random() * total
    accumulated = 0.0
    for key, weight in items:
        accumulated += weight
        if point < accumulated:
            return key
    return items[-1][0]


#: Preset: the NotifyEmail population (Section 6.1).
NOTIFY_EMAIL_PROFILE = BehaviorDistribution()

#: Preset: the same MTAs during NotifyMX, with the probe's reputation
#: fallout added (Section 6.2).
NOTIFY_MX_PROFILE = BehaviorDistribution(
    p_blacklist_spam=0.27,
    p_blacklist_blacklist=0.03,
    p_accepts_any_recipient=0.60,
    p_rejects_all_recipients=0.064,
)

#: Preset: the TwoWeekMX population (Section 6.3).  Underlying validation
#: follows Table 4, but the probe sees only a sliver of it: recipients are
#: guessed (postmaster ends up used for ~69% of MTAs, and most such MTAs
#: whitelist it past sender validation), some MTAs reject every guessed
#: recipient (6.4%), and a large share of this provider-heavy population
#: validates only after content acceptance — invisible to a probe that
#: never transmits a message.  Calibrated to the observed ~13-14%
#: SPF-validation rate while keeping Table 4 as the underlying truth.
TWO_WEEK_MX_PROFILE = BehaviorDistribution(
    p_post_delivery=0.40,
    p_whitelists_postmaster=0.92,
    p_accepts_any_recipient=0.246,
    p_rejects_all_recipients=0.085,
)
