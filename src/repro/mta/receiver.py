"""The receiving MTA.

A :class:`ReceivingMta` owns a resolver and the three validation engines,
listens on its addresses over the virtual network, and executes its
:class:`~repro.mta.behavior.MtaBehavior` during SMTP sessions.  Validation
work shows up to the peer as server-side processing delay, and every DNS
query the engines perform lands — properly timestamped — in the query log
of whichever authoritative server owns the sender domain.  That is the
whole trick of the paper: the world under test produces its own evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dkim.verify import DkimResult, DkimVerifier
from repro.dmarc.evaluate import DmarcDisposition, DmarcEvaluator
from repro.dmarc.psl import PublicSuffixList
from repro.dns.resolver import AuthorityDirectory, Resolver
from repro.mta.behavior import MtaBehavior, SpfTrigger
from repro.net.network import Network
from repro.obs import Observability, ensure_obs
from repro.smtp.message import EmailMessage
from repro.smtp.protocol import Mailbox, Reply
from repro.smtp.server import SmtpServer, SmtpSession
from repro.spf.evaluator import SpfEvaluator
from repro.spf.result import SpfResult


@dataclass
class ValidationRecord:
    """One validation action an MTA performed (for white-box assertions;
    the measurement harness itself only sees the DNS side)."""

    kind: str  # "spf" | "helo-spf" | "dkim" | "dmarc"
    domain: str
    result: str
    t_started: float
    t_completed: float
    detail: object = None
    client_ip: Optional[str] = None


@dataclass
class Delivery:
    """A message this MTA accepted."""

    message: EmailMessage
    mail_from: Optional[Mailbox]
    rcpt_to: List[Mailbox]
    client_ip: str
    helo: Optional[str]
    t_accepted: float
    quarantined: bool = False


class ReceivingMta:
    """One receiving mail server (possibly dual-stack)."""

    def __init__(
        self,
        hostname: str,
        network: Network,
        directory: AuthorityDirectory,
        behavior: Optional[MtaBehavior] = None,
        ipv4: Optional[str] = None,
        ipv6: Optional[str] = None,
        psl: Optional[PublicSuffixList] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if ipv4 is None and ipv6 is None:
            raise ValueError("an MTA needs at least one address")
        self.hostname = hostname
        self.network = network
        self.behavior = behavior if behavior is not None else MtaBehavior()
        self.ipv4 = ipv4
        self.ipv6 = ipv6
        self.obs = ensure_obs(obs)
        # The MTA's resolver has its own transport capabilities: plenty of
        # IPv4-only mail servers sit behind dual-stack resolvers (which is
        # how 49% of MTAs could fetch the IPv6-only policy in s7.3).
        resolver_v6: Optional[str] = None
        if self.behavior.resolver_ipv6_capable:
            resolver_v6 = ipv6 if ipv6 is not None else _derived_ipv6(hostname)
        self.resolver = Resolver(
            network,
            directory,
            address4=ipv4,
            address6=resolver_v6,
            config=self.behavior.resolver_config(),
            obs=self.obs,
        )
        self.spf = SpfEvaluator(
            self.resolver, config=self.behavior.spf_config(), receiving_host=hostname, obs=self.obs
        )
        self.dkim = DkimVerifier(self.resolver)
        self.dmarc = DmarcEvaluator(self.resolver, psl=psl)
        self.validations: List[ValidationRecord] = []
        self.deliveries: List[Delivery] = []
        #: Greylist memory: (client_ip, sender, rcpt) -> first-seen time.
        self.greylist: Dict[Tuple[str, str, str], float] = {}
        self.attached = False

    # -- deployment ------------------------------------------------------

    def attach(self) -> None:
        """Start listening on port 25 on every configured address."""
        addresses = [address for address in (self.ipv4, self.ipv6) if address is not None]
        SmtpServer(self._make_session).attach(self.network, *addresses)
        self.attached = True

    def addresses(self) -> List[str]:
        return [address for address in (self.ipv4, self.ipv6) if address is not None]

    def _make_session(self, client_ip: str, t_accept: float) -> "_MtaSession":
        return _MtaSession(self, client_ip, t_accept)

    # -- validation engines (called from sessions) --------------------------

    def _note_validation(self, record: ValidationRecord) -> None:
        self.validations.append(record)
        self.obs.metrics.counter(
            "mta_validations_total",
            (("kind", record.kind), ("result", record.result)),
            t=record.t_completed,
        )

    def run_spf(
        self, client_ip: str, sender: Optional[Mailbox], helo: Optional[str], t: float
    ) -> Tuple[SpfResult, float]:
        """Run configured SPF validation; returns (result, elapsed)."""
        t_begin = t
        helo_name = helo or "unknown.invalid"
        if self.behavior.checks_helo and helo:
            outcome = self.spf.check_host(
                client_ip, helo, "postmaster@%s" % helo, helo=helo, t_start=t
            )
            self._note_validation(
                ValidationRecord(
                    "helo-spf", helo, outcome.result.value, t, outcome.t_completed, outcome, client_ip
                )
            )
            # Every wild MTA that checked HELO ignored its verdict
            # (Section 7.3), so evaluation always proceeds to MAIL FROM.
            t = outcome.t_completed
        if sender is None:
            domain = helo_name
            sender_address = "postmaster@%s" % helo_name
        else:
            domain = sender.domain
            sender_address = sender.address
        outcome = self.spf.check_host(client_ip, domain, sender_address, helo=helo_name, t_start=t)
        self._note_validation(
            ValidationRecord(
                "spf", domain, outcome.result.value, t, outcome.t_completed, outcome, client_ip
            )
        )
        return outcome.result, outcome.t_completed - t_begin

    def run_dkim(self, message: EmailMessage, t: float, client_ip: Optional[str] = None):
        outcome, t_done = self.dkim.verify(message, t)
        self._note_validation(
            ValidationRecord(
                "dkim", outcome.domain or "-", outcome.result.value, t, t_done, outcome, client_ip
            )
        )
        return outcome, t_done

    def run_dmarc(
        self, from_domain, spf_result, spf_domain, dkim_result, dkim_domain, t: float,
        client_ip: Optional[str] = None,
    ):
        outcome, t_done = self.dmarc.evaluate(
            from_domain, spf_result, spf_domain, dkim_result, dkim_domain, t
        )
        self._note_validation(
            ValidationRecord(
                "dmarc", from_domain, outcome.result.value, t, t_done, outcome, client_ip
            )
        )
        return outcome, t_done


class _MtaSession(SmtpSession):
    """One SMTP connection handled according to the MTA's behaviour."""

    def __init__(self, mta: ReceivingMta, client_ip: str, t_accept: float) -> None:
        super().__init__(client_ip, t_accept)
        self.mta = mta
        self.obs = mta.obs
        self.faults = mta.network.faults
        self.banner_host = mta.hostname
        self._spf_done = False
        self._spf_result: Optional[SpfResult] = None

    # -- helpers -----------------------------------------------------

    @property
    def behavior(self) -> MtaBehavior:
        return self.mta.behavior

    def _only_postmaster(self) -> bool:
        return bool(self.rcpt_to) and all(m.local.lower() == "postmaster" for m in self.rcpt_to)

    def _effective_trigger(self) -> SpfTrigger:
        """Postmaster-whitelisting MTAs cannot decide at MAIL time (the
        recipient is not known yet), so their validation point is deferred
        to RCPT at the earliest."""
        trigger = self.behavior.spf_trigger
        if self.behavior.whitelists_postmaster and trigger is SpfTrigger.ON_MAIL:
            return SpfTrigger.ON_RCPT
        return trigger

    def _maybe_run_spf(self, point: SpfTrigger, sender: Optional[Mailbox], t: float) -> float:
        """Run SPF if this behaviour validates at ``point``; returns the
        processing delay the peer will observe."""
        if not self.behavior.validates_spf or self._spf_done:
            return 0.0
        if self._effective_trigger() is not point:
            return 0.0
        if self.behavior.whitelists_postmaster and self._only_postmaster():
            self._spf_done = True  # decision made: sender validation bypassed
            return 0.0
        self._spf_done = True
        result, elapsed = self.mta.run_spf(self.client_ip, sender, self.helo_name, t)
        self._spf_result = result
        return elapsed

    # -- SMTP hooks --------------------------------------------------------

    def on_mail(self, mailbox: Optional[Mailbox], t: float):
        if self.behavior.blacklist_rejection:
            word = self.behavior.blacklist_rejection
            if word == "blacklist":
                text = "5.7.1 Service unavailable; client host %s is on our blacklist" % self.client_ip
            else:
                text = "5.7.1 Message rejected as spam by content scanning"
            return Reply(554, text), 0.0
        delay = self._maybe_run_spf(SpfTrigger.ON_MAIL, mailbox, t)
        return Reply(250, "OK"), delay

    def on_rcpt(self, mailbox: Mailbox, t: float):
        behavior = self.behavior
        local = mailbox.local.lower()
        known = (
            behavior.accepts_any_recipient
            or local in behavior.valid_users
            or (local == "postmaster" and behavior.accepts_postmaster)
        )
        if not known:
            return Reply(550, "5.1.1 User unknown: %s" % mailbox.address), 0.0
        self.rcpt_to.append(mailbox)  # so the whitelist check sees it
        delay = self._maybe_run_spf(SpfTrigger.ON_RCPT, self.mail_from, t)
        self.rcpt_to.pop()
        if behavior.greylists:
            key = (
                self.client_ip,
                self.mail_from.address if self.mail_from else "<>",
                mailbox.address,
            )
            first_seen = self.mta.greylist.get(key)
            if first_seen is None:
                self.mta.greylist[key] = t
                return Reply(451, "4.7.1 Greylisted, please retry later"), delay
            if t - first_seen < behavior.greylist_window:
                return Reply(451, "4.7.1 Greylisted, retry window not yet open"), delay
        return Reply(250, "OK"), delay

    def on_data_command(self, t: float):
        delay = self.behavior.data_processing_delay
        delay += self._maybe_run_spf(SpfTrigger.ON_DATA, self.mail_from, t + delay)
        return Reply(354, "End data with <CRLF>.<CRLF>"), delay

    def on_message(self, message: EmailMessage, t: float):
        behavior = self.behavior
        t_arrival = t
        t += behavior.acceptance_delay  # queueing / content scanning
        quarantine = False
        spf_result = self._spf_result
        spf_domain = self.mail_from.domain if self.mail_from else None

        dkim_result, dkim_domain = DkimResult.NONE, None
        if behavior.validates_dkim:
            dkim_outcome, t = self.mta.run_dkim(message, t, client_ip=self.client_ip)
            dkim_result, dkim_domain = dkim_outcome.result, dkim_outcome.domain

        if behavior.validates_dmarc:
            from_domain = _from_domain(message)
            if from_domain:
                dmarc_outcome, t = self.mta.run_dmarc(
                    from_domain,
                    spf_result.value if spf_result else "none",
                    spf_domain,
                    dkim_result.value,
                    dkim_domain,
                    t,
                    client_ip=self.client_ip,
                )
                if behavior.enforces_dmarc:
                    if dmarc_outcome.disposition is DmarcDisposition.REJECT:
                        return Reply(550, "5.7.1 rejected per DMARC policy"), t - t_arrival
                    quarantine = dmarc_outcome.disposition is DmarcDisposition.QUARANTINE

        self._stamp_authentication_results(message, spf_result, dkim_result, dkim_domain)
        delivery = Delivery(
            message=message,
            mail_from=self.mail_from,
            rcpt_to=list(self.rcpt_to),
            client_ip=self.client_ip,
            helo=self.helo_name,
            t_accepted=t,
            quarantined=quarantine,
        )
        self.mta.deliveries.append(delivery)

        # Post-delivery SPF validators run after the fact: with virtual
        # time, "scheduling" is simply issuing the check with a future
        # start timestamp.
        if (
            behavior.validates_spf
            and behavior.spf_trigger is SpfTrigger.POST_DELIVERY
            and not self._spf_done
            and not (behavior.whitelists_postmaster and self._only_postmaster())
        ):
            self._spf_done = True
            self.mta.run_spf(
                self.client_ip, self.mail_from, self.helo_name, t + behavior.post_delivery_delay
            )
        return Reply(250, "OK: message accepted"), t - t_arrival

    def _stamp_authentication_results(self, message, spf_result, dkim_result, dkim_domain) -> None:
        """Prepend the RFC 8601 header recording this MTA's verdicts."""
        from repro.mta.authres import HEADER_NAME, AuthenticationResults

        behavior = self.behavior
        if not behavior.validates_anything:
            return
        results = AuthenticationResults(self.mta.hostname)
        if behavior.validates_spf:
            results.add(
                "spf",
                spf_result.value if spf_result else "none",
                mailfrom=self.mail_from.address if self.mail_from else "<>",
            )
        if behavior.validates_dkim:
            entry = results.add("dkim", dkim_result.value)
            if dkim_domain:
                entry.add_property("header", "d", dkim_domain)
        if behavior.validates_dmarc:
            dmarc_records = [v for v in self.mta.validations if v.kind == "dmarc"]
            if dmarc_records:
                results.add("dmarc", dmarc_records[-1].result, **{"from": dmarc_records[-1].domain})
        message.prepend_header(HEADER_NAME, results.to_header_value())


def _derived_ipv6(hostname: str) -> str:
    """A stable, collision-resistant IPv6 source address for a resolver
    co-located with an IPv4-only MTA."""
    import hashlib

    digest = hashlib.md5(hostname.encode("utf-8")).hexdigest()
    return "2001:db8:5e:%s:%s:%s:%s:%s" % (
        digest[0:4], digest[4:8], digest[8:12], digest[12:16], digest[16:20]
    )


def _from_domain(message: EmailMessage) -> Optional[str]:
    """The RFC5322.From domain, extracted leniently."""
    raw = message.get_header("From")
    if raw is None:
        return None
    address = raw
    if "<" in raw and ">" in raw:
        address = raw[raw.index("<") + 1 : raw.index(">")]
    if "@" not in address:
        return None
    return address.rpartition("@")[2].strip().rstrip(".").lower() or None
