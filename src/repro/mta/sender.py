"""The sending MTA (the Exim role in the NotifyEmail experiment).

Implements standards-following outbound delivery: MX resolution with
preference ordering and the implicit-MX fallback, address resolution for
each exchange, dual-stack connection attempts, and the full SMTP dialogue
— optionally DKIM-signing each message on the way out.  Delivery
timestamps are recorded because the paper's Figure 2 compares them with
SPF-lookup timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dkim.sign import DkimSigner
from repro.dns.rdata import RdataType
from repro.dns.resolver import AuthorityDirectory, Resolver
from repro.net.network import Network, is_ipv6
from repro.obs import Observability, ensure_obs
from repro.smtp.client import SmtpClient
from repro.smtp.errors import SmtpClientError
from repro.smtp.message import EmailMessage
from repro.smtp.protocol import Reply


@dataclass
class DeliveryRecord:
    """The outcome of one delivery attempt chain for one message."""

    recipient: str
    success: bool
    mta_ip: Optional[str] = None
    mx_host: Optional[str] = None
    reply: Optional[Reply] = None
    error: Optional[str] = None
    t_started: float = 0.0
    t_delivered: Optional[float] = None
    attempts: List[str] = field(default_factory=list)

    @property
    def accepted_with_250(self) -> bool:
        return self.success and self.reply is not None and self.reply.code == 250


class SendingMta:
    """An outbound mail server bound to fixed source addresses."""

    def __init__(
        self,
        hostname: str,
        network: Network,
        directory: AuthorityDirectory,
        ipv4: str,
        ipv6: Optional[str] = None,
        signer: Optional[DkimSigner] = None,
        prefer_ipv6: bool = False,
        obs: Optional[Observability] = None,
    ) -> None:
        self.hostname = hostname
        self.network = network
        self.ipv4 = ipv4
        self.ipv6 = ipv6
        self.signer = signer
        self.prefer_ipv6 = prefer_ipv6
        self.obs = ensure_obs(obs)
        self.resolver = Resolver(network, directory, address4=ipv4, address6=ipv6, obs=self.obs)
        self.log: List[DeliveryRecord] = []
        network.add_address(ipv4)
        if ipv6:
            network.add_address(ipv6)

    # -- target discovery ------------------------------------------------

    def resolve_targets(self, domain: str, t: float) -> Tuple[List[Tuple[str, str]], float]:
        """(mx_host, address) pairs in delivery-preference order.

        MX records sorted by preference; a domain with no MX at all gets
        the RFC 5321 implicit-MX treatment (its own A/AAAA).
        """
        answer, t = self.resolver.query_at(domain, RdataType.MX, t)
        exchanges = [rr.rdata for rr in answer.records if rr.rdtype == RdataType.MX]
        exchanges.sort(key=lambda mx: mx.preference)
        hosts = [mx.exchange.to_text(omit_final_dot=True) for mx in exchanges]
        if not hosts:
            hosts = [domain]
        targets: List[Tuple[str, str]] = []
        for host in hosts:
            addresses, t = self.resolver.resolve_addresses(host, t, want_ipv6=self.ipv6 is not None)
            ordered = sorted(addresses, key=lambda a: is_ipv6(a) != self.prefer_ipv6)
            targets.extend((host, address) for address in ordered)
        return targets, t

    # -- delivery -----------------------------------------------------------

    def send(
        self,
        message: EmailMessage,
        sender: str,
        recipient: str,
        t: float,
        sign: bool = True,
        max_retries: int = 2,
        retry_interval: float = 900.0,
    ) -> Tuple[DeliveryRecord, float]:
        """Deliver ``message`` to ``recipient``, trying MTAs in order.

        Delivery stops at the first MTA that accepts the message (the
        paper probed only the first responsive MTA per address).
        Transient (4xx) failures — greylisting, most commonly — requeue
        the message; up to ``max_retries`` further passes are made,
        ``retry_interval`` virtual seconds apart, Exim-style.
        """
        obs = self.obs
        with obs.tracer.span("mta.delivery", t, sender=self.hostname, recipient=recipient) as span:
            record, t_done = self._send(
                message, sender, recipient, t, sign, max_retries, retry_interval
            )
            if record.success:
                outcome = "accepted"
            elif record.reply is not None:
                outcome = "rejected"
            else:
                outcome = "error"
            span.set(outcome=outcome, attempts=len(record.attempts))
            span.end(t_done)
        obs.metrics.counter("mta_deliveries_total", (("outcome", outcome),), t=t_done)
        return record, t_done

    def _send(
        self,
        message: EmailMessage,
        sender: str,
        recipient: str,
        t: float,
        sign: bool,
        max_retries: int,
        retry_interval: float,
    ) -> Tuple[DeliveryRecord, float]:
        record = DeliveryRecord(recipient=recipient, success=False, t_started=t)
        if sign and self.signer is not None and message.get_header("DKIM-Signature") is None:
            self.signer.sign(message, timestamp=int(t))
        domain = recipient.rpartition("@")[2]
        targets, t = self.resolve_targets(domain, t)
        if not targets:
            record.error = "no MTA addresses found for %s" % domain
            self.log.append(record)
            return record, t
        for attempt in range(1 + max_retries):
            transient_seen = False
            for mx_host, address in targets:
                record.attempts.append(address)
                source = self.ipv6 if is_ipv6(address) else self.ipv4
                if source is None:
                    continue
                try:
                    reply, t = self._deliver_once(message, sender, recipient, source, address, t)
                except SmtpClientError as exc:
                    record.error = str(exc)
                    if exc.t is not None:
                        # The failure cost real (virtual) time — a reset
                        # RTT, a banner deadline; bill it to the queue.
                        t = exc.t
                    if exc.reply is not None:
                        record.reply = exc.reply
                        if exc.reply.is_transient_failure:
                            transient_seen = True
                            continue
                        if exc.reply.is_permanent_failure and exc.reply.code != 554:
                            # A 5xx from this host applies to the message,
                            # not the host; further attempts are abusive.
                            self.log.append(record)
                            return record, t
                        continue
                    # No reply at all: a network-level failure (refused,
                    # reset, missing banner).  The host may recover, so
                    # treat it like a 4xx — try the next target now and
                    # requeue if every target failed.
                    transient_seen = True
                    continue
                record.success = reply.code == 250
                record.reply = reply
                record.mta_ip = address
                record.mx_host = mx_host
                record.t_delivered = t
                self.log.append(record)
                return record, t
            if not transient_seen or attempt == max_retries:
                break
            t += retry_interval  # back in the queue until the next run
        self.log.append(record)
        return record, t

    def _deliver_once(
        self,
        message: EmailMessage,
        sender: str,
        recipient: str,
        source: str,
        address: str,
        t: float,
    ) -> Tuple[Reply, float]:
        client, t = SmtpClient.connect(self.network, source, address, t, obs=self.obs)
        try:
            reply, t = client.ehlo_or_helo(self.hostname, t)
            if not reply.is_success:
                raise SmtpClientError("EHLO rejected: %s" % reply.text, reply)
            reply, t = client.mail(sender, t)
            if not reply.is_success:
                raise SmtpClientError("MAIL rejected: %s" % reply.text, reply)
            reply, t = client.rcpt(recipient, t)
            if not reply.is_success:
                raise SmtpClientError("RCPT rejected: %s" % reply.text, reply)
            reply, t = client.data_command(t)
            if not reply.is_intermediate:
                raise SmtpClientError("DATA rejected: %s" % reply.text, reply)
            reply, t = client.send_message(message, t)
            client.quit(t)
            return reply, t
        except SmtpClientError as exc:
            client.abort(exc.t if exc.t is not None else t)
            raise
