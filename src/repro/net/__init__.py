"""Deterministic virtual network substrate.

Everything in this package is single-threaded and driven by an explicit
virtual :class:`~repro.net.clock.Clock`.  Protocol code above this layer
threads timestamps through each exchange instead of sleeping, which makes
runs exactly reproducible and lets the measurement harness reason about
sub-second timing (the paper's Figure 2 and Section 7.1 analyses) without
real wall-clock delays.
"""

from repro.net.clock import Clock
from repro.net.errors import (
    ConnectionRefused,
    NetError,
    PortInUse,
    Unreachable,
)
from repro.net.latency import LatencyModel, UniformLatency
from repro.net.network import Network, TcpChannel

__all__ = [
    "Clock",
    "ConnectionRefused",
    "LatencyModel",
    "NetError",
    "Network",
    "PortInUse",
    "TcpChannel",
    "UniformLatency",
    "Unreachable",
]
