"""Deterministic virtual network substrate.

Everything in this package is single-threaded and driven by an explicit
virtual :class:`~repro.net.clock.Clock`.  Protocol code above this layer
threads timestamps through each exchange instead of sleeping, which makes
runs exactly reproducible and lets the measurement harness reason about
sub-second timing (the paper's Figure 2 and Section 7.1 analyses) without
real wall-clock delays.
"""

from repro.net.clock import Clock
from repro.net.errors import (
    ConnectionRefused,
    ConnectionResetByPeer,
    NetError,
    PacketLost,
    PortInUse,
    Unreachable,
)
from repro.net.faults import FaultKind, FaultPlan, FaultRule, derive_fault_seed
from repro.net.latency import LatencyModel, UniformLatency
from repro.net.network import Network, TcpChannel
from repro.net.retry import NO_RETRY, RetryPolicy

__all__ = [
    "Clock",
    "ConnectionRefused",
    "ConnectionResetByPeer",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "LatencyModel",
    "NO_RETRY",
    "NetError",
    "Network",
    "PacketLost",
    "PortInUse",
    "RetryPolicy",
    "TcpChannel",
    "UniformLatency",
    "Unreachable",
    "derive_fault_seed",
]
