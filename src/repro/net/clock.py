"""Virtual time.

A :class:`Clock` is a monotonically non-decreasing counter of seconds.  All
protocol layers take and return explicit timestamps (``query_at(...,
t_start) -> (reply, t_done)``) so that concurrent activity can be modelled
without threads: a caller that wants two lookups "in parallel" simply issues
both with the same start time and takes the max of the completion times.

The clock itself is only advanced by code that represents a single serial
actor (e.g. the probe client sleeping 15 seconds between SMTP commands).
"""

from __future__ import annotations

import time as _time


def wall_now() -> float:
    """The real wall clock, for human-facing progress output only.

    This is the single sanctioned bridge to real time: simulation code must
    take timestamps from a :class:`Clock`, and ``repro.lint.astcheck`` (rule
    AST001) rejects direct ``time.time()``/``datetime.now()`` calls anywhere
    else in the package.  Keeping the escape hatch here, one hop away from
    the virtual clock, makes the "which time am I using?" question explicit
    at every call site.
    """
    return _time.time()


class Clock:
    """A virtual clock counting seconds since the start of a simulation.

    Parameters
    ----------
    start:
        Initial time in seconds.  Campaigns typically use an epoch-like
        offset so timestamps resemble real traces, but zero works fine.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time.

        Negative advancement is rejected: virtual time never runs backwards.
        """
        if seconds < 0:
            raise ValueError("cannot advance clock by a negative duration: %r" % seconds)
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to ``timestamp`` if it is in the future.

        Moving to a past timestamp is a no-op rather than an error, which is
        what a caller joining several parallel activities wants: it advances
        to each completion time in arbitrary order and ends up at the max.
        """
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def sleep(self, seconds: float) -> float:
        """Alias of :meth:`advance`, for call sites modelling a real sleep."""
        return self.advance(seconds)

    def __repr__(self) -> str:
        return "Clock(now=%.6f)" % self._now
