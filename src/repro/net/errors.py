"""Error types raised by the virtual network.

Errors that correspond to an on-the-wire observation carry an optional
``t`` attribute: the virtual time at which the *caller* learned the
outcome (the RST or ICMP arrival), so retry and failover layers can
advance their clocks by what the failure actually cost rather than
guessing.  ``t`` is ``None`` when the failure was instantaneous and
local (nothing was sent).
"""

from typing import Optional


class NetError(Exception):
    """Base class for all virtual-network errors."""

    def __init__(self, message: str, t: Optional[float] = None) -> None:
        super().__init__(message)
        #: Virtual time the caller observed the failure, when on-wire.
        self.t = t


class Unreachable(NetError):
    """No host is registered at the destination address.

    Raised both for addresses nobody owns and for address families the
    destination host has disabled (e.g. contacting an IPv4-only resolver
    over IPv6, which the ``ipv6_only`` test policy relies on).
    """


class ConnectionRefused(NetError):
    """The destination host exists but nothing listens on the port."""


class PacketLost(NetError):
    """An injected fault silently dropped the datagram.

    The destination never saw it; the caller observes nothing until its
    own timeout expires, which is why — unlike the other errors — ``t``
    stays ``None``: only the caller knows how long it is willing to wait.
    """


class ConnectionResetByPeer(NetError):
    """An established TCP connection was torn down mid-conversation."""


class PortInUse(NetError):
    """A second listener was registered for an already-bound endpoint."""
