"""Error types raised by the virtual network."""


class NetError(Exception):
    """Base class for all virtual-network errors."""


class Unreachable(NetError):
    """No host is registered at the destination address.

    Raised both for addresses nobody owns and for address families the
    destination host has disabled (e.g. contacting an IPv4-only resolver
    over IPv6, which the ``ipv6_only`` test policy relies on).
    """


class ConnectionRefused(NetError):
    """The destination host exists but nothing listens on the port."""


class PortInUse(NetError):
    """A second listener was registered for an already-bound endpoint."""
