"""Deterministic, seeded fault injection for the virtual network.

The paper's most interesting findings are *failure* behaviours — 1.6% of
resolvers failed TCP fallback, MTAs differ on timeouts, void lookups and
serial-vs-parallel retry — but a perfect simulated network exercises
those code paths only through hand-crafted zones.  A :class:`FaultPlan`
makes failure a first-class, reproducible experiment input: each layer
of the stack consults the plan at well-defined injection points and the
plan answers from a **pure function of (seed, kind, endpoints, virtual
time)** — no RNG stream, no counters — so a decision does not depend on
which other packets were exercised first.  That order-independence is
exactly what lets :mod:`repro.core.parallel` run a faulted campaign over
``--workers N`` and still produce artefacts byte-identical to the serial
run (the same property :class:`~repro.net.latency.UniformLatency` has).

Injection points and their owners:

=================  ====================================================
kind               injected by
=================  ====================================================
``udp_loss``       :meth:`~repro.net.network.Network.udp_request` —
                   the request datagram is dropped before delivery (the
                   server never sees it; callers observe silence until
                   their per-try timeout)
``udp_delay``      :meth:`~repro.net.network.Network.udp_request` —
                   the reply is delayed ``param`` extra seconds
``truncate``       :class:`~repro.dns.server.AuthoritativeServer` — a
                   TC=1 stub is returned over UDP regardless of size;
                   combine with ``tcp_refuse@53`` to model the paper's
                   truncation-without-working-TCP resolvers
``servfail``       :class:`~repro.dns.server.AuthoritativeServer` — the
                   query is answered with rcode SERVFAIL
``refused``        :class:`~repro.dns.server.AuthoritativeServer` — the
                   query is answered with rcode REFUSED
``tcp_refuse``     :meth:`~repro.net.network.Network.connect_tcp` — the
                   SYN is answered with an RST (one RTT later)
``tcp_reset``      :meth:`~repro.net.network.TcpChannel.request` — the
                   established connection is reset mid-conversation,
                   before the request reaches the server
``banner_delay``   :class:`~repro.smtp.server.SmtpSession` — the 220
                   greeting is emitted ``param`` seconds late
``banner_absent``  :class:`~repro.smtp.server.SmtpSession` — the server
                   accepts the connection but never sends a banner
=================  ====================================================

Spec grammar (the ``--faults`` CLI form)::

    spec     := rule ("," rule)*
    rule     := kind ":" probability [":" param] ["@" where]

``param`` is the delay in seconds for ``udp_delay`` / ``banner_delay``
(defaults 7.5 / 30).  ``where`` narrows a rule's blast radius; its
meaning depends on the kind: a destination IP or (all-digits) port for
the network kinds, a query-name suffix for the DNS kinds, a banner-host
suffix for the SMTP kinds.  A JSON array of objects with the same field
names is accepted wherever a spec string is (``FaultPlan.parse`` picks
the format by the leading character).

Example: ``udp_loss:0.2,servfail:0.1,banner_delay:0.3:45`` loses 20% of
UDP datagrams, SERVFAILs 10% of DNS queries, and delays 30% of SMTP
banners by 45 s.

An **empty plan is a guaranteed no-op**: every injection site bails on
``plan is None`` (the default) and a plan with no rules never fires, so
an unfaulted run's artefacts are byte-identical with or without the
subsystem compiled in — asserted by CI's ``faults`` job.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

#: 2**64 as a float divisor, turning a 64-bit digest into [0, 1).
_HASH_SPAN = float(1 << 64)


def stable_hash64(text: str) -> int:
    """A 64-bit hash of ``text``, stable across processes and runs.

    The same blake2b construction as
    ``repro.core.datasets.stable_hash64`` — duplicated here (like the
    per-path hash in :mod:`repro.net.latency`) because the net layer
    sits below core and must not import it.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class FaultKind(enum.Enum):
    """The fault vocabulary; values double as spec/metric-label names."""

    UDP_LOSS = "udp_loss"
    UDP_DELAY = "udp_delay"
    TRUNCATE = "truncate"
    SERVFAIL = "servfail"
    REFUSED = "refused"
    TCP_REFUSE = "tcp_refuse"
    TCP_RESET = "tcp_reset"
    BANNER_DELAY = "banner_delay"
    BANNER_ABSENT = "banner_absent"


#: Kinds whose ``param`` is a delay in seconds, with their defaults.
_DELAY_DEFAULTS = {FaultKind.UDP_DELAY: 7.5, FaultKind.BANNER_DELAY: 30.0}

_KIND_BY_VALUE = {kind.value: kind for kind in FaultKind}


@dataclass(frozen=True)
class FaultRule:
    """One fault family: a kind, a firing probability, and a scope.

    ``where`` narrows the rule (see the module docstring for its
    kind-dependent meaning); ``param`` carries the delay for the two
    delay kinds and is ignored elsewhere.
    """

    kind: FaultKind
    probability: float
    param: float = 0.0
    where: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                "fault probability must be within [0, 1]: %r" % (self.probability,)
            )
        if self.param < 0:
            raise ValueError("fault param must be non-negative: %r" % (self.param,))

    def matches(self, dst: str, port: Optional[int]) -> bool:
        """Whether this rule's scope covers a ``(dst, port)`` target.

        ``dst`` is whatever identity the injection site keys on (an IP,
        a query name, a banner host); an all-digits ``where`` matches
        the port instead.
        """
        if self.where is None:
            return True
        if self.where.isdigit():
            return port is not None and port == int(self.where)
        return dst == self.where or dst.endswith(self.where)


class FaultPlan:
    """A seeded set of fault rules with pure-function firing decisions.

    Every decision hashes ``(seed, kind, src, dst, t)`` through
    :func:`stable_hash64`, so it is identical in every process that
    evaluates the same event — the property that keeps ``--workers 1``
    and ``--workers 4`` byte-identical.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self._by_kind: Dict[FaultKind, List[FaultRule]] = {}
        for rule in self.rules:
            self._by_kind.setdefault(rule.kind, []).append(rule)
        #: Injection tally by kind value (shard-local; merged registries
        #: carry the campaign-global ``faults_injected_total``).
        self.injected: Dict[str, int] = {}
        self._metrics = None

    # -- construction ----------------------------------------------------

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a spec string or a JSON rule array."""
        stripped = text.strip()
        if not stripped:
            return cls((), seed=seed)
        if stripped[0] in "[{":
            return cls.from_json(stripped, seed=seed)
        return cls.from_spec(stripped, seed=seed)

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """``kind:prob[:param][@where]`` rules, comma-separated."""
        rules = []
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            body, _, where = chunk.partition("@")
            parts = body.split(":")
            if len(parts) not in (2, 3):
                raise ValueError(
                    "fault rule must be kind:prob[:param][@where], got %r" % chunk
                )
            kind = _parse_kind(parts[0])
            try:
                probability = float(parts[1])
                param = float(parts[2]) if len(parts) == 3 else _DELAY_DEFAULTS.get(kind, 0.0)
            except ValueError:
                raise ValueError("bad numeric field in fault rule %r" % chunk) from None
            rules.append(FaultRule(kind, probability, param, where or None))
        return cls(rules, seed=seed)

    @classmethod
    def from_json(cls, text: Union[str, Iterable[dict]], seed: int = 0) -> "FaultPlan":
        """A JSON array of ``{kind, probability, param?, where?}`` objects."""
        data = json.loads(text) if isinstance(text, str) else list(text)
        if not isinstance(data, list):
            raise ValueError("fault JSON must be an array of rule objects")
        rules = []
        for obj in data:
            if not isinstance(obj, dict):
                raise ValueError("fault JSON rules must be objects, got %r" % (obj,))
            unknown = set(obj) - {"kind", "probability", "param", "where"}
            if unknown:
                raise ValueError("unknown fault rule field(s): %s" % sorted(unknown))
            kind = _parse_kind(str(obj["kind"]))
            rules.append(
                FaultRule(
                    kind,
                    float(obj["probability"]),
                    float(obj.get("param", _DELAY_DEFAULTS.get(kind, 0.0))),
                    obj.get("where"),
                )
            )
        return cls(rules, seed=seed)

    # -- wiring ----------------------------------------------------------

    @property
    def empty(self) -> bool:
        return not self.rules

    def attach_obs(self, obs) -> None:
        """Route injection tallies into an observability bundle's
        ``faults_injected_total{kind=…}`` counter."""
        self._metrics = obs.metrics

    # -- decisions -------------------------------------------------------

    def fires(
        self, kind: FaultKind, src: str, dst: str, t: float, port: Optional[int] = None
    ) -> Optional[FaultRule]:
        """The rule that fires for this event, if any (without recording).

        The draw is a pure function of ``(seed, kind, src, dst, t)``:
        virtual timestamps are strictly increasing along any one
        conversation and paths are disjoint across conversations, so
        each event gets an independent, reproducible coin flip.
        """
        rules = self._by_kind.get(kind)
        if not rules:
            return None
        for rule in rules:
            if not rule.matches(dst, port):
                continue
            if rule.probability >= 1.0:
                return rule
            draw = (
                stable_hash64(
                    "%d|%s|%s|%s|%r" % (self.seed, kind.value, src, dst, t)
                )
                / _HASH_SPAN
            )
            if draw < rule.probability:
                return rule
        return None

    def inject(
        self, kind: FaultKind, src: str, dst: str, t: float, port: Optional[int] = None
    ) -> Optional[FaultRule]:
        """:meth:`fires`, recording the injection when a rule fires."""
        rule = self.fires(kind, src, dst, t, port)
        if rule is not None:
            self.record(kind, t)
        return rule

    def record(self, kind: FaultKind, t: float) -> None:
        value = kind.value
        self.injected[value] = self.injected.get(value, 0) + 1
        if self._metrics is not None:
            self._metrics.counter("faults_injected_total", (("kind", value),), t=t)

    def __repr__(self) -> str:
        return "FaultPlan(rules=%d, seed=%d)" % (len(self.rules), self.seed)


def _parse_kind(text: str) -> FaultKind:
    kind = _KIND_BY_VALUE.get(text.strip().lower())
    if kind is None:
        raise ValueError(
            "unknown fault kind %r (known: %s)" % (text, ", ".join(sorted(_KIND_BY_VALUE)))
        )
    return kind


def derive_fault_seed(spec: str, master_seed: int) -> int:
    """The plan seed a runner derives from its master seed.

    Hashing the spec in keeps distinct plans decorrelated; hashing the
    master seed in keeps ``--seed`` the single reproducibility knob.
    Every worker process derives the identical value independently.
    """
    return stable_hash64("faultplan|%s|%d" % (spec, master_seed))
