"""Latency models for the virtual network.

The paper's timing analyses only need *consistent* per-path round-trip
times: the serial-vs-parallel experiment (Section 7.1) compares arrival
orders whose separation is dominated by deliberately inserted server-side
delays (100 ms / 800 ms), so any plausible RTT model preserves the result.

Paths are keyed by the (source IP, destination IP) string pair.  A seeded
:class:`UniformLatency` assigns each path a one-way delay that is a *pure
function* of ``(seed, path)`` — derived from a stable hash, not drawn from
a sequential RNG stream — so the delay a path sees does not depend on
which other paths were exercised first.  That order-independence is what
lets :mod:`repro.core.parallel` run disjoint shards of a campaign in
separate worker processes and still reproduce the serial run's timing
exactly: every shard's network computes identical delays for identical
paths.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

#: 2**64 as a float divisor, turning a 64-bit digest into [0, 1).
_HASH_SPAN = float(1 << 64)


class LatencyModel:
    """Base latency model: a constant one-way delay for every path."""

    def __init__(self, one_way: float = 0.02) -> None:
        if one_way < 0:
            raise ValueError("one-way delay must be non-negative")
        self._one_way = float(one_way)

    def one_way_delay(self, src_ip: str, dst_ip: str) -> float:
        """One-way delay in seconds from ``src_ip`` to ``dst_ip``."""
        if src_ip == dst_ip:
            return 0.0
        return self._one_way

    def rtt(self, src_ip: str, dst_ip: str) -> float:
        """Round-trip time in seconds between the two addresses."""
        return self.one_way_delay(src_ip, dst_ip) + self.one_way_delay(dst_ip, src_ip)


class UniformLatency(LatencyModel):
    """Per-path one-way delays uniform over ``[low, high)``.

    Each path's delay is a pure function of ``(seed, path key)``:
    deterministic for a given seed, symmetric (the same delay is used in
    both directions of a path), and independent of the order in which
    paths are first exercised.
    """

    def __init__(self, low: float = 0.005, high: float = 0.05, seed: int = 0) -> None:
        if low < 0 or high < low:
            raise ValueError("require 0 <= low <= high, got low=%r high=%r" % (low, high))
        super().__init__(one_way=low)
        self._low = float(low)
        self._high = float(high)
        self._seed = seed
        self._paths: Dict[Tuple[str, str], float] = {}

    def one_way_delay(self, src_ip: str, dst_ip: str) -> float:
        if src_ip == dst_ip:
            return 0.0
        key = (src_ip, dst_ip) if src_ip <= dst_ip else (dst_ip, src_ip)
        delay = self._paths.get(key)
        if delay is None:
            text = "%r|%s|%s" % (self._seed, key[0], key[1])
            digest = hashlib.blake2b(text.encode("ascii"), digest_size=8).digest()
            fraction = int.from_bytes(digest, "big") / _HASH_SPAN
            delay = self._low + (self._high - self._low) * fraction
            self._paths[key] = delay
        return delay
