"""Latency models for the virtual network.

The paper's timing analyses only need *consistent* per-path round-trip
times: the serial-vs-parallel experiment (Section 7.1) compares arrival
orders whose separation is dominated by deliberately inserted server-side
delays (100 ms / 800 ms), so any plausible RTT model preserves the result.

Paths are keyed by the (source IP, destination IP) string pair.  A seeded
:class:`UniformLatency` assigns each path a one-way delay drawn once from a
uniform range and then frozen, so repeated exchanges over the same path see
identical timing, as real persistent paths roughly do at these scales.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple


class LatencyModel:
    """Base latency model: a constant one-way delay for every path."""

    def __init__(self, one_way: float = 0.02) -> None:
        if one_way < 0:
            raise ValueError("one-way delay must be non-negative")
        self._one_way = float(one_way)

    def one_way_delay(self, src_ip: str, dst_ip: str) -> float:
        """One-way delay in seconds from ``src_ip`` to ``dst_ip``."""
        if src_ip == dst_ip:
            return 0.0
        return self._one_way

    def rtt(self, src_ip: str, dst_ip: str) -> float:
        """Round-trip time in seconds between the two addresses."""
        return self.one_way_delay(src_ip, dst_ip) + self.one_way_delay(dst_ip, src_ip)


class UniformLatency(LatencyModel):
    """Per-path one-way delays drawn once from ``[low, high]``.

    Deterministic for a given seed; symmetric (the same delay is used in
    both directions of a path).
    """

    def __init__(self, low: float = 0.005, high: float = 0.05, seed: int = 0) -> None:
        if low < 0 or high < low:
            raise ValueError("require 0 <= low <= high, got low=%r high=%r" % (low, high))
        super().__init__(one_way=low)
        self._low = float(low)
        self._high = float(high)
        self._rng = random.Random(seed)
        self._paths: Dict[Tuple[str, str], float] = {}

    def one_way_delay(self, src_ip: str, dst_ip: str) -> float:
        if src_ip == dst_ip:
            return 0.0
        key = (src_ip, dst_ip) if src_ip <= dst_ip else (dst_ip, src_ip)
        delay = self._paths.get(key)
        if delay is None:
            delay = self._rng.uniform(self._low, self._high)
            self._paths[key] = delay
        return delay
