"""The virtual network: address registry, UDP exchanges, TCP channels.

The network knows which IP addresses exist, which ``(ip, port, protocol)``
endpoints have listeners, and how long packets take between addresses.  All
exchanges are synchronous function calls that thread virtual timestamps:

* UDP is a single request/response:  ``udp_request(...)``.
* TCP is a :class:`TcpChannel` carrying ordered request/response rounds,
  which is all that SMTP and DNS-over-TCP need.

Server-side listeners are either *handlers* (UDP) or *session factories*
(TCP):

UDP handler
    ``handler(payload, src_ip, transport, t_arrival) -> (reply_payload,
    processing_delay_seconds)``.  ``transport`` is ``"udp"`` or ``"tcp"`` so
    one handler can serve both (the DNS server truncates only over UDP).

TCP session factory
    ``factory(src_ip, t_accept) -> session`` where the session duck-type
    provides ``on_connect(t) -> bytes | None`` (greeting),
    ``on_data(data, t) -> (reply_bytes | None, processing_delay)`` and
    ``on_close(t) -> None``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.net.clock import Clock
from repro.net.errors import (
    ConnectionRefused,
    ConnectionResetByPeer,
    PacketLost,
    PortInUse,
    Unreachable,
)
from repro.net.faults import FaultKind, FaultPlan
from repro.net.latency import LatencyModel

UdpHandler = Callable[[bytes, str, str, float], Tuple[bytes, float]]

#: Well-known ports used throughout the package.
DNS_PORT = 53
SMTP_PORT = 25


def is_ipv6(address: str) -> bool:
    """True if ``address`` is textual IPv6 (contains a colon)."""
    return ":" in address


class Network:
    """A registry of hosts and listeners plus a latency model.

    Parameters
    ----------
    latency:
        The :class:`~repro.net.latency.LatencyModel` used for every path.
    clock:
        A shared :class:`~repro.net.clock.Clock`.  The network never
        advances it; it is held here purely as a convenient rendezvous for
        components that need "now" as a default timestamp.
    faults:
        Optional :class:`~repro.net.faults.FaultPlan` consulted for the
        transport-level kinds (``udp_loss``, ``udp_delay``,
        ``tcp_refuse``, ``tcp_reset``).  ``None`` — the default — is a
        guaranteed no-op.
    """

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        clock: Optional[Clock] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.latency = latency if latency is not None else LatencyModel()
        self.clock = clock if clock is not None else Clock()
        self.faults = faults
        self._addresses: Set[str] = set()
        self._udp: Dict[Tuple[str, int], UdpHandler] = {}
        self._tcp: Dict[Tuple[str, int], Callable[[str, float], object]] = {}

    # -- topology -----------------------------------------------------

    def add_address(self, address: str) -> None:
        """Declare that ``address`` exists (a host owns it)."""
        self._addresses.add(address)

    def has_address(self, address: str) -> bool:
        return address in self._addresses

    def listen_udp(self, address: str, port: int, handler: UdpHandler) -> None:
        """Bind a UDP request handler to ``(address, port)``."""
        key = (address, port)
        if key in self._udp:
            raise PortInUse("udp %s:%d already bound" % key)
        self.add_address(address)
        self._udp[key] = handler

    def listen_tcp(self, address: str, port: int, factory: Callable[[str, float], object]) -> None:
        """Bind a TCP session factory to ``(address, port)``."""
        key = (address, port)
        if key in self._tcp:
            raise PortInUse("tcp %s:%d already bound" % key)
        self.add_address(address)
        self._tcp[key] = factory

    def unlisten_udp(self, address: str, port: int) -> None:
        self._udp.pop((address, port), None)

    def unlisten_tcp(self, address: str, port: int) -> None:
        self._tcp.pop((address, port), None)

    # -- UDP ------------------------------------------------------------

    def udp_request(
        self,
        src_ip: str,
        dst_ip: str,
        port: int,
        payload: bytes,
        t_send: float,
    ) -> Tuple[bytes, float]:
        """Send one UDP datagram and wait for the single reply datagram.

        Returns ``(reply_payload, t_reply_arrival)``.  Raises
        :class:`Unreachable` if nobody owns ``dst_ip`` and
        :class:`ConnectionRefused` if the host owns it but has no listener
        (the real-world analogue is an ICMP port-unreachable).
        """
        handler = self._udp.get((dst_ip, port))
        rtt = self.latency.rtt(src_ip, dst_ip)
        if handler is None:
            if dst_ip in self._addresses:
                raise ConnectionRefused("udp %s:%d refused" % (dst_ip, port), t=t_send + rtt)
            raise Unreachable("no route to %s" % dst_ip, t=t_send + rtt)
        if self.faults is not None and self.faults.inject(
            FaultKind.UDP_LOSS, src_ip, dst_ip, t_send, port
        ):
            # Dropped before delivery: the listener never sees the
            # datagram, so server-side logs stay silent and the caller
            # hears nothing until its own timeout.
            raise PacketLost("udp %s -> %s:%d lost" % (src_ip, dst_ip, port))
        forward = self.latency.one_way_delay(src_ip, dst_ip)
        t_arrival = t_send + forward
        reply, delay = handler(payload, src_ip, "udp", t_arrival)
        t_reply = t_arrival + delay + self.latency.one_way_delay(dst_ip, src_ip)
        if self.faults is not None:
            rule = self.faults.inject(FaultKind.UDP_DELAY, src_ip, dst_ip, t_send, port)
            if rule is not None:
                t_reply += rule.param
        return reply, t_reply

    # -- TCP ------------------------------------------------------------

    def connect_tcp(self, src_ip: str, dst_ip: str, port: int, t_connect: float) -> "TcpChannel":
        """Open a TCP connection, completing the handshake in one RTT.

        Returns an established :class:`TcpChannel` whose ``t_established``
        reflects the SYN/SYN-ACK round trip plus delivery of any greeting
        the server emits on accept.
        """
        factory = self._tcp.get((dst_ip, port))
        rtt = self.latency.rtt(src_ip, dst_ip)
        if factory is None:
            if dst_ip in self._addresses:
                raise ConnectionRefused("tcp %s:%d refused" % (dst_ip, port), t=t_connect + rtt)
            raise Unreachable("no route to %s" % dst_ip, t=t_connect + rtt)
        if self.faults is not None and self.faults.inject(
            FaultKind.TCP_REFUSE, src_ip, dst_ip, t_connect, port
        ):
            # The SYN is answered with an RST: indistinguishable from an
            # organic refusal to the caller, one RTT later.
            raise ConnectionRefused(
                "tcp %s:%d refused (injected rst)" % (dst_ip, port), t=t_connect + rtt
            )
        t_accept = t_connect + self.latency.one_way_delay(src_ip, dst_ip)
        session = factory(src_ip, t_accept)
        accepted = session.on_connect(t_accept)
        if isinstance(accepted, tuple):
            # Sessions may return ``(greeting, delay)`` to hold the
            # greeting back (e.g. a delayed SMTP banner).
            greeting, greeting_delay = accepted
        else:
            greeting, greeting_delay = accepted, 0.0
        t_established = t_connect + rtt + greeting_delay
        return TcpChannel(self, src_ip, dst_ip, port, session, greeting, t_established)


class TcpChannel:
    """One established TCP connection, used in request/response rounds.

    The channel records the server greeting (bytes emitted at accept time,
    e.g. the SMTP ``220`` banner) and carries subsequent ``request`` rounds.
    """

    def __init__(
        self,
        network: Network,
        src_ip: str,
        dst_ip: str,
        port: int,
        session: object,
        greeting: Optional[bytes],
        t_established: float,
    ) -> None:
        self._network = network
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.port = port
        self._session = session
        self.greeting = greeting
        self.t_established = t_established
        self._open = True

    @property
    def is_open(self) -> bool:
        return self._open

    def request(self, data: bytes, t_send: float) -> Tuple[Optional[bytes], float]:
        """Send ``data`` and return ``(reply_bytes, t_reply_arrival)``.

        ``reply_bytes`` is ``None`` when the server stays silent for this
        round (e.g. mid-DATA in SMTP, where lines are consumed without a
        per-line reply).
        """
        if not self._open:
            raise ConnectionRefused("channel is closed")
        forward = self._network.latency.one_way_delay(self.src_ip, self.dst_ip)
        faults = self._network.faults
        if faults is not None and faults.inject(
            FaultKind.TCP_RESET, self.src_ip, self.dst_ip, t_send, self.port
        ):
            # Reset mid-conversation, before this round reaches the
            # server: the peer observes an abortive close, the caller an
            # RST one round trip after sending.
            self._open = False
            self._session.on_close(t_send + forward)
            raise ConnectionResetByPeer(
                "tcp %s -> %s:%d reset" % (self.src_ip, self.dst_ip, self.port),
                t=t_send + self._network.latency.rtt(self.src_ip, self.dst_ip),
            )
        t_arrival = t_send + forward
        reply, delay = self._session.on_data(data, t_arrival)
        t_reply = t_arrival + delay + self._network.latency.one_way_delay(self.dst_ip, self.src_ip)
        if reply is None:
            # The caller still observes time passing for the send itself.
            return None, t_arrival
        return reply, t_reply

    def close(self, t_close: float) -> None:
        """Close the connection (client-side FIN or abortive reset)."""
        if self._open:
            self._open = False
            t_fin = t_close + self._network.latency.one_way_delay(self.src_ip, self.dst_ip)
            self._session.on_close(t_fin)
