"""Retry/backoff policies for protocol clients, in virtual time.

A :class:`RetryPolicy` describes how many times a client is willing to
attempt one operation against one peer and how long it waits between
attempts.  Delays are **virtual** seconds — they advance the caller's
explicit timestamp, never a wall clock — so a policy with aggressive
backoff costs nothing to simulate.

The defaults (one attempt, no backoff) reproduce the pre-fault-layer
behaviour exactly; the byte-identity CI check rests on that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries one operation against one peer.

    Parameters
    ----------
    attempts:
        Total tries, including the first (``1`` = no retry).
    backoff:
        Virtual seconds to wait before the second attempt.
    multiplier:
        Exponential growth factor for subsequent waits, so attempt ``n``
        (n ≥ 2) is preceded by ``backoff * multiplier ** (n - 2)``.
    timeout:
        Optional per-try timeout override in virtual seconds; ``None``
        defers to the client's own configured timeout.
    """

    attempts: int = 1
    backoff: float = 0.0
    multiplier: float = 2.0
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1, got %r" % (self.attempts,))
        if self.backoff < 0:
            raise ValueError("backoff must be non-negative, got %r" % (self.backoff,))
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive, got %r" % (self.multiplier,))

    def delay_before(self, attempt: int) -> float:
        """Virtual seconds to wait before ``attempt`` (1-based).

        The first attempt starts immediately; later attempts back off
        exponentially.
        """
        if attempt <= 1 or self.backoff == 0.0:
            return 0.0
        return self.backoff * self.multiplier ** (attempt - 2)


#: The do-nothing policy: single attempt, matching historical behaviour.
NO_RETRY = RetryPolicy()
