"""Observability: metrics and span tracing over virtual time.

The measurement harness's analyses are all derived from *observing* the
simulated world — attributed DNS query streams, SMTP phase timings,
per-policy lookup counts.  This package gives every protocol layer a
uniform way to report what it did:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  fixed-bucket histograms keyed by name + label tuple;
* :class:`~repro.obs.spans.Tracer` — context-manager spans with
  parent/child causality, started and ended at explicit **virtual**
  timestamps (never wall time; ``repro.lint.astcheck`` rule AST007
  enforces the boundary mechanically);
* exporters (:mod:`repro.obs.export`) — human-readable text table,
  Prometheus text format, and a JSON-lines span dump in the same
  header-tagged style as :mod:`repro.core.trace`;
* :mod:`repro.obs.reconcile` — diffs resolver-side exchange spans
  against the server-side attributed query log, so the two independent
  witnesses of campaign behaviour must agree.

Instrumented classes accept an ``obs=`` argument; passing ``None``
selects :data:`NULL_OBS`, whose registry and tracer are allocation-free
no-ops, so uninstrumented use stays cheap (benched in
``benchmarks/bench_obs_overhead.py``).  :class:`~repro.core.campaign.
Testbed` defaults to a live :class:`Observability`, which is what the
experiment runner exports as ``<name>_metrics.txt`` /
``<name>_spans.jsonl`` artefacts.

The instrumentation contract — naming scheme, label cardinality rules,
the virtual-time-only policy, exporter formats — is documented in
``OBSERVABILITY.md`` at the repository root.
"""

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.progress import ProgressSink
from repro.obs.spans import NullTracer, Span, Tracer


class Observability:
    """A bundle of one metrics registry and one tracer.

    Every layer of one simulated world shares a single bundle, so spans
    nest across layers (an SMTP command span contains the SPF check it
    triggered, which contains its DNS queries) and metrics roll up into
    one namespace.
    """

    __slots__ = ("metrics", "tracer")

    def __init__(self, metrics=None, tracer=None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    @property
    def enabled(self) -> bool:
        """False only for the shared no-op bundle (:data:`NULL_OBS`)."""
        return self.metrics.enabled

    def __repr__(self) -> str:
        return "Observability(enabled=%r)" % self.enabled


#: The shared no-op bundle: recording methods discard everything.
#: Instrumented code paths branch on ``obs.enabled`` before building
#: label tuples, so the disabled fast path costs one attribute read.
NULL_OBS = Observability(NullMetricsRegistry(), NullTracer())


def ensure_obs(obs):
    """``obs`` if given, else :data:`NULL_OBS` — the instrumentation
    default used by every ``obs=None`` constructor parameter."""
    return obs if obs is not None else NULL_OBS
