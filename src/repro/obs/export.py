"""Metric exporters: human-readable text table and Prometheus text.

Two renderings of one :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`render_metrics_text` — the ``<name>_metrics.txt`` runner
  artefact: one section per metric kind, one line per label
  combination, histograms summarised as count/sum/mean plus
  approximate p50/p90/p99 interpolated from the fixed buckets.
* :func:`render_prometheus` — the Prometheus exposition format
  (``# TYPE`` comments, ``name{label="value"} value`` samples,
  cumulative ``_bucket``/``_sum``/``_count`` histogram series), for
  scraping pipelines and for diffing runs with standard tooling.

Timestamps in both formats are **virtual seconds** (the registry's
``virtual_time`` high-water mark); see ``OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import List

from repro.obs.metrics import Histogram, LabelsKey, MetricsRegistry


def _label_text(labels: LabelsKey) -> str:
    if not labels:
        return ""
    return "{%s}" % ",".join("%s=%s" % (key, value) for key, value in labels)


def _prom_labels(labels: LabelsKey, extra: str = "") -> str:
    parts = ['%s="%s"' % (key, str(value).replace('"', '\\"')) for key, value in labels]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{%s}" % ",".join(parts)


def _number(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return "%g" % value


def render_metrics_text(registry: MetricsRegistry, header: str = "metrics") -> str:
    """The human-facing table (the ``*_metrics.txt`` artefact body)."""
    lines = [
        "%s (virtual time %.3f s, %d series)" % (header, registry.virtual_time, len(registry)),
        "=" * 72,
    ]
    for kind in ("counter", "gauge", "histogram"):
        names = [name for name in registry.names() if registry.kind_of(name) == kind]
        if not names:
            continue
        lines.append("")
        lines.append("%ss" % kind)
        lines.append("-" * len(kind) + "-")
        for name in names:
            for labels, value in registry.series(name):
                if isinstance(value, Histogram):
                    lines.append(
                        "  %-46s count=%d sum=%s mean=%s p50=%s p90=%s p99=%s"
                        % (
                            name + _label_text(labels),
                            value.count,
                            _number(round(value.total, 6)),
                            _number(round(value.mean, 6)),
                            _number(round(value.quantile(0.5), 6)),
                            _number(round(value.quantile(0.9), 6)),
                            _number(round(value.quantile(0.99), 6)),
                        )
                    )
                else:
                    lines.append("  %-46s %s" % (name + _label_text(labels), _number(value)))
    return "\n".join(lines)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus exposition format (text version 0.0.4)."""
    lines: List[str] = []
    for name in registry.names():
        kind = registry.kind_of(name)
        lines.append("# TYPE %s %s" % (name, kind))
        for labels, value in registry.series(name):
            if isinstance(value, Histogram):
                cumulative = 0
                for position, bound in enumerate(value.buckets):
                    cumulative += value.counts[position]
                    lines.append(
                        "%s_bucket%s %d"
                        % (name, _prom_labels(labels, 'le="%s"' % _number(bound)), cumulative)
                    )
                lines.append(
                    "%s_bucket%s %d" % (name, _prom_labels(labels, 'le="+Inf"'), value.count)
                )
                lines.append("%s_sum%s %s" % (name, _prom_labels(labels), _number(value.total)))
                lines.append("%s_count%s %d" % (name, _prom_labels(labels), value.count))
            else:
                lines.append("%s%s %s" % (name, _prom_labels(labels), _number(value)))
    return "\n".join(lines) + "\n"
