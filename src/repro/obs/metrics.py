"""Metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` holds three kinds of series, each keyed by
``(name, labels)`` where ``labels`` is a tuple of ``(key, value)``
pairs:

* **counters** — monotonically increasing totals (``*_total``);
* **gauges** — last-write-wins values;
* **histograms** — fixed-bucket distributions (``le`` upper bounds in
  the Prometheus style) with sum and count.

Timestamps are **virtual**: every recording method takes an optional
``t`` drawn from the simulation's :class:`~repro.net.clock.Clock`, and
the registry tracks the latest virtual instant it has seen.  Nothing in
this module may read the wall clock — ``repro.lint.astcheck`` enforces
that mechanically (AST001/AST007).

:class:`NullMetricsRegistry` is the no-op fast path: its recording
methods discard everything, so instrumentation left on by default costs
almost nothing when a caller opts out (see
``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

LabelsArg = Union[Mapping[str, object], Sequence[Tuple[str, object]]]
LabelsKey = Tuple[Tuple[str, object], ...]

#: Default histogram buckets, tuned for virtual-time durations in
#: seconds (DNS round trips through multi-minute SMTP conversations).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


def normalize_labels(labels: LabelsArg) -> LabelsKey:
    """Canonical label key: mappings are sorted; pair sequences are
    trusted to arrive in a consistent order (the hot-path form)."""
    if isinstance(labels, Mapping):
        return tuple(sorted(labels.items()))
    return tuple(labels)


class Histogram:
    """One histogram series: fixed ``le`` buckets plus sum and count."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left finds the first bound >= value, i.e. the ``le``
        # bucket the observation belongs to (or +Inf past the end).
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    def merge_from(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram.

        Requires identical bucket bounds: counts sum bucket-wise (exact),
        ``total`` sums as floats (equal to a serial run's total up to
        summation-order rounding).
        """
        if other.buckets != self.buckets:
            raise ValueError(
                "cannot merge histograms with different buckets: %r vs %r"
                % (self.buckets, other.buckets)
            )
        for position, count in enumerate(other.counts):
            self.counts[position] += count
        self.total += other.total
        self.count += other.count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile by linear interpolation within the
        bucket that carries the ``q``-th observation (Prometheus-style:
        an upper-bound estimate, exact only at bucket boundaries)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]: %r" % q)
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for position, bound in enumerate(self.buckets):
            previous = cumulative
            cumulative += self.counts[position]
            if cumulative >= rank:
                share = (rank - previous) / self.counts[position]
                return lower + (bound - lower) * share
            lower = bound
        return self.buckets[-1] if self.buckets else 0.0


class MetricsRegistry:
    """Counters, gauges, and histograms for one simulated world."""

    enabled = True

    __slots__ = ("_counters", "_gauges", "_histograms", "_buckets", "virtual_time")

    def __init__(self) -> None:
        self._counters: Dict[str, Dict[LabelsKey, float]] = {}
        self._gauges: Dict[str, Dict[LabelsKey, float]] = {}
        self._histograms: Dict[str, Dict[LabelsKey, Histogram]] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}
        #: Latest virtual timestamp any recording carried.
        self.virtual_time = 0.0

    # -- recording -------------------------------------------------------

    def counter(
        self, name: str, labels: LabelsArg = (), value: float = 1.0, t: Optional[float] = None
    ) -> None:
        """Add ``value`` (default 1) to the counter series."""
        # This and observe() are the hottest obs calls in a campaign
        # (see benchmarks/bench_obs_overhead.py), hence the manually
        # inlined label/stamp fast paths.
        if value < 0:
            raise ValueError("counters only go up; got %r for %s" % (value, name))
        key = labels if type(labels) is tuple else normalize_labels(labels)
        series = self._counters.get(name)
        if series is None:
            series = self._counters[name] = {}
        series[key] = series.get(key, 0.0) + value
        if t is not None and t > self.virtual_time:
            self.virtual_time = t

    def gauge(self, name: str, value: float, labels: LabelsArg = (), t: Optional[float] = None) -> None:
        """Set the gauge series to ``value`` (last write wins)."""
        key = labels if type(labels) is tuple else normalize_labels(labels)
        self._gauges.setdefault(name, {})[key] = value
        self._stamp(t)

    def observe(self, name: str, value: float, labels: LabelsArg = (), t: Optional[float] = None) -> None:
        """Record one observation into the histogram series."""
        key = labels if type(labels) is tuple else normalize_labels(labels)
        series = self._histograms.get(name)
        if series is None:
            series = self._histograms[name] = {}
        histogram = series.get(key)
        if histogram is None:
            histogram = series[key] = Histogram(self._buckets.get(name, DEFAULT_TIME_BUCKETS))
        histogram.counts[bisect_left(histogram.buckets, value)] += 1
        histogram.total += value
        histogram.count += 1
        if t is not None and t > self.virtual_time:
            self.virtual_time = t

    def declare_histogram(self, name: str, buckets: Sequence[float]) -> None:
        """Fix the bucket bounds for histogram ``name``.

        Declaring the same bounds twice is a no-op; changing the bounds
        of a name that already has data is an error (the counts would be
        meaningless).
        """
        bounds = tuple(buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be strictly increasing: %r" % (bounds,))
        existing = self._buckets.get(name)
        if existing == bounds:
            return
        if existing is not None or name in self._histograms:
            raise ValueError("histogram %s already declared with different buckets" % name)
        self._buckets[name] = bounds

    def _stamp(self, t: Optional[float]) -> None:
        if t is not None and t > self.virtual_time:
            self.virtual_time = t

    # -- merging ---------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s series into this registry; returns ``self``.

        The shard-merge contract (see ``OBSERVABILITY.md``): counters sum
        per label set; histograms sum bucket-wise (identical bounds
        required); gauges take the last writer in merge order, so callers
        merging shard snapshots should overwrite campaign-global gauges
        afterwards; ``virtual_time`` is the maximum.  Associative and,
        gauges aside, commutative — a serial registry and any merge tree
        over a sharded run's registries hold the same totals.
        """
        for name, series in other._counters.items():
            mine = self._counters.setdefault(name, {})
            for key, value in series.items():
                mine[key] = mine.get(key, 0.0) + value
        for name, series in other._gauges.items():
            self._gauges.setdefault(name, {}).update(series)
        for name, bounds in other._buckets.items():
            self.declare_histogram(name, bounds)
        for name, series in other._histograms.items():
            mine = self._histograms.setdefault(name, {})
            for key, histogram in series.items():
                target = mine.get(key)
                if target is None:
                    target = mine[key] = Histogram(histogram.buckets)
                target.merge_from(histogram)
        if other.virtual_time > self.virtual_time:
            self.virtual_time = other.virtual_time
        return self

    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """A fresh registry holding the merge of ``registries`` in order."""
        result = cls()
        for registry in registries:
            result.merge(registry)
        return result

    # -- reading ---------------------------------------------------------

    def counter_value(self, name: str, labels: LabelsArg = ()) -> float:
        return self._counters.get(name, {}).get(normalize_labels(labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of the counter across every label combination."""
        return sum(self._counters.get(name, {}).values())

    def gauge_value(self, name: str, labels: LabelsArg = ()) -> Optional[float]:
        return self._gauges.get(name, {}).get(normalize_labels(labels))

    def histogram(self, name: str, labels: LabelsArg = ()) -> Optional[Histogram]:
        return self._histograms.get(name, {}).get(normalize_labels(labels))

    def names(self) -> List[str]:
        """Every metric name with at least one recording, sorted."""
        return sorted(set(self._counters) | set(self._gauges) | set(self._histograms))

    def kind_of(self, name: str) -> Optional[str]:
        if name in self._counters:
            return "counter"
        if name in self._gauges:
            return "gauge"
        if name in self._histograms:
            return "histogram"
        return None

    def series(self, name: str) -> Iterable[Tuple[LabelsKey, object]]:
        """``(labels, value-or-Histogram)`` pairs for one name, sorted
        by labels, whatever the metric kind."""
        for store in (self._counters, self._gauges, self._histograms):
            if name in store:
                return sorted(store[name].items())
        return []

    def __len__(self) -> int:
        return sum(len(store) for store in (self._counters, self._gauges, self._histograms))


class NullMetricsRegistry(MetricsRegistry):
    """The no-op fast path: records nothing, reads as empty."""

    enabled = False

    def counter(self, name, labels=(), value=1.0, t=None):  # noqa: D102
        pass

    def gauge(self, name, value, labels=(), t=None):
        pass

    def observe(self, name, value, labels=(), t=None):
        pass

    def declare_histogram(self, name, buckets):
        pass
