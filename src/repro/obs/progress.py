"""The progress sink: the one place human-facing output happens.

Campaign code reports progress through a :class:`ProgressSink` rather
than calling ``print`` directly, so ``--quiet`` silences *everything*
uniformly — including post-flight warnings — and tests can capture
progress without patching stdout.

This module is also one of only two sanctioned homes for wall-clock
reads (the other being :mod:`repro.net.clock` itself): a sink stamps
its "all done in N s" line from real time because it talks to a human,
never to the simulation.  ``repro.lint.astcheck`` rule AST007 rejects
``wall_now()`` calls anywhere else, which is what keeps metrics and
spans on virtual time by construction.
"""

from __future__ import annotations

import sys
from typing import IO, Optional

from repro.net.clock import wall_now


class ProgressSink:
    """Human-facing progress output with a single quiet switch."""

    def __init__(self, quiet: bool = False, stream: Optional[IO[str]] = None) -> None:
        self.quiet = quiet
        self.stream = stream if stream is not None else sys.stdout
        self.t_started = wall_now()
        #: Messages emitted through :meth:`warn`, kept even when quiet
        #: so callers can still assert on (or log) what went wrong.
        self.warnings: list = []

    def say(self, message: str) -> None:
        """Emit one progress line (suppressed by ``quiet``)."""
        if not self.quiet:
            print(message, file=self.stream)

    __call__ = say

    def warn(self, message: str) -> None:
        """Emit one warning line.

        Warnings respect ``quiet`` like everything else — uniform
        silence is the contract — but are remembered on
        :attr:`warnings` regardless, so a quiet caller can inspect them.
        """
        self.warnings.append(message)
        self.say(message)

    def elapsed(self) -> float:
        """Real seconds since this sink was created (for the final
        human-facing stamp only; simulation code never sees this)."""
        return wall_now() - self.t_started
