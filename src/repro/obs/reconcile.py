"""Span-vs-querylog reconciliation: two witnesses, one truth.

The harness observes every DNS query twice, from opposite ends:

* **server side** — the synthesizing authority's query log, attributed
  to ``(mtaid, testid)`` pairs by :mod:`repro.core.querylog` (this is
  the paper's measurement instrument);
* **client side** — the ``dns.exchange`` spans every instrumented
  :class:`~repro.dns.resolver.Resolver` emits, one per wire exchange
  actually sent (cache hits emit none; a UDP exchange and its TCP
  truncation retry are two).

:func:`reconcile_spans` rebuilds a query log from the client-side spans,
runs it through the *same* attribution code, and diffs the per-pair
counts against a server-side :class:`~repro.core.querylog.QueryIndex`.
Any disagreement means an instrumentation layer, the network, or the
attribution logic is lying about what happened — exactly the class of
harness bug no analysis downstream could detect on its own.  Exchanges
whose datagram never reached a server (``outcome=neterror``, or the
injected-fault outcomes ``lost`` / ``reset``) are excluded: the server
cannot have logged them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.querylog import QueryIndex, attribute_queries_with_stats
from repro.core.synth import SynthConfig
from repro.dns.name import Name
from repro.dns.rdata import RdataType
from repro.dns.server import QueryLogEntry
from repro.obs.spans import Span

Pair = Tuple[str, str]


@dataclass
class ReconcileResult:
    """The per-(mtaid, testid) count diff between spans and index."""

    span_counts: Dict[Pair, int] = field(default_factory=dict)
    index_counts: Dict[Pair, int] = field(default_factory=dict)
    #: Exchanges excluded because the wire never reached a server.
    spans_unsent: int = 0
    #: Client-side exchanges outside every measurement suffix (MX/A
    #: lookups against the universe zone, mostly).
    spans_foreign: int = 0

    @property
    def mismatches(self) -> List[Tuple[Pair, int, int]]:
        """``(pair, span_count, index_count)`` wherever the two differ."""
        out = []
        for pair in sorted(set(self.span_counts) | set(self.index_counts)):
            spans = self.span_counts.get(pair, 0)
            index = self.index_counts.get(pair, 0)
            if spans != index:
                out.append((pair, spans, index))
        return out

    @property
    def matched(self) -> bool:
        return not self.mismatches

    def render_text(self) -> str:
        lines = [
            "reconcile: %d attributed exchanges in spans, %d in query log"
            % (sum(self.span_counts.values()), sum(self.index_counts.values())),
            "  pairs: %d span-side, %d log-side; foreign client exchanges: %d; unsent: %d"
            % (len(self.span_counts), len(self.index_counts), self.spans_foreign, self.spans_unsent),
        ]
        if self.matched:
            lines.append("  OK: span-derived counts equal attributed query-log counts for every pair")
        else:
            lines.append("  MISMATCH in %d pair(s):" % len(self.mismatches))
            for (mtaid, testid), spans, index in self.mismatches[:20]:
                lines.append("    (%s, %s): %d exchange span(s) vs %d logged query(ies)"
                             % (mtaid, testid, spans, index))
        return "\n".join(lines)


def entries_from_spans(spans: Iterable[Span]) -> Tuple[List[QueryLogEntry], int]:
    """Rebuild a query log from ``dns.exchange`` spans.

    Returns ``(entries, unsent)`` where ``unsent`` counts exchanges the
    network refused before any server saw them.
    """
    entries: List[QueryLogEntry] = []
    unsent = 0
    for span in spans:
        if span.name != "dns.exchange":
            continue
        if span.attrs.get("outcome") in ("neterror", "lost", "reset"):
            # The server never saw these: nothing was sent, the datagram
            # was dropped in flight, or the connection died before the
            # query crossed the wire.
            unsent += 1
            continue
        entries.append(
            QueryLogEntry(
                timestamp=span.t_start,
                qname=Name(str(span.attrs["qname"])),
                qtype=RdataType[str(span.attrs["qtype"])],
                transport=str(span.attrs["transport"]),
                client_ip=str(span.attrs["client"]),
            )
        )
    return entries, unsent


def reconcile_spans(
    spans: Iterable[Span],
    index: QueryIndex,
    config: Optional[SynthConfig] = None,
) -> ReconcileResult:
    """Diff client-side exchange spans against a server-side index."""
    entries, unsent = entries_from_spans(spans)
    attributed, stats = attribute_queries_with_stats(entries, config)
    result = ReconcileResult(spans_unsent=unsent, spans_foreign=stats.dropped_foreign)
    for query in attributed:
        pair = (query.mtaid, query.testid)
        result.span_counts[pair] = result.span_counts.get(pair, 0) + 1
    for pair in index.pairs():
        result.index_counts[pair] = len(index.for_pair(*pair))
    return result
