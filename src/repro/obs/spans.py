"""Span tracing over virtual time.

A :class:`Span` is one named interval of virtual time with attributes;
a :class:`Tracer` hands them out as context managers and keeps the
finished ones.  Because the whole simulation is single-threaded, call
nesting *is* causality: a span opened while another is open becomes its
child, so one probe conversation's tree contains the SMTP commands it
sent, the SPF checks those triggered on the server, and the DNS queries
each check performed — across simulated hosts.

Start and end instants are explicit virtual timestamps (the same values
threaded through every protocol API); a span that is never explicitly
ended closes at its start time.  Span dumps are JSON-lines files with
the same header-record convention as :mod:`repro.core.trace`, so the
``<name>_spans.jsonl`` runner artefact is loadable next to the query
log it must reconcile with (:mod:`repro.obs.reconcile`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

SPAN_FORMAT = "repro-spans"
SPAN_FORMAT_VERSION = 1


class SpanError(Exception):
    """Unreadable or incompatible span dump."""


class Span:
    """One named interval of virtual time, with attributes."""

    __slots__ = ("name", "span_id", "parent_id", "t_start", "t_end", "attrs", "_tracer")

    def __init__(
        self,
        name: str,
        t_start: float,
        span_id: int,
        parent_id: Optional[int],
        attrs: Optional[dict] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs: Dict[str, object] = attrs if attrs is not None else {}
        self._tracer = tracer

    def set(self, **attrs: object) -> "Span":
        """Attach attributes; later values win."""
        self.attrs.update(attrs)
        return self

    def end(self, t_end: float) -> "Span":
        """Close the span at virtual instant ``t_end``."""
        if t_end < self.t_start:
            raise ValueError(
                "span %r ends before it starts (%r < %r)" % (self.name, t_end, self.t_start)
            )
        self.t_end = t_end
        return self

    @property
    def duration(self) -> float:
        return (self.t_end if self.t_end is not None else self.t_start) - self.t_start

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Hot path: this is Tracer._finish inlined (one call per span
        # adds up — see benchmarks/bench_obs_overhead.py).
        if exc is not None:
            self.attrs.setdefault("error", "%s: %s" % (type(exc).__name__, exc))
        if self.t_end is None:
            self.t_end = self.t_start
        tracer = self._tracer
        if tracer is not None:
            stack = tracer._stack
            if stack and stack[-1] is self:
                stack.pop()
            tracer.finished.append(self)
        return False

    def __repr__(self) -> str:
        return "Span(%r, t=[%s..%s], id=%d, parent=%r)" % (
            self.name, self.t_start, self.t_end, self.span_id, self.parent_id
        )


class Tracer:
    """Creates spans and collects the finished ones."""

    enabled = True

    __slots__ = ("finished", "_stack", "_next_id")

    def __init__(self) -> None:
        #: Finished spans, in completion order.
        self.finished: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    def span(self, name: str, t_start: float, **attrs: object) -> Span:
        """Open a span; the innermost still-open span is its parent.

        Use as a context manager::

            with tracer.span("dns.query", t, qname=name) as sp:
                answer, t_done = ...
                sp.set(status=answer.status.value)
                sp.end(t_done)
        """
        parent_id = self._stack[-1].span_id if self._stack else None
        created = Span(name, t_start, self._next_id, parent_id, attrs or {}, tracer=self)
        self._next_id += 1
        self._stack.append(created)
        return created

    def _finish(self, span: Span) -> None:
        # Context managers guarantee LIFO exits; tolerate a foreign span
        # (constructed directly) by leaving the stack alone.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        self.finished.append(span)

    # -- queries ---------------------------------------------------------

    def find(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans, optionally filtered by name."""
        if name is None:
            return list(self.finished)
        return [span for span in self.finished if span.name == name]

    def roots(self) -> List[Span]:
        return [span for span in self.finished if span.parent_id is None]

    def children_index(self) -> Dict[Optional[int], List[Span]]:
        """parent_id -> children in start order, over finished spans."""
        index: Dict[Optional[int], List[Span]] = {}
        for span in self.finished:
            index.setdefault(span.parent_id, []).append(span)
        for offspring in index.values():
            offspring.sort(key=lambda span: (span.t_start, span.span_id))
        return index

    def clear(self) -> None:
        self.finished.clear()

    def __len__(self) -> int:
        return len(self.finished)


class NullSpan(Span):
    """A reusable do-nothing span (returned by :class:`NullTracer`)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("", 0.0, 0, None, attrs={})

    def set(self, **attrs: object) -> "Span":
        return self

    def end(self, t_end: float) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = NullSpan()


class NullTracer(Tracer):
    """The no-op fast path: every span() call returns one shared span."""

    enabled = False

    def span(self, name: str, t_start: float, **attrs: object) -> Span:
        return _NULL_SPAN


# -- rendering ---------------------------------------------------------


def render_span(span: Span) -> str:
    """One line: name, virtual interval, attributes."""
    attrs = " ".join("%s=%s" % (key, _attr_text(value)) for key, value in sorted(span.attrs.items()))
    line = "%s [%0.3f .. %0.3f] (%0.3fs)" % (
        span.name, span.t_start, span.t_end if span.t_end is not None else span.t_start, span.duration
    )
    return "%s %s" % (line, attrs) if attrs else line


def render_tree(root: Span, spans: Iterable[Span]) -> str:
    """An ASCII tree of ``root`` and its descendants within ``spans``."""
    index: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        index.setdefault(span.parent_id, []).append(span)
    for offspring in index.values():
        offspring.sort(key=lambda span: (span.t_start, span.span_id))
    lines = [render_span(root)]

    def walk(span: Span, prefix: str) -> None:
        offspring = index.get(span.span_id, [])
        for position, child in enumerate(offspring):
            last = position == len(offspring) - 1
            lines.append(prefix + ("`- " if last else "|- ") + render_span(child))
            walk(child, prefix + ("   " if last else "|  "))

    walk(root, "")
    return "\n".join(lines)


# -- JSON-lines export/import ------------------------------------------


def _attr_text(value: object) -> str:
    return value if isinstance(value, str) else str(value)


def _attr_json(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def save_spans(spans: Iterable[Span], path: Union[str, Path]) -> int:
    """Write finished spans as JSON lines; returns the record count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps({"format": SPAN_FORMAT, "version": SPAN_FORMAT_VERSION}) + "\n")
        for span in spans:
            record = {
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "t0": span.t_start,
                "t1": span.t_end if span.t_end is not None else span.t_start,
                "attrs": {key: _attr_json(value) for key, value in span.attrs.items()},
            }
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def load_spans(path: Union[str, Path]) -> List[Span]:
    """Read a span dump back; attributes come back JSON-typed."""
    path = Path(path)
    spans: List[Span] = []
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise SpanError("%s: missing span-dump header" % path) from exc
        if not isinstance(header, dict) or header.get("format") != SPAN_FORMAT:
            raise SpanError("%s: expected %s dump, found %r" % (path, SPAN_FORMAT, header))
        if header.get("version") != SPAN_FORMAT_VERSION:
            raise SpanError("%s: unsupported span-dump version %r" % (path, header.get("version")))
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                span = Span(
                    record["name"],
                    float(record["t0"]),
                    int(record["id"]),
                    record["parent"],
                    attrs=dict(record["attrs"]),
                )
                span.end(float(record["t1"]))
            except (KeyError, TypeError, ValueError) as exc:
                raise SpanError("%s:%d: bad span record: %s" % (path, line_number, exc)) from exc
            spans.append(span)
    return spans
