"""SMTP implementation (RFC 5321) over the virtual network.

Provides the command/reply grammar, a server-side session state machine
that receiving MTAs subclass, a client used by both the sending MTA and
the measurement probe, and a minimal RFC 5322 message model (ordered,
case-preserving headers — which DKIM canonicalization depends on).
"""

from repro.smtp.client import SmtpClient
from repro.smtp.errors import SmtpClientError, SmtpError, SmtpProtocolError
from repro.smtp.message import EmailMessage
from repro.smtp.protocol import Command, Mailbox, Reply, parse_command, parse_path
from repro.smtp.server import SmtpServer, SmtpSession

__all__ = [
    "Command",
    "EmailMessage",
    "Mailbox",
    "Reply",
    "SmtpClient",
    "SmtpClientError",
    "SmtpError",
    "SmtpProtocolError",
    "SmtpServer",
    "SmtpSession",
    "parse_command",
    "parse_path",
]
