"""SMTP client.

Used by the sending MTA (full delivery) and by the measurement probe
(which walks the envelope commands with long sleeps and then disconnects
before transmitting a message — the paper's no-delivery guarantee).

Every method takes and returns virtual timestamps, mirroring the rest of
the stack.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.errors import NetError
from repro.net.network import Network, SMTP_PORT, TcpChannel
from repro.smtp.errors import SmtpClientError
from repro.smtp.message import EmailMessage
from repro.smtp.protocol import CRLF, Reply, dot_stuff


class SmtpClient:
    """A client-side SMTP conversation over one TCP connection."""

    def __init__(self, channel: TcpChannel, greeting: Reply) -> None:
        self.channel = channel
        self.greeting = greeting
        self.transcript: list = [("S", greeting, channel.t_established)]

    # -- connection -------------------------------------------------------

    @classmethod
    def connect(
        cls, network: Network, src_ip: str, dst_ip: str, t_connect: float, port: int = SMTP_PORT
    ) -> Tuple["SmtpClient", float]:
        """Open a connection; returns the client and the time the banner
        finished arriving.  Raises :class:`SmtpClientError` when the server
        refuses the connection or greets with a failure code."""
        try:
            channel = network.connect_tcp(src_ip, dst_ip, port, t_connect)
        except NetError as exc:
            raise SmtpClientError("connect failed: %s" % exc) from exc
        if channel.greeting is None:
            raise SmtpClientError("no SMTP banner")
        greeting = Reply.from_bytes(channel.greeting)
        client = cls(channel, greeting)
        if not greeting.is_success:
            raise SmtpClientError("unfriendly banner: %s" % greeting.text, greeting)
        return client, channel.t_established

    # -- command rounds -----------------------------------------------------

    def command(self, line: str, t_send: float) -> Tuple[Reply, float]:
        """Send one command line and parse the reply."""
        data = (line + CRLF).encode("utf-8")
        raw, t_reply = self.channel.request(data, t_send)
        if raw is None:
            raise SmtpClientError("server closed or stayed silent after %r" % line)
        reply = Reply.from_bytes(raw)
        self.transcript.append(("C", line, t_send))
        self.transcript.append(("S", reply, t_reply))
        return reply, t_reply

    def ehlo(self, domain: str, t: float) -> Tuple[Reply, float]:
        return self.command("EHLO %s" % domain, t)

    def helo(self, domain: str, t: float) -> Tuple[Reply, float]:
        return self.command("HELO %s" % domain, t)

    def ehlo_or_helo(self, domain: str, t: float) -> Tuple[Reply, float]:
        """EHLO, falling back to HELO on a 5xx, as the paper's probe does."""
        reply, t = self.ehlo(domain, t)
        if reply.is_permanent_failure:
            reply, t = self.helo(domain, t)
        return reply, t

    def mail(self, sender: Optional[str], t: float) -> Tuple[Reply, float]:
        path = "<%s>" % sender if sender else "<>"
        return self.command("MAIL FROM:%s" % path, t)

    def rcpt(self, recipient: str, t: float) -> Tuple[Reply, float]:
        return self.command("RCPT TO:<%s>" % recipient, t)

    def data_command(self, t: float) -> Tuple[Reply, float]:
        return self.command("DATA", t)

    def send_message(self, message: EmailMessage, t: float) -> Tuple[Reply, float]:
        """Transmit message content and the terminating dot; expects the
        server's final disposition reply."""
        body = dot_stuff(message.to_text())
        data = (body + CRLF + "." + CRLF).encode("utf-8")
        raw, t_reply = self.channel.request(data, t)
        if raw is None:
            raise SmtpClientError("no reply to message data")
        reply = Reply.from_bytes(raw)
        self.transcript.append(("C", "<message: %d bytes>" % len(data), t))
        self.transcript.append(("S", reply, t_reply))
        return reply, t_reply

    def quit(self, t: float) -> Tuple[Reply, float]:
        reply, t_done = self.command("QUIT", t)
        self.channel.close(t_done)
        return reply, t_done

    def abort(self, t: float) -> None:
        """Disconnect without QUIT — the probe's no-delivery escape hatch."""
        self.channel.close(t)
