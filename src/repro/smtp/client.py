"""SMTP client.

Used by the sending MTA (full delivery) and by the measurement probe
(which walks the envelope commands with long sleeps and then disconnects
before transmitting a message — the paper's no-delivery guarantee).

Every method takes and returns virtual timestamps, mirroring the rest of
the stack.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

from repro.net.errors import NetError
from repro.net.network import Network, SMTP_PORT, TcpChannel
from repro.obs import Observability, ensure_obs
from repro.smtp.errors import SmtpClientError
from repro.smtp.message import EmailMessage
from repro.smtp.protocol import CRLF, Reply, dot_stuff


@lru_cache(maxsize=None)
def _command_labels(verb: str, code_class: int) -> tuple:
    # Verbs and reply classes form a tiny closed set; memoizing keeps the
    # per-command hot path from rebuilding the same label tuples.
    return (("command", verb), ("code_class", "%dxx" % code_class))


@lru_cache(maxsize=None)
def _verb_labels(verb: str) -> tuple:
    return (("command", verb),)


class SmtpClient:
    """A client-side SMTP conversation over one TCP connection."""

    def __init__(
        self, channel: TcpChannel, greeting: Reply, obs: Optional[Observability] = None
    ) -> None:
        self.channel = channel
        self.greeting = greeting
        self.obs = ensure_obs(obs)
        self.transcript: list = [("S", greeting, channel.t_established)]

    # -- connection -------------------------------------------------------

    @classmethod
    def connect(
        cls,
        network: Network,
        src_ip: str,
        dst_ip: str,
        t_connect: float,
        port: int = SMTP_PORT,
        obs: Optional[Observability] = None,
    ) -> Tuple["SmtpClient", float]:
        """Open a connection; returns the client and the time the banner
        finished arriving.  Raises :class:`SmtpClientError` when the server
        refuses the connection or greets with a failure code."""
        obs = ensure_obs(obs)
        metrics = obs.metrics
        try:
            channel = network.connect_tcp(src_ip, dst_ip, port, t_connect)
        except NetError as exc:
            metrics.counter("smtp_client_connects_total", (("outcome", "refused"),), t=t_connect)
            raise SmtpClientError("connect failed: %s" % exc) from exc
        if channel.greeting is None:
            metrics.counter("smtp_client_connects_total", (("outcome", "nobanner"),), t=t_connect)
            raise SmtpClientError("no SMTP banner")
        greeting = Reply.from_bytes(channel.greeting)
        client = cls(channel, greeting, obs=obs)
        if not greeting.is_success:
            metrics.counter(
                "smtp_client_connects_total", (("outcome", "unfriendly"),), t=channel.t_established
            )
            raise SmtpClientError("unfriendly banner: %s" % greeting.text, greeting)
        metrics.counter("smtp_client_connects_total", (("outcome", "ok"),), t=channel.t_established)
        return client, channel.t_established

    # -- command rounds -----------------------------------------------------

    def command(self, line: str, t_send: float) -> Tuple[Reply, float]:
        """Send one command line and parse the reply."""
        verb = line.split(None, 1)[0].upper() if line else ""
        obs = self.obs
        with obs.tracer.span("smtp.command", t_send, command=verb) as span:
            data = (line + CRLF).encode("utf-8")
            raw, t_reply = self.channel.request(data, t_send)
            if raw is None:
                raise SmtpClientError("server closed or stayed silent after %r" % line)
            reply = Reply.from_bytes(raw)
            span.set(code=reply.code)
            span.end(t_reply)
        obs.metrics.counter(
            "smtp_client_commands_total", _command_labels(verb, reply.code // 100), t=t_reply
        )
        obs.metrics.observe(
            "smtp_client_command_seconds", t_reply - t_send, _verb_labels(verb), t=t_reply
        )
        self.transcript.append(("C", line, t_send))
        self.transcript.append(("S", reply, t_reply))
        return reply, t_reply

    def ehlo(self, domain: str, t: float) -> Tuple[Reply, float]:
        return self.command("EHLO %s" % domain, t)

    def helo(self, domain: str, t: float) -> Tuple[Reply, float]:
        return self.command("HELO %s" % domain, t)

    def ehlo_or_helo(self, domain: str, t: float) -> Tuple[Reply, float]:
        """EHLO, falling back to HELO on a 5xx, as the paper's probe does."""
        reply, t = self.ehlo(domain, t)
        if reply.is_permanent_failure:
            reply, t = self.helo(domain, t)
        return reply, t

    def mail(self, sender: Optional[str], t: float) -> Tuple[Reply, float]:
        path = "<%s>" % sender if sender else "<>"
        return self.command("MAIL FROM:%s" % path, t)

    def rcpt(self, recipient: str, t: float) -> Tuple[Reply, float]:
        return self.command("RCPT TO:<%s>" % recipient, t)

    def data_command(self, t: float) -> Tuple[Reply, float]:
        return self.command("DATA", t)

    def send_message(self, message: EmailMessage, t: float) -> Tuple[Reply, float]:
        """Transmit message content and the terminating dot; expects the
        server's final disposition reply."""
        body = dot_stuff(message.to_text())
        data = (body + CRLF + "." + CRLF).encode("utf-8")
        obs = self.obs
        with obs.tracer.span("smtp.command", t, command="MESSAGE", bytes=len(data)) as span:
            raw, t_reply = self.channel.request(data, t)
            if raw is None:
                raise SmtpClientError("no reply to message data")
            reply = Reply.from_bytes(raw)
            span.set(code=reply.code)
            span.end(t_reply)
        obs.metrics.counter(
            "smtp_client_commands_total", _command_labels("MESSAGE", reply.code // 100), t=t_reply
        )
        obs.metrics.observe(
            "smtp_client_command_seconds", t_reply - t, _verb_labels("MESSAGE"), t=t_reply
        )
        self.transcript.append(("C", "<message: %d bytes>" % len(data), t))
        self.transcript.append(("S", reply, t_reply))
        return reply, t_reply

    def quit(self, t: float) -> Tuple[Reply, float]:
        reply, t_done = self.command("QUIT", t)
        self.channel.close(t_done)
        return reply, t_done

    def abort(self, t: float) -> None:
        """Disconnect without QUIT — the probe's no-delivery escape hatch."""
        self.channel.close(t)
