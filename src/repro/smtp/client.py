"""SMTP client.

Used by the sending MTA (full delivery) and by the measurement probe
(which walks the envelope commands with long sleeps and then disconnects
before transmitting a message — the paper's no-delivery guarantee).

Every method takes and returns virtual timestamps, mirroring the rest of
the stack.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

from repro.net.errors import NetError
from repro.net.network import Network, SMTP_PORT, TcpChannel
from repro.net.retry import RetryPolicy
from repro.obs import Observability, ensure_obs
from repro.smtp.errors import SmtpClientError
from repro.smtp.message import EmailMessage
from repro.smtp.protocol import CRLF, Reply, dot_stuff


@lru_cache(maxsize=None)
def _command_labels(verb: str, code_class: int) -> tuple:
    # Verbs and reply classes form a tiny closed set; memoizing keeps the
    # per-command hot path from rebuilding the same label tuples.
    return (("command", verb), ("code_class", "%dxx" % code_class))


@lru_cache(maxsize=None)
def _verb_labels(verb: str) -> tuple:
    return (("command", verb),)


class SmtpClient:
    """A client-side SMTP conversation over one TCP connection."""

    def __init__(
        self, channel: TcpChannel, greeting: Reply, obs: Optional[Observability] = None
    ) -> None:
        self.channel = channel
        self.greeting = greeting
        self.obs = ensure_obs(obs)
        self.transcript: list = [("S", greeting, channel.t_established)]

    # -- connection -------------------------------------------------------

    @classmethod
    def connect(
        cls,
        network: Network,
        src_ip: str,
        dst_ip: str,
        t_connect: float,
        port: int = SMTP_PORT,
        obs: Optional[Observability] = None,
        retry: Optional[RetryPolicy] = None,
        banner_timeout: Optional[float] = None,
    ) -> Tuple["SmtpClient", float]:
        """Open a connection; returns the client and the time the banner
        finished arriving.  Raises :class:`SmtpClientError` when the server
        refuses the connection or greets with a failure code.

        ``retry`` re-dials per its attempts/backoff schedule (in virtual
        time) before giving up; ``banner_timeout`` bounds how long the
        client waits for the 220 banner — a banner that would arrive
        later (or never) is a ``nobanner`` failure at
        ``t_connect + banner_timeout``.  Both default to the historical
        single-attempt, wait-forever behaviour.
        """
        obs = ensure_obs(obs)
        attempts = retry.attempts if retry is not None else 1
        t = t_connect
        for attempt in range(1, attempts + 1):
            if retry is not None:
                t += retry.delay_before(attempt)
            try:
                return cls._connect_once(network, src_ip, dst_ip, t, port, obs, banner_timeout)
            except SmtpClientError as exc:
                if attempt == attempts:
                    raise
                if exc.t is not None:
                    t = exc.t
        raise AssertionError("unreachable")  # pragma: no cover

    @classmethod
    def _connect_once(
        cls,
        network: Network,
        src_ip: str,
        dst_ip: str,
        t_connect: float,
        port: int,
        obs: Observability,
        banner_timeout: Optional[float],
    ) -> Tuple["SmtpClient", float]:
        metrics = obs.metrics
        try:
            channel = network.connect_tcp(src_ip, dst_ip, port, t_connect)
        except NetError as exc:
            # Stamp every outcome with the time it was *known*: for a
            # refusal that is the RST arrival the network reported, not
            # the dial time.
            t_refused = exc.t if exc.t is not None else t_connect
            metrics.counter("smtp_client_connects_total", (("outcome", "refused"),), t=t_refused)
            raise SmtpClientError("connect failed: %s" % exc, t=t_refused) from exc
        banner_deadline = None
        if banner_timeout is not None:
            banner_deadline = t_connect + banner_timeout
        if channel.greeting is None or (
            banner_deadline is not None and channel.t_established > banner_deadline
        ):
            # Either the server never sends a banner or it would arrive
            # after we stopped listening; both are known only once the
            # client has waited out its deadline (with no deadline, once
            # the silent accept completed).
            t_nobanner = banner_deadline if banner_deadline is not None else channel.t_established
            channel.close(t_nobanner)
            metrics.counter("smtp_client_connects_total", (("outcome", "nobanner"),), t=t_nobanner)
            raise SmtpClientError("no SMTP banner", t=t_nobanner)
        greeting = Reply.from_bytes(channel.greeting)
        client = cls(channel, greeting, obs=obs)
        if not greeting.is_success:
            metrics.counter(
                "smtp_client_connects_total", (("outcome", "unfriendly"),), t=channel.t_established
            )
            raise SmtpClientError(
                "unfriendly banner: %s" % greeting.text, greeting, t=channel.t_established
            )
        metrics.counter("smtp_client_connects_total", (("outcome", "ok"),), t=channel.t_established)
        return client, channel.t_established

    # -- command rounds -----------------------------------------------------

    def command(self, line: str, t_send: float) -> Tuple[Reply, float]:
        """Send one command line and parse the reply."""
        verb = line.split(None, 1)[0].upper() if line else ""
        obs = self.obs
        with obs.tracer.span("smtp.command", t_send, command=verb) as span:
            data = (line + CRLF).encode("utf-8")
            try:
                raw, t_reply = self.channel.request(data, t_send)
            except NetError as exc:
                t_lost = exc.t if exc.t is not None else t_send
                span.set(error=str(exc)).end(t_lost)
                raise SmtpClientError(
                    "connection lost after %r: %s" % (line, exc), t=t_lost
                ) from exc
            if raw is None:
                raise SmtpClientError("server closed or stayed silent after %r" % line, t=t_reply)
            reply = Reply.from_bytes(raw)
            span.set(code=reply.code)
            span.end(t_reply)
        obs.metrics.counter(
            "smtp_client_commands_total", _command_labels(verb, reply.code // 100), t=t_reply
        )
        obs.metrics.observe(
            "smtp_client_command_seconds", t_reply - t_send, _verb_labels(verb), t=t_reply
        )
        self.transcript.append(("C", line, t_send))
        self.transcript.append(("S", reply, t_reply))
        return reply, t_reply

    def ehlo(self, domain: str, t: float) -> Tuple[Reply, float]:
        return self.command("EHLO %s" % domain, t)

    def helo(self, domain: str, t: float) -> Tuple[Reply, float]:
        return self.command("HELO %s" % domain, t)

    def ehlo_or_helo(self, domain: str, t: float) -> Tuple[Reply, float]:
        """EHLO, falling back to HELO on a 5xx, as the paper's probe does."""
        reply, t = self.ehlo(domain, t)
        if reply.is_permanent_failure:
            reply, t = self.helo(domain, t)
        return reply, t

    def mail(self, sender: Optional[str], t: float) -> Tuple[Reply, float]:
        path = "<%s>" % sender if sender else "<>"
        return self.command("MAIL FROM:%s" % path, t)

    def rcpt(self, recipient: str, t: float) -> Tuple[Reply, float]:
        return self.command("RCPT TO:<%s>" % recipient, t)

    def data_command(self, t: float) -> Tuple[Reply, float]:
        return self.command("DATA", t)

    def send_message(self, message: EmailMessage, t: float) -> Tuple[Reply, float]:
        """Transmit message content and the terminating dot; expects the
        server's final disposition reply."""
        body = dot_stuff(message.to_text())
        data = (body + CRLF + "." + CRLF).encode("utf-8")
        obs = self.obs
        with obs.tracer.span("smtp.command", t, command="MESSAGE", bytes=len(data)) as span:
            try:
                raw, t_reply = self.channel.request(data, t)
            except NetError as exc:
                t_lost = exc.t if exc.t is not None else t
                span.set(error=str(exc)).end(t_lost)
                raise SmtpClientError("connection lost mid-message: %s" % exc, t=t_lost) from exc
            if raw is None:
                raise SmtpClientError("no reply to message data", t=t_reply)
            reply = Reply.from_bytes(raw)
            span.set(code=reply.code)
            span.end(t_reply)
        obs.metrics.counter(
            "smtp_client_commands_total", _command_labels("MESSAGE", reply.code // 100), t=t_reply
        )
        obs.metrics.observe(
            "smtp_client_command_seconds", t_reply - t, _verb_labels("MESSAGE"), t=t_reply
        )
        self.transcript.append(("C", "<message: %d bytes>" % len(data), t))
        self.transcript.append(("S", reply, t_reply))
        return reply, t_reply

    def quit(self, t: float) -> Tuple[Reply, float]:
        reply, t_done = self.command("QUIT", t)
        self.channel.close(t_done)
        return reply, t_done

    def abort(self, t: float) -> None:
        """Disconnect without QUIT — the probe's no-delivery escape hatch."""
        self.channel.close(t)
