"""SMTP error types."""


class SmtpError(Exception):
    """Base class for SMTP errors."""


class SmtpProtocolError(SmtpError):
    """A peer violated the SMTP grammar."""


class SmtpClientError(SmtpError):
    """The client received an unexpected or error reply.

    Carries the :class:`~repro.smtp.protocol.Reply` when one was parsed.
    """

    def __init__(self, message: str, reply=None) -> None:
        super().__init__(message)
        self.reply = reply
