"""SMTP error types."""


class SmtpError(Exception):
    """Base class for SMTP errors."""


class SmtpProtocolError(SmtpError):
    """A peer violated the SMTP grammar."""


class SmtpClientError(SmtpError):
    """The client received an unexpected or error reply.

    Carries the :class:`~repro.smtp.protocol.Reply` when one was parsed,
    and ``t`` — the virtual time the failure was known — when the error
    corresponds to an on-the-wire observation, so callers can advance
    their clocks by what the failure actually cost.
    """

    def __init__(self, message: str, reply=None, t=None) -> None:
        super().__init__(message)
        self.reply = reply
        self.t = t
