"""Minimal RFC 5322 message model.

Headers are an ordered list of ``(name, value)`` pairs with original casing
and whitespace preserved — DKIM's canonicalization and signature coverage
depend on byte-exact header reproduction, so nothing here normalises
anything unless explicitly asked to.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

CRLF = "\r\n"


class EmailMessage:
    """An email message: ordered headers plus a body.

    The body is stored as text with CRLF line endings (converted on input).
    """

    def __init__(
        self,
        headers: Optional[Iterable[Tuple[str, str]]] = None,
        body: str = "",
    ) -> None:
        self.headers: List[Tuple[str, str]] = list(headers) if headers else []
        self.body = _normalize_newlines(body)

    # -- header access ----------------------------------------------------

    def get_header(self, name: str) -> Optional[str]:
        """The value of the first header named ``name`` (case-insensitive)."""
        wanted = name.lower()
        for header_name, value in self.headers:
            if header_name.lower() == wanted:
                return value
        return None

    def get_all(self, name: str) -> List[str]:
        wanted = name.lower()
        return [value for header_name, value in self.headers if header_name.lower() == wanted]

    def add_header(self, name: str, value: str) -> None:
        self.headers.append((name, value))

    def prepend_header(self, name: str, value: str) -> None:
        """Insert at the top — where trace and DKIM-Signature headers go."""
        self.headers.insert(0, (name, value))

    def remove_headers(self, name: str) -> None:
        wanted = name.lower()
        self.headers = [(n, v) for n, v in self.headers if n.lower() != wanted]

    # -- serialisation ------------------------------------------------------

    def to_text(self) -> str:
        head = CRLF.join("%s: %s" % (name, value) for name, value in self.headers)
        return head + CRLF + CRLF + self.body

    def to_bytes(self) -> bytes:
        return self.to_text().encode("utf-8")

    @classmethod
    def from_text(cls, text: str) -> "EmailMessage":
        text = _normalize_newlines(text)
        if text.startswith(CRLF):
            # No headers at all: the message begins with the blank separator.
            return cls(body=text[len(CRLF) :])
        head, separator, body = text.partition(CRLF + CRLF)
        message = cls(body=body if separator else "")
        current_name: Optional[str] = None
        current_value: List[str] = []
        for line in head.split(CRLF):
            if not line:
                continue
            if line[0] in " \t" and current_name is not None:
                # Folded continuation line: preserve it verbatim.
                current_value.append(CRLF + line)
                continue
            if current_name is not None:
                message.headers.append((current_name, "".join(current_value)))
            name, _, value = line.partition(":")
            current_name = name
            current_value = [value.lstrip(" ")]
        if current_name is not None:
            message.headers.append((current_name, "".join(current_value)))
        return message

    def __repr__(self) -> str:
        subject = self.get_header("Subject")
        return "EmailMessage(%d headers, %d body bytes%s)" % (
            len(self.headers),
            len(self.body),
            ", subject=%r" % subject if subject else "",
        )


def _normalize_newlines(text: str) -> str:
    """Convert bare LF / CR to CRLF without doubling existing CRLFs."""
    return text.replace(CRLF, "\n").replace("\r", "\n").replace("\n", CRLF)
