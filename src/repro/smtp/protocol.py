"""SMTP grammar: commands, replies, and mailbox paths (RFC 5321 s4.1).

The parsers here are deliberately tolerant in what they accept (optional
whitespace after the colon in ``MAIL FROM:``, case-insensitive verbs) and
strict in what they emit, mirroring how interoperable MTAs behave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.smtp.errors import SmtpProtocolError

CRLF = "\r\n"


@dataclass(frozen=True)
class Mailbox:
    """An envelope address: local part plus domain.

    The domain is the input to SPF's ``MAIL FROM`` identity check; the
    measurement harness embeds its test identifiers there.
    """

    local: str
    domain: str

    @property
    def address(self) -> str:
        return "%s@%s" % (self.local, self.domain)

    def __str__(self) -> str:
        return self.address

    @classmethod
    def parse(cls, text: str) -> "Mailbox":
        if "@" not in text:
            raise SmtpProtocolError("mailbox without @: %r" % text)
        local, _, domain = text.rpartition("@")
        if not local or not domain:
            raise SmtpProtocolError("malformed mailbox: %r" % text)
        return cls(local, domain)


@dataclass(frozen=True)
class Reply:
    """An SMTP reply: a 3-digit code and one or more text lines."""

    code: int
    lines: Tuple[str, ...]

    def __init__(self, code: int, text: Union[str, Sequence[str]] = ()) -> None:
        if not 200 <= code <= 599:
            raise SmtpProtocolError("reply code out of range: %r" % code)
        if isinstance(text, str):
            lines: Tuple[str, ...] = (text,)
        else:
            lines = tuple(text) or ("",)
        object.__setattr__(self, "code", int(code))
        object.__setattr__(self, "lines", lines)

    @property
    def text(self) -> str:
        return " ".join(self.lines)

    @property
    def is_success(self) -> bool:
        return 200 <= self.code < 300

    @property
    def is_intermediate(self) -> bool:
        return 300 <= self.code < 400

    @property
    def is_transient_failure(self) -> bool:
        return 400 <= self.code < 500

    @property
    def is_permanent_failure(self) -> bool:
        return 500 <= self.code < 600

    def to_bytes(self) -> bytes:
        out: List[str] = []
        for index, line in enumerate(self.lines):
            separator = " " if index == len(self.lines) - 1 else "-"
            out.append("%03d%s%s" % (self.code, separator, line))
        return (CRLF.join(out) + CRLF).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Reply":
        text = data.decode("utf-8", "replace")
        lines = [line for line in text.split(CRLF) if line]
        if not lines:
            raise SmtpProtocolError("empty reply")
        code: Optional[int] = None
        parts: List[str] = []
        for line in lines:
            if len(line) < 3 or not line[:3].isdigit():
                raise SmtpProtocolError("malformed reply line: %r" % line)
            line_code = int(line[:3])
            if code is None:
                code = line_code
            elif line_code != code:
                raise SmtpProtocolError("inconsistent codes in multiline reply")
            parts.append(line[4:] if len(line) > 3 else "")
        assert code is not None
        return cls(code, parts)


@dataclass(frozen=True)
class Command:
    """A parsed SMTP command line."""

    verb: str
    argument: str

    def to_line(self) -> str:
        return "%s %s" % (self.verb, self.argument) if self.argument else self.verb


def parse_command(line: str) -> Command:
    """Parse one command line into verb (upper-cased) and raw argument."""
    stripped = line.rstrip(CRLF)
    if not stripped:
        raise SmtpProtocolError("empty command line")
    verb, _, argument = stripped.partition(" ")
    return Command(verb.upper(), argument.strip())


def parse_path(argument: str, keyword: str) -> Optional[Mailbox]:
    """Parse a ``FROM:<path>`` / ``TO:<path>`` argument.

    Returns ``None`` for the null reverse-path ``<>`` (used by bounces).
    ESMTP parameters after the path are accepted and ignored.
    """
    text = argument.strip()
    prefix = keyword.upper() + ":"
    if not text.upper().startswith(prefix):
        raise SmtpProtocolError("expected %r in %r" % (prefix, argument))
    rest = text[len(prefix) :].strip()
    if not rest.startswith("<"):
        # Some real clients omit the angle brackets; tolerate it.
        path = rest.split(" ", 1)[0]
    else:
        end = rest.find(">")
        if end < 0:
            raise SmtpProtocolError("unterminated path in %r" % argument)
        path = rest[1:end]
    if not path:
        return None
    if ":" in path and "@" in path:
        # Strip source routes: <@relay:user@dom>
        path = path.rsplit(":", 1)[1]
    return Mailbox.parse(path)


def dot_stuff(body: str) -> str:
    """Apply RFC 5321 section 4.5.2 leading-dot doubling for transmission."""
    lines = body.split(CRLF)
    return CRLF.join("." + line if line.startswith(".") else line for line in lines)


def dot_unstuff(body: str) -> str:
    """Reverse :func:`dot_stuff` on reception."""
    lines = body.split(CRLF)
    return CRLF.join(line[1:] if line.startswith("..") else line for line in lines)
