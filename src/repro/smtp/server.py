"""Server-side SMTP session state machine.

:class:`SmtpSession` implements the virtual network's TCP-session
duck-type and the RFC 5321 command sequence.  Receiving MTAs subclass it
and override the ``on_*`` hooks; each hook returns ``(Reply,
processing_delay_seconds)``, where the delay models server-side work such
as a synchronous SPF validation performed before answering ``MAIL`` (this
is how validation time becomes visible to the measurement harness).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, List, Optional, Tuple

from repro.net.faults import FaultKind
from repro.net.network import Network, SMTP_PORT
from repro.obs import NULL_OBS
from repro.smtp.errors import SmtpProtocolError
from repro.smtp.message import EmailMessage
from repro.smtp.protocol import CRLF, Mailbox, Reply, dot_unstuff, parse_command, parse_path

HookResult = Tuple[Reply, float]


@lru_cache(maxsize=None)
def _verb_labels(verb: str) -> tuple:
    # The command verbs form a tiny closed set; memoizing keeps the
    # per-command hot path from rebuilding the same label tuple.
    return (("command", verb),)


class SmtpSession:
    """One SMTP connection on the server side.

    State progresses ``connected -> greeted -> mail -> rcpt -> data``;
    RSET and a fresh MAIL both reset the envelope.  Hooks subclasses
    typically override:

    ``on_ehlo`` / ``on_helo``
        the peer introduced itself; the name is kept in ``helo_name``.
    ``on_mail`` / ``on_rcpt`` / ``on_data_command``
        envelope handling — this is where SPF-during-SMTP happens.
    ``on_message``
        a complete message arrived (after the ``.`` terminator).
    ``on_disconnect``
        the peer closed or reset the connection.
    """

    banner_host = "mx.invalid"
    #: Observability bundle; subclasses bound to an instrumented MTA
    #: overwrite this per instance with the testbed-wide bundle.
    obs = NULL_OBS
    #: Optional :class:`~repro.net.faults.FaultPlan` for the banner
    #: kinds; receiving MTAs overwrite this per instance from their
    #: network, the same way ``obs`` is threaded.
    faults = None

    def __init__(self, client_ip: str, t_accept: float) -> None:
        self.client_ip = client_ip
        self.t_accept = t_accept
        self.helo_name: Optional[str] = None
        self.used_esmtp = False
        self.mail_from: Optional[Mailbox] = None
        self.rcpt_to: List[Mailbox] = []
        self._buffer = ""
        self._in_data = False
        self._data_lines: List[str] = []
        self._quit = False

    # -- TCP session duck-type ------------------------------------------

    def on_connect(self, t: float):
        self.obs.metrics.counter("smtp_server_sessions_total", t=t)
        if self.faults is not None:
            if self.faults.inject(FaultKind.BANNER_ABSENT, self.client_ip, self.banner_host, t):
                # Accept silently and never greet; the client gives up
                # per its banner timeout.
                return None
            rule = self.faults.inject(
                FaultKind.BANNER_DELAY, self.client_ip, self.banner_host, t
            )
            if rule is not None:
                reply, _ = self.on_banner(t + rule.param)
                return reply.to_bytes(), rule.param
        reply, _ = self.on_banner(t)
        return reply.to_bytes()

    def on_data(self, data: bytes, t: float) -> Tuple[Optional[bytes], float]:
        self._buffer += data.decode("utf-8", "replace")
        replies = bytearray()
        total_delay = 0.0
        while CRLF in self._buffer:
            line, self._buffer = self._buffer.split(CRLF, 1)
            if self._in_data:
                result = self._data_line(line, t + total_delay)
            else:
                result = self._command_line(line, t + total_delay)
            if result is not None:
                reply, delay = result
                total_delay += delay
                replies += reply.to_bytes()
        if not replies:
            return None, 0.0
        return bytes(replies), total_delay

    def on_close(self, t: float) -> None:
        self.on_disconnect(t)

    # -- dispatch -----------------------------------------------------

    def _command_line(self, line: str, t: float) -> Optional[HookResult]:
        try:
            command = parse_command(line)
        except SmtpProtocolError:
            return Reply(500, "Syntax error"), 0.0
        # The span opens before dispatch so hook-triggered work (an SPF
        # check and its DNS queries, say) nests underneath it.
        obs = self.obs
        with obs.tracer.span("smtp.server.command", t, command=command.verb) as span:
            result = self._dispatch(command, t)
            if result is not None:
                reply, delay = result
                span.set(code=reply.code)
                span.end(t + delay)
                labels = _verb_labels(command.verb)
                obs.metrics.counter("smtp_server_commands_total", labels, t=t + delay)
                obs.metrics.observe("smtp_server_processing_seconds", delay, labels, t=t + delay)
        return result

    def _dispatch(self, command, t: float) -> Optional[HookResult]:
        verb = command.verb
        if verb == "EHLO":
            self.used_esmtp = True
            self.helo_name = command.argument or None
            self._reset_envelope()
            return self.on_ehlo(command.argument, t)
        if verb == "HELO":
            self.used_esmtp = False
            self.helo_name = command.argument or None
            self._reset_envelope()
            return self.on_helo(command.argument, t)
        if verb == "MAIL":
            return self._mail(command.argument, t)
        if verb == "RCPT":
            return self._rcpt(command.argument, t)
        if verb == "DATA":
            return self._data(t)
        if verb == "RSET":
            self._reset_envelope()
            return self.on_rset(t)
        if verb == "NOOP":
            return Reply(250, "OK"), 0.0
        if verb == "QUIT":
            self._quit = True
            return self.on_quit(t)
        if verb in ("VRFY", "EXPN", "HELP"):
            return Reply(502, "Command not implemented"), 0.0
        return Reply(500, "Command unrecognized"), 0.0

    def _mail(self, argument: str, t: float) -> HookResult:
        if self.helo_name is None:
            return Reply(503, "Send EHLO/HELO first"), 0.0
        if self.mail_from is not None:
            return Reply(503, "Nested MAIL command"), 0.0
        try:
            mailbox = parse_path(argument, "FROM")
        except SmtpProtocolError:
            return Reply(501, "Syntax error in MAIL"), 0.0
        reply, delay = self.on_mail(mailbox, t)
        if reply.is_success:
            self.mail_from = mailbox
        return reply, delay

    def _rcpt(self, argument: str, t: float) -> HookResult:
        if self.mail_from is None:
            return Reply(503, "Need MAIL before RCPT"), 0.0
        try:
            mailbox = parse_path(argument, "TO")
        except SmtpProtocolError:
            return Reply(501, "Syntax error in RCPT"), 0.0
        if mailbox is None:
            return Reply(501, "Null recipient"), 0.0
        reply, delay = self.on_rcpt(mailbox, t)
        if reply.is_success:
            self.rcpt_to.append(mailbox)
        return reply, delay

    def _data(self, t: float) -> HookResult:
        if not self.rcpt_to:
            return Reply(503, "Need RCPT before DATA"), 0.0
        reply, delay = self.on_data_command(t)
        if reply.is_intermediate:
            self._in_data = True
            self._data_lines = []
        return reply, delay

    def _data_line(self, line: str, t: float) -> Optional[HookResult]:
        if line == ".":
            self._in_data = False
            text = dot_unstuff(CRLF.join(self._data_lines))
            message = EmailMessage.from_text(text)
            self._data_lines = []
            obs = self.obs
            with obs.tracer.span("smtp.server.message", t, bytes=len(text)) as span:
                result = self.on_message(message, t)
                reply, delay = result
                span.set(code=reply.code)
                span.end(t + delay)
            obs.metrics.counter("smtp_server_messages_total", (("code", str(reply.code)),), t=t + delay)
            self._reset_envelope()
            return result
        self._data_lines.append(line)
        return None

    def _reset_envelope(self) -> None:
        self.mail_from = None
        self.rcpt_to = []
        self._in_data = False
        self._data_lines = []

    # -- hooks (defaults accept everything) -------------------------------

    def on_banner(self, t: float) -> HookResult:
        return Reply(220, "%s ESMTP service ready" % self.banner_host), 0.0

    def on_ehlo(self, domain: str, t: float) -> HookResult:
        return Reply(250, [self.banner_host, "8BITMIME", "SIZE 10485760"]), 0.0

    def on_helo(self, domain: str, t: float) -> HookResult:
        return Reply(250, self.banner_host), 0.0

    def on_mail(self, mailbox: Optional[Mailbox], t: float) -> HookResult:
        return Reply(250, "OK"), 0.0

    def on_rcpt(self, mailbox: Mailbox, t: float) -> HookResult:
        return Reply(250, "OK"), 0.0

    def on_data_command(self, t: float) -> HookResult:
        return Reply(354, "End data with <CRLF>.<CRLF>"), 0.0

    def on_message(self, message: EmailMessage, t: float) -> HookResult:
        return Reply(250, "OK: queued"), 0.0

    def on_rset(self, t: float) -> HookResult:
        return Reply(250, "OK"), 0.0

    def on_quit(self, t: float) -> HookResult:
        return Reply(221, "Bye"), 0.0

    def on_disconnect(self, t: float) -> None:
        """The peer went away; subclasses use this for deferred work."""


class SmtpServer:
    """Binds a session factory to one or more listening addresses."""

    def __init__(self, session_factory: Callable[[str, float], SmtpSession]) -> None:
        self.session_factory = session_factory

    def attach(self, network: Network, *addresses: str, port: int = SMTP_PORT) -> None:
        for address in addresses:
            network.listen_tcp(address, port, self.session_factory)
