"""Sender Policy Framework (RFC 7208).

A complete SPF implementation: record parsing, macro expansion, and a
``check_host`` evaluator that performs its DNS lookups through a
:class:`repro.dns.Resolver` with explicit virtual timestamps.

The evaluator is configurable along every axis the paper measures in the
wild (Section 7): lookup-limit enforcement, void-lookup limits, syntax
strictness, multiple-record handling, serial versus parallel lookups, the
illegal A/AAAA fallback after a failed ``mx`` lookup, and the per-``mx``
address-lookup ceiling.  ``SpfConfig()`` with no arguments is RFC-strict.
"""

from repro.spf.errors import SpfError, SpfPermError, SpfSyntaxError, SpfTempError
from repro.spf.evaluator import SpfConfig, SpfEvaluator
from repro.spf.macros import MacroContext, expand_macros
from repro.spf.parser import parse_record
from repro.spf.result import SpfCheckOutcome, SpfResult
from repro.spf.terms import (
    Directive,
    Mechanism,
    MechanismKind,
    Modifier,
    Qualifier,
    SpfRecord,
)

__all__ = [
    "Directive",
    "MacroContext",
    "Mechanism",
    "MechanismKind",
    "Modifier",
    "Qualifier",
    "SpfCheckOutcome",
    "SpfConfig",
    "SpfError",
    "SpfEvaluator",
    "SpfPermError",
    "SpfRecord",
    "SpfResult",
    "SpfSyntaxError",
    "SpfTempError",
    "expand_macros",
    "parse_record",
]
