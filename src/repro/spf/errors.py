"""SPF error types.

These are internal control-flow exceptions of the evaluator; the public
API reports failures through :class:`repro.spf.result.SpfResult` values
(``permerror`` / ``temperror``) rather than raising.
"""


class SpfError(Exception):
    """Base class for SPF errors."""


class SpfSyntaxError(SpfError):
    """The record text violates the RFC 7208 grammar."""


class SpfPermError(SpfError):
    """A condition RFC 7208 defines as ``permerror``."""


class SpfTempError(SpfError):
    """A condition RFC 7208 defines as ``temperror`` (DNS trouble)."""
