"""The ``check_host`` evaluator (RFC 7208 section 4 and 5).

The evaluator resolves through a :class:`repro.dns.Resolver`, threading
virtual timestamps so that every DNS query it causes arrives at the
authoritative server at a realistic instant — which is precisely what the
paper's measurement apparatus observes.

``SpfConfig()`` is RFC-strict.  Each deviation the paper reports from wild
MTAs (Section 7) is one knob:

===========================  ====================================================
``max_dns_mechanisms=None``  ignores the 10-lookup limit (28% of MTAs ran all 46)
``max_void_lookups=None``    ignores the void-lookup limit (97% exceeded it)
``max_mx_addresses=None``    ignores the per-``mx`` address limit (64% did 20/20)
``tolerant_syntax=True``     keeps evaluating past syntax errors (5.5%)
``ignore_child_permerror``   treats a child policy's permerror as no-match (12.3%)
``on_multiple_records``      "follow one" instead of permerror (23%)
``parallel_lookups=True``    prefetches referenced lookups (3% of MTAs)
``mx_a_fallback=True``       the illegal A/AAAA retry after a failed MX (14%)
``overall_timeout``          wall-clock cut-off, temperror past it
``fetch_only=True``          retrieves the policy but never evaluates mechanisms
                             (the 3.0% "partial validators" of Section 6.1)
===========================  ====================================================
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.dns.name import Name
from repro.dns.rdata import RdataType
from repro.dns.resolver import Answer, Resolver
from repro.obs import Observability, ensure_obs
from repro.spf.errors import SpfSyntaxError
from repro.spf.macros import MacroContext, expand_macros
from repro.spf.parser import parse_record
from repro.spf.result import (
    QUALIFIER_RESULTS,
    DnsLookupRecord,
    SpfCheckOutcome,
    SpfResult,
)
from repro.spf.terms import (
    Directive,
    InvalidTerm,
    Mechanism,
    MechanismKind,
    Modifier,
    SpfRecord,
    looks_like_spf,
)


@lru_cache(maxsize=None)
def _result_labels(result_value: str) -> tuple:
    # The seven SPF results form a closed set; memoizing keeps the
    # per-check hot path from rebuilding the same label tuple.
    return (("result", result_value),)


@dataclass
class SpfConfig:
    """Behavioural configuration of one evaluator; defaults are RFC-strict."""

    max_dns_mechanisms: Optional[int] = 10
    max_void_lookups: Optional[int] = 2
    max_mx_addresses: Optional[int] = 10
    max_ptr_names: int = 10
    tolerant_syntax: bool = False
    ignore_child_permerror: bool = False
    on_multiple_records: str = "permerror"  # or "first" / "last"
    parallel_lookups: bool = False
    mx_a_fallback: bool = False
    overall_timeout: Optional[float] = None
    max_include_depth: int = 20
    fetch_only: bool = False


class _Abort(Exception):
    """Internal: stop the whole check with a definite result."""

    def __init__(self, result: SpfResult, reason: str, t: float) -> None:
        super().__init__(reason)
        self.result = result
        self.reason = reason
        self.t = t


@dataclass
class _CheckState:
    """Mutable counters shared across the recursive evaluation."""

    config: SpfConfig
    t_start: float
    mechanism_lookups: int = 0
    void_lookups: int = 0
    trace: List[DnsLookupRecord] = field(default_factory=list)
    prefetched: Dict[Tuple[Tuple[str, ...], RdataType], Tuple[Answer, float]] = field(
        default_factory=dict
    )


class SpfEvaluator:
    """Evaluates SPF for (client IP, MAIL FROM domain, sender) triples."""

    #: Buckets for the per-check lookup-count histograms (the paper's
    #: distributions cluster under the RFC's 10-lookup limit but stretch
    #: to 46 for limit-ignoring validators).
    LOOKUP_BUCKETS = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 15.0, 20.0, 30.0, 50.0)

    def __init__(
        self,
        resolver: Resolver,
        config: Optional[SpfConfig] = None,
        receiving_host: str = "receiver.invalid",
        obs: Optional[Observability] = None,
    ) -> None:
        self.resolver = resolver
        self.config = config if config is not None else SpfConfig()
        self.receiving_host = receiving_host
        self.obs = ensure_obs(obs)
        self.obs.metrics.declare_histogram("spf_lookups_per_check", self.LOOKUP_BUCKETS)
        self.obs.metrics.declare_histogram("spf_void_lookups_per_check", self.LOOKUP_BUCKETS)

    # -- public API -------------------------------------------------------

    def check_host(
        self,
        client_ip: str,
        domain: str,
        sender: str,
        helo: Optional[str] = None,
        t_start: float = 0.0,
    ) -> SpfCheckOutcome:
        """Run ``check_host`` and return the outcome with timing.

        ``sender`` is the full MAIL FROM address; an empty reverse-path is
        modelled by passing ``postmaster@<helo>`` per RFC 7208 s2.4.
        """
        state = _CheckState(config=self.config, t_start=t_start)
        context = MacroContext(
            sender=sender,
            domain=domain,
            client_ip=client_ip,
            helo=helo if helo is not None else domain,
            receiving_host=self.receiving_host,
        )
        obs = self.obs
        with obs.tracer.span("spf.check_host", t_start, domain=domain, client_ip=client_ip) as span:
            try:
                result, explanation, matched, t_done = self._check(
                    client_ip, domain, context, state, t_start, depth=0
                )
            except _Abort as abort:
                result, explanation, matched, t_done = abort.result, abort.reason, None, abort.t
            span.set(
                result=result.value,
                lookups=state.mechanism_lookups,
                voids=state.void_lookups,
            )
            span.end(t_done)
        obs.metrics.counter("spf_checks_total", _result_labels(result.value), t=t_done)
        obs.metrics.observe("spf_check_seconds", t_done - t_start, t=t_done)
        obs.metrics.observe("spf_lookups_per_check", state.mechanism_lookups, t=t_done)
        obs.metrics.observe("spf_void_lookups_per_check", state.void_lookups, t=t_done)
        return SpfCheckOutcome(
            result=result,
            domain=domain,
            explanation=explanation,
            matched_term=matched,
            mechanism_lookups=state.mechanism_lookups,
            void_lookups=state.void_lookups,
            lookups=state.trace,
            t_started=t_start,
            t_completed=t_done,
        )

    # -- recursive check --------------------------------------------------

    def _check(
        self,
        client_ip: str,
        domain: str,
        context: MacroContext,
        state: _CheckState,
        t: float,
        depth: int,
    ) -> Tuple[SpfResult, Optional[str], Optional[str], float]:
        if depth > self.config.max_include_depth:
            return SpfResult.PERMERROR, "include chain too deep", None, t
        if not _plausible_domain(domain):
            return SpfResult.NONE, None, None, t

        answer, t = self._lookup(state, domain, RdataType.TXT, t, term="(policy)")
        if answer.status.is_error:
            return SpfResult.TEMPERROR, "policy lookup failed", None, t
        spf_texts = [text for text in answer.texts() if looks_like_spf(text)]
        if not spf_texts:
            return SpfResult.NONE, None, None, t
        if len(spf_texts) > 1:
            choice = self.config.on_multiple_records
            if choice == "first":
                spf_texts = spf_texts[:1]
            elif choice == "last":
                spf_texts = spf_texts[-1:]
            else:
                return SpfResult.PERMERROR, "multiple SPF records", None, t

        try:
            record = parse_record(spf_texts[0], tolerant=self.config.tolerant_syntax)
        except SpfSyntaxError as exc:
            return SpfResult.PERMERROR, "syntax: %s" % exc, None, t

        if self.config.fetch_only:
            # Partial validators (paper s6.1): the policy is fetched but the
            # mechanisms are never resolved or matched.
            return SpfResult.NEUTRAL, "policy fetched, not evaluated", None, t

        local_context = MacroContext(
            sender=context.sender,
            domain=domain,
            client_ip=client_ip,
            helo=context.helo,
            receiving_host=context.receiving_host,
        )

        if self.config.parallel_lookups:
            self._prefetch(record, local_context, state, t, depth)

        for term in record.terms:
            if isinstance(term, InvalidTerm):
                # Only reachable in tolerant mode; wild validators skip it.
                continue
            if isinstance(term, Modifier):
                continue
            matched, t = self._evaluate_directive(term, client_ip, local_context, state, t, depth)
            if matched is not None:
                result = QUALIFIER_RESULTS[term.qualifier.value]
                explanation = None
                if result is SpfResult.FAIL and depth == 0:
                    explanation, t = self._explanation(record, local_context, state, t)
                return result, explanation, term.to_text(), t

        redirect = record.modifier("redirect")
        if redirect is not None:
            self._count_mechanism_lookup(state, "redirect=%s" % redirect, t)
            try:
                target = expand_macros(redirect, local_context)
            except SpfSyntaxError as exc:
                return SpfResult.PERMERROR, "redirect macro: %s" % exc, None, t
            result, explanation, matched, t = self._check(
                client_ip, target, local_context, state, t, depth + 1
            )
            if result is SpfResult.NONE:
                return SpfResult.PERMERROR, "redirect to domain without policy", None, t
            return result, explanation, matched, t

        return SpfResult.NEUTRAL, None, None, t

    # -- directive evaluation ----------------------------------------------

    def _evaluate_directive(
        self,
        directive: Directive,
        client_ip: str,
        context: MacroContext,
        state: _CheckState,
        t: float,
        depth: int,
    ) -> Tuple[Optional[bool], float]:
        """Returns ``(True, t)`` on match, ``(None, t)`` on no-match."""
        mechanism = directive.mechanism
        kind = mechanism.kind
        term_text = directive.to_text()

        if kind.consumes_dns_lookup:
            self._count_mechanism_lookup(state, term_text, t)

        if kind is MechanismKind.ALL:
            return True, t

        if kind in (MechanismKind.IP4, MechanismKind.IP6):
            return self._match_ip(mechanism, client_ip), t

        target, t = self._target_domain(mechanism, context, state, t)

        if kind is MechanismKind.INCLUDE:
            result, _, _, t = self._check(client_ip, target, context, state, t, depth + 1)
            if result is SpfResult.PASS:
                return True, t
            if result is SpfResult.TEMPERROR:
                raise _Abort(SpfResult.TEMPERROR, "include %s temperror" % target, t)
            if result in (SpfResult.PERMERROR, SpfResult.NONE):
                if self.config.ignore_child_permerror:
                    return None, t
                raise _Abort(SpfResult.PERMERROR, "include %s %s" % (target, result.value), t)
            return None, t

        if kind is MechanismKind.A:
            addresses, t = self._address_set(state, target, client_ip, term_text, t)
            return self._match_addresses(client_ip, addresses, mechanism), t

        if kind is MechanismKind.MX:
            return self._match_mx(mechanism, target, client_ip, state, term_text, t)

        if kind is MechanismKind.EXISTS:
            self._check_void_budget(state, t)
            answer, t = self._lookup(state, target, RdataType.A, t, term=term_text)
            self._note_void(state, answer, t)
            return (True, t) if answer.records else (None, t)

        if kind is MechanismKind.PTR:
            return self._match_ptr(mechanism, target, client_ip, state, term_text, t)

        raise _Abort(SpfResult.PERMERROR, "unhandled mechanism %s" % kind.value, t)

    def _match_ip(self, mechanism: Mechanism, client_ip: str) -> Optional[bool]:
        address = ipaddress.ip_address(client_ip)
        network = ipaddress.ip_network(mechanism.network)
        if address.version != network.version:
            return None
        return True if address in network else None

    def _match_addresses(
        self, client_ip: str, addresses: List[str], mechanism: Mechanism
    ) -> Optional[bool]:
        client = ipaddress.ip_address(client_ip)
        if client.version == 4:
            prefix = mechanism.cidr4 if mechanism.cidr4 is not None else 32
        else:
            prefix = mechanism.cidr6 if mechanism.cidr6 is not None else 128
        for text in addresses:
            candidate = ipaddress.ip_address(text)
            if candidate.version != client.version:
                continue
            network = ipaddress.ip_network("%s/%d" % (candidate, prefix), strict=False)
            if client in network:
                return True
        return None

    def _match_mx(
        self,
        mechanism: Mechanism,
        target: str,
        client_ip: str,
        state: _CheckState,
        term_text: str,
        t: float,
    ) -> Tuple[Optional[bool], float]:
        self._check_void_budget(state, t)
        answer, t = self._lookup(state, target, RdataType.MX, t, term=term_text)
        self._note_void(state, answer, t)
        exchanges = [
            rr.rdata for rr in answer.records if rr.rdtype == RdataType.MX
        ]
        if not exchanges:
            if self.config.mx_a_fallback:
                # Spec violation seen in 14% of wild MTAs: fall back to the
                # implicit-MX A/AAAA lookup that RFC 7208 explicitly forbids.
                addresses, t = self._address_set(state, target, client_ip, term_text, t)
                return self._match_addresses(client_ip, addresses, mechanism), t
            return None, t
        exchanges.sort(key=lambda mx: mx.preference)
        limit = self.config.max_mx_addresses
        for index, exchange in enumerate(exchanges):
            if limit is not None and index >= limit:
                raise _Abort(
                    SpfResult.PERMERROR, "more than %d mx address lookups" % limit, t
                )
            addresses, t = self._address_set(
                state, exchange.exchange.to_text(omit_final_dot=True), client_ip, term_text, t
            )
            match = self._match_addresses(client_ip, addresses, mechanism)
            if match:
                return True, t
        return None, t

    def _match_ptr(
        self,
        mechanism: Mechanism,
        target: str,
        client_ip: str,
        state: _CheckState,
        term_text: str,
        t: float,
    ) -> Tuple[Optional[bool], float]:
        reverse_name = _reverse_name(client_ip)
        self._check_void_budget(state, t)
        answer, t = self._lookup(state, reverse_name, RdataType.PTR, t, term=term_text)
        self._note_void(state, answer, t)
        candidates = [
            rr.rdata.target for rr in answer.records if rr.rdtype == RdataType.PTR
        ][: self.config.max_ptr_names]
        target_name = Name(target)
        for candidate in candidates:
            addresses, t = self._address_set(
                state, candidate.to_text(omit_final_dot=True), client_ip, term_text, t
            )
            if client_ip in addresses and candidate.is_subdomain_of(target_name):
                return True, t
        return None, t

    # -- DNS plumbing ------------------------------------------------------

    def _address_set(
        self, state: _CheckState, domain: str, client_ip: str, term: str, t: float
    ) -> Tuple[List[str], float]:
        """A or AAAA addresses of ``domain``, matching the client family."""
        self._check_void_budget(state, t)
        rdtype = RdataType.AAAA if ":" in client_ip else RdataType.A
        answer, t = self._lookup(state, domain, rdtype, t, term=term)
        self._note_void(state, answer, t)
        return answer.addresses(), t

    def _lookup(
        self, state: _CheckState, qname: str, rdtype: RdataType, t: float, term: Optional[str]
    ) -> Tuple[Answer, float]:
        key = (Name(qname).key, rdtype)
        prefetched = state.prefetched.pop(key, None)
        if prefetched is not None:
            answer, t_prefetch_done = prefetched
            t_done = max(t, t_prefetch_done)
        else:
            answer, t_done = self.resolver.query_at(qname, rdtype, t)
        state.trace.append(
            DnsLookupRecord(
                qname=qname,
                qtype=rdtype.name,
                status=answer.status.value,
                t_issued=t,
                t_completed=t_done,
                term=term,
            )
        )
        self._check_deadline(state, t_done)
        return answer, t_done

    def _prefetch(
        self, record: SpfRecord, context: MacroContext, state: _CheckState, t_policy: float, depth: int
    ) -> None:
        """Issue, in parallel at ``t_policy``, the lookups the record's
        mechanisms reference (the 3%-of-MTAs strategy of Section 7.1)."""
        if depth > self.config.max_include_depth:
            return
        for directive in record.directives:
            mechanism = directive.mechanism
            kind = mechanism.kind
            try:
                target, _ = self._target_domain(mechanism, context, state, t_policy)
            except Exception:
                continue
            if kind is MechanismKind.A:
                rdtype = RdataType.AAAA if ":" in context.client_ip else RdataType.A
                self._prefetch_one(state, target, rdtype, t_policy)
            elif kind is MechanismKind.MX:
                self._prefetch_one(state, target, RdataType.MX, t_policy)
            elif kind is MechanismKind.EXISTS:
                self._prefetch_one(state, target, RdataType.A, t_policy)
            elif kind is MechanismKind.INCLUDE:
                answer, t_done = self._prefetch_one(state, target, RdataType.TXT, t_policy)
                texts = [text for text in answer.texts() if looks_like_spf(text)]
                if len(texts) == 1:
                    try:
                        child = parse_record(texts[0], tolerant=True)
                    except SpfSyntaxError:
                        continue
                    child_context = MacroContext(
                        sender=context.sender,
                        domain=target,
                        client_ip=context.client_ip,
                        helo=context.helo,
                        receiving_host=context.receiving_host,
                    )
                    self._prefetch(child, child_context, state, t_done, depth + 1)

    def _prefetch_one(
        self, state: _CheckState, qname: str, rdtype: RdataType, t: float
    ) -> Tuple[Answer, float]:
        key = (Name(qname).key, rdtype)
        if key in state.prefetched:
            return state.prefetched[key]
        answer, t_done = self.resolver.query_at(qname, rdtype, t)
        state.prefetched[key] = (answer, t_done)
        return answer, t_done

    def _target_domain(
        self, mechanism: Mechanism, context: MacroContext, state: _CheckState, t: float
    ) -> Tuple[str, float]:
        if mechanism.domain_spec is None:
            return context.domain, t
        try:
            expanded = expand_macros(mechanism.domain_spec, context)
        except SpfSyntaxError as exc:
            raise _Abort(SpfResult.PERMERROR, "macro: %s" % exc, t)
        return expanded, t

    def _count_mechanism_lookup(self, state: _CheckState, term: str, t: float) -> None:
        state.mechanism_lookups += 1
        limit = self.config.max_dns_mechanisms
        if limit is not None and state.mechanism_lookups > limit:
            raise _Abort(
                SpfResult.PERMERROR,
                "more than %d DNS-lookup terms (at %s)" % (limit, term),
                t,
            )

    def _note_void(self, state: _CheckState, answer: Answer, t: float) -> None:
        """Count a void lookup; abort once the budget is exhausted.

        The budget check also runs *before* each target lookup (see
        ``_check_void_budget``), so a compliant validator with the default
        limit of two is observable at the authoritative server as at most
        two void queries — which is how the paper separates the 3%
        compliant from the 97% violators (Section 7.3).
        """
        if not answer.status.is_void:
            return
        state.void_lookups += 1
        limit = self.config.max_void_lookups
        if limit is not None and state.void_lookups > limit:
            raise _Abort(SpfResult.PERMERROR, "more than %d void lookups" % limit, t)

    def _check_void_budget(self, state: _CheckState, t: float) -> None:
        limit = self.config.max_void_lookups
        if limit is not None and state.void_lookups >= limit:
            raise _Abort(SpfResult.PERMERROR, "void lookup budget (%d) exhausted" % limit, t)

    def _check_deadline(self, state: _CheckState, t: float) -> None:
        timeout = self.config.overall_timeout
        if timeout is not None and t - state.t_start > timeout:
            raise _Abort(SpfResult.TEMPERROR, "validation exceeded %.1fs" % timeout, t)

    def _explanation(
        self, record: SpfRecord, context: MacroContext, state: _CheckState, t: float
    ) -> Tuple[Optional[str], float]:
        exp = record.modifier("exp")
        if exp is None:
            return None, t
        try:
            target = expand_macros(exp, context)
        except SpfSyntaxError:
            return None, t
        answer, t = self._lookup(state, target, RdataType.TXT, t, term="exp=")
        texts = answer.texts()
        if len(texts) != 1:
            return None, t
        try:
            return expand_macros(texts[0], context, is_exp=True), t
        except SpfSyntaxError:
            return None, t


def _plausible_domain(domain: str) -> bool:
    """RFC 7208 s4.3 initial-processing sanity check, lightly applied."""
    if not domain or len(domain) > 253:
        return False
    stripped = domain.rstrip(".")
    if not stripped or "." not in stripped:
        return False
    return all(0 < len(label) <= 63 for label in stripped.split("."))


def _reverse_name(client_ip: str) -> str:
    """The in-addr.arpa / ip6.arpa name for ``client_ip``."""
    return ipaddress.ip_address(client_ip).reverse_pointer
