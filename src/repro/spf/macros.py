"""SPF macro expansion (RFC 7208 section 7).

Supports the full macro letter set with digit transformers, the ``r``
reverse transformer, and custom delimiter sets, plus the ``%%``/``%_``/
``%-`` literals.  The ``p`` (validated reverse-DNS) macro is expanded to
``unknown`` unless the caller provides a value, matching the RFC's advice
that it "SHOULD NOT be used" and sparing the evaluator a gratuitous chain
of lookups.
"""

from __future__ import annotations

import ipaddress
import re
from dataclasses import dataclass
from typing import Optional

from repro.spf.errors import SpfSyntaxError

_MACRO_RE = re.compile(r"%(?:%|_|-|\{([A-Za-z])(\d*)(r?)([.\-+,/_=]*)\})")


@dataclass
class MacroContext:
    """The inputs macro letters draw from during one ``check_host``."""

    sender: str  # full sender address (MAIL FROM, or postmaster@helo)
    domain: str  # current <domain> argument
    client_ip: str  # connecting address
    helo: str  # HELO/EHLO identity
    receiving_host: str = "receiver.invalid"  # %{r}
    validated_ptr: Optional[str] = None  # %{p}, if the caller resolved it

    @property
    def local_part(self) -> str:
        local = self.sender.rpartition("@")[0]
        return local or "postmaster"

    @property
    def sender_domain(self) -> str:
        return self.sender.rpartition("@")[2]


def expand_macros(spec: str, context: MacroContext, is_exp: bool = False) -> str:
    """Expand every macro in ``spec``.

    Raises :class:`SpfSyntaxError` on an unknown macro letter or a stray
    ``%`` that is not part of a valid macro expression.
    """
    output = []
    position = 0
    for match in _MACRO_RE.finditer(spec):
        if match.start() > position:
            output.append(spec[position : match.start()])
        position = match.end()
        token = match.group(0)
        if token == "%%":
            output.append("%")
            continue
        if token == "%_":
            output.append(" ")
            continue
        if token == "%-":
            output.append("%20")
            continue
        letter, digits, reverse, delimiters = match.groups()
        output.append(
            _expand_one(letter, digits, bool(reverse), delimiters or ".", context, is_exp)
        )
    # Any remaining '%' outside a matched macro is a syntax error.
    tail = spec[position:]
    if "%" in tail:
        raise SpfSyntaxError("stray %% in domain-spec %r" % spec)
    output.append(tail)
    return "".join(output)


def _expand_one(
    letter: str, digits: str, reverse: bool, delimiters: str, context: MacroContext, is_exp: bool
) -> str:
    lowered = letter.lower()
    if lowered == "s":
        value = context.sender
    elif lowered == "l":
        value = context.local_part
    elif lowered == "o":
        value = context.sender_domain
    elif lowered == "d":
        value = context.domain
    elif lowered == "i":
        value = _ip_macro(context.client_ip)
    elif lowered == "p":
        value = context.validated_ptr or "unknown"
    elif lowered == "v":
        value = "in-addr" if ":" not in context.client_ip else "ip6"
    elif lowered == "h":
        value = context.helo
    elif lowered in ("c", "r", "t"):
        if not is_exp:
            raise SpfSyntaxError("macro %%{%s} only valid in exp text" % letter)
        if lowered == "c":
            value = context.client_ip
        elif lowered == "r":
            value = context.receiving_host
        else:
            value = "0"
    else:
        raise SpfSyntaxError("unknown macro letter %r" % letter)

    parts = re.split("[%s]" % re.escape(delimiters), value)
    if reverse:
        parts.reverse()
    if digits:
        count = int(digits)
        if count == 0:
            raise SpfSyntaxError("macro transformer digit 0")
        parts = parts[-count:]
    expanded = ".".join(parts)
    if letter.isupper():
        expanded = _url_escape(expanded)
    return expanded


def _ip_macro(address: str) -> str:
    """The %%{i} dotted form: IPv4 as-is, IPv6 as dotted nibbles."""
    if ":" not in address:
        return address
    nibbles = ipaddress.IPv6Address(address).exploded.replace(":", "")
    return ".".join(nibbles)


def _url_escape(text: str) -> str:
    safe = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.~")
    return "".join(char if char in safe else "%%%02X" % ord(char) for char in text)
