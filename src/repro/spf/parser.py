"""SPF record parser (RFC 7208 section 12 grammar, pragmatically).

``parse_record`` turns record text into an :class:`~repro.spf.terms.SpfRecord`.
In strict mode any unintelligible term raises
:class:`~repro.spf.errors.SpfSyntaxError` (the RFC's ``permerror``); in
tolerant mode — used to model the 5.5% / 12.3% of wild validators that keep
going past syntax errors (paper Section 7.3) — bad terms are preserved as
:class:`~repro.spf.terms.InvalidTerm` entries and evaluation continues
around them.
"""

from __future__ import annotations

import ipaddress
import re
from typing import Optional, Tuple

from repro.spf.errors import SpfSyntaxError
from repro.spf.terms import (
    Directive,
    InvalidTerm,
    Mechanism,
    MechanismKind,
    Modifier,
    Qualifier,
    SpfRecord,
    looks_like_spf,
)

_QUALIFIERS = {q.value: q for q in Qualifier}
_MECHANISMS = {m.value: m for m in MechanismKind}

# name = ALPHA *( ALPHA / DIGIT / "-" / "_" / "." )
_MODIFIER_RE = re.compile(r"^([A-Za-z][A-Za-z0-9._-]*)=(.*)$")

# Characters permitted in a domain-spec (macro syntax included).
_DOMAIN_SPEC_RE = re.compile(r"^[A-Za-z0-9.%{}+=_/,!*~?^|\x2d-]+$")


#: Modifiers RFC 7208 section 6 permits at most once per record.
_SINGLETON_MODIFIERS = ("redirect", "exp")

_TOKEN_RE = re.compile(r"\S+")


def parse_record(text: str, tolerant: bool = False) -> SpfRecord:
    """Parse SPF record ``text``.

    Raises :class:`SpfSyntaxError` when the version section is wrong, and
    (in strict mode) when any term is malformed or a ``redirect=``/``exp=``
    modifier appears more than once (RFC 7208 section 6: permerror).  Each
    parsed term carries its ``start``/``end`` character offsets into
    ``text`` so diagnostics can point at the exact span.
    """
    if not looks_like_spf(text):
        raise SpfSyntaxError("not an SPF record: %r" % text[:40])
    record = SpfRecord(terms=[], raw=text)
    seen_modifiers = {name: 0 for name in _SINGLETON_MODIFIERS}
    for match in _TOKEN_RE.finditer(text, len("v=spf1")):
        token, start, end = match.group(0), match.start(), match.end()
        try:
            term = _parse_term(token, start, end)
            if isinstance(term, Modifier):
                lowered = term.name.lower()
                if lowered in seen_modifiers:
                    seen_modifiers[lowered] += 1
                    if seen_modifiers[lowered] > 1:
                        raise SpfSyntaxError("duplicate %s= modifier" % lowered)
            record.terms.append(term)
        except SpfSyntaxError as exc:
            if not tolerant:
                raise
            record.terms.append(InvalidTerm(token, str(exc), start, end))
    return record


def _parse_term(token: str, start: int = -1, end: int = -1):
    qualifier = Qualifier.PASS
    explicit_qualifier = False
    rest = token
    if rest and rest[0] in _QUALIFIERS:
        qualifier = _QUALIFIERS[rest[0]]
        explicit_qualifier = True
        rest = rest[1:]
    if not rest:
        raise SpfSyntaxError("bare qualifier %r" % token)

    name, separator, argument = _split_term(rest)
    lowered = name.lower()

    if separator == "=":
        if explicit_qualifier:
            raise SpfSyntaxError("modifier with qualifier: %r" % token)
        if not _MODIFIER_RE.match(rest):
            raise SpfSyntaxError("malformed modifier: %r" % token)
        return Modifier(name, argument, start, end)

    if lowered not in _MECHANISMS:
        raise SpfSyntaxError("unknown mechanism %r" % name)
    kind = _MECHANISMS[lowered]
    return Directive(qualifier, _parse_mechanism(kind, separator, argument, token), start, end)


def _split_term(text: str) -> Tuple[str, str, str]:
    """Split ``text`` at the first ``:``, ``=``, or ``/``.

    ``/`` begins a CIDR suffix on a bare ``a``/``mx`` mechanism, so it is a
    separator too; the argument then keeps the slash for CIDR parsing.
    """
    for index, char in enumerate(text):
        if char == ":":
            return text[:index], ":", text[index + 1 :]
        if char == "=":
            return text[:index], "=", text[index + 1 :]
        if char == "/":
            return text[:index], "/", text[index:]
    return text, "", ""


def _parse_mechanism(kind: MechanismKind, separator: str, argument: str, token: str) -> Mechanism:
    if kind is MechanismKind.ALL:
        if separator:
            raise SpfSyntaxError("'all' takes no argument: %r" % token)
        return Mechanism(kind)

    if kind in (MechanismKind.IP4, MechanismKind.IP6):
        if separator != ":" or not argument:
            raise SpfSyntaxError("%s requires an address: %r" % (kind.value, token))
        return _parse_ip_mechanism(kind, argument, token)

    if kind in (MechanismKind.INCLUDE, MechanismKind.EXISTS):
        if separator != ":" or not argument:
            raise SpfSyntaxError("%s requires a domain: %r" % (kind.value, token))
        _check_domain_spec(argument, token)
        return Mechanism(kind, domain_spec=argument)

    if kind is MechanismKind.PTR:
        if separator == ":":
            _check_domain_spec(argument, token)
            return Mechanism(kind, domain_spec=argument)
        if separator:
            raise SpfSyntaxError("malformed ptr: %r" % token)
        return Mechanism(kind)

    # a / mx: optional domain, optional dual-cidr-length.
    domain: Optional[str] = None
    cidr_text = ""
    if separator == ":":
        if "/" in argument:
            domain, _, cidr_text = argument.partition("/")
            cidr_text = "/" + cidr_text
        else:
            domain = argument
        if not domain:
            raise SpfSyntaxError("empty domain in %r" % token)
        _check_domain_spec(domain, token)
    elif separator == "/":
        cidr_text = argument
    cidr4, cidr6 = _parse_dual_cidr(cidr_text, token)
    return Mechanism(kind, domain_spec=domain, cidr4=cidr4, cidr6=cidr6)


def _parse_ip_mechanism(kind: MechanismKind, argument: str, token: str) -> Mechanism:
    address, _, prefix = argument.partition("/")
    try:
        if kind is MechanismKind.IP4:
            parsed = ipaddress.IPv4Network(argument if prefix else address + "/32", strict=False)
            if prefix and not 0 <= int(prefix) <= 32:
                raise ValueError(prefix)
        else:
            parsed = ipaddress.IPv6Network(argument if prefix else address + "/128", strict=False)
            if prefix and not 0 <= int(prefix) <= 128:
                raise ValueError(prefix)
    except ValueError as exc:
        raise SpfSyntaxError("bad %s network %r" % (kind.value, token)) from exc
    return Mechanism(kind, network=str(parsed))


def _parse_dual_cidr(cidr_text: str, token: str) -> Tuple[Optional[int], Optional[int]]:
    """Parse ``/<n>``, ``//<m>`` or ``/<n>//<m>``."""
    if not cidr_text:
        return None, None
    cidr4: Optional[int] = None
    cidr6: Optional[int] = None
    text = cidr_text
    if text.startswith("/") and not text.startswith("//"):
        match = re.match(r"^/(\d+)", text)
        if not match:
            raise SpfSyntaxError("bad CIDR in %r" % token)
        cidr4 = int(match.group(1))
        if cidr4 > 32:
            raise SpfSyntaxError("IPv4 CIDR > 32 in %r" % token)
        text = text[match.end() :]
    if text.startswith("//"):
        match = re.match(r"^//(\d+)$", text)
        if not match:
            raise SpfSyntaxError("bad IPv6 CIDR in %r" % token)
        cidr6 = int(match.group(1))
        if cidr6 > 128:
            raise SpfSyntaxError("IPv6 CIDR > 128 in %r" % token)
        text = ""
    if text:
        raise SpfSyntaxError("trailing CIDR garbage in %r" % token)
    return cidr4, cidr6


def _check_domain_spec(spec: str, token: str) -> None:
    if not _DOMAIN_SPEC_RE.match(spec):
        raise SpfSyntaxError("invalid domain-spec in %r" % token)
