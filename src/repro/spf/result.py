"""SPF results (RFC 7208 section 2.6)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class SpfResult(enum.Enum):
    """The seven possible outcomes of ``check_host``."""

    NONE = "none"
    NEUTRAL = "neutral"
    PASS = "pass"
    FAIL = "fail"
    SOFTFAIL = "softfail"
    TEMPERROR = "temperror"
    PERMERROR = "permerror"

    @property
    def is_definitive_pass(self) -> bool:
        return self is SpfResult.PASS

    @property
    def is_error(self) -> bool:
        return self in (SpfResult.TEMPERROR, SpfResult.PERMERROR)


#: Qualifier-character to result mapping for a matched mechanism.
QUALIFIER_RESULTS = {
    "+": SpfResult.PASS,
    "-": SpfResult.FAIL,
    "~": SpfResult.SOFTFAIL,
    "?": SpfResult.NEUTRAL,
}


@dataclass
class DnsLookupRecord:
    """One DNS lookup the evaluator performed, for tracing/assertions."""

    qname: str
    qtype: str
    status: str
    t_issued: float
    t_completed: float
    term: Optional[str] = None


@dataclass
class SpfCheckOutcome:
    """Everything ``check_host`` learned.

    ``lookups`` records the evaluator-side view of its DNS activity; the
    measurement harness itself never reads it (it watches the authoritative
    server's query log, exactly like the paper), but tests assert against
    it and operators find it invaluable.
    """

    result: SpfResult
    domain: str
    explanation: Optional[str] = None
    matched_term: Optional[str] = None
    mechanism_lookups: int = 0
    void_lookups: int = 0
    lookups: List[DnsLookupRecord] = field(default_factory=list)
    t_started: float = 0.0
    t_completed: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.t_completed - self.t_started

    def __str__(self) -> str:
        return "%s (domain=%s, %d lookups, %.3fs)" % (
            self.result.value,
            self.domain,
            len(self.lookups),
            self.elapsed,
        )
