"""Parsed representation of SPF records (RFC 7208 section 5 / 6).

A record is a version token followed by *terms*; each term is either a
*directive* (an optional qualifier plus a mechanism) or a *modifier*
(``name=value``).  The parser in :mod:`repro.spf.parser` produces these
structures; the evaluator walks them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Union


class Qualifier(enum.Enum):
    """The four mechanism qualifiers; ``+`` is the implicit default."""

    PASS = "+"
    FAIL = "-"
    SOFTFAIL = "~"
    NEUTRAL = "?"


class MechanismKind(enum.Enum):
    """The eight mechanism names RFC 7208 defines."""

    ALL = "all"
    INCLUDE = "include"
    A = "a"
    MX = "mx"
    PTR = "ptr"
    IP4 = "ip4"
    IP6 = "ip6"
    EXISTS = "exists"

    @property
    def consumes_dns_lookup(self) -> bool:
        """True for the "terms that cause DNS queries" of section 4.6.4."""
        return self in (
            MechanismKind.INCLUDE,
            MechanismKind.A,
            MechanismKind.MX,
            MechanismKind.PTR,
            MechanismKind.EXISTS,
        )


@dataclass(frozen=True)
class Mechanism:
    """One mechanism with its optional domain-spec and CIDR lengths.

    ``domain_spec`` may contain macros; expansion happens at evaluation
    time because it depends on the sender/ip context.  For ``ip4``/``ip6``
    the literal network lives in ``network`` instead.
    """

    kind: MechanismKind
    domain_spec: Optional[str] = None
    cidr4: Optional[int] = None
    cidr6: Optional[int] = None
    network: Optional[str] = None

    def to_text(self) -> str:
        text = self.kind.value
        if self.network is not None:
            text += ":" + self.network
        elif self.domain_spec is not None:
            text += ":" + self.domain_spec
        if self.cidr4 is not None:
            text += "/%d" % self.cidr4
        if self.cidr6 is not None:
            text += "//%d" % self.cidr6
        return text


@dataclass(frozen=True)
class Directive:
    """Qualifier + mechanism.

    ``start``/``end`` are the term's character offsets into the raw record
    text (``-1`` when the term was built programmatically rather than
    parsed); the static analyzer uses them for exact diagnostic spans.
    They never participate in equality.
    """

    qualifier: Qualifier
    mechanism: Mechanism
    start: int = field(default=-1, compare=False)
    end: int = field(default=-1, compare=False)

    def to_text(self) -> str:
        prefix = self.qualifier.value if self.qualifier is not Qualifier.PASS else ""
        return prefix + self.mechanism.to_text()


@dataclass(frozen=True)
class Modifier:
    """``name=value`` term: ``redirect``, ``exp`` or an unknown modifier."""

    name: str
    value: str
    start: int = field(default=-1, compare=False)
    end: int = field(default=-1, compare=False)

    def to_text(self) -> str:
        return "%s=%s" % (self.name, self.value)


@dataclass(frozen=True)
class InvalidTerm:
    """A term the parser could not understand, preserved for the
    tolerant-evaluation modes that skip rather than reject bad terms."""

    text: str
    reason: str
    start: int = field(default=-1, compare=False)
    end: int = field(default=-1, compare=False)

    def to_text(self) -> str:
        return self.text


Term = Union[Directive, Modifier, InvalidTerm]


@dataclass
class SpfRecord:
    """A parsed SPF record."""

    terms: List[Term]
    raw: str

    @property
    def directives(self) -> List[Directive]:
        return [term for term in self.terms if isinstance(term, Directive)]

    @property
    def invalid_terms(self) -> List[InvalidTerm]:
        return [term for term in self.terms if isinstance(term, InvalidTerm)]

    def modifier(self, name: str) -> Optional[str]:
        """Value of the first modifier called ``name``, if present."""
        wanted = name.lower()
        for term in self.terms:
            if isinstance(term, Modifier) and term.name.lower() == wanted:
                return term.value
        return None

    def to_text(self) -> str:
        return "v=spf1 " + " ".join(term.to_text() for term in self.terms)


def looks_like_spf(text: str) -> bool:
    """The RFC 7208 section 4.5 record-selection test: the version section
    must be exactly ``v=spf1`` followed by a space or end of record."""
    return text == "v=spf1" or text.startswith("v=spf1 ")
