"""Shared test scaffolding: a miniature Internet in a box.

``World`` wires a virtual network, one authoritative server, an authority
directory and a resolver factory together, so individual tests only add
the records they care about.
"""

from __future__ import annotations

from typing import Optional

from repro.dns.rdata import SoaRecord
from repro.dns.resolver import AuthorityDirectory, Resolver, ResolverConfig
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.net.clock import Clock
from repro.net.latency import UniformLatency
from repro.net.network import Network

AUTH_IP = "198.51.100.53"
AUTH_IP6 = "2001:db8:a::53"
RESOLVER_IP = "203.0.113.11"
RESOLVER_IP6 = "2001:db8:c::11"


class World:
    """A network with one authoritative server and easy zone/record setup."""

    def __init__(self, seed: int = 0, latency_low: float = 0.005, latency_high: float = 0.05) -> None:
        self.clock = Clock()
        self.network = Network(UniformLatency(latency_low, latency_high, seed=seed), self.clock)
        self.server = AuthoritativeServer()
        self.server.attach(self.network, AUTH_IP, AUTH_IP6)
        self.directory = AuthorityDirectory()

    def zone(self, origin: str, register: bool = True) -> Zone:
        zone = Zone(origin, soa=SoaRecord("ns1.%s" % origin, "hostmaster.%s" % origin))
        self.server.add_zone(zone)
        if register:
            self.directory.register(origin, AUTH_IP, AUTH_IP6)
        return zone

    def resolver(
        self,
        config: Optional[ResolverConfig] = None,
        address4: Optional[str] = RESOLVER_IP,
        address6: Optional[str] = None,
    ) -> Resolver:
        return Resolver(self.network, self.directory, address4=address4, address6=address6, config=config)
