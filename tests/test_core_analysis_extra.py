"""Extra coverage for analysis helpers and receiver dispositions."""

import pytest

from repro.core import analysis as A
from repro.core.analysis import FIGURE2_EDGES, FIGURE2_LABELS, Stat
from repro.core.report import pct, render_cdf, render_histogram


class TestStat:
    def test_percent_and_row(self):
        stat = Stat("thing", 3, 12, paper_percent=30.0)
        assert stat.percent == pytest.approx(25.0)
        assert stat.row() == ["thing", "3/12", "25.0%", "30.0%"]

    def test_zero_denominator(self):
        assert Stat("x", 0, 0, 1.0).percent == 0.0


class TestDatasetTable:
    def test_render(self):
        table = A.dataset_table(
            [A.DatasetCounts("NotifyEmail", 100, 70, 8), A.DatasetCounts("TwoWeekMX", 90, 40, 2)]
        )
        text = table.render()
        assert "NotifyEmail" in text and "70" in text


class TestFigure2Buckets:
    def test_edges_and_labels_consistent(self):
        assert len(FIGURE2_LABELS) == len(FIGURE2_EDGES) + 1

    def test_bucketing_boundaries(self):
        """Values exactly on an edge fall into the lower bucket."""
        def bucket_of(value):
            index = 0
            while index < len(FIGURE2_EDGES) and value > FIGURE2_EDGES[index]:
                index += 1
            return FIGURE2_LABELS[index]

        assert bucket_of(-30.0) == "<= -30"
        assert bucket_of(-29.9) == "-30..-15"
        assert bucket_of(0.0) == "-15..0"
        assert bucket_of(0.1) == "0..15"
        assert bucket_of(31.0) == ">= 30"


class TestRenderHelpers:
    def test_render_cdf(self):
        text = render_cdf([(1.0, 0.25), (10.0, 1.0)], title="demo")
        assert "demo" in text
        assert "100.0%" in text

    def test_render_histogram(self):
        text = render_histogram([("a", 0.5), ("b", 0.5)])
        assert text.count("#") > 10

    def test_pct_rounding(self):
        assert pct(2, 3, 2) == "66.67%"


class TestQuarantineDisposition:
    def test_quarantined_delivery_flagged(self):
        from repro.dns.rdata import TxtRecord
        from repro.mta.behavior import MtaBehavior
        from repro.mta.receiver import ReceivingMta
        from repro.smtp.client import SmtpClient
        from repro.smtp.message import EmailMessage
        from tests.helpers import World

        world = World(seed=171)
        zone = world.zone("q.example")
        zone.add("q.example", TxtRecord("v=spf1 ip4:203.0.113.1 -all"))
        zone.add("_dmarc.q.example", TxtRecord("v=DMARC1; p=quarantine"))
        spoofer = "203.0.113.66"
        world.network.add_address(spoofer)
        mta = ReceivingMta(
            "mx.r.example", world.network, world.directory,
            MtaBehavior(accepts_any_recipient=True, validates_dkim=False),
            ipv4="198.51.100.77",
        )
        mta.attach()
        client, t = SmtpClient.connect(world.network, spoofer, "198.51.100.77", 0.0)
        _, t = client.ehlo("evil.example", t)
        _, t = client.mail("ceo@q.example", t)
        _, t = client.rcpt("victim@r.example", t)
        _, t = client.data_command(t)
        message = EmailMessage([("From", "ceo@q.example"), ("To", "victim@r.example")], "pay me\r\n")
        reply, t = client.send_message(message, t)
        assert reply.code == 250  # quarantine accepts but flags
        assert mta.deliveries[0].quarantined
        # The stamped Authentication-Results record the failure.
        value = mta.deliveries[0].message.get_header("Authentication-Results")
        assert "spf=fail" in value
        assert "dmarc=fail" in value
