"""Tests for the AS map and the dataset generator."""

from collections import Counter

import pytest

from repro.core.asmap import AsMap
from repro.core.datasets import (
    DatasetSpec,
    POPULAR_PROVIDERS,
    TABLE4_COMBO_WEIGHTS,
    TIER_MARGINALS,
    generate_universe,
    tilt_combo_weights,
)


class TestAsMap:
    def test_longest_prefix_wins(self):
        asmap = AsMap()
        asmap.announce("10.0.0.0/8", 100, "Big")
        asmap.announce("10.1.0.0/16", 200, "Specific")
        assert asmap.lookup("10.1.2.3").asn == 200
        assert asmap.lookup("10.2.2.3").asn == 100

    def test_miss_returns_none(self):
        asmap = AsMap()
        asmap.announce("192.0.2.0/24", 1, "X")
        assert asmap.lookup("198.51.100.1") is None

    def test_ipv6(self):
        asmap = AsMap()
        asmap.announce("2001:db8:1::/48", 300, "Six")
        assert asmap.lookup("2001:db8:1::beef").asn == 300
        assert asmap.lookup("2001:db8:2::beef") is None

    def test_host_route(self):
        asmap = AsMap()
        asmap.announce("192.0.2.7/32", 7, "One")
        assert asmap.lookup("192.0.2.7").asn == 7

    def test_len_counts_both_families(self):
        asmap = AsMap()
        asmap.announce("192.0.2.0/24", 1, "A")
        asmap.announce("2001:db8::/32", 1, "A")
        assert len(asmap) == 2


class TestIpf:
    def test_tilt_hits_target_marginals(self):
        for tier, targets in TIER_MARGINALS.items():
            weights = tilt_combo_weights(TABLE4_COMBO_WEIGHTS, targets)
            for axis in range(3):
                marginal = sum(weight for combo, weight in weights.items() if combo[axis])
                assert marginal == pytest.approx(targets[axis], abs=0.02)

    def test_zero_cells_stay_near_zero(self):
        weights = tilt_combo_weights(TABLE4_COMBO_WEIGHTS, (0.9, 0.9, 0.7))
        assert weights[(False, True, True)] < 1e-6


@pytest.fixture(scope="module")
def notify_universe():
    return generate_universe(DatasetSpec.notify_email(scale=0.03), seed=17)


@pytest.fixture(scope="module")
def twoweek_universe():
    return generate_universe(DatasetSpec.two_week_mx(scale=0.03), seed=18)


class TestUniverseShape:
    def test_deterministic(self):
        a = generate_universe(DatasetSpec.notify_email(scale=0.005), seed=5)
        b = generate_universe(DatasetSpec.notify_email(scale=0.005), seed=5)
        assert [d.name for d in a.domains] == [d.name for d in b.domains]
        assert [m.ipv4 for m in a.mtas] == [m.ipv4 for m in b.mtas]

    def test_domain_count_scales(self, notify_universe):
        assert len(notify_universe.domains) == int(26695 * 0.03)

    def test_domain_names_unique(self, notify_universe):
        names = [domain.name for domain in notify_universe.domains]
        assert len(names) == len(set(names))

    def test_domainids_unique(self, notify_universe):
        ids = [domain.domainid for domain in notify_universe.domains]
        assert len(ids) == len(set(ids))

    def test_every_domain_has_mtas(self, notify_universe):
        for domain in notify_universe.domains:
            assert domain.mta_hosts
            for host in domain.mta_hosts:
                assert host.ipv4 or host.ipv6

    def test_tld_mix_matches_table1(self, notify_universe):
        counts = Counter(domain.tld for domain in notify_universe.domains)
        total = len(notify_universe.domains)
        assert abs(counts["com"] / total - 0.26) < 0.05
        assert abs(counts["net"] / total - 0.13) < 0.04

    def test_twoweek_tld_mix(self, twoweek_universe):
        counts = Counter(domain.tld for domain in twoweek_universe.domains)
        total = len(twoweek_universe.domains)
        assert abs(counts["com"] / total - 0.49) < 0.05
        assert abs(counts["org"] / total - 0.17) < 0.05

    def test_as_concentration(self, twoweek_universe):
        universe = twoweek_universe
        domain_share = Counter()
        for domain in universe.domains:
            seen = set()
            for host in domain.mta_hosts:
                info = universe.asmap.lookup(host.ipv4 or host.ipv6)
                assert info is not None
                if info.asn not in seen:
                    seen.add(info.asn)
                    domain_share[info.asn] += 1
        total = len(universe.domains)
        assert abs(domain_share[15169] / total - 0.32) < 0.07  # Google
        assert abs(domain_share[8075] / total - 0.20) < 0.06  # Microsoft

    def test_mta_sharing_keeps_mtas_below_domains(self, twoweek_universe):
        assert len(twoweek_universe.mtas) < len(twoweek_universe.domains)

    def test_alexa_membership_counts(self, notify_universe):
        spec = notify_universe.spec
        in_1m = sum(1 for d in notify_universe.domains if d.alexa_rank is not None)
        in_1k = sum(
            1 for d in notify_universe.domains if d.alexa_rank is not None and d.alexa_rank <= 1000
        )
        # Popular providers are force-ranked, so counts may exceed the spec
        # targets slightly.
        assert in_1m >= spec.alexa_top1m
        assert in_1k >= spec.alexa_top1k
        assert in_1m < 2 * spec.alexa_top1m

    def test_popular_providers_present_with_fixed_combos(self, notify_universe):
        by_name = {domain.name: domain for domain in notify_universe.domains}
        for name, spf, dkim, dmarc in POPULAR_PROVIDERS:
            domain = by_name[name]
            host = domain.mta_hosts[0]
            assert host.behavior.validates_spf == spf
            assert host.behavior.validates_dkim == dkim
            assert host.behavior.validates_dmarc == dmarc

    def test_local_domains_marked(self, twoweek_universe):
        locals_ = [domain for domain in twoweek_universe.domains if domain.is_local]
        assert locals_
        for domain in locals_:
            assert domain.name.endswith("byu.edu")
            assert domain.demand >= 50000

    def test_demand_is_zipf_like(self, twoweek_universe):
        demands = sorted(
            (d.demand for d in twoweek_universe.domains if not d.is_local), reverse=True
        )
        assert demands[0] > 100 * demands[len(demands) // 2]

    def test_resolution_failures_only_notify(self, notify_universe, twoweek_universe):
        failed = sum(1 for d in notify_universe.domains if d.resolution_failed)
        assert 0 < failed < 0.05 * len(notify_universe.domains)
        assert not any(d.resolution_failed for d in twoweek_universe.domains)

    def test_ipv6_fraction(self, notify_universe):
        fraction = len(notify_universe.unique_ipv6) / len(notify_universe.mtas)
        assert 0.03 < fraction < 0.18

    def test_tier_conditioning_raises_dmarc_rate(self):
        universe = generate_universe(DatasetSpec.notify_email(scale=0.06), seed=33)
        def dmarc_rate(domains):
            relevant = [d for d in domains if d.mta_hosts]
            hits = sum(
                1 for d in relevant if any(h.behavior.validates_dmarc for h in d.mta_hosts)
            )
            return hits / len(relevant)
        top = [d for d in universe.domains if d.alexa_rank is not None]
        rest = [d for d in universe.domains if d.alexa_rank is None]
        assert dmarc_rate(top) > dmarc_rate(rest)

    def test_universe_lookup_helpers(self, notify_universe):
        domain = notify_universe.domains[0]
        assert notify_universe.domain_by_name(domain.name) is domain
        host = notify_universe.mtas[0]
        assert notify_universe.mta_by_id(host.mtaid) is host
        assert notify_universe.domain_by_name("no.such.domain") is None
