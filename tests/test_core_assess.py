"""Tests for the sender-deployment assessor."""

import pytest

from repro.core.assess import (
    Severity,
    assess_domain,
    lint_spf_record,
)
from repro.dkim import KeyRecord, generate_keypair
from repro.dmarc.record import DmarcPolicy
from repro.dns.rdata import ARecord, MxRecord, TxtRecord
from tests.helpers import World

KEYPAIR = generate_keypair(1024, seed=95)


class TestSpfLint:
    def test_clean_record(self):
        findings, lookups, terminal = lint_spf_record("v=spf1 ip4:192.0.2.0/24 -all")
        assert findings == []
        assert lookups == 0
        assert terminal == "-"

    def test_counts_lookup_terms(self):
        findings, lookups, _ = lint_spf_record("v=spf1 a mx include:x.example exists:y.example ptr -all")
        assert lookups == 5
        assert any("ptr" in f.message for f in findings)

    def test_over_limit_is_error(self):
        record = "v=spf1 " + " ".join("include:i%d.example" % i for i in range(11)) + " -all"
        findings, lookups, _ = lint_spf_record(record)
        assert lookups == 11
        assert any(f.severity is Severity.ERROR and "caps" in f.message for f in findings)

    def test_near_limit_warns(self):
        record = "v=spf1 " + " ".join("include:i%d.example" % i for i in range(8)) + " -all"
        findings, _, _ = lint_spf_record(record)
        assert any(f.severity is Severity.WARNING for f in findings)

    def test_plus_all_is_error(self):
        findings, _, terminal = lint_spf_record("v=spf1 +all")
        assert terminal == "+"
        assert any("entire Internet" in f.message for f in findings)

    def test_terms_after_all_warn(self):
        findings, _, _ = lint_spf_record("v=spf1 -all ip4:192.0.2.1")
        assert any("never evaluated" in f.message for f in findings)

    def test_missing_terminal_warns(self):
        findings, _, terminal = lint_spf_record("v=spf1 ip4:192.0.2.1")
        assert terminal is None
        assert any("default to neutral" in f.message for f in findings)

    def test_redirect_counts_and_conflicts(self):
        findings, lookups, _ = lint_spf_record("v=spf1 -all redirect=x.example")
        assert lookups == 1
        assert any("redirect= is ignored" in f.message for f in findings)

    def test_syntax_error_reported(self):
        findings, _, _ = lint_spf_record("v=spf1 ipv4:192.0.2.1 -all")
        assert any(f.severity is Severity.ERROR and "syntax" in f.message for f in findings)


@pytest.fixture
def world():
    world = World(seed=97)
    zone = world.zone("good.example")
    zone.add("good.example", TxtRecord("v=spf1 mx -all"))
    zone.add("good.example", MxRecord(10, "mx.good.example"))
    zone.add("mx.good.example", ARecord("198.51.100.5"))
    zone.add(
        "mail._domainkey.good.example",
        TxtRecord(KeyRecord(public_key_b64=KEYPAIR.public.to_base64()).to_text()),
    )
    zone.add("_dmarc.good.example", TxtRecord("v=DMARC1; p=reject; rua=mailto:agg@good.example"))

    bad = world.zone("bad.example")
    bad.add("bad.example", TxtRecord("v=spf1 include:void.bad.example include:other.bad.example +all"))
    bad.add("other.bad.example", TxtRecord("just text, no policy"))
    bad.add("_dmarc.bad.example", TxtRecord("v=DMARC1; p=none; pct=50"))

    world.zone("empty.example")
    return world


class TestAssessDomain:
    def test_clean_deployment_grades_a(self, world):
        assessment, _ = assess_domain(world.resolver(), "good.example")
        assert assessment.grade == "A"
        assert assessment.spf.record == "v=spf1 mx -all"
        assert assessment.dkim.usable_keys == 1
        assert assessment.dmarc.policy is DmarcPolicy.REJECT
        assert not assessment.errors

    def test_broken_deployment_flags_everything(self, world):
        assessment, _ = assess_domain(world.resolver(), "bad.example")
        messages = [finding.message for finding in assessment.findings]
        assert any("entire Internet" in m for m in messages)  # +all
        assert any("void lookup" in m for m in messages)  # include target NXDOMAIN
        assert any("no SPF record" in m for m in messages)  # include without policy
        assert any("p=none" in m for m in messages)
        assert any("pct=50" in m for m in messages)
        assert any("no usable DKIM key" in m for m in messages)
        assert assessment.grade in ("C", "D")

    def test_nothing_deployed_grades_f(self, world):
        assessment, _ = assess_domain(world.resolver(), "empty.example")
        assert assessment.grade == "F"
        assert len(assessment.errors) >= 3

    def test_report_renders(self, world):
        assessment, _ = assess_domain(world.resolver(), "good.example")
        text = assessment.to_text()
        assert "grade A" in text
        assert "v=spf1 mx -all" in text

    def test_custom_selectors(self, world):
        assessment, _ = assess_domain(world.resolver(), "good.example", selectors=("nope",))
        assert assessment.dkim.usable_keys == 0
        assert assessment.grade == "C"  # SPF + DMARC only

    def test_weak_key_flagged(self, world):
        weak = generate_keypair(512, seed=5)
        zone = world.zone("weak.example")
        zone.add("weak.example", TxtRecord("v=spf1 -all"))
        zone.add(
            "mail._domainkey.weak.example",
            TxtRecord(KeyRecord(public_key_b64=weak.public.to_base64()).to_text()),
        )
        zone.add("_dmarc.weak.example", TxtRecord("v=DMARC1; p=reject"))
        assessment, _ = assess_domain(world.resolver(), "weak.example")
        assert any("512 bits" in f.message for f in assessment.dkim.findings)

    def test_multiple_spf_records_error(self, world):
        zone = world.zone("dup.example")
        zone.add("dup.example", TxtRecord("v=spf1 -all"))
        zone.add("dup.example", TxtRecord("v=spf1 ~all"))
        assessment, _ = assess_domain(world.resolver(), "dup.example")
        assert any("2 SPF records" in f.message for f in assessment.spf.findings)

    def test_unreachable_dns(self, world):
        assessment, _ = assess_domain(world.resolver(), "unregistered.nowhere")
        assert any("lookup failed" in f.message for f in assessment.spf.findings)
