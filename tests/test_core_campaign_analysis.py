"""Integration tests: full campaigns on a small universe, plus the table
and figure analyses over their output."""

import pytest

from repro.core import analysis as A
from repro.core.campaign import (
    NotifyEmailCampaign,
    ProbeCampaign,
    Testbed,
    apply_reputation_effects,
)
from repro.core.datasets import DatasetSpec, generate_universe
from repro.core.report import Table, pct


@pytest.fixture(scope="module")
def notify_world():
    universe = generate_universe(DatasetSpec.notify_email(scale=0.006), seed=101)
    testbed = Testbed(universe, seed=102)
    result = NotifyEmailCampaign(testbed).run()
    return universe, testbed, result


@pytest.fixture(scope="module")
def probe_world():
    universe = generate_universe(DatasetSpec.two_week_mx(scale=0.008), seed=103)
    testbed = Testbed(universe, seed=104)
    result = ProbeCampaign(testbed, "TwoWeekMX").run()
    return universe, testbed, result


class TestNotifyCampaign:
    def test_nearly_all_deliveries_accepted(self, notify_world):
        _, _, result = notify_world
        accepted = len(result.accepted)
        assert accepted >= 0.9 * len(result.deliveries)

    def test_every_delivery_has_unique_from_domain(self, notify_world):
        _, _, result = notify_world
        from_domains = [d.from_domain for d in result.deliveries]
        assert len(set(from_domains)) == len(from_domains)

    def test_validating_domains_visible_in_log(self, notify_world):
        universe, _, result = notify_world
        analysis = A.analyze_notify(result)
        spf_rate = len(analysis.validating("spf")) / analysis.total
        assert 0.7 < spf_rate < 0.95  # paper: 85%

    def test_table4_shape(self, notify_world):
        _, _, result = notify_world
        analysis = A.analyze_notify(result)
        counts = analysis.combo_counts()
        # Full validation is the most common combo; FTT (DKIM+DMARC only)
        # is absent, as in the paper.
        assert counts[(True, True, True)] == max(counts.values())
        assert counts[(False, True, True)] == 0

    def test_dkim_signature_validates_for_validating_domains(self, notify_world):
        universe, testbed, result = notify_world
        analysis = A.analyze_notify(result)
        dkim_domains = analysis.validating("dkim")
        assert dkim_domains
        # A DKIM query in the log means the receiving MTA actually ran the
        # verifier; cross-check one against the receiver's own record.
        domainid = sorted(dkim_domains)[0]
        delivery = next(d for d in result.deliveries if d.domain.domainid == domainid)
        mta_ip = delivery.delivery.mta_ip
        receiver = next(
            r for r in testbed.receivers.values() if mta_ip in (r.ipv4, r.ipv6)
        )
        dkim_records = [v for v in receiver.validations if v.kind == "dkim"]
        assert any(v.result == "pass" for v in dkim_records)

    def test_timing_analysis_shape(self, notify_world):
        _, _, result = notify_world
        timing = A.timing_analysis(result)
        assert timing.domains_used > 0
        assert abs(sum(fraction for _, fraction in timing.buckets) - 1.0) < 1e-9
        assert 0.6 < timing.negative_fraction <= 1.0

    def test_table5_row(self, notify_world):
        universe, _, result = notify_world
        analysis = A.analyze_notify(result)
        row = A.notify_email_spf_row(universe, result, analysis)
        assert row.validating_domains <= row.total_domains
        assert row.validating_mtas <= row.total_mtas

    def test_table6_lists_popular_providers(self, notify_world):
        _, _, result = notify_world
        analysis = A.analyze_notify(result)
        table = A.provider_table(analysis)
        names = [row[0] for row in table.rows]
        assert "gmail.com" in names and "qq.com" in names
        gmail = next(row for row in table.rows if row[0] == "gmail.com")
        assert gmail[1:] == ["Y", "Y", "Y"]
        qq = next(row for row in table.rows if row[0] == "qq.com")
        assert qq[1:] == ["-", "-", "-"]

    def test_table7_alexa_gradient(self, notify_world):
        universe, _, result = notify_world
        analysis = A.analyze_notify(result)
        table = A.alexa_table(universe, analysis)
        assert table.rows[0][0] == "Domains"

    def test_table1_and_3_render(self, notify_world):
        universe, _, _ = notify_world
        t1 = A.tld_table({"NotifyEmail": universe})
        assert "com" in t1.render()
        t3 = A.as_table({"NotifyEmail": universe})
        assert "AS" in t3.render()


class TestProbeCampaignAnalysis:
    def test_observed_rate_matches_paper_band(self, probe_world):
        universe, _, result = probe_world
        row = A.probe_spf_row("TwoWeekMX", universe, result)
        domain_rate = row.validating_domains / row.total_domains
        mta_rate = row.validating_mtas / row.total_mtas
        assert 0.04 < domain_rate < 0.30  # paper: 13%
        assert 0.04 < mta_rate < 0.30  # paper: 14%

    def test_every_probed_mta_has_result_per_test(self, probe_world):
        _, _, result = probe_world
        from repro.core.policies import POLICIES

        per_mta = {}
        for probe in result.results:
            per_mta.setdefault(probe.mtaid, set()).add(probe.testid)
        for mtaid, tests in per_mta.items():
            assert len(tests) == len(POLICIES)

    def test_decile_rows_cover_all_nonlocal_domains(self, probe_world):
        universe, _, result = probe_world
        rows = A.decile_rows(universe, result)
        assert len(rows) == 10
        total = sum(row.total_domains for row in rows)
        nonlocal_count = sum(
            1
            for d in universe.domains
            if not d.is_local and any(h.mtaid in result.probed for h in d.mta_hosts)
        )
        assert total == nonlocal_count

    def test_behavior_stats_complete(self, probe_world):
        _, _, result = probe_world
        stats = A.behavior_stats(result)
        labels = [stat.label for stat in stats]
        assert len(labels) == 17
        for stat in stats:
            assert 0 <= stat.percent <= 100

    def test_lookup_limit_cdf_monotone(self, probe_world):
        _, _, result = probe_world
        limits = A.lookup_limit_analysis(result)
        fractions = [fraction for _, _, fraction in limits.cdf]
        assert fractions == sorted(fractions)
        if limits.cdf:
            assert fractions[-1] == pytest.approx(1.0)

    def test_probe_counts_table2(self, probe_world):
        universe, _, result = probe_world
        counts = A.probe_counts("TwoWeekMX", universe, result)
        assert counts.ipv4 > 0
        assert counts.domains > 0

    def test_spf_summary_table_renders(self, probe_world):
        universe, _, result = probe_world
        rows = [A.probe_spf_row("TwoWeekMX", universe, result)]
        rows += A.decile_rows(universe, result)
        text = A.spf_summary_table(rows).render()
        assert "Decile 10" in text


class TestNotifyMxConsistency:
    @pytest.fixture(scope="class")
    def both_campaigns(self):
        universe = generate_universe(DatasetSpec.notify_email(scale=0.004), seed=105)
        testbed = Testbed(universe, seed=106)
        notify = NotifyEmailCampaign(testbed).run()
        apply_reputation_effects(universe, seed=107)
        probe = ProbeCampaign(testbed, "NotifyMX", start_time=1e6).run()
        return universe, notify, probe

    def test_probe_rate_lower_than_notify_rate(self, both_campaigns):
        universe, notify, probe = both_campaigns
        analysis = A.analyze_notify(notify)
        notify_rate = len(analysis.validating("spf")) / analysis.total
        row = A.probe_spf_row("NotifyMX", universe, probe)
        probe_rate = row.validating_domains / row.total_domains
        assert probe_rate < notify_rate  # the Section 6.2 headline

    def test_consistency_stats(self, both_campaigns):
        universe, notify, probe = both_campaigns
        analysis = A.analyze_notify(notify)
        stats = A.consistency_stats(universe, analysis, probe)
        assert stats.common_domains > 0
        # Inconsistency overwhelmingly means notify-validating but
        # probe-silent (paper: 95% of inconsistent cases).
        assert stats.notify_only >= stats.probe_only

    def test_rejection_stats(self, both_campaigns):
        _, _, probe = both_campaigns
        stats = A.rejection_stats(probe)
        total = stats.total_mtas
        assert 0.15 < stats.spam / total < 0.40  # paper: 27%
        assert stats.blacklist / total < 0.10  # paper: 3%


class TestReportHelpers:
    def test_pct(self):
        assert pct(1, 4) == "25.0%"
        assert pct(1, 3, 0) == "33%"
        assert pct(1, 0) == "n/a"

    def test_table_render_alignment(self):
        table = Table("T", ["a", "bee"])
        table.add("x", 12)
        table.notes.append("hello")
        text = table.render()
        assert "T\n=" in text
        assert "note: hello" in text
