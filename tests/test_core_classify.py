"""Unit tests for the query-log classifiers, on hand-built logs."""

from repro.core import classify
from repro.core.classify import (
    T02_ORDER,
    classify_helo,
    classify_lookup_limit,
    classify_multiple_records,
    classify_notify_domain,
    classify_serial_parallel,
    classify_tcp_fallback,
    count_mx_address_lookups,
    count_void_targets,
    did_mx_fallback,
    first_spf_lookup_time,
    retrieved_over_ipv6,
    spf_validated,
)
from repro.core.querylog import AttributedQuery
from repro.dns.name import Name
from repro.dns.rdata import RdataType
from repro.dns.server import QueryLogEntry


def q(sub, qtype=RdataType.TXT, t=1.0, transport="udp", experiment="probe", mtaid="m1", testid="t01"):
    labels = sub + (testid, mtaid, "spf-test", "dns-lab", "org")
    entry = QueryLogEntry(t, Name(labels), qtype, transport, "203.0.113.1")
    return AttributedQuery(entry, experiment, mtaid, testid, sub)


class TestSpfValidated:
    def test_base_txt_counts(self):
        assert spf_validated([q((), RdataType.TXT)])

    def test_sub_queries_alone_do_not(self):
        assert not spf_validated([q(("l1",), RdataType.TXT)])

    def test_base_a_does_not(self):
        assert not spf_validated([q((), RdataType.A)])


class TestSerialParallel:
    def test_serial(self):
        queries = [
            q((), t=0.0), q(("l1",), t=1.0), q(("l2",), t=2.0), q(("l3",), t=3.0),
            q(("foo",), RdataType.A, t=4.0),
        ]
        observation = classify_serial_parallel("m1", queries)
        assert observation.parallel is False

    def test_parallel(self):
        queries = [
            q((), t=0.0), q(("l1",), t=1.0), q(("foo",), RdataType.A, t=1.1),
            q(("l2",), t=2.0), q(("l3",), t=3.0),
        ]
        assert classify_serial_parallel("m1", queries).parallel is True

    def test_a_without_l3_is_parallel_evidence(self):
        queries = [q((), t=0.0), q(("foo",), RdataType.A, t=0.5)]
        assert classify_serial_parallel("m1", queries).parallel is True

    def test_undecidable_without_a(self):
        queries = [q((), t=0.0), q(("l1",), t=1.0)]
        assert classify_serial_parallel("m1", queries).parallel is None


class TestLookupLimit:
    def test_count_from_last_name(self):
        queries = [q(("b1l%d" % i,), testid="t02", t=float(i)) for i in range(1, 6)]
        observation = classify_lookup_limit("m1", queries)
        assert observation.queries_issued == T02_ORDER["b1l5"]
        assert observation.elapsed_lower_bound == (T02_ORDER["b1l5"] - 1) * 0.8

    def test_full_run(self):
        queries = [q((name,), testid="t02", t=float(i)) for name, i in T02_ORDER.items()]
        observation = classify_lookup_limit("m1", queries)
        assert observation.ran_everything
        assert observation.queries_issued == 46

    def test_base_only_is_zero(self):
        observation = classify_lookup_limit("m1", [q((), testid="t02")])
        assert observation.queries_issued == 0
        assert observation.halted_within_limit


class TestSimpleClassifiers:
    def test_helo(self):
        obs = classify_helo("m1", [q(("h",), testid="t03"), q((), testid="t03")])
        assert obs.checked_helo and obs.proceeded_to_mail_domain
        obs = classify_helo("m1", [q((), testid="t03")])
        assert not obs.checked_helo

    def test_continued_past_error(self):
        assert classify.continued_past_error([q(("after",), RdataType.A, testid="t04")])
        assert not classify.continued_past_error([q((), testid="t04")])

    def test_void_counter(self):
        queries = [q(("v%d" % i,), RdataType.A, testid="t06") for i in (1, 2, 4)]
        assert count_void_targets(queries) == 3
        # Duplicate queries for one name count once.
        queries += [q(("v1",), RdataType.AAAA, testid="t06")]
        assert count_void_targets(queries) == 3

    def test_mx_fallback(self):
        assert did_mx_fallback([q((), testid="t07")]) is None
        mx_only = [q(("nomx",), RdataType.MX, testid="t07")]
        assert did_mx_fallback(mx_only) is False
        with_a = mx_only + [q(("nomx",), RdataType.A, testid="t07")]
        assert did_mx_fallback(with_a) is True

    def test_multiple_records(self):
        assert classify_multiple_records("m1", []).category == "neither"
        assert classify_multiple_records("m1", [q(("pol1",), RdataType.A, testid="t08")]).category == "one"
        both = [q(("pol1",), RdataType.A, testid="t08"), q(("pol2",), RdataType.A, testid="t08")]
        assert classify_multiple_records("m1", both).category == "both"

    def test_tcp_fallback(self):
        udp_only = [q(("l1tcp",), transport="udp", testid="t09")]
        obs = classify_tcp_fallback("m1", udp_only)
        assert obs.tried_udp and not obs.retried_tcp
        both = udp_only + [q(("l1tcp",), transport="tcp", testid="t09")]
        assert classify_tcp_fallback("m1", both).retried_tcp

    def test_ipv6_retrieval(self):
        assert retrieved_over_ipv6([]) is None
        probe_only = [q((), testid="t10")]
        assert retrieved_over_ipv6(probe_only) is False
        with_v6 = probe_only + [q(("l1",), experiment="v6", testid="t10")]
        assert retrieved_over_ipv6(with_v6) is True

    def test_mx_address_count(self):
        assert count_mx_address_lookups([q((), testid="t11")]) is None
        queries = [q(("many",), RdataType.MX, testid="t11")]
        queries += [q(("h%02d" % i,), RdataType.A, testid="t11") for i in range(1, 13)]
        assert count_mx_address_lookups(queries) == 12

    def test_exp_fetch(self):
        assert classify.fetched_explanation([q(("why",), testid="t22")])
        assert not classify.fetched_explanation([q((), testid="t22")])

    def test_redirect_after_all(self):
        assert classify.followed_redirect_after_all([q(("r",), testid="t32")])

    def test_ip_macro_expansion(self):
        expanded = [q(("1", "2", "0", "192", "in-addr", "e"), RdataType.A, testid="t20")]
        assert classify.expanded_ip_macro(expanded)
        assert not classify.expanded_ip_macro([q((), testid="t20")])


def nq(sub, qtype=RdataType.TXT, t=1.0):
    labels = sub + ("d00001", "dsav-mail", "dns-lab", "org")
    entry = QueryLogEntry(t, Name(labels), qtype, "udp", "203.0.113.1")
    return AttributedQuery(entry, "notify", "d00001", "notify", sub)


class TestNotifyClassification:
    def test_full_validation(self):
        queries = [
            nq((), t=1.0),
            nq(("l1",), t=2.0),
            nq(("mta",), RdataType.A, t=3.0),
            nq(("sel", "_domainkey"), t=4.0),
            nq(("_dmarc",), t=5.0),
        ]
        obs = classify_notify_domain("d00001", queries)
        assert obs.combo == (True, True, True)
        assert obs.spf_completed
        assert not obs.partial_spf

    def test_partial_spf(self):
        obs = classify_notify_domain("d00001", [nq(())])
        assert obs.spf and not obs.spf_completed
        assert obs.partial_spf

    def test_dkim_only(self):
        obs = classify_notify_domain("d00001", [nq(("sel", "_domainkey"))])
        assert obs.combo == (False, True, False)

    def test_first_spf_lookup_time(self):
        queries = [nq((), t=9.0), nq((), t=4.0), nq(("l1",), t=1.0)]
        assert first_spf_lookup_time(queries) == 4.0
        assert first_spf_lookup_time([nq(("l1",))]) is None
