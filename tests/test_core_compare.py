"""Tests for the paper-vs-measured scorecard machinery."""

import pytest

from repro.core.compare import (
    PAPER_REFERENCE,
    Reference,
    Scorecard,
    ScorecardEntry,
    build_scorecard,
    collect_notify_measurements,
    collect_probe_measurements,
)


class TestReferenceTable:
    def test_keys_unique(self):
        keys = [reference.key for reference in PAPER_REFERENCE]
        assert len(keys) == len(set(keys))

    def test_every_reference_has_section_and_band(self):
        for reference in PAPER_REFERENCE:
            assert reference.section
            assert reference.tolerance >= 0
            assert 0.0 <= reference.paper_value <= 100.0

    def test_covers_all_paper_sections(self):
        sections = {reference.section for reference in PAPER_REFERENCE}
        assert {"6.1", "6.2", "6.3", "7.1", "7.2", "7.3"} <= sections


class TestScorecard:
    def _reference(self, value=50.0, tolerance=5.0):
        return Reference("k", "desc", value, tolerance, "6.1")

    def test_within_band(self):
        entry = ScorecardEntry(self._reference(), measured=53.0)
        assert entry.deviation == pytest.approx(3.0)
        assert entry.within_band

    def test_outside_band(self):
        entry = ScorecardEntry(self._reference(), measured=56.0)
        assert not entry.within_band

    def test_missing_measurement(self):
        entry = ScorecardEntry(self._reference(), measured=None)
        assert entry.within_band is None
        assert entry.deviation is None

    def test_hit_rate(self):
        entries = [
            ScorecardEntry(self._reference(), 51.0),
            ScorecardEntry(self._reference(), 70.0),
            ScorecardEntry(self._reference(), None),
        ]
        scorecard = Scorecard(entries)
        assert scorecard.hits == 1
        assert len(scorecard.evaluated) == 2
        assert scorecard.hit_rate == pytest.approx(0.5)

    def test_build_from_dict(self):
        scorecard = build_scorecard({"serial_lookups": 96.0})
        by_key = {entry.reference.key: entry for entry in scorecard.entries}
        assert by_key["serial_lookups"].measured == 96.0
        assert by_key["limit_all46"].measured is None

    def test_table_renders_misses_loudly(self):
        scorecard = build_scorecard({"serial_lookups": 10.0})
        text = scorecard.to_table().render()
        assert "NO" in text


class TestCollectors:
    @pytest.fixture(scope="class")
    def worlds(self):
        from repro.core.campaign import (
            NotifyEmailCampaign,
            ProbeCampaign,
            Testbed,
            apply_reputation_effects,
        )
        from repro.core.datasets import DatasetSpec, generate_universe

        universe = generate_universe(DatasetSpec.notify_email(scale=0.004), seed=601)
        testbed = Testbed(universe, seed=602)
        notify = NotifyEmailCampaign(testbed).run()
        apply_reputation_effects(universe, seed=603)
        probe = ProbeCampaign(testbed, "NotifyMX", start_time=1e7).run()
        return universe, notify, probe

    def test_notify_collector_covers_its_keys(self, worlds):
        universe, notify, _ = worlds
        measured = collect_notify_measurements(universe, notify)
        for key in ("notify_spf_domains", "combo_full", "partial_spf",
                    "providers_spf", "fig2_negative"):
            assert key in measured
            assert 0.0 <= measured[key] <= 100.0

    def test_probe_collector_covers_its_keys(self, worlds):
        universe, _, probe = worlds
        measured = collect_probe_measurements(universe, probe, "NotifyMX")
        for key in ("notifymx_spf_domains", "reject_spam", "serial_lookups",
                    "void_all_five", "mx_limit_all20"):
            assert key in measured

    def test_every_behavior_stat_label_mapped(self, worlds):
        """If behavior_stats gains or renames a stat, the scorecard
        mapping must keep up."""
        from repro.core import analysis as A
        from repro.core.compare import _STAT_LABEL_TO_KEY

        _, _, probe = worlds
        labels = {stat.label for stat in A.behavior_stats(probe)}
        unmapped = set(_STAT_LABEL_TO_KEY) - labels
        assert not unmapped, "scorecard maps nonexistent labels: %s" % unmapped
