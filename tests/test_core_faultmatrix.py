"""Tests for the fault-matrix campaign."""

import pytest

from repro.core.datasets import DatasetSpec, generate_universe
from repro.core.faultmatrix import (
    FAULT_SCENARIOS,
    classify_outcome,
    run_fault_matrix,
)
from repro.core.probe import ProbeResult
from repro.net.faults import FaultPlan


@pytest.fixture(scope="module")
def universe():
    return generate_universe(DatasetSpec.two_week_mx(scale=0.001), seed=13)


SCENARIOS = (
    ("baseline", ""),
    ("banner_absent", "banner_absent:1.0"),
    ("servfail", "servfail:0.5"),
)


class TestClassify:
    def test_done(self):
        result = ProbeResult(mtaid="m", testid="t", target_ip="ip", stage_reached="done")
        assert classify_outcome(result) == "done"

    def test_noconnect(self):
        result = ProbeResult(
            mtaid="m", testid="t", target_ip="ip", error_stage="connect"
        )
        assert classify_outcome(result) == "noconnect"

    def test_stalled(self):
        result = ProbeResult(
            mtaid="m", testid="t", target_ip="ip", stage_reached="mail", error_stage="rcpt"
        )
        assert classify_outcome(result) == "stalled"


class TestMatrix:
    def test_outcomes_shift_under_faults(self, universe):
        matrix = run_fault_matrix(universe, seed=13, scenarios=SCENARIOS)
        by_label = {o.label: o for o in matrix.outcomes}
        baseline = by_label["baseline"]
        absent = by_label["banner_absent"]
        assert baseline.injected == {}
        assert len(absent.results) == len(baseline.results)
        # Every conversation meets the missing banner: nothing connects.
        assert absent.buckets["noconnect"] == len(absent.results)
        assert absent.injected.get("banner_absent", 0) >= len(absent.results)
        # DNS-side faults degrade validation, not the conversation.
        assert by_label["servfail"].buckets["done"] == baseline.buckets["done"]
        assert by_label["servfail"].injected.get("servfail", 0) > 0

    def test_reruns_identically(self, universe):
        first = run_fault_matrix(universe, seed=13, scenarios=SCENARIOS)
        second = run_fault_matrix(universe, seed=13, scenarios=SCENARIOS)
        assert first.to_table().render() == second.to_table().render()

    def test_table_lists_every_scenario(self, universe):
        matrix = run_fault_matrix(universe, seed=13, scenarios=SCENARIOS)
        rendered = matrix.to_table().render()
        for label, _ in SCENARIOS:
            assert label in rendered
        assert "Fault matrix" in rendered

    def test_canonical_scenarios_cover_every_kind(self):
        specs = ",".join(spec for _, spec in FAULT_SCENARIOS if spec)
        kinds = {rule.kind for rule in FaultPlan.parse(specs).rules}
        from repro.net.faults import FaultKind

        assert kinds == set(FaultKind)
