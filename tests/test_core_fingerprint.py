"""Tests for validator fingerprinting (the paper's s8 future work)."""

import pytest

from repro.core import fingerprint
from repro.core.campaign import ProbeCampaign, Testbed
from repro.core.datasets import DatasetSpec, generate_universe
from repro.core.fingerprint import (
    FEATURES,
    BehaviorVector,
    behavior_vector,
    fingerprint_fleet,
)
from repro.core.probe import ProbeClient
from repro.core.synth import SynthConfig, SynthesizingAuthority
from repro.dns.resolver import AuthorityDirectory
from repro.mta.behavior import MtaBehavior
from repro.mta.receiver import ReceivingMta
from repro.net.clock import Clock
from repro.net.latency import LatencyModel
from repro.net.network import Network


class TestBehaviorVector:
    def test_feature_accessor(self):
        vector = BehaviorVector(tuple(["serial"] + [None] * (len(FEATURES) - 1)))
        assert vector.feature("lookup_order") == "serial"
        assert vector.feature("ipv6") is None
        assert vector.observed_features == 1

    def test_text_rendering_skips_unobserved(self):
        vector = BehaviorVector(tuple(["serial", "<=10"] + [None] * (len(FEATURES) - 2)))
        text = vector.to_text()
        assert "lookup_order=serial" in text
        assert "ipv6" not in text

    def test_vectors_hashable_and_comparable(self):
        a = BehaviorVector(tuple([None] * len(FEATURES)))
        b = BehaviorVector(tuple([None] * len(FEATURES)))
        assert a == b and hash(a) == hash(b)


def _probe_mta(behavior, mtaid, testids):
    """Probe one MTA with the given policies and return the query index."""
    network = Network(LatencyModel(0.004), Clock())
    directory = AuthorityDirectory()
    synth = SynthesizingAuthority(SynthConfig())
    synth.deploy(network, directory)
    mta = ReceivingMta("fp.mx.example", network, directory, behavior, ipv4="198.51.100.70")
    mta.attach()
    probe = ProbeClient(network, synth.config, sleep_seconds=1.0)
    t = 0.0
    for testid in testids:
        _, t = probe.probe("198.51.100.70", mtaid, testid, "fp.example", t)
    from repro.core.querylog import QueryIndex, attribute_queries

    return QueryIndex(attribute_queries(synth.query_log))


FP_TESTS = ["t01", "t02", "t04", "t06", "t08", "t11"]


class TestVectorFromLog:
    def test_strict_validator_profile(self):
        behavior = MtaBehavior(accepts_any_recipient=True, validates_dkim=False, validates_dmarc=False)
        index = _probe_mta(behavior, "mstrict", FP_TESTS)
        vector = behavior_vector("mstrict", index)
        assert vector.feature("lookup_order") == "serial"
        assert vector.feature("lookup_limit") == "<=10"
        assert vector.feature("syntax_main") == "stops"
        assert vector.feature("void_budget") == "2"
        assert vector.feature("multiple_records") == "neither"
        assert vector.feature("mx_addr_limit") == "<=10"

    def test_wild_validator_profile_differs(self):
        behavior = MtaBehavior(
            accepts_any_recipient=True,
            validates_dkim=False,
            validates_dmarc=False,
            spf_max_dns_mechanisms=None,
            spf_max_void_lookups=None,
            spf_max_mx_addresses=None,
            spf_tolerant_syntax=True,
            spf_on_multiple_records="first",
        )
        index = _probe_mta(behavior, "mwild", FP_TESTS)
        vector = behavior_vector("mwild", index)
        assert vector.feature("lookup_limit") == "all46"
        assert vector.feature("syntax_main") == "continues"
        assert vector.feature("void_budget") == "5"
        assert vector.feature("multiple_records") == "one"
        assert vector.feature("mx_addr_limit") == "all20"

    def test_identical_configs_identical_vectors(self):
        behavior = MtaBehavior(accepts_any_recipient=True, validates_dkim=False, validates_dmarc=False)
        a = behavior_vector("ma", _probe_mta(behavior, "ma", FP_TESTS))
        b = behavior_vector("mb", _probe_mta(
            MtaBehavior(accepts_any_recipient=True, validates_dkim=False, validates_dmarc=False),
            "mb", FP_TESTS))
        assert a == b

    def test_non_validator_has_no_features(self):
        behavior = MtaBehavior(
            accepts_any_recipient=True,
            validates_spf=False, validates_dkim=False, validates_dmarc=False,
        )
        index = _probe_mta(behavior, "msilent", FP_TESTS)
        vector = behavior_vector("msilent", index)
        assert vector.observed_features == 0


class TestFleetFingerprinting:
    @pytest.fixture(scope="class")
    def report(self):
        universe = generate_universe(DatasetSpec.notify_email(scale=0.004), seed=201)
        testbed = Testbed(universe, seed=202)
        result = ProbeCampaign(testbed, "fp").run()
        return fingerprint_fleet(result)

    def test_clusters_partition_validators(self, report):
        members = [m for cluster in report.clusters.values() for m in cluster]
        assert len(members) == len(set(members))
        assert report.total_mtas == len(members)
        assert report.distinct_profiles >= 2

    def test_entropy_positive_for_diverse_fleet(self, report):
        assert report.entropy_bits() > 0.5

    def test_largest_clusters_ordered(self, report):
        sizes = [size for _, size in report.largest(5)]
        assert sizes == sorted(sizes, reverse=True)

    def test_table_renders(self, report):
        text = report.to_table().render()
        assert "distinct profiles" in text

    def test_min_features_filter(self):
        universe = generate_universe(DatasetSpec.notify_email(scale=0.003), seed=203)
        testbed = Testbed(universe, seed=204)
        result = ProbeCampaign(testbed, "fp2", testids=["t12"]).run()
        report = fingerprint_fleet(result, min_features=3)
        # A single baseline policy cannot expose three features.
        assert report.distinct_profiles == 0
        assert report.skipped
