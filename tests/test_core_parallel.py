"""Tests for sharded parallel campaign execution (repro.core.parallel).

The load-bearing property is *differential*: for K ∈ {1, 2, 4} a sharded
run must produce the same attributed-query multiset, the same analysis
tables, the same metrics, and the same tracecheck verdict as the serial
path.  Everything else (partition stability, merge algebra) supports
that headline guarantee.
"""

import math
from collections import Counter

import pytest

from repro.core import analysis as A
from repro.core.campaign import NotifyEmailCampaign, ProbeCampaign, Testbed, probe_schedule
from repro.core.datasets import (
    DatasetSpec,
    generate_universe,
    partition_universe,
    shard_index,
    stable_hash64,
)
from repro.core.parallel import (
    merge_raw_logs,
    run_notify_sharded,
    run_probe_sharded,
)
from repro.core.querylog import QueryIndex
from repro.lint.tracecheck import check_index
from repro.obs import Observability
from repro.obs.metrics import Histogram, MetricsRegistry


@pytest.fixture(scope="module")
def universe():
    return generate_universe(DatasetSpec.notify_email(scale=0.004), seed=7)


@pytest.fixture(scope="module")
def serial_notify(universe):
    obs = Observability()
    testbed = Testbed(universe, seed=3, obs=obs)
    result = NotifyEmailCampaign(testbed).run()
    return result, testbed, obs


@pytest.fixture(scope="module")
def serial_probe(universe):
    obs = Observability()
    testbed = Testbed(universe, seed=3, obs=obs)
    result = ProbeCampaign(testbed, "notifymx", seed=5, start_time=1e7).run()
    return result, testbed, obs


def query_key(query):
    """Everything observable about one attributed query.

    qname compares by case-insensitive key: DNS 0x20 casing is resolver
    state, invisible to attribution and to every analysis.
    """
    return (
        query.timestamp,
        query.entry.qname.key,
        int(query.qtype),
        query.transport,
        query.entry.client_ip,
        query.mtaid,
        query.testid,
    )


class TestPartition:
    def test_stable_hash_is_seed_independent(self):
        # A golden value: blake2b is stable across processes and runs,
        # unlike the salted builtin hash().
        assert stable_hash64("mta00001") == stable_hash64("mta00001")
        assert shard_index("mta00001", 4) == stable_hash64("mta00001") % 4

    def test_partition_is_disjoint_and_complete(self, universe):
        for shards in (1, 2, 4, 7):
            partition = partition_universe(universe, shards)
            assert len(partition) == shards
            all_domains = [d for shard in partition for d in shard.domainids]
            all_mtas = [m for shard in partition for m in shard.mtaids]
            assert len(all_domains) == len(set(all_domains))
            assert sorted(all_domains) == sorted(d.domainid for d in universe.domains)
            assert len(all_mtas) == len(set(all_mtas))
            assert sorted(all_mtas) == sorted(h.mtaid for h in universe.mtas)

    def test_domains_follow_their_provider(self, universe):
        """Every domain of one provider lands in one shard, and that
        shard's notify pool covers the provider's MTAs — receiver state
        (resolver caches, greylists) must stay shard-local."""
        partition = partition_universe(universe, 4)
        domain_shard = {}
        for shard in partition:
            for domainid in shard.domainids:
                domain_shard[domainid] = shard
        for domain in universe.domains:
            shard = domain_shard[domain.domainid]
            for host in domain.mta_hosts:
                assert host.mtaid in shard.notify_mtaids

    def test_membership_independent_of_universe_seed(self):
        a = generate_universe(DatasetSpec.notify_email(scale=0.004), seed=7)
        b = generate_universe(DatasetSpec.notify_email(scale=0.004), seed=7)
        assert [s.mtaids for s in partition_universe(a, 4)] == [
            s.mtaids for s in partition_universe(b, 4)
        ]


class TestMergeAlgebra:
    def _registry(self, base):
        registry = MetricsRegistry()
        registry.counter("x_total", (("k", "a"),), value=base, t=float(base))
        registry.counter("x_total", (("k", "b"),), value=2 * base)
        registry.observe("d_seconds", 0.1 * base)
        registry.observe("d_seconds", 3.0)
        registry.gauge("g", base)
        return registry

    def test_registry_merge_is_associative_and_commutative(self):
        registries = [self._registry(b) for b in (1, 2, 3)]
        left = MetricsRegistry.merged(
            [MetricsRegistry.merged(registries[:2]), registries[2]]
        )
        right = MetricsRegistry.merged(
            [registries[0], MetricsRegistry.merged(registries[1:])]
        )
        reversed_ = MetricsRegistry.merged([self._registry(b) for b in (3, 2, 1)])
        for other in (right, reversed_):
            assert left.counter_value("x_total", (("k", "a"),)) == other.counter_value(
                "x_total", (("k", "a"),)
            )
            assert left.histogram("d_seconds").counts == other.histogram("d_seconds").counts
            assert math.isclose(
                left.histogram("d_seconds").total, other.histogram("d_seconds").total
            )
            assert left.virtual_time == other.virtual_time == 3.0
        # Gauges are last-writer-wins: the one intentionally
        # order-dependent series (callers overwrite campaign globals).
        assert left.gauge_value("g") == 3.0
        assert reversed_.gauge_value("g") == 1.0

    def test_histogram_merge_rejects_different_buckets(self):
        a, b = Histogram([1.0, 2.0]), Histogram([1.0, 3.0])
        with pytest.raises(ValueError):
            a.merge_from(b)

    def test_query_index_merge_matches_rebuild(self, serial_probe):
        result, _, _ = serial_probe
        queries = result.index.queries
        parts = [
            QueryIndex(queries[0::3]),
            QueryIndex(queries[1::3]),
            QueryIndex(queries[2::3]),
        ]
        merged = QueryIndex.merge(parts)
        assert Counter(map(query_key, merged.queries)) == Counter(map(query_key, queries))
        assert merged.mtas_observed() == result.index.mtas_observed()
        assert sorted(merged.pairs()) == sorted(result.index.pairs())


def assert_metrics_equal(serial: MetricsRegistry, merged: MetricsRegistry):
    assert serial.names() == merged.names()
    for name in serial.names():
        kind = serial.kind_of(name)
        assert merged.kind_of(name) == kind
        for labels, value in serial.series(name):
            if kind == "counter":
                assert merged.counter_value(name, labels) == value, (name, labels)
            elif kind == "gauge":
                assert merged.gauge_value(name, labels) == value, (name, labels)
            else:
                other = merged.histogram(name, labels)
                assert other is not None
                assert other.counts == value.counts, (name, labels)
                assert other.count == value.count
                # Float sums associate differently across shards; counts
                # and bucket contents are exact.
                assert math.isclose(other.total, value.total, rel_tol=1e-9)
    assert merged.virtual_time == serial.virtual_time


class TestDifferentialEquivalence:
    """Serial vs sharded, K ∈ {1, 2, 4}, both campaign kinds."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_notify_campaign(self, universe, serial_notify, shards):
        serial, _, obs = serial_notify
        merged = run_notify_sharded(
            universe, shards=shards, workers=1, testbed_seed=3, use_processes=False
        )
        assert Counter(map(query_key, merged.result.index.queries)) == Counter(
            map(query_key, serial.index.queries)
        )
        assert [d.domain.domainid for d in merged.result.deliveries] == [
            d.domain.domainid for d in serial.deliveries
        ]
        assert [d.delivery.accepted_with_250 for d in merged.result.deliveries] == [
            d.delivery.accepted_with_250 for d in serial.deliveries
        ]
        assert_metrics_equal(obs.metrics, merged.metrics)
        analysis_serial = A.analyze_notify(serial)
        analysis_merged = A.analyze_notify(merged.result)
        assert (
            A.validation_breakdown_table(analysis_serial).render()
            == A.validation_breakdown_table(analysis_merged).render()
        )
        assert (
            A.provider_table(analysis_serial).render()
            == A.provider_table(analysis_merged).render()
        )

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_probe_campaign(self, universe, serial_probe, shards):
        serial, testbed, obs = serial_probe
        merged = run_probe_sharded(
            universe,
            "notifymx",
            shards=shards,
            workers=1,
            testbed_seed=3,
            campaign_seed=5,
            start_time=1e7,
            use_processes=False,
        )
        assert Counter(map(query_key, merged.result.index.queries)) == Counter(
            map(query_key, serial.index.queries)
        )
        assert [
            (r.mtaid, r.testid, r.stage_reached, r.t_started, r.t_finished)
            for r in merged.result.results
        ] == [
            (r.mtaid, r.testid, r.stage_reached, r.t_started, r.t_finished)
            for r in serial.results
        ]
        assert list(merged.result.probed) == list(serial.probed)
        assert merged.result.recipient_domain == serial.recipient_domain
        assert_metrics_equal(obs.metrics, merged.metrics)
        assert (
            A.behavior_table(A.behavior_stats(merged.result)).render()
            == A.behavior_table(A.behavior_stats(serial)).render()
        )

    def test_tracecheck_verdicts_match(self, universe, serial_probe):
        serial, testbed, _ = serial_probe
        merged = run_probe_sharded(
            universe,
            "notifymx",
            shards=4,
            workers=1,
            testbed_seed=3,
            campaign_seed=5,
            start_time=1e7,
            use_processes=False,
        )
        serial_check = check_index(serial.index, config=testbed.synth_config)
        merged_check = check_index(merged.result.index, config=merged.synth_config)
        assert serial_check.clean == merged_check.clean
        assert serial_check.queries_checked == merged_check.queries_checked
        assert serial_check.pairs_checked == merged_check.pairs_checked

    def test_limit_mtas_slices_after_deterministic_order(self, universe):
        full = probe_schedule(universe, ("t01", "t02"), seed=5)
        limited = probe_schedule(universe, ("t01", "t02"), seed=5, limit_mtas=5)
        assert [t.host.mtaid for t in limited] == [t.host.mtaid for t in full[:5]]
        # And it is stable across calls (the eligible pool is sorted
        # before the seeded shuffle).
        again = probe_schedule(universe, ("t01", "t02"), seed=5, limit_mtas=5)
        assert [t.host.mtaid for t in again] == [t.host.mtaid for t in limited]


class TestRealProcesses:
    def test_multiprocessing_smoke(self, universe, serial_notify):
        """One true-multiprocessing case: pickling, pool dispatch, and
        the merge all behave identically to the inline path."""
        serial, _, _ = serial_notify
        merged = run_notify_sharded(
            universe, shards=2, workers=2, testbed_seed=3, use_processes=True
        )
        assert Counter(map(query_key, merged.result.index.queries)) == Counter(
            map(query_key, serial.index.queries)
        )
        assert merged.span_count > 0

    def test_per_shard_reconciliation(self, universe):
        merged = run_probe_sharded(
            universe,
            "notifymx",
            testids=("t01", "t03"),
            shards=2,
            workers=1,
            testbed_seed=3,
            campaign_seed=5,
            start_time=1e7,
            reconcile=True,
            use_processes=False,
        )
        assert merged.reconciled is True


class TestMergeRawLogs:
    def test_timestamp_order(self, serial_probe):
        result, testbed, _ = serial_probe
        raw = testbed.synth.query_log
        merged = merge_raw_logs([raw[0::2], raw[1::2]])
        assert len(merged) == len(raw)
        times = [entry.timestamp for entry in merged]
        assert times == sorted(times)
