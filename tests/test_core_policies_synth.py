"""Tests for the test-policy catalogue and the synthesizing DNS server."""

import pytest

from repro.core.policies import (
    NOTIFY_POLICY,
    POLICIES,
    PolicyContext,
    policy_by_id,
    t02_query_order,
)
from repro.core.synth import SynthConfig, SynthesizingAuthority
from repro.dns import wire
from repro.dns.message import Message
from repro.dns.rdata import Rcode, RdataType
from repro.dns.resolver import AuthorityDirectory, Resolver
from repro.net.clock import Clock
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.spf.parser import parse_record
from repro.spf.terms import looks_like_spf


def _context(testid="t12", mtaid="m00001"):
    config = SynthConfig()
    return PolicyContext(
        base="%s.%s.%s" % (testid, mtaid, config.probe_suffix),
        mtaid=mtaid,
        testid=testid,
        v6_base="%s.%s.%s" % (testid, mtaid, config.v6_suffix),
        helo_base="h.%s.%s.%s" % (testid, mtaid, config.probe_suffix),
        valid_sender_ips=("203.0.113.9",),
        dkim_key_b64="QUJD",
    )


class TestCatalogue:
    def test_exactly_39_policies(self):
        assert len(POLICIES) == 39
        assert len({policy.testid for policy in POLICIES}) == 39

    def test_documented_policies_cite_sections(self):
        documented = [policy for policy in POLICIES if policy.documented]
        assert len(documented) == 11
        assert all(policy.section for policy in documented)

    def test_policy_by_id(self):
        assert policy_by_id("t01").name == "serial_parallel"
        with pytest.raises(KeyError):
            policy_by_id("t99")

    def test_every_l0_policy_is_parseable_spf(self):
        for policy in POLICIES:
            context = _context(policy.testid)
            sub = ("real",) if policy.testid == "t23" else ()  # t23: L0 is a CNAME
            response = policy.respond(sub, RdataType.TXT, context)
            texts = [r.text for r in response.records if r.rdtype == RdataType.TXT]
            spf_texts = [text for text in texts if looks_like_spf(text)]
            assert spf_texts, "policy %s has no L0 SPF record" % policy.testid
            if policy.testid not in ("t04",):  # t04 is deliberately broken
                for text in spf_texts:
                    parse_record(text, tolerant=True)

    def test_unique_descriptions(self):
        descriptions = [policy.description for policy in POLICIES]
        assert len(set(descriptions)) == len(descriptions)


class TestT02Structure:
    def test_order_covers_46_queries(self):
        order = t02_query_order()
        assert sorted(order.values()) == list(range(1, 47))

    def test_30_includes_16_addresses(self):
        order = t02_query_order()
        includes = [name for name in order if "l" in name]
        addresses = [name for name in order if "a" in name]
        assert len(includes) == 30
        assert len(addresses) == 16

    def test_every_name_resolvable(self):
        policy = policy_by_id("t02")
        context = _context("t02")
        for name in t02_query_order():
            qtype = RdataType.A if "a" in name else RdataType.TXT
            response = policy.respond((name,), qtype, context)
            assert response.records, "t02 name %s unresolvable" % name

    def test_all_responses_delayed(self):
        policy = policy_by_id("t02")
        context = _context("t02")
        for name in t02_query_order():
            response = policy.respond((name,), RdataType.TXT, context)
            assert response.delay == pytest.approx(0.8)
        base = policy.respond((), RdataType.TXT, context)
        assert base.delay == 0.0


class TestPolicyResponses:
    def test_t01_delays_only_l1_l2(self):
        policy = policy_by_id("t01")
        context = _context("t01")
        assert policy.respond(("l1",), RdataType.TXT, context).delay == pytest.approx(0.1)
        assert policy.respond(("l2",), RdataType.TXT, context).delay == pytest.approx(0.1)
        assert policy.respond(("l3",), RdataType.TXT, context).delay == 0.0
        assert policy.respond(("foo",), RdataType.A, context).records

    def test_t06_void_names_nxdomain(self):
        policy = policy_by_id("t06")
        context = _context("t06")
        for index in range(1, 6):
            response = policy.respond(("v%d" % index,), RdataType.A, context)
            assert response.nxdomain

    def test_t07_nomx_is_nodata_not_nxdomain(self):
        policy = policy_by_id("t07")
        context = _context("t07")
        response = policy.respond(("nomx",), RdataType.MX, context)
        assert not response.nxdomain
        assert not any(r.rdtype == RdataType.MX for r in response.records)

    def test_t08_two_spf_records(self):
        policy = policy_by_id("t08")
        context = _context("t08")
        response = policy.respond((), RdataType.TXT, context)
        assert len(response.records) == 2

    def test_t09_forces_tcp_on_child_only(self):
        policy = policy_by_id("t09")
        context = _context("t09")
        assert policy.respond(("l1tcp",), RdataType.TXT, context).force_tcp
        assert not policy.respond((), RdataType.TXT, context).force_tcp

    def test_t10_includes_v6_suffix(self):
        policy = policy_by_id("t10")
        context = _context("t10")
        response = policy.respond((), RdataType.TXT, context)
        assert context.v6_base in response.records[0].text

    def test_t11_twenty_exchanges(self):
        policy = policy_by_id("t11")
        context = _context("t11")
        response = policy.respond(("many",), RdataType.MX, context)
        assert len(response.records) == 20

    def test_t20_wildcard_matches_macro_expansion(self):
        policy = policy_by_id("t20")
        context = _context("t20")
        response = policy.respond(("1", "2", "0", "192", "in-addr", "e"), RdataType.A, context)
        assert response.records

    def test_t34_multi_string_reassembles(self):
        policy = policy_by_id("t34")
        context = _context("t34")
        response = policy.respond((), RdataType.TXT, context)
        record = response.records[0]
        assert len(record.strings) == 2
        assert looks_like_spf(record.text)
        parse_record(record.text)

    def test_unknown_sublabel_is_nxdomain(self):
        policy = policy_by_id("t12")
        response = policy.respond(("nonexistent",), RdataType.A, _context())
        assert response.nxdomain

    def test_notify_policy_full_record_set(self):
        context = _context("notify", "d00042")
        base = NOTIFY_POLICY.respond((), RdataType.TXT, context)
        assert "include:l1." in base.records[0].text
        key = NOTIFY_POLICY.respond(("sel", "_domainkey"), RdataType.TXT, context)
        assert "p=QUJD" in key.records[0].text
        dmarc = NOTIFY_POLICY.respond(("_dmarc",), RdataType.TXT, context)
        assert "p=reject" in dmarc.records[0].text
        mta_a = NOTIFY_POLICY.respond(("mta",), RdataType.A, context)
        assert [r.address for r in mta_a.records] == ["203.0.113.9"]


class TestSynthServer:
    @pytest.fixture
    def deployed(self):
        network = Network(LatencyModel(0.005), Clock())
        directory = AuthorityDirectory()
        config = SynthConfig(sender_ips=("203.0.113.9",), dkim_key_b64="QUJD")
        server = SynthesizingAuthority(config)
        server.deploy(network, directory)
        resolver = Resolver(network, directory, address4="203.0.113.77", address6="2001:db8:77::1")
        return network, server, resolver, config

    def test_l0_policy_synthesized(self, deployed):
        _, server, resolver, config = deployed
        answer, _ = resolver.query_at("t12.m00009.%s" % config.probe_suffix, RdataType.TXT, 0.0)
        assert answer.texts() == ["v=spf1 -all"]

    def test_distinct_mtas_get_distinct_bases(self, deployed):
        _, server, resolver, config = deployed
        a, _ = resolver.query_at("t16.ma.%s" % config.probe_suffix, RdataType.TXT, 0.0)
        b, _ = resolver.query_at("t16.mb.%s" % config.probe_suffix, RdataType.TXT, 0.0)
        assert "ma" in a.texts()[0] and "mb" in b.texts()[0]

    def test_unknown_testid_nxdomain(self, deployed):
        _, _, resolver, config = deployed
        answer, _ = resolver.query_at("t99.m00009.%s" % config.probe_suffix, RdataType.TXT, 0.0)
        assert answer.status.name == "NXDOMAIN"

    def test_out_of_suffix_refused(self, deployed):
        network, server, _, _ = deployed
        query = Message.make_query("example.org", RdataType.TXT, msg_id=9)
        payload, _ = server._handle(wire.to_wire(query), "1.2.3.4", "udp", 0.0)
        assert wire.from_wire(payload).rcode is Rcode.REFUSED

    def test_soa_carries_contact(self, deployed):
        _, server, resolver, config = deployed
        # Negative answers carry the SOA with the published contact RNAME.
        answer, _ = resolver.query_at("nothing.t12.mX.%s" % config.probe_suffix, RdataType.A, 0.0)
        assert answer.status.name == "NXDOMAIN"

    def test_v6_suffix_only_reachable_over_ipv6(self, deployed):
        network, server, dual, config = deployed
        qname = "l1.t10.m1.%s" % config.v6_suffix
        answer, _ = dual.query_at(qname, RdataType.TXT, 0.0)
        assert answer.status.name == "SUCCESS"
        assert ":" in answer.server_ip
        v4only = Resolver(network, AuthorityDirectoryFrom(dual), address4="203.0.113.78")
        answer, _ = v4only.query_at(qname, RdataType.TXT, 0.0)
        assert answer.status.name == "UNREACHABLE"

    def test_delay_applied_through_network(self, deployed):
        _, _, resolver, config = deployed
        _, t_plain = resolver.query_at("t01.mZ.%s" % config.probe_suffix, RdataType.TXT, 0.0)
        _, t_l1 = resolver.query_at("l1.t01.mZ.%s" % config.probe_suffix, RdataType.TXT, 0.0)
        assert t_l1 >= t_plain + 0.1 - 0.02

    def test_forced_truncation_elicits_tcp(self, deployed):
        _, server, resolver, config = deployed
        qname = "l1tcp.t09.mQ.%s" % config.probe_suffix
        answer, _ = resolver.query_at(qname, RdataType.TXT, 0.0)
        assert answer.status.name == "SUCCESS"
        assert answer.transport == "tcp"
        transports = [e.transport for e in server.queries_under(qname)]
        assert transports == ["udp", "tcp"]

    def test_query_log_captures_everything(self, deployed):
        _, server, resolver, config = deployed
        resolver.query_at("t12.mLOG.%s" % config.probe_suffix, RdataType.TXT, 0.0)
        assert any("mlog" in str(e.qname).lower() for e in server.query_log)


def AuthorityDirectoryFrom(resolver):
    """The directory a resolver is using (test helper)."""
    return resolver.directory
