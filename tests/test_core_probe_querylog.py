"""Tests for the probe client and query attribution."""

import pytest

from repro.core.probe import DEFAULT_USERNAMES, ProbeClient
from repro.core.querylog import QueryIndex, attribute_queries, attribute_queries_with_stats
from repro.core.synth import SynthConfig, SynthesizingAuthority
from repro.dns.name import Name
from repro.dns.rdata import RdataType
from repro.dns.resolver import AuthorityDirectory
from repro.dns.server import QueryLogEntry
from repro.mta.behavior import MtaBehavior, SpfTrigger
from repro.mta.receiver import ReceivingMta
from repro.net.clock import Clock
from repro.net.latency import LatencyModel
from repro.net.network import Network

MTA_IP = "198.51.100.60"


@pytest.fixture
def rig():
    network = Network(LatencyModel(0.005), Clock())
    directory = AuthorityDirectory()
    config = SynthConfig()
    synth = SynthesizingAuthority(config)
    synth.deploy(network, directory)
    probe = ProbeClient(network, config, sleep_seconds=15.0)
    return network, directory, synth, probe


def _mta(network, directory, behavior):
    mta = ReceivingMta("mx.target.example", network, directory, behavior, ipv4=MTA_IP)
    mta.attach()
    return mta


class TestProbeConversation:
    def test_full_walk_never_delivers(self, rig):
        network, directory, synth, probe = rig
        mta = _mta(network, directory, MtaBehavior(accepts_any_recipient=True,
                                                   validates_dkim=False, validates_dmarc=False))
        result, t = probe.probe(MTA_IP, "m00001", "t12", "target.example", 0.0)
        assert result.completed_envelope
        assert result.stage_reached == "done"
        assert not mta.deliveries  # the no-delivery guarantee
        stages = [stage for stage, _, _ in result.replies]
        assert stages == ["ehlo", "mail", "rcpt", "data"]
        assert result.accepted_username == "michael"
        # Three 15-second sleeps dominate the conversation time.
        assert t - result.t_started >= 45.0

    def test_username_fallback_to_postmaster(self, rig):
        network, directory, synth, probe = rig
        _mta(network, directory, MtaBehavior(validates_dkim=False, validates_dmarc=False))
        result, _ = probe.probe(MTA_IP, "m00002", "t12", "target.example", 0.0)
        assert result.accepted_username == "postmaster"
        rcpt_replies = [r for r in result.replies if r[0] == "rcpt"]
        assert len(rcpt_replies) == len(DEFAULT_USERNAMES)

    def test_all_recipients_rejected(self, rig):
        network, directory, synth, probe = rig
        behavior = MtaBehavior(accepts_any_recipient=False, accepts_postmaster=False,
                               validates_dkim=False, validates_dmarc=False)
        _mta(network, directory, behavior)
        result, _ = probe.probe(MTA_IP, "m00003", "t12", "target.example", 0.0)
        assert result.invalid_recipient
        assert result.stage_reached == "mail"

    def test_blacklist_rejection_detected(self, rig):
        network, directory, synth, probe = rig
        _mta(network, directory, MtaBehavior(blacklist_rejection="spam",
                                             validates_dkim=False, validates_dmarc=False))
        result, _ = probe.probe(MTA_IP, "m00004", "t12", "target.example", 0.0)
        assert result.rejected_mentioning == "spam"
        assert result.error_stage == "mail"

    def test_unreachable_target(self, rig):
        network, directory, synth, probe = rig
        result, _ = probe.probe("198.51.100.61", "m00005", "t12", "target.example", 0.0)
        assert result.error_stage == "connect"

    def test_probe_elicits_validation_queries(self, rig):
        network, directory, synth, probe = rig
        _mta(network, directory, MtaBehavior(accepts_any_recipient=True,
                                             validates_dkim=False, validates_dmarc=False))
        probe.probe(MTA_IP, "m00006", "t12", "target.example", 0.0)
        attributed = attribute_queries(synth.query_log)
        assert any(q.mtaid == "m00006" and q.testid == "t12" for q in attributed)

    def test_data_triggered_validation_still_observed(self, rig):
        network, directory, synth, probe = rig
        behavior = MtaBehavior(accepts_any_recipient=True, spf_trigger=SpfTrigger.ON_DATA,
                               validates_dkim=False, validates_dmarc=False)
        _mta(network, directory, behavior)
        probe.probe(MTA_IP, "m00007", "t12", "target.example", 0.0)
        attributed = attribute_queries(synth.query_log)
        assert any(q.mtaid == "m00007" for q in attributed)

    def test_post_delivery_validator_invisible_to_probe(self, rig):
        network, directory, synth, probe = rig
        behavior = MtaBehavior(accepts_any_recipient=True, spf_trigger=SpfTrigger.POST_DELIVERY,
                               validates_dkim=False, validates_dmarc=False)
        _mta(network, directory, behavior)
        probe.probe(MTA_IP, "m00008", "t12", "target.example", 0.0)
        attributed = attribute_queries(synth.query_log)
        assert not any(q.mtaid == "m00008" for q in attributed)

    def test_identities_embed_testid_and_mtaid(self, rig):
        _, _, _, probe = rig
        assert probe.from_address("m1", "t05") == "spf-test@t05.m1.spf-test.dns-lab.org"
        assert probe.helo_name("m1", "t05") == "h.t05.m1.spf-test.dns-lab.org"


class TestAttribution:
    def _entry(self, qname, qtype=RdataType.TXT, t=1.0, transport="udp", client="203.0.113.1"):
        return QueryLogEntry(t, Name(qname), qtype, transport, client)

    def test_probe_suffix_attribution(self):
        entries = [self._entry("l1.t02.m00042.spf-test.dns-lab.org")]
        attributed = attribute_queries(entries)
        assert len(attributed) == 1
        query = attributed[0]
        assert query.experiment == "probe"
        assert query.mtaid == "m00042"
        assert query.testid == "t02"
        assert query.sub == ("l1",)
        assert query.head == "l1"

    def test_base_name_has_empty_head(self):
        attributed = attribute_queries([self._entry("t12.m1.spf-test.dns-lab.org")])
        assert attributed[0].head == ""

    def test_v6_suffix_attribution(self):
        attributed = attribute_queries([self._entry("l1.t10.m7.spf-test-v6.dns-lab.org")])
        assert attributed[0].experiment == "v6"
        assert attributed[0].testid == "t10"

    def test_notify_suffix_attribution(self):
        attributed = attribute_queries([self._entry("sel._domainkey.d00009.dsav-mail.dns-lab.org")])
        query = attributed[0]
        assert query.experiment == "notify"
        assert query.mtaid == "d00009"
        assert query.testid == "notify"
        assert query.sub == ("sel", "_domainkey")

    def test_unrelated_names_dropped(self):
        attributed = attribute_queries([self._entry("www.example.com")])
        assert attributed == []

    def test_case_folding(self):
        attributed = attribute_queries([self._entry("L1.T02.M00042.SPF-TEST.DNS-LAB.ORG")])
        assert attributed[0].mtaid == "m00042"

    def test_index_groupings(self):
        entries = [
            self._entry("t01.m1.spf-test.dns-lab.org", t=3.0),
            self._entry("l1.t01.m1.spf-test.dns-lab.org", t=1.0),
            self._entry("t02.m1.spf-test.dns-lab.org", t=2.0),
            self._entry("t01.m2.spf-test.dns-lab.org", t=4.0),
        ]
        index = QueryIndex(attribute_queries(entries))
        assert len(index) == 4
        pair = index.for_pair("m1", "t01")
        assert [q.timestamp for q in pair] == [1.0, 3.0]  # time-ordered
        assert index.mtas_observed() == {"m1", "m2"}
        assert index.mtas_observed("t02") == {"m1"}
        assert index.tests_with_activity("m1") == {"t01", "t02"}
        assert index.for_mta("m2")[0].testid == "t01"
        assert index.for_pair("m9", "t01") == []


class TestAttributionStats:
    def _entry(self, qname, qtype=RdataType.TXT, t=1.0, transport="udp", client="203.0.113.1"):
        return QueryLogEntry(t, Name(qname), qtype, transport, client)

    def test_per_reason_accounting(self):
        entries = [
            self._entry("l1.t02.m1.spf-test.dns-lab.org"),  # attributed (probe)
            self._entry("d9.dsav-mail.dns-lab.org"),  # attributed (notify)
            self._entry("www.example.com"),  # foreign
            self._entry("orphan.spf-test.dns-lab.org"),  # in-suffix, too short
            self._entry("dsav-mail.dns-lab.org"),  # the bare suffix: too short
        ]
        attributed, stats = attribute_queries_with_stats(entries)
        assert stats.total == 5
        assert stats.attributed == len(attributed) == 2
        assert stats.by_experiment == {"probe": 1, "notify": 1}
        assert stats.dropped_foreign == 1
        assert stats.dropped_short == 2
        assert stats.dropped == 3
        assert [str(e.qname) for e in stats.short_entries] == [
            "orphan.spf-test.dns-lab.org.",
            "dsav-mail.dns-lab.org.",
        ]

    def test_attribute_queries_is_the_stats_variant_minus_stats(self):
        entries = [self._entry("t01.m1.spf-test.dns-lab.org")]
        assert attribute_queries(entries) == attribute_queries_with_stats(entries)[0]

    def test_clean_stats(self):
        attributed, stats = attribute_queries_with_stats([])
        assert attributed == [] and stats.total == stats.dropped == 0


class TestIndexCrossMaps:
    def _entry(self, qname, t=1.0):
        return QueryLogEntry(t, Name(qname), RdataType.TXT, "udp", "203.0.113.1")

    def _index(self):
        return QueryIndex(
            attribute_queries(
                [
                    self._entry("t01.m1.spf-test.dns-lab.org", t=1.0),
                    self._entry("t02.m1.spf-test.dns-lab.org", t=2.0),
                    self._entry("t01.m2.spf-test.dns-lab.org", t=3.0),
                ]
            )
        )

    def test_pairs_enumeration(self):
        assert sorted(self._index().pairs()) == [("m1", "t01"), ("m1", "t02"), ("m2", "t01")]

    def test_precomputed_maps_agree_with_scans(self):
        index = self._index()
        for testid in ("t01", "t02", "t99"):
            scan = {q.mtaid for q in index.queries if q.testid == testid}
            assert index.mtas_observed(testid) == scan
        for mtaid in ("m1", "m2", "m9"):
            scan = {q.testid for q in index.queries if q.mtaid == mtaid}
            assert index.tests_with_activity(mtaid) == scan

    def test_returned_sets_are_copies(self):
        index = self._index()
        index.mtas_observed("t01").add("tampered")
        assert "tampered" not in index.mtas_observed("t01")
