"""Tests for the CLI experiment runner."""

import pytest

from repro.core.runner import build_parser, main
from repro.core.trace import load_probe_results, load_query_index


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiment == "all"
        assert args.scale == 0.01

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--experiment", "bogus"])

    def test_faults_default_absent(self):
        args = build_parser().parse_args([])
        assert args.faults is None


class TestRunner:
    def test_twoweekmx_run(self, tmp_path):
        code = main([
            "--experiment", "twoweekmx", "--scale", "0.003",
            "--seed", "7", "--out", str(tmp_path), "--quiet",
        ])
        assert code == 0
        report = (tmp_path / "twoweekmx_report.txt").read_text()
        assert "Table 5" in report
        assert "Decile 10" in report
        assert "Section 7" in report
        index = load_query_index(tmp_path / "twoweekmx_queries.jsonl")
        probes = load_probe_results(tmp_path / "twoweekmx_probes.jsonl")
        assert probes
        # Every observed validator in the trace was actually probed.
        probed = {probe.mtaid for probe in probes}
        assert index.mtas_observed() <= probed

    def test_notify_family_run(self, tmp_path):
        code = main([
            "--experiment", "notifyemail", "--scale", "0.003",
            "--seed", "8", "--out", str(tmp_path), "--quiet",
        ])
        assert code == 0
        report = (tmp_path / "notifyemail_report.txt").read_text()
        assert "Table 4" in report
        assert "Figure 2" in report
        assert (tmp_path / "notifyemail_queries.jsonl").exists()

    def test_notifymx_produces_fingerprints(self, tmp_path):
        code = main([
            "--experiment", "notifymx", "--scale", "0.003",
            "--seed", "9", "--out", str(tmp_path), "--quiet",
        ])
        assert code == 0
        report = (tmp_path / "notifymx_report.txt").read_text()
        assert "fingerprints" in report
        assert "rejections:" in report

    def test_deterministic_given_seed(self, tmp_path):
        for run in ("a", "b"):
            main([
                "--experiment", "twoweekmx", "--scale", "0.003",
                "--seed", "42", "--out", str(tmp_path / run), "--quiet",
            ])
        a = (tmp_path / "a" / "twoweekmx_report.txt").read_text()
        b = (tmp_path / "b" / "twoweekmx_report.txt").read_text()
        assert a == b


class TestFaults:
    ARTEFACTS = (
        "twoweekmx_report.txt",
        "twoweekmx_queries.jsonl",
        "twoweekmx_probes.jsonl",
        "twoweekmx_tracecheck.txt",
        "twoweekmx_metrics.txt",
    )

    def _run(self, tmp_path, name, *extra):
        out = tmp_path / name
        code = main([
            "--experiment", "twoweekmx", "--scale", "0.003",
            "--seed", "42", "--out", str(out), "--quiet", *extra,
        ])
        assert code == 0
        return out

    def test_empty_plan_is_byte_identical(self, tmp_path):
        # The differential invariant: an empty FaultPlan threaded through
        # every layer must change no artefact at all.
        plain = self._run(tmp_path, "plain", "--workers", "1")
        empty = self._run(tmp_path, "empty", "--workers", "1", "--faults", "")
        for artefact in self.ARTEFACTS:
            assert (plain / artefact).read_bytes() == (empty / artefact).read_bytes()

    def test_faulted_run_identical_across_worker_counts(self, tmp_path):
        spec = "udp_loss:0.1,servfail:0.05"
        serial = self._run(tmp_path, "serial", "--workers", "1", "--faults", spec)
        sharded = self._run(tmp_path, "sharded", "--workers", "4", "--faults", spec)
        for artefact in self.ARTEFACTS:
            assert (serial / artefact).read_bytes() == (sharded / artefact).read_bytes()
        metrics = (serial / "twoweekmx_metrics.txt").read_text()
        assert "faults_injected_total{kind=udp_loss}" in metrics
        assert "faults_injected_total{kind=servfail}" in metrics

    def test_faultmatrix_experiment(self, tmp_path):
        code = main([
            "--experiment", "faultmatrix", "--scale", "0.001",
            "--seed", "42", "--out", str(tmp_path), "--quiet",
        ])
        assert code == 0
        report = (tmp_path / "faultmatrix_report.txt").read_text()
        assert "Fault matrix" in report
        assert "baseline" in report
        assert "banner_absent" in report
