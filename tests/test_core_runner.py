"""Tests for the CLI experiment runner."""

import pytest

from repro.core.runner import build_parser, main
from repro.core.trace import load_probe_results, load_query_index


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiment == "all"
        assert args.scale == 0.01

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--experiment", "bogus"])


class TestRunner:
    def test_twoweekmx_run(self, tmp_path):
        code = main([
            "--experiment", "twoweekmx", "--scale", "0.003",
            "--seed", "7", "--out", str(tmp_path), "--quiet",
        ])
        assert code == 0
        report = (tmp_path / "twoweekmx_report.txt").read_text()
        assert "Table 5" in report
        assert "Decile 10" in report
        assert "Section 7" in report
        index = load_query_index(tmp_path / "twoweekmx_queries.jsonl")
        probes = load_probe_results(tmp_path / "twoweekmx_probes.jsonl")
        assert probes
        # Every observed validator in the trace was actually probed.
        probed = {probe.mtaid for probe in probes}
        assert index.mtas_observed() <= probed

    def test_notify_family_run(self, tmp_path):
        code = main([
            "--experiment", "notifyemail", "--scale", "0.003",
            "--seed", "8", "--out", str(tmp_path), "--quiet",
        ])
        assert code == 0
        report = (tmp_path / "notifyemail_report.txt").read_text()
        assert "Table 4" in report
        assert "Figure 2" in report
        assert (tmp_path / "notifyemail_queries.jsonl").exists()

    def test_notifymx_produces_fingerprints(self, tmp_path):
        code = main([
            "--experiment", "notifymx", "--scale", "0.003",
            "--seed", "9", "--out", str(tmp_path), "--quiet",
        ])
        assert code == 0
        report = (tmp_path / "notifymx_report.txt").read_text()
        assert "fingerprints" in report
        assert "rejections:" in report

    def test_deterministic_given_seed(self, tmp_path):
        for run in ("a", "b"):
            main([
                "--experiment", "twoweekmx", "--scale", "0.003",
                "--seed", "42", "--out", str(tmp_path / run), "--quiet",
            ])
        a = (tmp_path / "a" / "twoweekmx_report.txt").read_text()
        b = (tmp_path / "b" / "twoweekmx_report.txt").read_text()
        assert a == b
