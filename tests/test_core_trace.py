"""Tests for campaign trace export/import."""

import json

import pytest

from repro.core import analysis as A
from repro.core.campaign import ProbeCampaign, Testbed
from repro.core.datasets import DatasetSpec, generate_universe
from repro.core.trace import (
    TraceError,
    load_probe_results,
    load_query_index,
    load_query_log,
    save_probe_results,
    save_query_log,
)


@pytest.fixture(scope="module")
def campaign():
    universe = generate_universe(DatasetSpec.notify_email(scale=0.003), seed=301)
    testbed = Testbed(universe, seed=302)
    result = ProbeCampaign(testbed, "trace-test", testids=["t01", "t06", "t12"]).run()
    return result


class TestQueryLogRoundtrip:
    def test_roundtrip_preserves_everything(self, campaign, tmp_path):
        path = tmp_path / "queries.jsonl"
        written = save_query_log(campaign.index.queries, path)
        assert written == len(campaign.index)
        loaded = load_query_log(path)
        assert len(loaded) == written
        for original, copy in zip(campaign.index.queries, loaded):
            assert copy.timestamp == original.timestamp
            assert copy.entry.qname == original.entry.qname
            assert copy.qtype == original.qtype
            assert copy.transport == original.transport
            assert copy.mtaid == original.mtaid
            assert copy.testid == original.testid
            assert copy.sub == original.sub

    def test_analyses_run_on_loaded_index(self, campaign, tmp_path):
        path = tmp_path / "queries.jsonl"
        save_query_log(campaign.index.queries, path)
        index = load_query_index(path)
        assert index.mtas_observed() == campaign.index.mtas_observed()
        # A real classifier over the loaded data.
        from repro.core.classify import classify_serial_parallel

        for mtaid in index.mtas_observed("t01"):
            observation = classify_serial_parallel(mtaid, index.for_pair(mtaid, "t01"))
            original = classify_serial_parallel(mtaid, campaign.index.for_pair(mtaid, "t01"))
            assert observation.parallel == original.parallel

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1.0}\n')
        with pytest.raises(TraceError):
            load_query_log(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "repro-probes", "version": 1}\n')
        with pytest.raises(TraceError):
            load_query_log(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "repro-querylog", "version": 99}\n')
        with pytest.raises(TraceError):
            load_query_log(path)

    def test_corrupt_record_locates_line(self, campaign, tmp_path):
        path = tmp_path / "queries.jsonl"
        save_query_log(list(campaign.index.queries)[:3], path)
        lines = path.read_text().splitlines()
        lines[2] = json.dumps({"t": 1.0})  # missing fields
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError) as info:
            load_query_log(path)
        assert ":3:" in str(info.value)


class TestProbeResultsRoundtrip:
    def test_roundtrip(self, campaign, tmp_path):
        path = tmp_path / "probes.jsonl"
        written = save_probe_results(campaign.results, path)
        assert written == len(campaign.results)
        loaded = load_probe_results(path)
        assert len(loaded) == written
        for original, copy in zip(campaign.results, loaded):
            assert copy.mtaid == original.mtaid
            assert copy.testid == original.testid
            assert copy.stage_reached == original.stage_reached
            assert copy.replies == original.replies
            assert copy.rejected_mentioning == original.rejected_mentioning

    def test_rejection_stats_from_loaded_results(self, campaign, tmp_path):
        path = tmp_path / "probes.jsonl"
        save_probe_results(campaign.results, path)
        loaded = load_probe_results(path)
        # Rebuild a result-like object for the analysis function.
        from repro.core.campaign import ProbeCampaignResult

        rebuilt = ProbeCampaignResult(
            name=campaign.name, results=loaded, index=campaign.index, probed=campaign.probed
        )
        assert A.rejection_stats(rebuilt).total_mtas == A.rejection_stats(campaign).total_mtas

    def test_wrong_format_rejected(self, campaign, tmp_path):
        path = tmp_path / "queries.jsonl"
        save_query_log(campaign.index.queries, path)
        with pytest.raises(TraceError):
            load_probe_results(path)
