"""Tests for DKIM canonicalization, headers, key records, sign and verify."""

import pytest

from repro.dkim import (
    DkimResult,
    DkimSignature,
    DkimSigner,
    DkimVerifier,
    KeyRecord,
    canonicalize_body,
    canonicalize_header,
    generate_keypair,
)
from repro.dkim.errors import DkimKeyError, DkimSignatureError
from repro.dns.rdata import TxtRecord
from repro.smtp.message import EmailMessage
from tests.helpers import World

KEYPAIR = generate_keypair(1024, seed=77)


class TestHeaderCanonicalization:
    def test_simple_verbatim(self):
        assert canonicalize_header("SUBJECT", " Hi  there ", "simple") == "SUBJECT:  Hi  there \r\n"

    def test_relaxed_lowercases_and_collapses(self):
        assert canonicalize_header("SUBJECT", " Hi  there ", "relaxed") == "subject:Hi there\r\n"

    def test_relaxed_unfolds(self):
        folded = "part one\r\n\tpart two"
        assert canonicalize_header("X", folded, "relaxed") == "x:part one part two\r\n"

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            canonicalize_header("a", "b", "bogus")


class TestBodyCanonicalization:
    def test_simple_strips_trailing_blank_lines(self):
        assert canonicalize_body("line\r\n\r\n\r\n", "simple") == "line\r\n"

    def test_simple_adds_final_crlf(self):
        assert canonicalize_body("line", "simple") == "line\r\n"

    def test_simple_empty_body_is_crlf(self):
        assert canonicalize_body("", "simple") == "\r\n"

    def test_relaxed_empty_body_is_empty(self):
        assert canonicalize_body("", "relaxed") == ""

    def test_relaxed_collapses_wsp(self):
        assert canonicalize_body("a \t b\t\r\n", "relaxed") == "a b\r\n"

    def test_relaxed_strips_trailing_wsp(self):
        assert canonicalize_body("hello   \r\nworld\t\r\n", "relaxed") == "hello\r\nworld\r\n"


class TestSignatureHeader:
    def test_roundtrip(self):
        signature = DkimSignature(
            domain="example.com",
            selector="s1",
            body_hash="Ym9keQ==",
            signature="c2ln",
            signed_headers=["from", "subject"],
            timestamp=1600000000,
        )
        parsed = DkimSignature.from_header_value(signature.to_header_value())
        assert parsed.domain == "example.com"
        assert parsed.selector == "s1"
        assert parsed.signed_headers == ["from", "subject"]
        assert parsed.timestamp == 1600000000

    def test_key_query_domain(self):
        signature = DkimSignature(domain="example.com", selector="sel1")
        assert signature.key_query_domain == "sel1._domainkey.example.com"

    def test_missing_required_tag(self):
        with pytest.raises(DkimSignatureError):
            DkimSignature.from_header_value("v=1; a=rsa-sha256; d=e.com; s=s1; h=from; bh=x")

    def test_from_must_be_signed(self):
        with pytest.raises(DkimSignatureError):
            DkimSignature.from_header_value(
                "v=1; a=rsa-sha256; d=e.com; s=s1; h=subject; bh=x; b=y"
            )

    def test_unknown_version_rejected(self):
        with pytest.raises(DkimSignatureError):
            DkimSignature.from_header_value("v=2; a=rsa-sha256; d=e; s=s; h=from; bh=x; b=y")

    def test_folded_value_parses(self):
        value = "v=1; a=rsa-sha256; d=e.com; s=s1;\r\n\th=from:to; bh=aGk=;\r\n\tb=c2ln"
        parsed = DkimSignature.from_header_value(value)
        assert parsed.signed_headers == ["from", "to"]
        assert parsed.signature == "c2ln"


class TestKeyRecord:
    def test_roundtrip(self):
        record = KeyRecord(public_key_b64=KEYPAIR.public.to_base64())
        parsed = KeyRecord.from_text(record.to_text())
        assert parsed.public_key_b64 == KEYPAIR.public.to_base64()
        assert not parsed.revoked

    def test_revoked_key(self):
        assert KeyRecord.from_text("v=DKIM1; k=rsa; p=").revoked

    def test_missing_p_rejected(self):
        with pytest.raises(DkimKeyError):
            KeyRecord.from_text("v=DKIM1; k=rsa")

    def test_unsupported_key_type(self):
        with pytest.raises(DkimKeyError):
            KeyRecord.from_text("v=DKIM1; k=ed25519; p=xyz")


def _signed_message(**kwargs):
    message = EmailMessage(
        [
            ("From", "alice@sender.example"),
            ("To", "bob@rcpt.example"),
            ("Subject", "Notification of network issue"),
            ("Date", "Thu, 01 Oct 2020 12:00:00 +0000"),
            ("Message-ID", "<m1@sender.example>"),
        ],
        "Dear operator,\r\n\r\nPlease review the attached findings.\r\n",
    )
    signer = DkimSigner("sender.example", "sel1", KEYPAIR.private, **kwargs)
    signer.sign(message, timestamp=1601553600)
    return message


@pytest.fixture
def world():
    world = World(seed=41)
    zone = world.zone("sender.example")
    zone.add(
        "sel1._domainkey.sender.example",
        TxtRecord(KeyRecord(public_key_b64=KEYPAIR.public.to_base64()).to_text()),
    )
    return world


class TestSignVerify:
    @pytest.mark.parametrize("canon", ["relaxed/relaxed", "simple/simple", "relaxed/simple", "simple/relaxed"])
    def test_roundtrip_all_canonicalizations(self, world, canon):
        message = _signed_message(canonicalization=canon)
        outcome, _ = DkimVerifier(world.resolver()).verify(message, 0.0)
        assert outcome.result is DkimResult.PASS

    def test_roundtrip_survives_transport_reparse(self, world):
        message = _signed_message()
        reparsed = EmailMessage.from_text(message.to_text())
        outcome, _ = DkimVerifier(world.resolver()).verify(reparsed, 0.0)
        assert outcome.result is DkimResult.PASS

    def test_verification_emits_key_query(self, world):
        message = _signed_message()
        DkimVerifier(world.resolver()).verify(message, 0.0)
        qnames = [str(e.qname) for e in world.server.query_log]
        assert "sel1._domainkey.sender.example." in qnames

    def test_body_tamper_fails(self, world):
        message = _signed_message()
        message.body = message.body.replace("operator", "0perator")
        outcome, _ = DkimVerifier(world.resolver()).verify(message, 0.0)
        assert outcome.result is DkimResult.FAIL
        assert outcome.reason == "body hash mismatch"

    def test_signed_header_tamper_fails(self, world):
        message = _signed_message()
        message.headers = [
            (n, "Changed subject" if n.lower() == "subject" else v) for n, v in message.headers
        ]
        outcome, _ = DkimVerifier(world.resolver()).verify(message, 0.0)
        assert outcome.result is DkimResult.FAIL
        assert outcome.reason == "signature mismatch"

    def test_unsigned_header_tamper_passes(self, world):
        message = _signed_message()
        message.add_header("X-Extra", "anything at all")
        outcome, _ = DkimVerifier(world.resolver()).verify(message, 0.0)
        assert outcome.result is DkimResult.PASS

    def test_relaxed_survives_whitespace_mangling(self, world):
        message = _signed_message(canonicalization="relaxed/relaxed")
        message.headers = [
            (n, v.replace(" ", "  ") if n.lower() == "subject" else v) for n, v in message.headers
        ]
        outcome, _ = DkimVerifier(world.resolver()).verify(message, 0.0)
        assert outcome.result is DkimResult.PASS

    def test_simple_breaks_on_whitespace_mangling(self, world):
        message = _signed_message(canonicalization="simple/simple")
        message.headers = [
            (n, v.replace(" ", "  ") if n.lower() == "subject" else v) for n, v in message.headers
        ]
        outcome, _ = DkimVerifier(world.resolver()).verify(message, 0.0)
        assert outcome.result is DkimResult.FAIL

    def test_unsigned_message_is_none(self, world):
        message = EmailMessage([("From", "a@b.example")], "x")
        outcome, _ = DkimVerifier(world.resolver()).verify(message, 0.0)
        assert outcome.result is DkimResult.NONE

    def test_missing_key_is_permerror(self, world):
        message = _signed_message()
        world.server.zones[0].remove("sel1._domainkey.sender.example", TxtRecord("x").rdtype)
        outcome, _ = DkimVerifier(world.resolver()).verify(message, 0.0)
        assert outcome.result is DkimResult.PERMERROR

    def test_unreachable_dns_is_temperror(self, world):
        message = _signed_message()
        # Point the signature at a domain with no authoritative server.
        message.headers[0] = (
            "DKIM-Signature",
            message.headers[0][1].replace("d=sender.example", "d=unreg.example"),
        )
        outcome, _ = DkimVerifier(world.resolver()).verify(message, 0.0)
        assert outcome.result is DkimResult.TEMPERROR

    def test_revoked_key_is_permerror(self, world):
        message = _signed_message()
        zone = world.server.zones[0]
        from repro.dns.rdata import RdataType

        zone.remove("sel1._domainkey.sender.example", RdataType.TXT)
        zone.add("sel1._domainkey.sender.example", TxtRecord("v=DKIM1; k=rsa; p="))
        outcome, _ = DkimVerifier(world.resolver()).verify(message, 0.0)
        assert outcome.result is DkimResult.PERMERROR

    def test_signer_requires_from(self):
        message = EmailMessage([("To", "x@y.example")], "body")
        with pytest.raises(ValueError):
            DkimSigner("sender.example", "sel1", KEYPAIR.private).sign(message)
