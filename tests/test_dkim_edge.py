"""DKIM edge cases: expiry, unknown tags, repeated headers, identities."""

import pytest

from repro.dkim import (
    DkimResult,
    DkimSigner,
    DkimVerifier,
    KeyRecord,
    generate_keypair,
)
from repro.dns.rdata import TxtRecord
from repro.smtp.message import EmailMessage
from tests.helpers import World

KEYPAIR = generate_keypair(1024, seed=161)


@pytest.fixture
def world():
    world = World(seed=162)
    zone = world.zone("edge.example")
    zone.add(
        "s._domainkey.edge.example",
        TxtRecord(KeyRecord(public_key_b64=KEYPAIR.public.to_base64()).to_text()),
    )
    return world


def _message():
    return EmailMessage(
        [("From", "a@edge.example"), ("To", "b@x.example"), ("Subject", "s"),
         ("Date", "d"), ("Message-ID", "<1@e>")],
        "content\r\n",
    )


class TestExpiry:
    def test_unexpired_signature_passes(self, world):
        message = _message()
        signer = DkimSigner("edge.example", "s", KEYPAIR.private)
        signature = signer.sign(message, timestamp=100)
        signature.expiration = None
        outcome, _ = DkimVerifier(world.resolver()).verify(message, 200.0)
        assert outcome.result is DkimResult.PASS

    def test_expired_signature_fails(self, world):
        message = _message()
        signature = DkimSigner("edge.example", "s", KEYPAIR.private).sign(message, timestamp=100)
        # Re-sign with an x= in the past relative to verification time.
        message.remove_headers("DKIM-Signature")
        import base64
        import hashlib

        from repro.dkim.canonical import canonicalize_body
        from repro.dkim.sign import build_signing_input
        from repro.dkim.signature import DkimSignature

        expired = DkimSignature(
            domain="edge.example", selector="s",
            signed_headers=["from", "to", "subject", "date", "message-id"],
            timestamp=100, expiration=150,
        )
        body = canonicalize_body(message.body, expired.body_canon)
        expired.body_hash = base64.b64encode(hashlib.sha256(body.encode()).digest()).decode()
        raw = KEYPAIR.private.sign(build_signing_input(message, expired))
        expired.signature = base64.b64encode(raw).decode()
        message.prepend_header("DKIM-Signature", expired.to_header_value())

        outcome, _ = DkimVerifier(world.resolver()).verify(message, 500.0)
        assert outcome.result is DkimResult.FAIL
        assert "expired" in outcome.reason


class TestTagTolerance:
    def test_unknown_tags_ignored(self, world):
        message = _message()
        DkimSigner("edge.example", "s", KEYPAIR.private).sign(message)
        name, value = message.headers[0]
        message.headers[0] = (name, value + "; zz=futuretag")
        # Unknown tags are outside the signed b= computation only if they
        # were signed; here we modified the header after signing, so the
        # verifier must FAIL (b= covers the final header) — proving it
        # parses, rather than chokes on, the unknown tag.
        outcome, _ = DkimVerifier(world.resolver()).verify(message, 0.0)
        assert outcome.result is DkimResult.FAIL
        assert outcome.reason == "signature mismatch"

    def test_first_signature_wins(self, world):
        message = _message()
        DkimSigner("edge.example", "s", KEYPAIR.private).sign(message)
        message.prepend_header("DKIM-Signature", "v=1; a=rsa-sha256; d=bogus.example; s=x; h=from; bh=eA==; b=eA==")
        outcome, _ = DkimVerifier(world.resolver()).verify(message, 0.0)
        # The topmost signature is evaluated; it points at a domain with
        # no key.
        assert outcome.domain == "bogus.example"
        assert outcome.result in (DkimResult.PERMERROR, DkimResult.TEMPERROR)


class TestOverSigning:
    def test_oversigned_absent_header_detects_addition(self, world):
        """Signing 'reply-to' while absent means adding one later breaks
        the signature (the over-signing trick)."""
        message = _message()
        signer = DkimSigner(
            "edge.example", "s", KEYPAIR.private,
            signed_headers=["from", "subject", "reply-to"],
        )
        # _present_headers drops absent ones by default; bypass by signing
        # with reply-to present-but-empty semantics: add then remove.
        signature = signer.sign(message)
        assert "reply-to" not in signature.signed_headers  # dropped: absent
        outcome, _ = DkimVerifier(world.resolver()).verify(message, 0.0)
        assert outcome.result is DkimResult.PASS

    def test_repeated_header_bottom_up_selection(self, world):
        message = EmailMessage(
            [("From", "a@edge.example"), ("Subject", "first"), ("Subject", "second")],
            "x\r\n",
        )
        DkimSigner("edge.example", "s", KEYPAIR.private,
                   signed_headers=["from", "subject", "subject"]).sign(message)
        outcome, _ = DkimVerifier(world.resolver()).verify(message, 0.0)
        assert outcome.result is DkimResult.PASS
        # Reordering the two Subject headers must break verification.
        reordered = EmailMessage.from_text(message.to_text())
        subjects = [i for i, (n, _) in enumerate(reordered.headers) if n.lower() == "subject"]
        a, b = subjects
        headers = reordered.headers
        headers[a], headers[b] = headers[b], headers[a]
        outcome, _ = DkimVerifier(world.resolver()).verify(reordered, 0.0)
        assert outcome.result is DkimResult.FAIL
