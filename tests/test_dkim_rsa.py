"""Tests for the pure-Python RSA implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dkim.errors import DkimKeyError
from repro.dkim.rsa import RsaPublicKey, generate_keypair

# Key generation is the slow part; share one pair across the module.
KEYPAIR = generate_keypair(1024, seed=1234)
OTHER = generate_keypair(1024, seed=99)


class TestKeyGeneration:
    def test_deterministic_for_seed(self):
        again = generate_keypair(1024, seed=1234)
        assert again.private.n == KEYPAIR.private.n
        assert again.private.d == KEYPAIR.private.d

    def test_different_seeds_differ(self):
        assert KEYPAIR.private.n != OTHER.private.n

    def test_modulus_has_requested_size(self):
        assert KEYPAIR.private.n.bit_length() == 1024

    def test_key_equation_holds(self):
        private = KEYPAIR.private
        assert private.p * private.q == private.n
        phi = (private.p - 1) * (private.q - 1)
        assert (private.e * private.d) % phi == 1

    def test_small_or_odd_sizes_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(256)
        with pytest.raises(ValueError):
            generate_keypair(1025)


class TestSignVerify:
    def test_roundtrip(self):
        signature = KEYPAIR.private.sign(b"the quick brown fox")
        assert KEYPAIR.public.verify(b"the quick brown fox", signature)

    def test_tampered_message_fails(self):
        signature = KEYPAIR.private.sign(b"original")
        assert not KEYPAIR.public.verify(b"tampered", signature)

    def test_tampered_signature_fails(self):
        signature = bytearray(KEYPAIR.private.sign(b"message"))
        signature[10] ^= 0xFF
        assert not KEYPAIR.public.verify(b"message", bytes(signature))

    def test_wrong_key_fails(self):
        signature = KEYPAIR.private.sign(b"message")
        assert not OTHER.public.verify(b"message", signature)

    def test_wrong_length_signature_rejected(self):
        assert not KEYPAIR.public.verify(b"message", b"short")

    def test_signature_is_deterministic(self):
        # PKCS#1 v1.5 signing is deterministic (unlike PSS).
        assert KEYPAIR.private.sign(b"abc") == KEYPAIR.private.sign(b"abc")

    def test_empty_message(self):
        signature = KEYPAIR.private.sign(b"")
        assert KEYPAIR.public.verify(b"", signature)


class TestDer:
    def test_spki_roundtrip(self):
        der = KEYPAIR.public.to_der()
        parsed = RsaPublicKey.from_der(der)
        assert parsed == KEYPAIR.public

    def test_base64_roundtrip(self):
        assert RsaPublicKey.from_base64(KEYPAIR.public.to_base64()) == KEYPAIR.public

    def test_bad_base64_rejected(self):
        with pytest.raises(DkimKeyError):
            RsaPublicKey.from_base64("!!!notbase64!!!")

    def test_truncated_der_rejected(self):
        with pytest.raises(DkimKeyError):
            RsaPublicKey.from_der(KEYPAIR.public.to_der()[:-4])

    def test_garbage_der_rejected(self):
        with pytest.raises(DkimKeyError):
            RsaPublicKey.from_der(b"\x30\x03\x01\x01\x01")

    def test_der_starts_with_sequence(self):
        assert KEYPAIR.public.to_der()[0] == 0x30


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=0, max_size=512))
def test_sign_verify_property(message):
    signature = KEYPAIR.private.sign(message)
    assert KEYPAIR.public.verify(message, signature)
    assert not KEYPAIR.public.verify(message + b"x", signature)
