"""Tests for DMARC: PSL, record parsing, discovery, alignment, disposition."""

import pytest

from repro.dmarc import (
    AlignmentMode,
    DmarcDisposition,
    DmarcEvaluator,
    DmarcPolicy,
    DmarcRecord,
    DmarcResult,
    PublicSuffixList,
    organizational_domain,
)
from repro.dmarc.record import DmarcRecordError, looks_like_dmarc
from repro.dns.rdata import TxtRecord
from tests.helpers import World


class TestPsl:
    def test_simple_tld(self):
        assert organizational_domain("mail.corp.example.com") == "example.com"

    def test_bare_org_domain(self):
        assert organizational_domain("example.com") == "example.com"

    def test_multi_label_suffix(self):
        assert organizational_domain("www.shop.example.co.uk") == "example.co.uk"

    def test_name_equal_to_suffix(self):
        assert organizational_domain("co.uk") == "co.uk"

    def test_unknown_suffix_falls_back_to_two_labels(self):
        assert organizational_domain("a.b.somethingmadeup") == "b.somethingmadeup"

    def test_case_and_trailing_dot(self):
        assert organizational_domain("Mail.EXAMPLE.Com.") == "example.com"

    def test_custom_suffix(self):
        psl = PublicSuffixList()
        psl.add_suffix("dns-lab.org")
        assert psl.organizational_domain("x.y.dns-lab.org") == "y.dns-lab.org"

    def test_public_suffix_lookup(self):
        psl = PublicSuffixList()
        assert psl.public_suffix("a.b.co.uk") == "co.uk"
        assert psl.public_suffix("a.b.com") == "com"
        assert psl.public_suffix("unknownsuffix") is None


class TestRecord:
    def test_minimal(self):
        record = DmarcRecord.from_text("v=DMARC1; p=none")
        assert record.policy is DmarcPolicy.NONE
        assert record.percent == 100

    def test_full(self):
        record = DmarcRecord.from_text(
            "v=DMARC1; p=quarantine; sp=reject; aspf=s; adkim=r; pct=42; "
            "rua=mailto:agg@e.com,mailto:agg2@e.com; ruf=mailto:forensic@e.com"
        )
        assert record.policy is DmarcPolicy.QUARANTINE
        assert record.subdomain_policy is DmarcPolicy.REJECT
        assert record.spf_alignment is AlignmentMode.STRICT
        assert record.dkim_alignment is AlignmentMode.RELAXED
        assert record.percent == 42
        assert len(record.rua) == 2

    def test_roundtrip(self):
        record = DmarcRecord.from_text("v=DMARC1; p=reject; sp=none; aspf=s; pct=50")
        assert DmarcRecord.from_text(record.to_text()).to_text() == record.to_text()

    def test_missing_p_rejected(self):
        with pytest.raises(DmarcRecordError):
            DmarcRecord.from_text("v=DMARC1; rua=mailto:x@y.com")

    def test_bad_policy_rejected(self):
        with pytest.raises(DmarcRecordError):
            DmarcRecord.from_text("v=DMARC1; p=destroy")

    def test_wrong_version_rejected(self):
        with pytest.raises(DmarcRecordError):
            DmarcRecord.from_text("v=DMARC2; p=none")

    def test_effective_policy(self):
        record = DmarcRecord.from_text("v=DMARC1; p=reject; sp=none")
        assert record.effective_policy(is_subdomain=False) is DmarcPolicy.REJECT
        assert record.effective_policy(is_subdomain=True) is DmarcPolicy.NONE

    def test_looks_like_dmarc(self):
        assert looks_like_dmarc("v=DMARC1; p=none")
        assert looks_like_dmarc("v=DMARC1")
        assert not looks_like_dmarc("v=spf1 -all")


@pytest.fixture
def world():
    world = World(seed=51)
    zone = world.zone("brand.example")
    zone.add("_dmarc.brand.example", TxtRecord("v=DMARC1; p=reject; sp=quarantine"))
    return world


def _evaluate(world, from_domain, spf=("fail", None), dkim=("fail", None), t=0.0):
    evaluator = DmarcEvaluator(world.resolver(), psl=_psl())
    return evaluator.evaluate(from_domain, spf[0], spf[1], dkim[0], dkim[1], t)


def _psl():
    psl = PublicSuffixList()
    psl.add_suffix("example")
    return psl


class TestEvaluation:
    def test_aligned_spf_passes(self, world):
        outcome, _ = _evaluate(world, "brand.example", spf=("pass", "brand.example"))
        assert outcome.result is DmarcResult.PASS
        assert outcome.disposition is DmarcDisposition.NONE
        assert outcome.spf_aligned and not outcome.dkim_aligned

    def test_aligned_dkim_passes(self, world):
        outcome, _ = _evaluate(world, "brand.example", dkim=("pass", "mail.brand.example"))
        assert outcome.result is DmarcResult.PASS
        assert outcome.dkim_aligned

    def test_unaligned_pass_still_fails(self, world):
        outcome, _ = _evaluate(world, "brand.example", spf=("pass", "other.example"))
        assert outcome.result is DmarcResult.FAIL
        assert outcome.disposition is DmarcDisposition.REJECT

    def test_subdomain_policy_applies(self, world):
        outcome, _ = _evaluate(world, "news.brand.example")
        assert outcome.result is DmarcResult.FAIL
        assert outcome.disposition is DmarcDisposition.QUARANTINE

    def test_subdomain_falls_back_to_org_record(self, world):
        outcome, _ = _evaluate(world, "deep.sub.brand.example")
        assert outcome.policy_domain == "_dmarc.brand.example"
        qnames = [str(e.qname) for e in world.server.query_log]
        assert qnames == ["_dmarc.deep.sub.brand.example.", "_dmarc.brand.example."]

    def test_no_policy_is_none(self, world):
        world2 = World(seed=52)
        world2.zone("nopolicy.example")
        outcome, _ = DmarcEvaluator(world2.resolver(), psl=_psl()).evaluate(
            "nopolicy.example", "pass", "nopolicy.example", "none", None, 0.0
        )
        assert outcome.result is DmarcResult.NONE
        assert outcome.disposition is DmarcDisposition.NONE

    def test_strict_spf_alignment(self, world):
        zone = world.server.zones[0]
        zone.add("_dmarc.strict.brand.example", TxtRecord("v=DMARC1; p=reject; aspf=s"))
        outcome, _ = _evaluate(world, "strict.brand.example", spf=("pass", "brand.example"))
        # Relaxed would align (same org domain); strict must not.
        assert outcome.result is DmarcResult.FAIL

    def test_multiple_records_permerror(self, world):
        zone = world.server.zones[0]
        zone.add("_dmarc.dup.brand.example", TxtRecord("v=DMARC1; p=none"))
        zone.add("_dmarc.dup.brand.example", TxtRecord("v=DMARC1; p=reject"))
        outcome, _ = _evaluate(world, "dup.brand.example")
        assert outcome.result is DmarcResult.PERMERROR

    def test_non_dmarc_txt_ignored(self, world):
        zone = world.server.zones[0]
        zone.add("_dmarc.mixed.brand.example", TxtRecord("some unrelated verification token"))
        outcome, _ = _evaluate(world, "mixed.brand.example")
        # Falls back to the org-domain record.
        assert outcome.policy_domain == "_dmarc.brand.example"
