"""Tests for DMARC aggregate reports (RFC 7489 Appendix C)."""

import pytest

from repro.dkim import DkimSigner, KeyRecord, generate_keypair
from repro.dmarc.record import AlignmentMode, DmarcPolicy, DmarcRecord
from repro.dmarc.report import (
    AggregateReport,
    PolicyPublished,
    ReportMetadata,
    ReportRow,
    build_aggregate_report,
)
from repro.dns.rdata import TxtRecord
from repro.mta.behavior import MtaBehavior
from repro.mta.receiver import ReceivingMta
from repro.smtp.client import SmtpClient
from repro.smtp.message import EmailMessage
from tests.helpers import World

KEYPAIR = generate_keypair(1024, seed=121)


def _sample_report():
    metadata = ReportMetadata("mx.rcpt.example", "noreply@rcpt.example", "r-1", 0, 86400)
    policy = PolicyPublished(
        domain="sender.example",
        policy=DmarcPolicy.REJECT,
        subdomain_policy=DmarcPolicy.QUARANTINE,
        aspf=AlignmentMode.STRICT,
    )
    report = AggregateReport(metadata=metadata, policy=policy)
    report.rows.append(
        ReportRow(
            source_ip="203.0.113.5",
            count=12,
            disposition="none",
            dkim_aligned="pass",
            spf_aligned="pass",
            header_from="sender.example",
            spf_domain="sender.example",
            spf_result="pass",
            dkim_domain="sender.example",
            dkim_result="pass",
        )
    )
    report.rows.append(
        ReportRow(
            source_ip="198.51.100.66",
            count=3,
            disposition="reject",
            dkim_aligned="fail",
            spf_aligned="fail",
            header_from="sender.example",
        )
    )
    return report


class TestXmlRoundtrip:
    def test_roundtrip_preserves_structure(self):
        report = _sample_report()
        parsed = AggregateReport.from_xml(report.to_xml())
        assert parsed.metadata.org_name == "mx.rcpt.example"
        assert parsed.metadata.date_end == 86400
        assert parsed.policy.policy is DmarcPolicy.REJECT
        assert parsed.policy.subdomain_policy is DmarcPolicy.QUARANTINE
        assert parsed.policy.aspf is AlignmentMode.STRICT
        assert len(parsed.rows) == 2
        assert parsed.message_count == 15
        passing = next(row for row in parsed.rows if row.disposition == "none")
        assert passing.count == 12
        assert passing.spf_result == "pass"
        rejected = next(row for row in parsed.rows if row.disposition == "reject")
        assert rejected.dkim_domain is None

    def test_schema_element_names(self):
        xml = _sample_report().to_xml()
        for tag in ("<feedback>", "<report_metadata>", "<policy_published>",
                    "<policy_evaluated>", "<header_from>", "<auth_results>"):
            assert tag in xml

    def test_non_report_rejected(self):
        with pytest.raises(ValueError):
            AggregateReport.from_xml("<other/>")

    def test_from_record_copies_fields(self):
        record = DmarcRecord.from_text("v=DMARC1; p=quarantine; sp=none; adkim=s; pct=42")
        published = PolicyPublished.from_record("d.example", record)
        assert published.policy is DmarcPolicy.QUARANTINE
        assert published.subdomain_policy is DmarcPolicy.NONE
        assert published.adkim is AlignmentMode.STRICT
        assert published.percent == 42


class TestBuildFromReceiver:
    MTA_IP = "198.51.100.90"
    GOOD_IP = "203.0.113.90"
    EVIL_IP = "203.0.113.91"

    @pytest.fixture
    def world(self):
        world = World(seed=123)
        zone = world.zone("sender.example")
        zone.add("sender.example", TxtRecord("v=spf1 ip4:%s -all" % self.GOOD_IP))
        zone.add(
            "sel._domainkey.sender.example",
            TxtRecord(KeyRecord(public_key_b64=KEYPAIR.public.to_base64()).to_text()),
        )
        zone.add("_dmarc.sender.example", TxtRecord("v=DMARC1; p=quarantine; rua=mailto:agg@sender.example"))
        for address in (self.GOOD_IP, self.EVIL_IP):
            world.network.add_address(address)
        return world

    def _deliver(self, world, source, signed):
        message = EmailMessage(
            [("From", "a@sender.example"), ("To", "b@rcpt.example"), ("Subject", "x"),
             ("Date", "d"), ("Message-ID", "<%s@s>" % source)],
            "body\r\n",
        )
        if signed:
            DkimSigner("sender.example", "sel", KEYPAIR.private).sign(message)
        client, t = SmtpClient.connect(world.network, source, self.MTA_IP, 0.0)
        _, t = client.ehlo("client.example", t)
        _, t = client.mail("a@sender.example", t)
        _, t = client.rcpt("b@rcpt.example", t)
        _, t = client.data_command(t)
        reply, t = client.send_message(message, t)
        client.abort(t)
        return reply

    def test_report_reflects_traffic(self, world):
        mta = ReceivingMta(
            "mx.rcpt.example", world.network, world.directory,
            MtaBehavior(accepts_any_recipient=True, enforces_dmarc=False),
            ipv4=self.MTA_IP,
        )
        mta.attach()
        assert self._deliver(world, self.GOOD_IP, signed=True).code == 250
        assert self._deliver(world, self.GOOD_IP, signed=True).code == 250
        assert self._deliver(world, self.EVIL_IP, signed=False).code == 250  # not enforcing

        report = build_aggregate_report(mta, "sender.example")
        assert report is not None
        assert report.message_count == 3
        assert report.policy.policy is DmarcPolicy.QUARANTINE
        by_ip = {row.source_ip: row for row in report.rows}
        assert by_ip[self.GOOD_IP].count == 2
        assert by_ip[self.GOOD_IP].disposition == "none"
        assert by_ip[self.EVIL_IP].disposition == "quarantine"
        assert by_ip[self.EVIL_IP].spf_aligned == "fail"
        # And it serialises to parseable XML.
        parsed = AggregateReport.from_xml(report.to_xml())
        assert parsed.message_count == 3

    def test_no_traffic_no_report(self, world):
        mta = ReceivingMta(
            "mx.rcpt.example", world.network, world.directory,
            MtaBehavior(accepts_any_recipient=True),
            ipv4=self.MTA_IP,
        )
        mta.attach()
        assert build_aggregate_report(mta, "sender.example") is None
