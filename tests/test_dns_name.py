"""Tests for the domain-name type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.errors import EmptyLabel, NameTooLong
from repro.dns.name import Name, root


class TestConstruction:
    def test_from_string(self):
        assert Name("foo.example.com").labels == ("foo", "example", "com")

    def test_trailing_dot_ignored(self):
        assert Name("example.com.") == Name("example.com")

    def test_root_forms(self):
        assert Name("").is_root()
        assert Name(".").is_root()
        assert root.is_root()

    def test_from_labels(self):
        assert Name(("a", "b")) == Name("a.b")

    def test_copy_constructor(self):
        original = Name("x.y")
        assert Name(original) == original

    def test_empty_interior_label_rejected(self):
        with pytest.raises(EmptyLabel):
            Name("a..b")

    def test_long_label_rejected(self):
        with pytest.raises(NameTooLong):
            Name("a" * 64 + ".com")

    def test_63_octet_label_accepted(self):
        assert len(Name("a" * 63 + ".com").labels[0]) == 63

    def test_long_name_rejected(self):
        with pytest.raises(NameTooLong):
            Name(".".join(["abcdefg"] * 40))


class TestSemantics:
    def test_case_insensitive_equality(self):
        assert Name("Foo.Example.COM") == Name("foo.example.com")

    def test_case_preserved_for_presentation(self):
        assert str(Name("Foo.COM")) == "Foo.COM."

    def test_hash_matches_equality(self):
        assert hash(Name("A.B")) == hash(Name("a.b"))

    def test_string_comparison(self):
        assert Name("a.b") == "a.b"

    def test_subdomain(self):
        assert Name("mail.example.com").is_subdomain_of(Name("example.com"))
        assert Name("example.com").is_subdomain_of(Name("example.com"))
        assert not Name("example.com").is_subdomain_of(Name("mail.example.com"))
        assert not Name("badexample.com").is_subdomain_of(Name("example.com"))

    def test_everything_under_root(self):
        assert Name("x.y").is_subdomain_of(root)

    def test_parent_and_child(self):
        name = Name("a.b.c")
        assert name.parent() == Name("b.c")
        assert Name("b.c").child("a") == name

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            root.parent()

    def test_relativize(self):
        assert Name("t01.m1.spf.example").relativize(Name("spf.example")) == ("t01", "m1")

    def test_relativize_outside_suffix(self):
        with pytest.raises(ValueError):
            Name("a.other.com").relativize(Name("example.com"))

    def test_canonical_ordering_right_to_left(self):
        assert Name("a.example.com") < Name("b.example.com")
        assert Name("z.alpha.com") < Name("a.beta.com")

    def test_to_text(self):
        assert Name("a.b").to_text() == "a.b."
        assert Name("a.b").to_text(omit_final_dot=True) == "a.b"
        assert root.to_text(omit_final_dot=True) == "."


_label = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_",
    min_size=1,
    max_size=20,
)


@given(st.lists(_label, min_size=0, max_size=6))
def test_name_string_roundtrip(labels):
    name = Name(labels)
    assert Name(str(name)) == name


@given(st.lists(_label, min_size=1, max_size=4), st.lists(_label, min_size=0, max_size=3))
def test_child_is_subdomain(suffix_labels, prefix_labels):
    suffix = Name(suffix_labels)
    child = Name(tuple(prefix_labels) + tuple(suffix_labels))
    assert child.is_subdomain_of(suffix)
    assert child.relativize(suffix) == tuple(prefix_labels)
