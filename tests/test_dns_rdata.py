"""Tests for rdata types."""

import pytest

from repro.dns.rdata import (
    AAAARecord,
    ARecord,
    CnameRecord,
    MxRecord,
    NsRecord,
    PtrRecord,
    RdataType,
    ResourceRecord,
    SoaRecord,
    TxtRecord,
)


class TestAddresses:
    def test_a_record(self):
        assert ARecord("192.0.2.1").address == "192.0.2.1"

    def test_a_record_rejects_garbage(self):
        with pytest.raises(ValueError):
            ARecord("300.1.2.3")

    def test_aaaa_canonicalises(self):
        assert AAAARecord("2001:0db8:0000:0000:0000:0000:0000:0001").address == "2001:db8::1"

    def test_aaaa_rejects_ipv4(self):
        with pytest.raises(ValueError):
            AAAARecord("192.0.2.1")


class TestMx:
    def test_fields(self):
        mx = MxRecord(10, "mail.example.com")
        assert mx.preference == 10
        assert mx.exchange == "mail.example.com"

    def test_preference_range(self):
        with pytest.raises(ValueError):
            MxRecord(-1, "m.example")
        with pytest.raises(ValueError):
            MxRecord(70000, "m.example")

    def test_to_text(self):
        assert MxRecord(5, "m.example.com").to_text() == "5 m.example.com."


class TestTxt:
    def test_single_string(self):
        assert TxtRecord("hello").strings == ("hello",)

    def test_long_string_auto_split(self):
        record = TxtRecord("x" * 600)
        assert [len(part) for part in record.strings] == [255, 255, 90]
        assert record.text == "x" * 600

    def test_explicit_strings_joined(self):
        assert TxtRecord(["v=spf1 ", "-all"]).text == "v=spf1 -all"

    def test_oversize_chunk_rejected(self):
        with pytest.raises(ValueError):
            TxtRecord(["y" * 256])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            TxtRecord([])

    def test_empty_string_allowed(self):
        assert TxtRecord("").text == ""


class TestEquality:
    def test_same_rdata_equal(self):
        assert ARecord("1.2.3.4") == ARecord("1.2.3.4")
        assert hash(ARecord("1.2.3.4")) == hash(ARecord("1.2.3.4"))

    def test_name_case_ignored_in_target_types(self):
        assert NsRecord("NS1.Example.COM") == NsRecord("ns1.example.com")
        assert CnameRecord("A.B") == CnameRecord("a.b")
        assert PtrRecord("P.Q") == PtrRecord("p.q")

    def test_cross_type_not_equal(self):
        assert ARecord("1.2.3.4") != TxtRecord("1.2.3.4")


class TestResourceRecord:
    def test_rdtype_delegates(self):
        rr = ResourceRecord("example.com", 300, ARecord("1.2.3.4"))
        assert rr.rdtype == RdataType.A

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord("example.com", -1, ARecord("1.2.3.4"))

    def test_to_text(self):
        rr = ResourceRecord("example.com", 60, TxtRecord("hi"))
        assert rr.to_text() == 'example.com. 60 IN TXT "hi"'

    def test_equality(self):
        a = ResourceRecord("x.com", 60, ARecord("1.1.1.1"))
        b = ResourceRecord("X.COM", 60, ARecord("1.1.1.1"))
        assert a == b


class TestSoa:
    def test_roundtrip_fields(self):
        soa = SoaRecord("ns1.x.com", "hostmaster.x.com", serial=9, minimum=120)
        assert soa.serial == 9
        assert soa.minimum == 120
        assert "ns1.x.com." in soa.to_text()


def test_rdatatype_from_text():
    assert RdataType.from_text("txt") is RdataType.TXT
    assert RdataType.from_text("AAAA") is RdataType.AAAA
    with pytest.raises(ValueError):
        RdataType.from_text("BOGUS")
