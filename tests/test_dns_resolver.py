"""Tests for the caching resolver: transports, fallback, cache, errors."""

import pytest

from repro.dns.rdata import (
    AAAARecord,
    ARecord,
    CnameRecord,
    RdataType,
    TxtRecord,
)
from repro.dns.resolver import AnswerStatus, ResolverConfig
from tests.helpers import AUTH_IP6, World


@pytest.fixture
def world():
    world = World(seed=11)
    zone = world.zone("example.com")
    zone.add("example.com", TxtRecord("v=spf1 -all"))
    zone.add("mail.example.com", ARecord("192.0.2.10"))
    zone.add("mail.example.com", AAAARecord("2001:db8::10"))
    zone.add("big.example.com", TxtRecord("t" * 700))
    zone.add("alias.example.com", CnameRecord("mail.example.com"))
    return world


class TestBasics:
    def test_positive_lookup(self, world):
        answer, t = world.resolver().query_at("mail.example.com", RdataType.A, 0.0)
        assert answer.status is AnswerStatus.SUCCESS
        assert answer.addresses() == ["192.0.2.10"]
        assert t > 0

    def test_nxdomain(self, world):
        answer, _ = world.resolver().query_at("nope.example.com", RdataType.A, 0.0)
        assert answer.status is AnswerStatus.NXDOMAIN
        assert answer.status.is_void

    def test_nodata(self, world):
        answer, _ = world.resolver().query_at("mail.example.com", RdataType.TXT, 0.0)
        assert answer.status is AnswerStatus.NODATA
        assert answer.status.is_void

    def test_unknown_zone_unreachable(self, world):
        answer, _ = world.resolver().query_at("nowhere.test", RdataType.A, 0.0)
        assert answer.status is AnswerStatus.UNREACHABLE
        assert answer.status.is_error

    def test_txt_texts_helper(self, world):
        answer, _ = world.resolver().query_at("example.com", RdataType.TXT, 0.0)
        assert answer.texts() == ["v=spf1 -all"]

    def test_cname_chase(self, world):
        answer, _ = world.resolver().query_at("alias.example.com", RdataType.A, 0.0)
        assert answer.status is AnswerStatus.SUCCESS
        assert "192.0.2.10" in answer.addresses()

    def test_resolve_addresses_both_families(self, world):
        addresses, _ = world.resolver().resolve_addresses("mail.example.com", 0.0)
        assert addresses == ["192.0.2.10", "2001:db8::10"]

    def test_resolve_addresses_v4_only(self, world):
        addresses, _ = world.resolver().resolve_addresses("mail.example.com", 0.0, want_ipv6=False)
        assert addresses == ["192.0.2.10"]


class TestCache:
    def test_cache_hit_is_instant(self, world):
        resolver = world.resolver()
        first, t1 = resolver.query_at("mail.example.com", RdataType.A, 0.0)
        second, t2 = resolver.query_at("mail.example.com", RdataType.A, t1)
        assert not first.from_cache
        assert second.from_cache
        assert t2 == t1
        assert second.addresses() == first.addresses()

    def test_cache_respects_ttl(self, world):
        resolver = world.resolver()
        answer, t1 = resolver.query_at("mail.example.com", RdataType.A, 0.0)
        later = t1 + answer.min_ttl + 1
        again, t2 = resolver.query_at("mail.example.com", RdataType.A, later)
        assert not again.from_cache
        assert t2 > later

    def test_negative_answers_cached(self, world):
        resolver = world.resolver()
        _, t1 = resolver.query_at("nope.example.com", RdataType.A, 0.0)
        again, t2 = resolver.query_at("nope.example.com", RdataType.A, t1)
        assert again.from_cache
        assert again.status is AnswerStatus.NXDOMAIN

    def test_cache_disabled(self, world):
        resolver = world.resolver(ResolverConfig(use_cache=False))
        _, t1 = resolver.query_at("mail.example.com", RdataType.A, 0.0)
        again, t2 = resolver.query_at("mail.example.com", RdataType.A, t1)
        assert not again.from_cache
        assert t2 > t1

    def test_each_query_logged_once_with_cache(self, world):
        resolver = world.resolver()
        _, t = resolver.query_at("mail.example.com", RdataType.A, 0.0)
        resolver.query_at("mail.example.com", RdataType.A, t)
        log = world.server.queries_under("mail.example.com")
        assert len(log) == 1


class TestTcpFallback:
    def test_truncated_response_retried_over_tcp(self, world):
        """A classic (non-EDNS) resolver hits the 512-octet ceiling."""
        resolver = world.resolver(ResolverConfig(edns_payload=None))
        answer, _ = resolver.query_at("big.example.com", RdataType.TXT, 0.0)
        assert answer.status is AnswerStatus.SUCCESS
        assert answer.transport == "tcp"
        transports = [e.transport for e in world.server.queries_under("big.example.com")]
        assert transports == ["udp", "tcp"]

    def test_no_tcp_fallback_fails(self, world):
        resolver = world.resolver(ResolverConfig(tcp_fallback=False, edns_payload=None))
        answer, _ = resolver.query_at("big.example.com", RdataType.TXT, 0.0)
        assert answer.status is AnswerStatus.SERVFAIL
        transports = [e.transport for e in world.server.queries_under("big.example.com")]
        assert transports == ["udp"]


class TestEdns:
    def test_edns_avoids_truncation_for_midsize_answers(self, world):
        """A 700-octet TXT fits a 1232-octet EDNS payload over UDP."""
        answer, _ = world.resolver().query_at("big.example.com", RdataType.TXT, 0.0)
        assert answer.status is AnswerStatus.SUCCESS
        assert answer.transport == "udp"

    def test_huge_answer_still_truncates_with_edns(self, world):
        world.server.zones[0].add("huge.example.com", TxtRecord("h" * 1500))
        answer, _ = world.resolver().query_at("huge.example.com", RdataType.TXT, 0.0)
        assert answer.status is AnswerStatus.SUCCESS
        assert answer.transport == "tcp"

    def test_server_caps_advertised_payload(self, world):
        world.server.max_udp_payload = 512
        answer, _ = world.resolver().query_at("big.example.com", RdataType.TXT, 0.0)
        assert answer.transport == "tcp"  # server refuses to go past 512

    def test_small_advertisement_honoured(self, world):
        resolver = world.resolver(ResolverConfig(edns_payload=600))
        answer, _ = resolver.query_at("big.example.com", RdataType.TXT, 0.0)
        assert answer.transport == "tcp"  # 700-octet answer > 600 advertised


class TestTransportSelection:
    def test_prefers_ipv4_by_default(self, world):
        resolver = world.resolver(address4="203.0.113.40", address6="2001:db8:c::40")
        resolver.query_at("mail.example.com", RdataType.A, 0.0)
        assert world.server.query_log[-1].client_ip == "203.0.113.40"

    def test_prefer_ipv6(self, world):
        config = ResolverConfig(prefer_ipv6=True)
        resolver = world.resolver(config, address4="203.0.113.40", address6="2001:db8:c::40")
        resolver.query_at("mail.example.com", RdataType.A, 0.0)
        assert world.server.query_log[-1].client_ip == "2001:db8:c::40"

    def test_ipv6_only_zone_needs_ipv6_capability(self, world):
        zone = world.zone("v6only.test", register=False)
        zone.add("v6only.test", TxtRecord("v=spf1 -all"))
        world.directory.register("v6only.test", AUTH_IP6)

        v4_resolver = world.resolver(ResolverConfig(ipv6_capable=False))
        answer, _ = v4_resolver.query_at("v6only.test", RdataType.TXT, 0.0)
        assert answer.status is AnswerStatus.UNREACHABLE

        dual = world.resolver(address4="203.0.113.41", address6="2001:db8:c::41")
        answer, _ = dual.query_at("v6only.test", RdataType.TXT, 0.0)
        assert answer.status is AnswerStatus.SUCCESS

    def test_requires_an_address(self, world):
        with pytest.raises(ValueError):
            world.resolver(address4=None, address6=None)


class TestTimeout:
    def test_slow_server_times_out(self, world):
        world.server.response_delay = lambda name, rdtype: 9.0
        resolver = world.resolver(ResolverConfig(timeout=5.0))
        answer, t = resolver.query_at("mail.example.com", RdataType.A, 0.0)
        assert answer.status in (AnswerStatus.TIMEOUT, AnswerStatus.UNREACHABLE)
        assert answer.status.is_error
        assert t >= 5.0

    def test_fast_server_within_timeout(self, world):
        world.server.response_delay = lambda name, rdtype: 0.8
        resolver = world.resolver(ResolverConfig(timeout=5.0))
        answer, _ = resolver.query_at("mail.example.com", RdataType.A, 0.0)
        assert answer.status is AnswerStatus.SUCCESS
