"""Edge-case resolver tests: 0x20, CNAME loops, spoofed replies, cache
eviction."""

import pytest

from repro.dns import wire
from repro.dns.cache import TtlCache
from repro.dns.name import Name
from repro.dns.rdata import ARecord, CnameRecord, RdataType, TxtRecord
from repro.dns.resolver import AnswerStatus, ResolverConfig
from tests.helpers import World


class Test0x20:
    @pytest.fixture
    def world(self):
        world = World(seed=131)
        zone = world.zone("case.example")
        zone.add("host.case.example", ARecord("192.0.2.30"))
        return world

    def test_queries_carry_mixed_case(self, world):
        resolver = world.resolver(ResolverConfig(use_0x20=True))
        answer, _ = resolver.query_at("host.case.example", RdataType.A, 0.0)
        assert answer.status is AnswerStatus.SUCCESS
        logged = str(world.server.query_log[-1].qname)
        assert logged.lower() == "host.case.example."
        assert any(char.isupper() for char in logged)

    def test_honest_server_passes_validation(self, world):
        resolver = world.resolver(ResolverConfig(use_0x20=True))
        answer, _ = resolver.query_at("host.case.example", RdataType.A, 0.0)
        assert answer.addresses() == ["192.0.2.30"]

    def test_case_mangling_server_rejected(self, world):
        """A server that rewrites the question's case looks like a spoofer
        and its answers are discarded."""
        original = world.server.resolve

        def mangler(query, transport, client_ip, t):
            response = original(query, transport, client_ip, t)
            response.question = [
                type(q)(Name(str(q.name).lower()), q.rdtype, q.rdclass) for q in response.question
            ]
            return response

        world.server.resolve = mangler
        resolver = world.resolver(ResolverConfig(use_0x20=True))
        answer, _ = resolver.query_at("host.case.example", RdataType.A, 0.0)
        assert answer.status.is_error

    def test_mangling_harmless_without_0x20(self, world):
        resolver = world.resolver(ResolverConfig(use_0x20=False))
        answer, _ = resolver.query_at("HOST.case.example", RdataType.A, 0.0)
        assert answer.status is AnswerStatus.SUCCESS


class TestCnameLoops:
    def test_cross_name_cname_loop_terminates(self):
        world = World(seed=132)
        zone = world.zone("loop.example")
        zone.add("a.loop.example", CnameRecord("b.loop.example"))
        zone.add("b.loop.example", CnameRecord("a.loop.example"))
        resolver = world.resolver()
        answer, _ = resolver.query_at("a.loop.example", RdataType.A, 0.0)
        # Terminates (no infinite loop) with a non-success outcome.
        assert answer.status is not AnswerStatus.SUCCESS

    def test_long_but_finite_chain_followed(self):
        world = World(seed=133)
        zone = world.zone("chain.example")
        for index in range(5):
            zone.add("c%d.chain.example" % index, CnameRecord("c%d.chain.example" % (index + 1)))
        zone.add("c5.chain.example", ARecord("192.0.2.55"))
        answer, _ = world.resolver().query_at("c0.chain.example", RdataType.A, 0.0)
        assert answer.status is AnswerStatus.SUCCESS
        assert "192.0.2.55" in answer.addresses()


class TestSpoofResistance:
    def test_mismatched_txid_discarded(self):
        world = World(seed=134)
        zone = world.zone("txid.example")
        zone.add("txid.example", TxtRecord("real answer"))
        original = world.server.udp_handler

        def wrong_id(payload, client_ip, transport, t):
            reply, delay = original(payload, client_ip, transport, t)
            parsed = wire.from_wire(reply)
            parsed.msg_id = (parsed.msg_id + 1) & 0xFFFF
            return wire.to_wire(parsed), delay

        world.network.unlisten_udp("198.51.100.53", 53)
        world.network.listen_udp("198.51.100.53", 53, wrong_id)
        resolver = world.resolver()
        answer, _ = resolver.query_at("txid.example", RdataType.TXT, 0.0)
        assert answer.status.is_error


class TestCacheEviction:
    def test_capacity_bound_respected(self):
        cache = TtlCache(max_entries=10)
        for index in range(50):
            cache.put(Name("n%d.test" % index), RdataType.A, index, ttl=1000.0, now=float(index))
        assert len(cache) <= 10

    def test_expired_entries_evicted_first(self):
        cache = TtlCache(max_entries=5)
        # Two entries that expire immediately...
        cache.put(Name("old1.test"), RdataType.A, "x", ttl=1.0, now=0.0)
        cache.put(Name("old2.test"), RdataType.A, "x", ttl=1.0, now=0.0)
        # ...then fill past capacity at t=100.
        for index in range(5):
            cache.put(Name("new%d.test" % index), RdataType.A, index, ttl=1000.0, now=100.0)
        assert cache.get(Name("old1.test"), RdataType.A, 100.0) is None
        survivors = sum(
            1 for index in range(5)
            if cache.get(Name("new%d.test" % index), RdataType.A, 100.0) is not None
        )
        assert survivors >= 4

    def test_overwrite_at_capacity_does_not_evict(self):
        # Regression: refreshing an existing key never grows the cache,
        # so it must not trigger eviction — the oldest-expiry victim
        # could be an unrelated live entry (or the refreshed key itself).
        cache = TtlCache(max_entries=3)
        for index in range(3):
            cache.put(Name("n%d.test" % index), RdataType.A, index, ttl=100.0 + index, now=0.0)
        cache.put(Name("n0.test"), RdataType.A, "fresh", ttl=500.0, now=1.0)
        assert len(cache) == 3
        for index in range(1, 3):
            assert cache.get(Name("n%d.test" % index), RdataType.A, 2.0) is not None
        assert cache.get(Name("n0.test"), RdataType.A, 2.0) == "fresh"

    def test_insert_at_capacity_still_evicts(self):
        cache = TtlCache(max_entries=3)
        for index in range(3):
            cache.put(Name("n%d.test" % index), RdataType.A, index, ttl=100.0 + index, now=0.0)
        cache.put(Name("new.test"), RdataType.A, "v", ttl=500.0, now=1.0)
        assert len(cache) <= 3
        assert cache.get(Name("new.test"), RdataType.A, 2.0) == "v"
        # The oldest-expiry entry (n0) was the victim.
        assert cache.get(Name("n0.test"), RdataType.A, 2.0) is None

    def test_hit_miss_counters(self):
        cache = TtlCache()
        name = Name("counted.test")
        assert cache.get(name, RdataType.A, 0.0) is None
        cache.put(name, RdataType.A, "v", ttl=10.0, now=0.0)
        assert cache.get(name, RdataType.A, 1.0) == "v"
        assert cache.hits == 1
        assert cache.misses == 1
        cache.flush()
        assert len(cache) == 0
