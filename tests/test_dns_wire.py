"""Tests for the DNS wire codec, including property-based roundtrips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns import wire
from repro.dns.errors import WireError
from repro.dns.message import Flags, Message
from repro.dns.name import Name
from repro.dns.rdata import (
    AAAARecord,
    ARecord,
    CnameRecord,
    MxRecord,
    NsRecord,
    PtrRecord,
    Rcode,
    RdataType,
    ResourceRecord,
    SoaRecord,
    TxtRecord,
)


def _roundtrip(message: Message) -> Message:
    return wire.from_wire(wire.to_wire(message))


class TestHeader:
    def test_query_roundtrip(self):
        query = Message.make_query("example.com", RdataType.TXT, msg_id=1234)
        parsed = _roundtrip(query)
        assert parsed.msg_id == 1234
        assert not parsed.flags.qr
        assert parsed.flags.rd
        assert parsed.qname == Name("example.com")
        assert parsed.qtype == RdataType.TXT

    def test_flags_roundtrip_all_bits(self):
        flags = Flags(qr=True, aa=True, tc=True, rd=False, ra=True, rcode=Rcode.NXDOMAIN)
        assert Flags.from_int(flags.to_int()) == flags

    def test_response_keeps_question(self):
        query = Message.make_query("a.b", RdataType.A, msg_id=7)
        response = query.make_response()
        assert response.msg_id == 7
        assert response.flags.qr
        assert response.qname == Name("a.b")


class TestRdataRoundtrip:
    @pytest.mark.parametrize(
        "rdata",
        [
            ARecord("192.0.2.45"),
            AAAARecord("2001:db8::beef"),
            NsRecord("ns1.example.com"),
            CnameRecord("target.example.net"),
            PtrRecord("host.example.org"),
            MxRecord(20, "mx2.example.com"),
            TxtRecord("v=spf1 include:x.example -all"),
            TxtRecord(["first", "second", ""]),
            TxtRecord("q" * 700),
            SoaRecord("ns1.e.com", "host.e.com", 3, 1, 2, 4, 60),
        ],
        ids=lambda r: type(r).__name__ + ":" + r.to_text()[:24],
    )
    def test_single_record(self, rdata):
        message = Message.make_query("owner.example.com", rdata.rdtype)
        message.flags.qr = True
        message.answer.append(ResourceRecord("owner.example.com", 300, rdata))
        parsed = _roundtrip(message)
        assert parsed.answer[0].rdata == rdata
        assert parsed.answer[0].ttl == 300

    def test_all_sections(self):
        message = Message.make_query("example.com", RdataType.MX)
        message.flags.qr = True
        message.answer.append(ResourceRecord("example.com", 60, MxRecord(10, "mx.example.com")))
        message.authority.append(ResourceRecord("example.com", 60, NsRecord("ns.example.com")))
        message.additional.append(ResourceRecord("mx.example.com", 60, ARecord("1.2.3.4")))
        parsed = _roundtrip(message)
        assert len(parsed.answer) == 1
        assert len(parsed.authority) == 1
        assert len(parsed.additional) == 1


class TestCompression:
    def test_compression_shrinks_repeated_names(self):
        message = Message.make_query("very-long-label.example.com", RdataType.A)
        message.flags.qr = True
        for index in range(5):
            message.answer.append(
                ResourceRecord("very-long-label.example.com", 60, ARecord("10.0.0.%d" % index))
            )
        compressed = wire.to_wire(message)
        # The owner name is 29 octets on the wire; each repeated owner
        # should collapse to a 2-octet pointer.  Per-record fixed overhead
        # is 10 octets (type/class/ttl/rdlength) plus 4 octets of A rdata.
        assert len(compressed) == 12 + (29 + 4) + 5 * (2 + 10 + 4)

    def test_compressed_names_decode_correctly(self):
        message = Message.make_query("a.example.com", RdataType.NS)
        message.flags.qr = True
        message.answer.append(ResourceRecord("a.example.com", 60, NsRecord("ns.a.example.com")))
        message.answer.append(ResourceRecord("a.example.com", 60, NsRecord("ns2.a.example.com")))
        parsed = _roundtrip(message)
        assert parsed.answer[0].rdata.target == Name("ns.a.example.com")
        assert parsed.answer[1].rdata.target == Name("ns2.a.example.com")

    def test_self_referential_pointer_rejected(self):
        # Header with qdcount=1, then a name that is a pointer to itself
        # (offset 12).  Chasing it must be rejected, not loop forever.
        header = bytes(4) + (1).to_bytes(2, "big") + bytes(6)
        with pytest.raises(WireError):
            wire.from_wire(header + b"\xc0\x0c" + bytes(4))


class TestMalformed:
    def test_truncated_buffer(self):
        good = wire.to_wire(Message.make_query("example.com", RdataType.A))
        with pytest.raises(WireError):
            wire.from_wire(good[:-3])

    def test_empty_buffer(self):
        with pytest.raises(WireError):
            wire.from_wire(b"")

    def test_bad_rdlength(self):
        message = Message.make_query("e.com", RdataType.A)
        message.flags.qr = True
        message.answer.append(ResourceRecord("e.com", 60, ARecord("1.2.3.4")))
        raw = bytearray(wire.to_wire(message))
        raw[-5] = 9  # corrupt RDLENGTH of the A record (should be 4)
        with pytest.raises(WireError):
            wire.from_wire(bytes(raw))


class TestUdpTruncation:
    def test_small_message_not_truncated(self):
        message = Message.make_query("e.com", RdataType.TXT)
        payload, truncated = wire.truncate_for_udp(message)
        assert not truncated

    def test_large_message_truncated(self):
        message = Message.make_query("e.com", RdataType.TXT)
        message.flags.qr = True
        message.answer.append(ResourceRecord("e.com", 60, TxtRecord("z" * 900)))
        payload, truncated = wire.truncate_for_udp(message)
        assert truncated
        parsed = wire.from_wire(payload)
        assert parsed.flags.tc
        assert not parsed.answer
        assert parsed.qname == Name("e.com")

    def test_custom_limit(self):
        message = Message.make_query("e.com", RdataType.TXT)
        message.flags.qr = True
        message.answer.append(ResourceRecord("e.com", 60, TxtRecord("z" * 100)))
        _, truncated = wire.truncate_for_udp(message, limit=64)
        assert truncated


_label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=15)
_name = st.lists(_label, min_size=1, max_size=5).map(Name)
_ttl = st.integers(min_value=0, max_value=2**31 - 1)

_rdata = st.one_of(
    st.builds(
        ARecord,
        st.integers(0, 2**32 - 1).map(
            lambda n: "%d.%d.%d.%d" % ((n >> 24) % 256, (n >> 16) % 256, (n >> 8) % 256, n % 256)
        ),
    ),
    st.builds(lambda n: AAAARecord("2001:db8::%x" % n), st.integers(0, 0xFFFF)),
    st.builds(MxRecord, st.integers(0, 65535), _name),
    st.builds(NsRecord, _name),
    st.builds(CnameRecord, _name),
    st.builds(
        TxtRecord,
        st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=0, max_size=300),
    ),
)


@given(
    qname=_name,
    records=st.lists(st.tuples(_name, _ttl, _rdata), min_size=0, max_size=6),
    msg_id=st.integers(0, 0xFFFF),
)
def test_arbitrary_message_roundtrip(qname, records, msg_id):
    message = Message.make_query(qname, RdataType.TXT, msg_id=msg_id)
    message.flags.qr = True
    for owner, ttl, rdata in records:
        message.answer.append(ResourceRecord(owner, ttl, rdata))
    parsed = _roundtrip(message)
    assert parsed.msg_id == msg_id
    assert parsed.qname == qname
    assert len(parsed.answer) == len(records)
    for parsed_rr, (owner, ttl, rdata) in zip(parsed.answer, records):
        assert parsed_rr.name == owner
        assert parsed_rr.ttl == ttl
        assert parsed_rr.rdata == rdata
