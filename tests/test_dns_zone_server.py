"""Tests for zone storage and the authoritative server."""

import pytest

from repro.dns import wire
from repro.dns.message import Message
from repro.dns.name import Name
from repro.dns.rdata import (
    ARecord,
    CnameRecord,
    Rcode,
    RdataType,
    SoaRecord,
    TxtRecord,
)
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import LookupStatus, Zone


@pytest.fixture
def zone():
    zone = Zone("example.com", soa=SoaRecord("ns1.example.com", "hostmaster.example.com"))
    zone.add("example.com", TxtRecord("v=spf1 -all"))
    zone.add("mail.example.com", ARecord("192.0.2.1"))
    zone.add("deep.a.b.example.com", ARecord("192.0.2.2"))
    zone.add("alias.example.com", CnameRecord("mail.example.com"))
    return zone


class TestZone:
    def test_success(self, zone):
        status, records = zone.lookup("mail.example.com", RdataType.A)
        assert status is LookupStatus.SUCCESS
        assert records[0].rdata.address == "192.0.2.1"

    def test_nodata_on_existing_name(self, zone):
        status, records = zone.lookup("mail.example.com", RdataType.TXT)
        assert status is LookupStatus.NODATA
        assert not records

    def test_nxdomain(self, zone):
        status, _ = zone.lookup("missing.example.com", RdataType.A)
        assert status is LookupStatus.NXDOMAIN

    def test_empty_non_terminal_is_nodata(self, zone):
        # a.b.example.com has no records but deep.a.b.example.com does.
        status, _ = zone.lookup("a.b.example.com", RdataType.A)
        assert status is LookupStatus.NODATA

    def test_cname_redirect_status(self, zone):
        status, records = zone.lookup("alias.example.com", RdataType.A)
        assert status is LookupStatus.CNAME
        assert records[0].rdata.target == Name("mail.example.com")

    def test_direct_cname_query(self, zone):
        status, _ = zone.lookup("alias.example.com", RdataType.CNAME)
        assert status is LookupStatus.SUCCESS

    def test_out_of_zone_add_rejected(self, zone):
        with pytest.raises(ValueError):
            zone.add("other.org", ARecord("1.2.3.4"))

    def test_out_of_zone_lookup_nxdomain(self, zone):
        status, _ = zone.lookup("other.org", RdataType.A)
        assert status is LookupStatus.NXDOMAIN

    def test_remove(self, zone):
        zone.remove("mail.example.com", RdataType.A)
        status, _ = zone.lookup("mail.example.com", RdataType.A)
        # Name node persists even after its last rrset is removed.
        assert status is LookupStatus.NODATA

    def test_record_count(self, zone):
        assert zone.record_count() == 5  # SOA + 4 added


def _ask(server, qname, qtype, transport="udp", client="203.0.113.9", t=1.0):
    query = Message.make_query(qname, qtype, msg_id=42)
    payload, delay = server._handle(wire.to_wire(query), client, transport, t)
    return wire.from_wire(payload), delay


class TestAuthoritativeServer:
    @pytest.fixture
    def server(self, zone):
        return AuthoritativeServer([zone])

    def test_positive_answer_is_authoritative(self, server):
        response, _ = _ask(server, "mail.example.com", RdataType.A)
        assert response.flags.aa
        assert response.rcode is Rcode.NOERROR
        assert response.answer[0].rdata.address == "192.0.2.1"

    def test_nxdomain_carries_soa(self, server):
        response, _ = _ask(server, "nope.example.com", RdataType.A)
        assert response.rcode is Rcode.NXDOMAIN
        assert response.authority[0].rdtype == RdataType.SOA

    def test_nodata_carries_soa(self, server):
        response, _ = _ask(server, "mail.example.com", RdataType.MX)
        assert response.rcode is Rcode.NOERROR
        assert not response.answer
        assert response.authority[0].rdtype == RdataType.SOA

    def test_cname_chased_in_zone(self, server):
        response, _ = _ask(server, "alias.example.com", RdataType.A)
        types = [rr.rdtype for rr in response.answer]
        assert RdataType.CNAME in types and RdataType.A in types

    def test_out_of_bailiwick_refused(self, server):
        response, _ = _ask(server, "other.org", RdataType.A)
        assert response.rcode is Rcode.REFUSED

    def test_query_log_records_metadata(self, server):
        _ask(server, "mail.example.com", RdataType.A, transport="tcp", client="2001:db8::9", t=7.5)
        entry = server.query_log[-1]
        assert entry.qname == Name("mail.example.com")
        assert entry.qtype == RdataType.A
        assert entry.transport == "tcp"
        assert entry.timestamp == 7.5
        assert entry.over_ipv6

    def test_queries_under(self, server):
        _ask(server, "mail.example.com", RdataType.A)
        _ask(server, "example.com", RdataType.TXT)
        assert len(server.queries_under("example.com")) == 2
        assert len(server.queries_under("mail.example.com")) == 1
        server.clear_log()
        assert not server.query_log

    def test_response_delay_applied(self, zone):
        server = AuthoritativeServer([zone], response_delay=lambda name, rdtype: 0.8)
        _, delay = _ask(server, "mail.example.com", RdataType.A)
        assert delay == pytest.approx(0.8)

    def test_forced_truncation_udp_only(self, zone):
        server = AuthoritativeServer([zone], force_tcp_for=lambda name: True)
        response, _ = _ask(server, "mail.example.com", RdataType.A, transport="udp")
        assert response.flags.tc and not response.answer
        response, _ = _ask(server, "mail.example.com", RdataType.A, transport="tcp")
        assert not response.flags.tc and response.answer

    def test_oversize_txt_truncated_over_udp(self, zone):
        zone.add("big.example.com", TxtRecord("b" * 800))
        server = AuthoritativeServer([zone])
        response, _ = _ask(server, "big.example.com", RdataType.TXT, transport="udp")
        assert response.flags.tc
        response, _ = _ask(server, "big.example.com", RdataType.TXT, transport="tcp")
        assert not response.flags.tc
        assert response.answer

    def test_garbage_query_answered_formerr(self, server):
        payload, _ = server._handle(b"\x00\x01nonsense", "1.2.3.4", "udp", 0.0)
        response = wire.from_wire(payload)
        assert response.rcode is Rcode.FORMERR

    def test_most_specific_zone_wins(self, zone):
        child = Zone("sub.example.com", soa=SoaRecord("ns1.sub.example.com", "h.sub.example.com"))
        child.add("www.sub.example.com", ARecord("10.0.0.1"))
        server = AuthoritativeServer([zone, child])
        response, _ = _ask(server, "www.sub.example.com", RdataType.A)
        assert response.answer[0].rdata.address == "10.0.0.1"
