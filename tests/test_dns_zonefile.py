"""Tests for the master-file (zone file) parser."""

import pytest

from repro.dns.name import Name
from repro.dns.rdata import RdataType
from repro.dns.zone import LookupStatus
from repro.dns.zonefile import ZoneFileError, parse_zone

CLASSIC = """
$ORIGIN example.com.
$TTL 3600
@   IN SOA ns1.example.com. hostmaster.example.com. (
        2021020101 ; serial
        7200       ; refresh
        3600       ; retry
        1209600    ; expire
        300 )      ; minimum
@        IN NS  ns1.example.com.
@        IN MX  10 mail.example.com.
@        IN MX  20 backup.example.com.
@        IN TXT "v=spf1 mx -all"
ns1      IN A   198.51.100.1
mail     IN A   198.51.100.2
         IN AAAA 2001:db8::2
backup   600 IN A 198.51.100.3
www      IN CNAME mail
_dmarc   IN TXT "v=DMARC1; p=reject"
"""


class TestClassicZone:
    @pytest.fixture(scope="class")
    def zone(self):
        return parse_zone(CLASSIC)

    def test_origin(self, zone):
        assert zone.origin == Name("example.com")

    def test_soa_parsed(self, zone):
        soa = zone.soa
        assert soa is not None
        assert soa.rdata.serial == 2021020101
        assert soa.rdata.minimum == 300
        assert soa.rdata.rname == Name("hostmaster.example.com")

    def test_relative_names_anchored(self, zone):
        status, records = zone.lookup("ns1.example.com", RdataType.A)
        assert status is LookupStatus.SUCCESS
        assert records[0].rdata.address == "198.51.100.1"

    def test_owner_inheritance(self, zone):
        """The indented AAAA line belongs to 'mail'."""
        status, records = zone.lookup("mail.example.com", RdataType.AAAA)
        assert status is LookupStatus.SUCCESS
        assert records[0].rdata.address == "2001:db8::2"

    def test_default_ttl_applied(self, zone):
        _, records = zone.lookup("mail.example.com", RdataType.A)
        assert records[0].ttl == 3600

    def test_per_record_ttl(self, zone):
        _, records = zone.lookup("backup.example.com", RdataType.A)
        assert records[0].ttl == 600

    def test_mx_set(self, zone):
        _, records = zone.lookup("example.com", RdataType.MX)
        preferences = sorted(rr.rdata.preference for rr in records)
        assert preferences == [10, 20]

    def test_quoted_txt(self, zone):
        _, records = zone.lookup("example.com", RdataType.TXT)
        assert records[0].rdata.text == "v=spf1 mx -all"

    def test_txt_with_semicolons_survives(self, zone):
        """Quoted ';' must not start a comment."""
        _, records = zone.lookup("_dmarc.example.com", RdataType.TXT)
        assert records[0].rdata.text == "v=DMARC1; p=reject"

    def test_cname(self, zone):
        status, records = zone.lookup("www.example.com", RdataType.A)
        assert status is LookupStatus.CNAME
        assert records[0].rdata.target == Name("mail.example.com")


class TestFeatures:
    def test_origin_argument_seed(self):
        zone = parse_zone("@ IN A 192.0.2.1", origin="seeded.test")
        _, records = zone.lookup("seeded.test", RdataType.A)
        assert records

    def test_at_for_origin(self):
        zone = parse_zone("$ORIGIN x.test.\n@ IN TXT \"hello\"")
        _, records = zone.lookup("x.test", RdataType.TXT)
        assert records[0].rdata.text == "hello"

    def test_multi_string_txt(self):
        zone = parse_zone('$ORIGIN t.test.\n@ IN TXT "part one " "part two"')
        _, records = zone.lookup("t.test", RdataType.TXT)
        assert records[0].rdata.strings == ("part one ", "part two")

    def test_escaped_quote_in_txt(self):
        zone = parse_zone('$ORIGIN t.test.\n@ IN TXT "say \\"hi\\""')
        _, records = zone.lookup("t.test", RdataType.TXT)
        assert records[0].rdata.text == 'say "hi"'

    def test_class_optional(self):
        zone = parse_zone("$ORIGIN t.test.\nhost A 192.0.2.9")
        _, records = zone.lookup("host.t.test", RdataType.A)
        assert records

    def test_ttl_before_class(self):
        zone = parse_zone("$ORIGIN t.test.\nhost 42 IN A 192.0.2.9")
        _, records = zone.lookup("host.t.test", RdataType.A)
        assert records[0].ttl == 42

    def test_empty_zone_with_origin(self):
        zone = parse_zone("", origin="empty.test")
        assert zone.origin == Name("empty.test")
        assert zone.record_count() == 0


class TestErrors:
    def test_record_before_origin(self):
        with pytest.raises(ZoneFileError):
            parse_zone("host IN A 192.0.2.1")

    def test_unknown_type(self):
        with pytest.raises(ZoneFileError) as info:
            parse_zone("$ORIGIN t.test.\nhost IN NAPTR something")
        assert "NAPTR" in str(info.value)

    def test_bad_directive(self):
        with pytest.raises(ZoneFileError):
            parse_zone("$INCLUDE other.zone")

    def test_unbalanced_parens(self):
        with pytest.raises(ZoneFileError):
            parse_zone("$ORIGIN t.test.\n@ IN SOA a. b. ( 1 2 3 4 5")

    def test_unterminated_quote(self):
        with pytest.raises(ZoneFileError):
            parse_zone('$ORIGIN t.test.\n@ IN TXT "oops')

    def test_error_carries_line_number(self):
        with pytest.raises(ZoneFileError) as info:
            parse_zone("$ORIGIN t.test.\nhost IN A not-an-ip")
        assert info.value.line == 2

    def test_out_of_zone_record(self):
        with pytest.raises(ZoneFileError):
            parse_zone("$ORIGIN t.test.\nother.example. IN A 192.0.2.1")

    def test_missing_rdata_fields(self):
        with pytest.raises(ZoneFileError):
            parse_zone("$ORIGIN t.test.\nhost IN MX 10")


def test_zone_file_round_trip_through_server():
    """A parsed zone plugs straight into the authoritative server."""
    from repro.dns.resolver import AuthorityDirectory, Resolver
    from repro.dns.server import AuthoritativeServer
    from repro.net.clock import Clock
    from repro.net.latency import LatencyModel
    from repro.net.network import Network

    zone = parse_zone(CLASSIC)
    network = Network(LatencyModel(0.002), Clock())
    AuthoritativeServer([zone]).attach(network, "198.51.100.53")
    directory = AuthorityDirectory()
    directory.register("example.com", "198.51.100.53")
    resolver = Resolver(network, directory, address4="203.0.113.2")
    answer, _ = resolver.query_at("example.com", RdataType.TXT, 0.0)
    assert answer.texts() == ["v=spf1 mx -all"]
