"""Docs stay runnable: CLI commands in the docs parse, modules are documented.

The README and OBSERVABILITY.md quote ``python -m repro.*`` invocations;
each referenced module must at least answer ``--help`` (a doc that names
a CLI that no longer exists is worse than no doc).  And every shipped
module carries a docstring — the module table in the README is only
trustworthy if the modules describe themselves.
"""

import ast
import os
import pathlib
import re
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).parent.parent
SRC = REPO / "src"
DOCS = ("README.md", "OBSERVABILITY.md", "DESIGN.md", "EXPERIMENTS.md")


def _documented_cli_modules():
    modules = set()
    for doc in DOCS:
        text = (REPO / doc).read_text(encoding="utf-8")
        modules.update(re.findall(r"python -m (repro[.\w]*)", text))
    return sorted(modules)


class TestDocumentedCommands:
    def test_docs_reference_at_least_the_known_clis(self):
        modules = _documented_cli_modules()
        assert "repro.lint" in modules
        assert "repro.core.runner" in modules

    @pytest.mark.parametrize("module", _documented_cli_modules())
    def test_cli_answers_help(self, module):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", module, "--help"],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert completed.returncode == 0, completed.stderr
        assert "usage" in completed.stdout.lower()


class TestModuleDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = []
        for path in sorted((SRC / "repro").rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            docstring = ast.get_docstring(tree)
            if not docstring or len(docstring.strip()) < 10:
                missing.append(str(path.relative_to(SRC)))
        assert not missing, "modules without a real docstring: %s" % missing

    def test_architecture_table_names_every_subpackage(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        for child in sorted((SRC / "repro").iterdir()):
            if child.is_dir() and (child / "__init__.py").exists():
                assert "repro.%s" % child.name in readme, child.name
