"""Smoke tests keeping the example scripts green.

Each example is imported and driven through its ``main()`` with small
arguments; assertions check the headline strings a reader would look for.
"""

import importlib.util
import pathlib
import sys

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location("example_%s" % name, EXAMPLES / ("%s.py" % name))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "SPF   : pass" in out
    assert "disposition: reject" in out


def test_domain_audit(capsys):
    _load("domain_audit").main()
    out = capsys.readouterr().out
    assert "grade A" in out
    assert "grade F" in out
    assert "entire Internet" in out


def test_spf_torture(capsys):
    _load("spf_torture").main()
    out = capsys.readouterr().out
    assert "46 post-base queries" in out
    assert "l1 -> foo" in out  # the parallel validator's tell
    assert "permerror" in out


def test_notify_email(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["notify_email.py", "0.003"])
    _load("notify_email").main()
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert "Figure 2" in out
    assert "deliveries accepted" in out


def test_zone_lint(capsys):
    _load("zone_lint").main()
    out = capsys.readouterr().out
    assert "clean: no findings" in out  # the textbook zone
    assert "SPF013" in out  # the planted include loop
    assert "lookup_limit" in out
    assert '"DMARC002"' in out  # the JSON rendering of p=none


def test_observability(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["observability.py", "0.003"])
    _load("observability").main()
    out = capsys.readouterr().out
    assert "campaign metrics" in out
    assert "spf_checks_total" in out
    assert "probe.conversation" in out
    assert "spf.check_host" in out
    assert "dns.exchange" in out
    assert "-> MATCH" in out
    assert "virtual" in out


def test_probe_campaign(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["probe_campaign.py", "0.003"])
    _load("probe_campaign").main()
    out = capsys.readouterr().out
    assert "Table 5" in out
    assert "Section 7" in out
    assert "virtual" in out
