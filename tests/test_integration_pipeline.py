"""Whole-system integration: all three campaigns on one world, with the
global invariants the methodology promises."""

import pytest

from repro.core import analysis as A
from repro.core.campaign import (
    NotifyEmailCampaign,
    ProbeCampaign,
    Testbed,
    apply_reputation_effects,
)
from repro.core.datasets import DatasetSpec, generate_universe
from repro.core.fingerprint import fingerprint_fleet
from repro.core.policies import POLICIES


@pytest.fixture(scope="module")
def pipeline():
    universe = generate_universe(DatasetSpec.notify_email(scale=0.005), seed=501)
    testbed = Testbed(universe, seed=502)
    notify = NotifyEmailCampaign(testbed).run()
    apply_reputation_effects(universe, seed=503)
    probe = ProbeCampaign(testbed, "NotifyMX", start_time=5e6).run()
    return universe, testbed, notify, probe


class TestNoDeliveryGuarantee:
    def test_probes_never_deliver(self, pipeline):
        universe, testbed, notify, probe = pipeline
        # Every delivery in every receiving MTA came from the NotifyEmail
        # campaign; the probe's ~5,000 conversations added none.
        total_deliveries = sum(len(r.deliveries) for r in testbed.receivers.values())
        assert total_deliveries == len(notify.accepted)

    def test_probe_conversations_cover_every_policy(self, pipeline):
        _, _, _, probe = pipeline
        testids = {result.testid for result in probe.results}
        assert testids == {policy.testid for policy in POLICIES}


class TestEvidenceConsistency:
    def test_every_observed_mta_was_probed_or_mailed(self, pipeline):
        universe, testbed, notify, probe = pipeline
        observed = probe.index.mtas_observed()
        probe_ids = set(probe.probed)
        notify_ids = {d.domain.domainid for d in notify.deliveries}
        for mtaid in observed:
            assert mtaid in probe_ids or mtaid in notify_ids

    def test_query_log_attribution_is_total_for_suffix_queries(self, pipeline):
        universe, testbed, _, _ = pipeline
        from repro.core.querylog import attribute_queries

        raw = testbed.synth.query_log
        attributed = attribute_queries(raw, testbed.synth_config)
        # Everything the synthesizing server logs is attributable (its
        # suffixes are the only names it serves).
        assert len(attributed) >= 0.98 * len(raw)

    def test_white_box_agrees_with_black_box(self, pipeline):
        """The receivers' own validation records must agree with what the
        query log says about them — the harness's core soundness check."""
        universe, testbed, notify, probe = pipeline
        observed = probe.index.mtas_observed()
        for mtaid, receiver in testbed.receivers.items():
            if mtaid not in probe.probed:
                continue
            # Count SPF validations this receiver ran against probe
            # From-domains (not NotifyEmail ones).
            ran_spf = any(
                v.kind in ("spf", "helo-spf") and "spf-test" in str(v.domain)
                for v in receiver.validations
            )
            if mtaid in observed:
                assert ran_spf, "%s observed in DNS but never validated" % mtaid

    def test_validation_timestamps_inside_probe_windows(self, pipeline):
        _, testbed, _, probe = pipeline
        windows = {}
        for result in probe.results:
            window = windows.setdefault(result.mtaid, [float("inf"), 0.0])
            window[0] = min(window[0], result.t_started)
            window[1] = max(window[1], result.t_finished)
        for query in probe.index.queries:
            if query.mtaid in windows:
                start, end = windows[query.mtaid]
                assert start - 1.0 <= query.timestamp <= end + 1.0


class TestDownstreamAnalyses:
    def test_all_analyses_run_on_shared_world(self, pipeline):
        universe, _, notify, probe = pipeline
        analysis = A.analyze_notify(notify)
        A.validation_breakdown_table(analysis)
        A.timing_analysis(notify)
        A.behavior_stats(probe)
        A.lookup_limit_analysis(probe)
        A.rejection_stats(probe)
        A.consistency_stats(universe, analysis, probe)
        report = fingerprint_fleet(probe)
        assert report.total_mtas > 0

    def test_notify_and_probe_rates_ordered(self, pipeline):
        universe, _, notify, probe = pipeline
        analysis = A.analyze_notify(notify)
        notify_rate = len(analysis.validating("spf")) / analysis.total
        row = A.probe_spf_row("NotifyMX", universe, probe)
        assert notify_rate > row.validating_domains / row.total_domains
