"""Tests for the AST invariant checker — including the tier-1 assertion
that the repro package itself is clean."""

import textwrap

from repro.lint.astcheck import check_file, check_source_tree
from repro.lint.diagnostics import LintReport


def _check(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    report = LintReport()
    check_file(path, relpath, report)
    return report


class TestRepoIsClean:
    def test_repro_package_has_no_violations(self):
        """The tier-1 invariant: the shipped package passes its own check."""
        report = check_source_tree()
        assert report.diagnostics == [], report.render_text()


class TestWallClock:
    def test_time_time_flagged(self, tmp_path):
        report = _check(
            tmp_path,
            "core/bad.py",
            """
            import time
            stamp = time.time()
            """,
        )
        assert report.codes() == ["AST001"]
        assert "bad.py:3" in report.diagnostics[0].subject

    def test_aliased_import_flagged(self, tmp_path):
        report = _check(
            tmp_path,
            "core/bad.py",
            """
            import time as t
            stamp = t.monotonic()
            """,
        )
        assert report.has("AST001")

    def test_from_import_flagged(self, tmp_path):
        report = _check(
            tmp_path,
            "core/bad.py",
            """
            from time import perf_counter
            stamp = perf_counter()
            """,
        )
        assert report.has("AST001")

    def test_datetime_now_flagged(self, tmp_path):
        report = _check(
            tmp_path,
            "core/bad.py",
            """
            import datetime
            stamp = datetime.datetime.now()
            """,
        )
        assert report.has("AST001")

    def test_clock_module_is_sanctioned(self, tmp_path):
        report = _check(
            tmp_path,
            "net/clock.py",
            """
            import time
            def wall_now():
                return time.time()
            """,
        )
        assert report.diagnostics == []

    def test_virtual_clock_calls_not_flagged(self, tmp_path):
        report = _check(
            tmp_path,
            "core/good.py",
            """
            def step(clock):
                return clock.now
            def wait(clock):
                clock.sleep(1.0)
            """,
        )
        assert report.diagnostics == []


class TestSocket:
    def test_import_socket_flagged(self, tmp_path):
        report = _check(tmp_path, "core/bad.py", "import socket\n")
        assert report.codes() == ["AST002"]

    def test_from_socket_flagged(self, tmp_path):
        report = _check(tmp_path, "core/bad.py", "from socket import AF_INET\n")
        assert report.has("AST002")

    def test_socket_allowed_under_net(self, tmp_path):
        report = _check(tmp_path, "net/transport.py", "import socket\n")
        assert report.diagnostics == []


class TestBareExcept:
    def test_bare_except_flagged(self, tmp_path):
        report = _check(
            tmp_path,
            "core/bad.py",
            """
            try:
                work()
            except:
                pass
            """,
        )
        assert report.codes() == ["AST003"]

    def test_typed_except_fine(self, tmp_path):
        report = _check(
            tmp_path,
            "core/good.py",
            """
            try:
                work()
            except ValueError:
                pass
            """,
        )
        assert report.diagnostics == []


class TestUnparseable:
    def test_syntax_error_reported(self, tmp_path):
        report = _check(tmp_path, "core/broken.py", "def f(:\n")
        assert report.codes() == ["AST000"]


class TestPlantedTree:
    def test_scan_finds_planted_violations(self, tmp_path):
        """End-to-end over a small planted tree: one of each violation."""
        (tmp_path / "net").mkdir()
        (tmp_path / "core").mkdir()
        (tmp_path / "net" / "clock.py").write_text("import time\nnow = time.time()\n")
        (tmp_path / "net" / "io.py").write_text("import socket\n")
        (tmp_path / "core" / "loop.py").write_text(
            "import time\n\ntry:\n    t = time.time()\nexcept:\n    pass\n"
        )
        report = check_source_tree(tmp_path)
        assert sorted(report.codes()) == ["AST001", "AST003"]
        assert all(d.subject.startswith("core/loop.py") for d in report.diagnostics)
