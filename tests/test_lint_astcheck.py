"""Tests for the AST invariant checker — including the tier-1 assertion
that the repro package itself is clean."""

import textwrap

from repro.lint.astcheck import AST_RULES, check_file, check_source, check_source_tree
from repro.lint.diagnostics import LintReport


def _check(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    report = LintReport()
    check_file(path, relpath, report)
    return report


class TestRepoIsClean:
    def test_repro_package_has_no_violations(self):
        """The tier-1 invariant: the shipped package passes its own check."""
        report = check_source_tree()
        assert report.diagnostics == [], report.render_text()


class TestWallClock:
    def test_time_time_flagged(self, tmp_path):
        report = _check(
            tmp_path,
            "core/bad.py",
            """
            import time
            stamp = time.time()
            """,
        )
        assert report.codes() == ["AST001"]
        assert "bad.py:3" in report.diagnostics[0].subject

    def test_aliased_import_flagged(self, tmp_path):
        report = _check(
            tmp_path,
            "core/bad.py",
            """
            import time as t
            stamp = t.monotonic()
            """,
        )
        assert report.has("AST001")

    def test_from_import_flagged(self, tmp_path):
        report = _check(
            tmp_path,
            "core/bad.py",
            """
            from time import perf_counter
            stamp = perf_counter()
            """,
        )
        assert report.has("AST001")

    def test_datetime_now_flagged(self, tmp_path):
        report = _check(
            tmp_path,
            "core/bad.py",
            """
            import datetime
            stamp = datetime.datetime.now()
            """,
        )
        assert report.has("AST001")

    def test_clock_module_is_sanctioned(self, tmp_path):
        report = _check(
            tmp_path,
            "net/clock.py",
            """
            import time
            def wall_now():
                return time.time()
            """,
        )
        assert report.diagnostics == []

    def test_virtual_clock_calls_not_flagged(self, tmp_path):
        report = _check(
            tmp_path,
            "core/good.py",
            """
            def step(clock):
                return clock.now
            def wait(clock):
                clock.sleep(1.0)
            """,
        )
        assert report.diagnostics == []


class TestWallNowContainment:
    def test_wall_now_call_flagged(self, tmp_path):
        report = _check(
            tmp_path,
            "core/bad.py",
            """
            from repro.net.clock import wall_now
            started = wall_now()
            """,
        )
        assert report.codes() == ["AST007"]
        assert "sanctioned" in report.diagnostics[0].message

    def test_dotted_call_flagged(self, tmp_path):
        report = _check(
            tmp_path,
            "core/bad.py",
            """
            from repro.net import clock
            started = clock.wall_now()
            """,
        )
        assert report.has("AST007")

    def test_clock_module_is_sanctioned(self, tmp_path):
        report = _check(
            tmp_path,
            "net/clock.py",
            """
            import time
            def wall_now():
                return time.time()
            started = wall_now()
            """,
        )
        assert report.diagnostics == []

    def test_progress_sink_is_sanctioned(self, tmp_path):
        report = _check(
            tmp_path,
            "obs/progress.py",
            """
            from repro.net.clock import wall_now
            started = wall_now()
            """,
        )
        assert report.diagnostics == []

    def test_suppression_waives(self, tmp_path):
        report = _check(
            tmp_path,
            "core/waived.py",
            """
            from repro.net.clock import wall_now
            started = wall_now()  # lint: disable=AST007
            """,
        )
        assert report.diagnostics == []


class TestSocket:
    def test_import_socket_flagged(self, tmp_path):
        report = _check(tmp_path, "core/bad.py", "import socket\n")
        assert report.codes() == ["AST002"]

    def test_from_socket_flagged(self, tmp_path):
        report = _check(tmp_path, "core/bad.py", "from socket import AF_INET\n")
        assert report.has("AST002")

    def test_socket_allowed_under_net(self, tmp_path):
        report = _check(tmp_path, "net/transport.py", "import socket\n")
        assert report.diagnostics == []


class TestBareExcept:
    def test_bare_except_flagged(self, tmp_path):
        report = _check(
            tmp_path,
            "core/bad.py",
            """
            try:
                work()
            except:
                pass
            """,
        )
        assert report.codes() == ["AST003"]

    def test_typed_except_fine(self, tmp_path):
        report = _check(
            tmp_path,
            "core/good.py",
            """
            try:
                work()
            except ValueError:
                pass
            """,
        )
        assert report.diagnostics == []


class TestUnparseable:
    def test_syntax_error_reported(self, tmp_path):
        report = _check(tmp_path, "core/broken.py", "def f(:\n")
        assert report.codes() == ["AST000"]


def _check_src(relpath, source):
    report = LintReport()
    check_source(textwrap.dedent(source), relpath, report)
    return report


class TestRegistry:
    def test_every_rule_has_a_registry_entry(self):
        from repro.lint.diagnostics import RULES

        for code in AST_RULES:
            assert code in RULES, code


class TestBlockingInAsync:
    def test_blocking_call_in_async_def_flagged(self):
        report = _check_src(
            "core/bad.py",
            """
            import subprocess
            async def deliver():
                subprocess.run(["sendmail"])
            """,
        )
        assert report.codes() == ["AST004"]

    def test_same_call_in_sync_def_fine(self):
        report = _check_src(
            "core/good.py",
            """
            import subprocess
            def deliver():
                subprocess.run(["sendmail"])
            """,
        )
        assert report.diagnostics == []

    def test_nested_sync_def_shields_the_call(self):
        # The nearest enclosing function decides: a sync helper defined
        # inside a coroutine is not itself running on the event loop.
        report = _check_src(
            "core/good.py",
            """
            import subprocess
            async def deliver():
                def helper():
                    subprocess.run(["sendmail"])
                return helper
            """,
        )
        assert not report.has("AST004")

    def test_time_sleep_in_async_draws_both_rules(self):
        report = _check_src(
            "core/bad.py",
            """
            import time
            async def wait():
                time.sleep(1.0)
            """,
        )
        assert sorted(report.codes()) == ["AST001", "AST004"]


class TestMutableDefaults:
    def test_list_literal_default_flagged(self):
        report = _check_src(
            "core/bad.py",
            """
            def collect(seen=[]):
                return seen
            """,
        )
        assert report.codes() == ["AST005"]

    def test_dict_call_default_flagged(self):
        report = _check_src(
            "core/bad.py",
            """
            def collect(*, seen=dict()):
                return seen
            """,
        )
        assert report.codes() == ["AST005"]

    def test_none_and_tuple_defaults_fine(self):
        report = _check_src(
            "core/good.py",
            """
            def collect(seen=None, pair=(1, 2)):
                return seen, pair
            """,
        )
        assert report.diagnostics == []


class TestNaiveDatetime:
    def test_constructor_without_tzinfo_flagged(self):
        report = _check_src(
            "core/bad.py",
            """
            from datetime import datetime
            when = datetime(2021, 3, 1)
            """,
        )
        assert report.codes() == ["AST006"]

    def test_constructor_with_tzinfo_fine(self):
        report = _check_src(
            "core/good.py",
            """
            from datetime import datetime, timezone
            when = datetime(2021, 3, 1, tzinfo=timezone.utc)
            """,
        )
        assert report.diagnostics == []

    def test_fromtimestamp_without_tz_flagged(self):
        report = _check_src(
            "core/bad.py",
            """
            import datetime
            when = datetime.datetime.fromtimestamp(0)
            """,
        )
        assert report.codes() == ["AST006"]

    def test_fromtimestamp_with_tz_fine(self):
        report = _check_src(
            "core/good.py",
            """
            import datetime
            when = datetime.datetime.fromtimestamp(0, tz=datetime.timezone.utc)
            """,
        )
        assert report.diagnostics == []

    def test_utcfromtimestamp_always_flagged(self):
        report = _check_src(
            "core/bad.py",
            """
            import datetime
            when = datetime.datetime.utcfromtimestamp(0)
            """,
        )
        assert report.codes() == ["AST006"]


class TestSuppressions:
    def test_disable_specific_code(self):
        report = _check_src(
            "core/waived.py",
            """
            import time
            stamp = time.time()  # lint: disable=AST001
            """,
        )
        assert report.diagnostics == []

    def test_disable_wrong_code_does_not_waive(self):
        report = _check_src(
            "core/bad.py",
            """
            import time
            stamp = time.time()  # lint: disable=AST003
            """,
        )
        assert report.codes() == ["AST001"]

    def test_bare_disable_waives_everything(self):
        report = _check_src(
            "core/waived.py",
            """
            import time
            import socket  # lint: disable
            stamp = time.time()  # lint: disable
            """,
        )
        assert report.diagnostics == []

    def test_disable_list_of_codes(self):
        report = _check_src(
            "core/waived.py",
            """
            import time
            async def wait():
                time.sleep(1.0)  # lint: disable=AST001,AST004
            """,
        )
        assert report.diagnostics == []

    def test_suppression_is_per_line(self):
        report = _check_src(
            "core/bad.py",
            """
            import time
            a = time.time()  # lint: disable=AST001
            b = time.time()
            """,
        )
        assert report.codes() == ["AST001"]
        assert report.diagnostics[0].subject.endswith(":4")


class TestPlantedTree:
    def test_scan_finds_planted_violations(self, tmp_path):
        """End-to-end over a small planted tree: one of each violation."""
        (tmp_path / "net").mkdir()
        (tmp_path / "core").mkdir()
        (tmp_path / "net" / "clock.py").write_text("import time\nnow = time.time()\n")
        (tmp_path / "net" / "io.py").write_text("import socket\n")
        (tmp_path / "core" / "loop.py").write_text(
            "import time\n\ntry:\n    t = time.time()\nexcept:\n    pass\n"
        )
        report = check_source_tree(tmp_path)
        assert sorted(report.codes()) == ["AST001", "AST003"]
        assert all(d.subject.startswith("core/loop.py") for d in report.diagnostics)
