"""Tests for the ``python -m repro.lint`` front end: output formats
(text/JSON/SARIF), the repo subcommand, and the DKIM subcommands."""

import json
import textwrap

from repro.lint.__main__ import main
from repro.lint.diagnostics import RULES, LintReport, Severity
from repro.lint.sarif import SARIF_VERSION, to_sarif


class TestRecordJson:
    def test_json_round_trips(self, capsys):
        exit_code = main(["--json", "record", "v=spf1 ptr -all", "--domain", "example.com"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["domain"] == "example.com"
        assert payload["prediction"]["lookup_terms"] == 1
        codes = {finding["code"] for finding in payload["findings"]}
        assert "SPF025" in codes
        for finding in payload["findings"]:
            assert set(finding) >= {"code", "severity", "subject", "message"}
            assert finding["severity"] in ("error", "warning", "info")

    def test_error_findings_set_exit_code(self, capsys):
        exit_code = main(["--json", "record", "v=spf1 +all"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert any(f["code"] == "SPF022" for f in payload["findings"])


class TestDkimSubcommands:
    def test_dkim_sig_text_output(self, capsys):
        exit_code = main(["dkim-sig", "v=1; a=rsa-sha1; d=x.org; s=s; h=from; bh=a; b=b"])
        out = capsys.readouterr().out
        assert exit_code == 1  # rsa-sha1 is an error
        assert "DKIM005" in out

    def test_dkim_key_json_output(self, capsys):
        exit_code = main(["--json", "dkim-key", "v=DKIM1; k=rsa; p="])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0  # revoked is a warning, not an error
        assert payload["findings"][0]["code"] == "DKIM002"


class TestRepoSubcommand:
    def _tree(self, tmp_path):
        core = tmp_path / "core"
        core.mkdir()
        (core / "bad.py").write_text(
            textwrap.dedent(
                """
                import time

                def stamp(seen=[]):
                    seen.append(time.time())
                    return seen
                """
            ),
            encoding="utf-8",
        )
        return tmp_path

    def test_text_format(self, tmp_path, capsys):
        exit_code = main(["repo", str(self._tree(tmp_path))])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "AST001" in out and "AST005" in out

    def test_json_format(self, tmp_path, capsys):
        main(["repo", str(self._tree(tmp_path)), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 1  # AST001
        assert payload["counts"]["warning"] == 1  # AST005

    def test_sarif_format_shape(self, tmp_path, capsys):
        exit_code = main(["repo", str(self._tree(tmp_path)), "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"].endswith("sarif-2.1.0.json")
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro.lint"
        assert [rule["id"] for rule in driver["rules"]] == list(RULES)
        results = run["results"]
        assert {r["ruleId"] for r in results} == {"AST001", "AST005"}
        for result in results:
            assert driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]
            assert result["level"] in ("error", "warning", "note")
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"] == "core/bad.py"
            assert location["region"]["startLine"] > 0

    def test_sarif_written_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "lint.sarif"
        main(["repo", str(self._tree(tmp_path)), "--format", "sarif", "--output", str(out_file)])
        log = json.loads(out_file.read_text(encoding="utf-8"))
        assert log["version"] == "2.1.0"
        assert "wrote sarif report" in capsys.readouterr().out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert main(["repo", str(tmp_path), "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []


class TestSarifRenderer:
    def test_domain_subjects_become_logical_locations(self):
        report = LintReport()
        report.add("SPF022", "'+all' authorizes everyone", subject="example.com")
        log = to_sarif(report)
        result = log["runs"][0]["results"][0]
        logical = result["locations"][0]["logicalLocations"][0]
        assert logical["fullyQualifiedName"] == "example.com"
        assert "physicalLocation" not in result["locations"][0]

    def test_severity_level_mapping(self):
        report = LintReport()
        report.add("SPF022", "error-level")  # ERROR
        report.add("SPF005", "warning-level")  # WARNING
        report.add("SPF028", "info-level")  # INFO
        levels = [r["level"] for r in to_sarif(report)["runs"][0]["results"]]
        assert levels == ["error", "warning", "note"]

    def test_rules_carry_default_levels(self):
        log = to_sarif(LintReport())
        for rule in log["runs"][0]["tool"]["driver"]["rules"]:
            severity, title = RULES[rule["id"]]
            assert rule["shortDescription"]["text"] == title
            assert rule["defaultConfiguration"]["level"] == {
                Severity.ERROR: "error",
                Severity.WARNING: "warning",
                Severity.INFO: "note",
            }[severity]
