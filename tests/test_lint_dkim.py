"""Tests for the static DKIM auditor (repro.lint.dkimlint): one
injected-fault test per rule, plus the zone sweep feeding DMARC007."""

import pytest

from repro.dkim.rsa import generate_keypair
from repro.dns.rdata import TxtRecord
from repro.dns.zone import Zone
from repro.lint.dkimlint import (
    EXPIRY_WARNING_SECONDS,
    audit_key_record,
    audit_signature_header,
    audit_zone_dkim,
    key_is_usable,
)

KEY_1024 = generate_keypair(1024, seed=7).public.to_base64()
KEY_512 = generate_keypair(512, seed=8).public.to_base64()

GOOD_KEY = "v=DKIM1; k=rsa; p=%s" % KEY_1024


def _sig(**overrides):
    tags = {
        "v": "1",
        "a": "rsa-sha256",
        "c": "relaxed/relaxed",
        "d": "example.com",
        "s": "sel",
        "h": "from:to:subject",
        "bh": "aGFzaA==",
        "b": "c2ln",
    }
    tags.update(overrides)
    return "; ".join("%s=%s" % (k, v) for k, v in tags.items() if v is not None)


class TestKeyRecords:
    def test_good_1024_bit_key_warns_only_on_size(self):
        report = audit_key_record(GOOD_KEY)
        assert report.codes() == ["DKIM004"]
        assert not report.errors

    def test_dkim001_malformed_tag_list(self):
        report = audit_key_record("v=DKIM1; no-equals-sign-here")
        assert report.codes() == ["DKIM001"]

    def test_dkim001_wrong_version(self):
        assert audit_key_record("v=DKIM2; p=%s" % KEY_1024).codes() == ["DKIM001"]

    def test_dkim001_version_not_first(self):
        report = audit_key_record("k=rsa; v=DKIM1; p=%s" % KEY_1024)
        assert report.has("DKIM001")

    def test_dkim001_unsupported_key_type(self):
        assert audit_key_record("v=DKIM1; k=ed25519; p=abc").codes() == ["DKIM001"]

    def test_dkim001_undecodable_key(self):
        assert audit_key_record("v=DKIM1; k=rsa; p=!!!notbase64!!!").codes() == ["DKIM001"]

    def test_dkim002_revoked_key(self):
        assert audit_key_record("v=DKIM1; k=rsa; p=").codes() == ["DKIM002"]

    def test_dkim003_short_key(self):
        report = audit_key_record("v=DKIM1; k=rsa; p=%s" % KEY_512)
        assert report.codes() == ["DKIM003"]

    def test_dkim005_key_forbids_sha256(self):
        report = audit_key_record("v=DKIM1; k=rsa; h=sha1; p=%s" % KEY_1024)
        assert report.has("DKIM005")

    def test_dkim007_testing_flag(self):
        report = audit_key_record("v=DKIM1; k=rsa; t=y; p=%s" % KEY_1024)
        assert report.has("DKIM007")

    def test_dkim011_missing_p(self):
        assert audit_key_record("v=DKIM1; k=rsa").codes() == ["DKIM011"]

    def test_dkim012_duplicate_tag(self):
        report = audit_key_record("v=DKIM1; k=rsa; k=rsa; p=%s" % KEY_1024)
        assert report.has("DKIM012")

    def test_dkim016_unknown_tag(self):
        report = audit_key_record("v=DKIM1; k=rsa; zz=1; p=%s" % KEY_1024)
        assert report.has("DKIM016")


class TestKeyUsability:
    @pytest.mark.parametrize(
        "text,usable",
        [
            (GOOD_KEY, True),
            ("v=DKIM1; k=rsa; p=%s" % KEY_512, True),  # weak but functional
            ("v=DKIM1; k=rsa; p=", False),  # revoked
            ("v=DKIM1; k=rsa", False),  # no key material
            ("v=DKIM1; k=rsa; p=!!!", False),  # undecodable
            ("not a tag list at all", False),
        ],
    )
    def test_usability(self, text, usable):
        assert key_is_usable(text) is usable


class TestSignatureHeaders:
    def test_clean_signature(self):
        assert audit_signature_header(_sig()).diagnostics == []

    def test_dkim001_bad_version(self):
        assert audit_signature_header(_sig(v="2")).has("DKIM001")

    def test_dkim001_unknown_canonicalization(self):
        assert audit_signature_header(_sig(c="mangled/relaxed")).has("DKIM001")

    def test_dkim001_non_numeric_timestamp(self):
        assert audit_signature_header(_sig(t="soon")).has("DKIM001")

    def test_dkim005_rsa_sha1(self):
        assert audit_signature_header(_sig(a="rsa-sha1")).has("DKIM005")

    def test_dkim006_partial_body(self):
        assert audit_signature_header(_sig(l="512")).has("DKIM006")

    def test_dkim008_expired(self):
        report = audit_signature_header(_sig(x="1000"), now=2000.0)
        assert report.has("DKIM008")

    def test_dkim009_near_expiry(self):
        report = audit_signature_header(
            _sig(x=str(int(2000 + EXPIRY_WARNING_SECONDS // 2))), now=2000.0
        )
        assert report.codes() == ["DKIM009"]

    def test_no_expiry_findings_without_now(self):
        report = audit_signature_header(_sig(x="1000"))
        assert not report.has("DKIM008") and not report.has("DKIM009")

    def test_dkim010_x_before_t(self):
        report = audit_signature_header(_sig(t="2000", x="1000"))
        assert report.has("DKIM010")

    def test_dkim011_missing_required_tag(self):
        assert audit_signature_header(_sig(bh=None)).has("DKIM011")

    def test_dkim011_from_not_signed(self):
        assert audit_signature_header(_sig(h="to:subject")).has("DKIM011")

    def test_dkim013_simple_body_canonicalization(self):
        assert audit_signature_header(_sig(c="relaxed/simple")).has("DKIM013")

    def test_dkim013_default_body_is_simple(self):
        assert audit_signature_header(_sig(c="relaxed")).has("DKIM013")

    def test_dkim014_identity_outside_domain(self):
        report = audit_signature_header(_sig(i="@other.example.org"))
        assert report.has("DKIM014")

    def test_identity_inside_domain_fine(self):
        report = audit_signature_header(_sig(i="@mail.example.com"))
        assert not report.has("DKIM014")

    def test_dkim015_invalid_selector(self):
        assert audit_signature_header(_sig(s="-bad-")).has("DKIM015")

    def test_dkim016_unknown_tag(self):
        assert audit_signature_header(_sig(zz="1")).has("DKIM016")


class TestZoneSweep:
    def test_usable_and_unusable_domains(self):
        zone = Zone("example.com")
        zone.add("s1._domainkey.good.example.com", TxtRecord(GOOD_KEY))
        zone.add("s1._domainkey.dead.example.com", TxtRecord("v=DKIM1; k=rsa; p="))
        report, usable = audit_zone_dkim(zone)
        assert ("good", "example", "com") in usable
        assert all(key[:1] != ("dead",) for key in usable)
        assert report.has("DKIM002")

    def test_one_usable_key_among_bad_ones_counts(self):
        zone = Zone("example.com")
        zone.add("s1._domainkey.example.com", TxtRecord("v=DKIM1; k=rsa; p="))
        zone.add("s2._domainkey.example.com", TxtRecord(GOOD_KEY))
        _, usable = audit_zone_dkim(zone)
        assert ("example", "com") in usable

    def test_selector_label_checked(self):
        zone = Zone("example.com")
        zone.add("-oops-._domainkey.example.com", TxtRecord(GOOD_KEY))
        report, _ = audit_zone_dkim(zone)
        assert report.has("DKIM015")

    def test_non_dkim_names_ignored(self):
        zone = Zone("example.com")
        zone.add("www.example.com", TxtRecord("hello"))
        report, usable = audit_zone_dkim(zone)
        assert report.diagnostics == [] and usable == set()
